#!/usr/bin/env python3
"""The paper's Section 7 application: testing through a hashing lexer.

A flex-style lexer recognizes keywords by hashing input chunks.  Plain
concolic testing and blackbox fuzzing cannot synthesize keyword-shaped
inputs; higher-order test generation inverts the hash through the samples
recorded when the lexer hashes its own keyword table at startup.

Run with::

    python examples/lexer_keywords.py
"""

import time

from repro import ConcretizationMode, DirectedSearch, SearchConfig
from repro.apps import build_lexer_program, codes_to_word
from repro.baselines import RandomFuzzer


def main() -> None:
    app = build_lexer_program()
    print("keywords:", ", ".join(app.keywords))
    print("bug: input word 'ret' with arg == 99, buried behind the lexer\n")

    rows = []

    start = time.perf_counter()
    fuzz = RandomFuzzer(
        app.program,
        app.entry,
        app.fresh_natives(),
        ranges={f"c{i}": (0, 127) for i in range(app.width)},
        default_range=(-200, 200),
        seed=11,
    ).run(max_runs=500)
    rows.append(("blackbox random (500 runs)", fuzz.summary(),
                 time.perf_counter() - start))

    for mode, label in [
        (ConcretizationMode.UNSOUND, "DART (unsound concretization)"),
        (ConcretizationMode.SOUND, "sound concretization"),
        (ConcretizationMode.HIGHER_ORDER, "higher-order test generation"),
    ]:
        start = time.perf_counter()
        search = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(), mode,
            SearchConfig(max_runs=120),
        )
        result = search.run(app.initial_inputs("zzz", 0))
        rows.append((label, result.summary(), time.perf_counter() - start))
        for error in result.errors:
            word = codes_to_word(
                [error.inputs[f"c{i}"] for i in range(app.width)]
            )
            print(
                f"  [{label}] found the bug: word={word!r} "
                f"arg={error.inputs['arg']}"
            )

    print()
    for label, summary, elapsed in rows:
        print(f"{label:32s} {summary}  ({elapsed:.2f}s)")

    print(
        "\nOnly higher-order test generation reaches the parser stage: its\n"
        "validity engine inverts flex_hash through the keyword samples the\n"
        "lexer itself recorded during symbol-table initialization."
    )


if __name__ == "__main__":
    main()
