#!/usr/bin/env python3
"""Forging checksums and MACs with higher-order test generation.

Two guard shapes that defeat every technique without runtime samples:

- a packet parser that drops any packet whose CRC doesn't match
  (``checksum == crc(kind, a, b)``), with bugs behind two commands;
- a command executor that authenticates messages with a keyed MAC
  (``tag == cipher(message, SECRET)``), with a privileged-action bug
  behind a specific authenticated message.

Higher-order test generation forges both guards through multi-step
strategies: the validity proof says "set checksum := crc(kind₀,a₀,b₀)",
an intermediate run samples that CRC point, and the final packet passes
validation. The secret MAC key never appears in any constraint — only the
cipher's observed input-output pair is used.

Run with::

    python examples/protocol_forging.py
"""

from repro import ConcretizationMode, DirectedSearch, SearchConfig
from repro.apps import build_auth_app, build_protocol_app
from repro.baselines import RandomFuzzer


def compare(name, app, seed_inputs, fuzz_range):
    print(f"=== {name} ===")
    fuzz = RandomFuzzer(
        app.program, app.entry, app.fresh_natives(),
        default_range=fuzz_range, seed=2,
    ).run(max_runs=400)
    print(f"  blackbox random (400):    {fuzz.summary()}")

    for mode in (ConcretizationMode.UNSOUND, ConcretizationMode.HIGHER_ORDER):
        search = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(), mode,
            SearchConfig(max_runs=80),
        )
        result = search.run(dict(seed_inputs))
        print(f"  {mode.value:24s}  {result.summary()}")
        for error in result.errors:
            print(f"      forged inputs -> {error}")
    print()


def main() -> None:
    protocol = build_protocol_app()
    compare(
        "CRC-guarded packet parser",
        protocol,
        protocol.initial_inputs(),
        (-100000, 100000),
    )

    auth = build_auth_app()
    compare(
        "MAC-authenticated executor",
        auth,
        auth.initial_inputs(),
        (-(2**31), 2**31),
    )

    print(
        "Both guards fall to validity-proof strategies with sample\n"
        "learning: the engine never inverts CRC or the cipher — it only\n"
        "replays input-output pairs the program itself computed."
    )


if __name__ == "__main__":
    main()
