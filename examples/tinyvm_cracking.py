#!/usr/bin/env python3
"""Cracking the TinyVM: checksum forging + instruction synthesis.

TinyVM loads a 6-byte bytecode program only when its CRC matches, then
interprets it over an accumulator machine.  One instruction (CHECK) hides
an error behind the accumulator value 13 — reachable only by a particular
instruction *sequence* with a particular data argument, inside a validly
checksummed program.

Higher-order test generation assembles all three ingredients at once:

1. the CRC guard is flipped via a multi-step strategy
   ``checksum := vmcrc(op₀,…,op₅)`` (an intermediate run samples the CRC);
2. the dispatcher equalities synthesize opcode values;
3. the accumulator constraint fixes ``arg``.

Run with::

    python examples/tinyvm_cracking.py
"""

from repro import ConcretizationMode, DirectedSearch, SearchConfig
from repro.apps import OPCODES, build_tinyvm_app
from repro.baselines import RandomFuzzer

MNEMONIC = {v: k for k, v in OPCODES.items()}


def main() -> None:
    app = build_tinyvm_app()
    print("instruction set:", ", ".join(f"{v}={k}" for k, v in OPCODES.items()))
    print("target: a validly-checksummed program driving acc to 13 at a CHECK\n")

    fuzz = RandomFuzzer(
        app.program, app.entry, app.fresh_natives(),
        ranges={f"op{i}": (0, 5) for i in range(app.code_len)},
        default_range=(-100000, 100000), seed=9,
    ).run(max_runs=500)
    print(f"blackbox random (500):  {fuzz.summary()}")

    dart = DirectedSearch.for_mode(
        app.program, app.entry, app.fresh_natives(),
        ConcretizationMode.UNSOUND, SearchConfig(max_runs=100),
    ).run(app.initial_inputs())
    print(f"DART (unsound):         {dart.summary()}")

    search = DirectedSearch.for_mode(
        app.program, app.entry, app.fresh_natives(),
        ConcretizationMode.HIGHER_ORDER,
        SearchConfig(max_runs=200, stop_on_first_error=True),
    )
    result = search.run(app.initial_inputs())
    print(f"higher-order:           {result.summary()}\n")

    for error in result.errors:
        ops = [error.inputs[f"op{i}"] for i in range(app.code_len)]
        listing = " ".join(MNEMONIC.get(o, f"?{o}") for o in ops)
        print("cracked bytecode:")
        print(f"  opcodes : {ops}   ({listing})")
        print(f"  arg     : {error.inputs['arg']}")
        print(f"  checksum: {error.inputs['checksum']} "
              f"(valid: {error.inputs['checksum'] == app.checksum_of(ops)})")

    print("\nexecution genealogy (first runs):")
    print(result.tree_report(max_rows=14))


if __name__ == "__main__":
    main()
