#!/usr/bin/env python3
"""Multi-step test generation (paper Example 7), narrated step by step.

The program::

    int foo(int x, int y) {
        if (x == hash(y)) {
            if (y == 10) { error(); }
        }
    }

needs TWO pieces of knowledge to reach the error: that x must equal
hash(y), and the concrete value of hash(10) — which has never been
observed.  Higher-order test generation derives the strategy
``y := 10, x := hash(10)`` from a validity proof, runs an *intermediate
test* to learn hash(10), and only then emits the error-triggering input.

Run with::

    python examples/multistep_demo.py
"""

from repro import (
    ConcolicEngine,
    ConcretizationMode,
    HigherOrderBackend,
    NativeRegistry,
    SampleStore,
    TermManager,
    ValidityChecker,
    alternate_constraint,
    build_post,
    parse_program,
)

FOO = """
int foo(int x, int y) {
    if (x == hash(y)) {
        if (y == 10) {
            error("two-step bug");
        }
    }
    return 0;
}
"""


def hash_fn(y: int) -> int:
    if y == 42:
        return 567  # the paper's assumed value
    return (y * 31 + 7) % 1000


def main() -> None:
    tm = TermManager()
    natives = NativeRegistry()
    natives.register("hash", hash_fn)
    program = parse_program(FOO)
    engine = ConcolicEngine(
        program, natives, ConcretizationMode.HIGHER_ORDER, tm
    )
    store = SampleStore()

    print("=== run 1: seed inputs x=33, y=42 ===")
    run1 = engine.run("foo", {"x": 33, "y": 42})
    store.merge_from_run(run1)
    print("  path constraint:", [str(p) for p in run1.path_conditions])
    print("  samples so far :", store)

    print("\n=== negate the last (only) condition ===")
    post = build_post(
        tm, run1.path_conditions, 0,
        list(run1.input_vars.values()), store.samples(),
    )
    print("  POST(ALT(pc)) =", post.render())
    checker = ValidityChecker(tm)
    verdict = checker.check(
        alternate_constraint(tm, run1.path_conditions, 0),
        list(run1.input_vars.values()),
        store.samples(),
        defaults=run1.inputs,
    )
    print("  verdict:", verdict.status.value, "| strategy:", verdict.strategy)

    inputs2 = verdict.strategy.concretize(store.samples())
    print("\n=== run 2: generated inputs", inputs2, "===")
    run2 = engine.run("foo", inputs2)
    store.merge_from_run(run2)
    print("  path constraint:", [str(p) for p in run2.path_conditions])

    print("\n=== negate (y == 10): the validity proof needs hash(10) ===")
    verdict2 = checker.check(
        alternate_constraint(tm, run2.path_conditions, 1),
        list(run2.input_vars.values()),
        store.samples(),
        defaults=run2.inputs,
    )
    print("  verdict:", verdict2.status.value, "| strategy:", verdict2.strategy)
    pending = verdict2.strategy.pending(store.samples())
    print("  pending samples:", [str(p) for p in pending])

    print("\n=== intermediate run: learn hash(10) ===")
    probe_inputs = {"x": run2.inputs["x"], "y": 10}
    print("  probe inputs:", probe_inputs)
    probe = engine.run("foo", probe_inputs)
    store.merge_from_run(probe)
    print("  samples now  :", store)

    final_inputs = verdict2.strategy.concretize(store.samples())
    print("\n=== final run:", final_inputs, "===")
    final = engine.run("foo", final_inputs)
    print("  error reached:", final.error, "|", final.error_message)
    assert final.error, "the two-step strategy must reach the error"

    print(
        "\nTwo-step generation, exactly the paper's Example 7: a validity\n"
        "proof produced the strategy, an intermediate execution supplied\n"
        "the missing sample, and only then could the test be concretized."
    )


if __name__ == "__main__":
    main()
