#!/usr/bin/env python3
"""Divergences: good, bad, and eliminated (paper Sections 3 and 5.1).

Three programs, three morals:

- `foo` (§3.2): unsound concretization produces an unsound path
  constraint, the generated test *diverges*, and the bug is missed;
  sound concretization proves no test exists on that branch; higher-order
  generation finds the bug via multi-step generation.
- `foo_bis` (Example 2): the unsound pc happens to point at the bug — a
  "good divergence" — while sound concretization provably misses it.
- `bar` (Example 3): unsound concretization generates a wasted, divergent
  test; higher-order generation *proves* the branch unreachable-by-tests
  (the POST formula is invalid) and never wastes the run.

Run with::

    python examples/divergence_study.py
"""

from repro import ConcretizationMode, DirectedSearch, SearchConfig
from repro.apps.paper_programs import PAPER_EXAMPLES, make_paper_natives

MODES = [
    ConcretizationMode.UNSOUND,
    ConcretizationMode.SOUND,
    ConcretizationMode.SOUND_DELAYED,
    ConcretizationMode.HIGHER_ORDER,
]


def study(name: str) -> None:
    example = PAPER_EXAMPLES[name]
    print(f"=== {name} ({example.section}) ===")
    print(example.source.strip())
    print()
    for mode in MODES:
        search = DirectedSearch.for_mode(
            example.program(), example.entry, make_paper_natives(), mode,
            SearchConfig(max_runs=30),
        )
        result = search.run(dict(example.initial_inputs))
        verdict = "BUG FOUND" if result.found_error else "no bug"
        print(
            f"  {mode.value:14s} {result.summary():58s} {verdict}"
        )
    print()


def main() -> None:
    for name in ("foo", "foo_bis", "bar"):
        study(name)
    print(
        "Morals: unsound concretization diverges (sometimes usefully);\n"
        "sound concretization never diverges but gives up early; higher-\n"
        "order generation is sound AND reaches the bugs that have tests,\n"
        "while proving the others have none."
    )


if __name__ == "__main__":
    main()
