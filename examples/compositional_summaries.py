#!/usr/bin/env python3
"""Higher-order compositional test generation (paper §8).

Function summaries — disjunctions of intraprocedural path constraints —
let callers reason about callees without re-inlining them.  When the
callee itself calls an unknown function, the summary contains UF
applications, and the quantifier choice matters:

- *existential* (plain satisfiability, the classic compositional testing
  of [11, 17]): the solver may invent hash behaviour, so the witness can
  be garbage;
- *universal with the sample antecedent* (this paper's contribution
  applied compositionally): the witness provably works for every function
  consistent with what was observed — i.e., for the real one.

Run with::

    python examples/compositional_summaries.py
"""

from repro import NativeRegistry, TermManager, parse_program, Interpreter
from repro.core import CompositionalReachability, SummaryExtractor

HELPER = """
int classify(int v) {
    if (hash(v) > 500) { return 1; }
    return 0;
}
"""


def make_natives() -> NativeRegistry:
    natives = NativeRegistry()
    natives.register("hash", lambda y: (y * 31 + 7) % 1000)
    return natives


def main() -> None:
    tm = TermManager()
    extractor = SummaryExtractor(parse_program(HELPER), make_natives(), manager=tm)
    # the seed corpus includes a value whose hash exceeds 500 (hash(20)=627)
    summary = extractor.extract(
        "classify", {"v": 3}, extra_seeds=[{"v": 20}]
    )
    print("extracted summary:")
    print(" ", str(summary).replace("\n", "\n  "))
    print("\nsamples observed during extraction:", extractor.store)

    x = tm.mk_var("caller_x")
    r = tm.mk_var("result")
    want_one = tm.mk_eq(r, tm.mk_int(1))

    print("\n-- existential query (classic compositional testing) --")
    comp_plain = CompositionalReachability(tm)
    sat = comp_plain.check_sat(summary, [x], want_one, ret_var=r)
    witness = sat.model.ints.get("caller_x")
    interp = Interpreter(parse_program(HELPER), make_natives())
    actual = interp.run("classify", {"v": witness}).returned
    print(f"  SAT, witness caller_x = {witness}")
    print(f"  but classify({witness}) actually returns {actual} "
          f"({'USABLE' if actual == 1 else 'UNUSABLE — invented hash!'})")

    print("\n-- higher-order query (validity + sample antecedent) --")
    comp_ho = CompositionalReachability(tm, store=extractor.store)
    verdict = comp_ho.check_validity(
        summary, [x], want_one, input_vars=[x], ret_var=r
    )
    inputs = verdict.strategy.concretize(extractor.store.samples())
    actual = interp.run("classify", {"v": inputs["caller_x"]}).returned
    print(f"  {verdict.status.value}, strategy {verdict.strategy}")
    print(f"  classify({inputs['caller_x']}) returns {actual}  (USABLE)")
    assert actual == 1


if __name__ == "__main__":
    main()
