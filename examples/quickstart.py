#!/usr/bin/env python3
"""Quickstart: higher-order test generation on the paper's `obscure`.

The motivating example of the paper (Section 1): a branch guarded by a
hash comparison that no constraint solver can invert.  We run all four
engines plus the static baseline and print what each one achieves.

Run with::

    python examples/quickstart.py
"""

from repro import (
    ConcretizationMode,
    DirectedSearch,
    NativeRegistry,
    SearchConfig,
    StaticTestGenerator,
    parse_program,
)

OBSCURE = """
int obscure(int x, int y) {
    if (x == hash(y)) {
        error("error branch reached");   // the paper's `return -1`
    }
    return 0;                            // ok
}
"""


def make_natives() -> NativeRegistry:
    """`hash` is a *native*: the engines see only its input-output pairs."""
    natives = NativeRegistry()
    natives.register("hash", lambda y: (y * 2654435761 + 12345) % 65521)
    return natives


def main() -> None:
    program = parse_program(OBSCURE)
    seed = {"x": 33, "y": 42}

    print("=== obscure(x, y): if (x == hash(y)) error; ===\n")
    print(f"seed inputs: {seed}\n")

    for mode in ConcretizationMode:
        search = DirectedSearch.for_mode(
            program, "obscure", make_natives(), mode, SearchConfig(max_runs=20)
        )
        result = search.run(dict(seed))
        print(f"{mode.value:14s} {result.summary()}")
        for error in result.errors:
            print(f"                 -> {error}")

    static = StaticTestGenerator(
        program, "obscure", make_natives(), SearchConfig(max_runs=20)
    )
    result = static.run(dict(seed))
    print(f"{'static':14s} {result.summary()}   (satisfiability invents hash)")

    print(
        "\nDynamic engines cover both branches because they observe the\n"
        "concrete hash value at runtime; the static baseline generates\n"
        "tests from invented hash behaviour, which diverge on execution."
    )


if __name__ == "__main__":
    main()
