#!/usr/bin/env python3
"""Regenerate every experiment and print the EXPERIMENTS.md tables.

Run with::

    python benchmarks/run_experiments.py
    python benchmarks/run_experiments.py --json bench.json

This is the source of truth for EXPERIMENTS.md: each row pairs the paper's
claim with what this reproduction measures, across all engines.

With ``--json FILE`` a :class:`repro.obs.MetricsRegistry` is installed as
the process default for the whole run, and the BENCH JSON written to FILE
gains a ``metrics`` section (solver query counts, conflicts, concolic
concretizations, search totals) aggregated across every experiment.
"""

import argparse
import json
import os
import time

from repro.apps import build_lexer_program, build_table_lexer_program, codes_to_word
from repro.apps.paper_programs import PAPER_EXAMPLES, make_paper_natives
from repro.baselines import RandomFuzzer, StaticTestGenerator
from repro.core import SampleStore
from repro.obs import MetricsRegistry, use_registry
from repro.search import DirectedSearch, SearchConfig
from repro.solver import TermManager
from repro.solver.cache import QueryCache, use_cache
from repro.symbolic import ConcolicEngine, ConcretizationMode

#: worker threads for speculative flip planning (set by --jobs; the
#: generated suites are identical at any value)
JOBS = 1


def _config(**kwargs):
    kwargs.setdefault("jobs", JOBS)
    return SearchConfig.from_options(**kwargs)


MODES = [
    ("unsound", ConcretizationMode.UNSOUND),
    ("sound", ConcretizationMode.SOUND),
    ("delayed", ConcretizationMode.SOUND_DELAYED),
    ("higher-order", ConcretizationMode.HIGHER_ORDER),
]


def cell(result):
    bug = "BUG" if result.found_error else "—"
    return f"{bug} / r{result.runs} / d{result.divergences} / {result.coverage.ratio():.0%}"


def paper_examples_table():
    print("## Paper examples (E0–E7)")
    print()
    print("Cell format: found-bug / runs / divergences / branch coverage.")
    print()
    header = "| example | section | " + " | ".join(n for n, _ in MODES) + " | static |"
    print(header)
    print("|---" * (len(MODES) + 3) + "|")
    for name, ex in PAPER_EXAMPLES.items():
        cells = []
        for _label, mode in MODES:
            search = DirectedSearch.for_mode(
                ex.program(), ex.entry, make_paper_natives(), mode,
                _config(max_runs=40),
            )
            cells.append(cell(search.run(dict(ex.initial_inputs))))
        static = StaticTestGenerator(
            ex.program(), ex.entry, make_paper_natives(),
            _config(max_runs=40),
        ).run(dict(ex.initial_inputs))
        cells.append(cell(static))
        print(f"| {name} | {ex.section} | " + " | ".join(cells) + " |")
    print()


def lexer_table():
    print("## §7 lexer application (APP)")
    print()
    app = build_lexer_program()
    rows = []

    start = time.perf_counter()
    fuzz = RandomFuzzer(
        app.program, app.entry, app.fresh_natives(),
        ranges={f"c{i}": (0, 127) for i in range(app.width)},
        default_range=(-200, 200), seed=11,
    ).run(max_runs=500)
    rows.append(("blackbox random (500)", fuzz.found_error, fuzz.runs,
                 fuzz.coverage.ratio(), time.perf_counter() - start, ""))

    for label, mode in MODES:
        start = time.perf_counter()
        res = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(), mode,
            _config(max_runs=120),
        ).run(app.initial_inputs("zzz", 0))
        note = ""
        if res.errors:
            err = res.errors[0]
            word = codes_to_word([err.inputs[f"c{i}"] for i in range(app.width)])
            note = f"word={word!r} arg={err.inputs['arg']}"
        rows.append((label, res.found_error, res.runs, res.coverage.ratio(),
                     time.perf_counter() - start, note))

    print("| technique | bug found | runs | coverage | time | note |")
    print("|---|---|---|---|---|---|")
    for label, bug, runs, cov, elapsed, note in rows:
        print(
            f"| {label} | {'yes' if bug else 'no'} | {runs} | {cov:.0%} | "
            f"{elapsed:.2f}s | {note} |"
        )
    print()

    print("### Figure-4 table-lookup variant (§6 limitation)")
    print()
    table_app = build_table_lexer_program()
    res = DirectedSearch.for_mode(
        table_app.program, table_app.entry, table_app.fresh_natives(),
        ConcretizationMode.HIGHER_ORDER, _config(max_runs=60),
    ).run(table_app.initial_inputs("zzz", 0))
    print(
        f"higher-order on the hash-indexed symbol table: bug found = "
        f"{'yes' if res.found_error else 'no'} (store lookups concretize; "
        f"coverage {res.coverage.ratio():.0%})"
    )
    print()


def learning_table():
    print("## Cross-run sample learning (PRE, hard-coded hash values)")
    print()
    from repro.apps import build_hardcoded_lexer_program

    app = build_hardcoded_lexer_program()
    # cold
    start = time.perf_counter()
    cold = DirectedSearch.for_mode(
        app.program, app.entry, app.fresh_natives(),
        ConcretizationMode.HIGHER_ORDER, _config(max_runs=120),
    ).run(app.initial_inputs("zzz", 0))
    cold_t = time.perf_counter() - start
    # warm
    tm = TermManager()
    store = SampleStore()
    engine = ConcolicEngine(
        app.program, app.fresh_natives(), ConcretizationMode.HIGHER_ORDER, tm
    )
    for kw in app.keywords:
        store.merge_from_run(engine.run(app.entry, app.initial_inputs(kw, 0)))
    start = time.perf_counter()
    warm = DirectedSearch.for_mode(
        app.program, app.entry, app.fresh_natives(),
        ConcretizationMode.HIGHER_ORDER, _config(max_runs=120),
        manager=tm, store=store,
    ).run(app.initial_inputs("zzz", 0))
    warm_t = time.perf_counter() - start
    print("| session | primed samples | bug found | search runs | time |")
    print("|---|---|---|---|---|")
    print(f"| cold | 0 | {'yes' if cold.found_error else 'no'} | {cold.runs} | {cold_t:.2f}s |")
    print(f"| warm (keyword corpus) | {len(store)} | {'yes' if warm.found_error else 'no'} | {warm.runs} | {warm_t:.2f}s |")
    print()


def staged_apps_table():
    print("## Staged applications (APP2–APP5)")
    print()
    from repro.apps import (
        build_auth_app,
        build_calculator_app,
        build_protocol_app,
        build_tinyvm_app,
    )

    rows = []

    def measure(name, app, seed, fuzz_ranges, fuzz_default, max_runs,
                stop_first=False):
        fuzz = RandomFuzzer(
            app.program, app.entry, app.fresh_natives(),
            ranges=fuzz_ranges, default_range=fuzz_default, seed=2,
        ).run(400)
        for label, mode in (
            ("DART", ConcretizationMode.UNSOUND),
            ("HOTG", ConcretizationMode.HIGHER_ORDER),
        ):
            start = time.perf_counter()
            res = DirectedSearch.for_mode(
                app.program, app.entry, app.fresh_natives(), mode,
                _config(max_runs=max_runs, stop_on_first_error=stop_first),
            ).run(dict(seed))
            rows.append((
                name, label, len(res.errors), res.runs,
                res.coverage.ratio(), time.perf_counter() - start,
            ))
        rows.append((name, "random(400)", len(fuzz.errors), fuzz.runs,
                     fuzz.coverage.ratio(), 0.0))

    protocol = build_protocol_app()
    measure("protocol (CRC)", protocol, protocol.initial_inputs(), {},
            (-100000, 100000), 80)
    auth = build_auth_app()
    measure("auth (MAC)", auth, auth.initial_inputs(), {},
            (-(2**31), 2**31), 60)
    calc = build_calculator_app()
    measure(
        "calculator", calc, calc.initial_inputs("zzzz", "qqqq", 1),
        {n: (0, 127) for n in calc.input_names if n != "operand"},
        (-1000, 1000), 200,
    )
    vm = build_tinyvm_app()
    measure(
        "tinyvm", vm, vm.initial_inputs(),
        {f"op{i}": (0, 5) for i in range(vm.code_len)},
        (-100000, 100000), 200, stop_first=True,
    )

    print("| app | technique | bugs | runs | coverage | time |")
    print("|---|---|---|---|---|---|")
    for name, label, bugs, runs, cov, elapsed in rows:
        print(
            f"| {name} | {label} | {bugs} | {runs} | {cov:.0%} | "
            f"{elapsed:.2f}s |"
        )
    print()


def report():
    print("# Experiment report (auto-generated by benchmarks/run_experiments.py)")
    print()
    paper_examples_table()
    lexer_table()
    learning_table()
    staged_apps_table()


def campaign_bench(path, workers=2, repeats=3):
    """PR 4 batch-engine benchmark: serial vs pooled, cold vs warm disk cache.

    Runs the paper-example campaign (all strategies) four ways and writes
    ``BENCH_pr4.json``:

    - ``serial`` — ``workers=1``, no disk cache (the reference);
    - ``pooled`` — ``workers=N`` process pool, no disk cache (must produce
      the identical campaign digest);
    - ``disk_cold`` — ``workers=1`` against an empty cache directory;
    - ``disk_warm`` — ``workers=1`` against the now-populated directory.

    Timings are medians over ``repeats`` interleaved rounds.  SMT seconds
    come from the per-job metric snapshots, so the cold/warm comparison
    isolates solver work from interpreter work.
    """
    import statistics
    import tempfile

    from repro.api import CampaignSpec, run_campaign

    spec = CampaignSpec.paper_suite(
        strategies=["higher_order", "unsound", "sound"], max_runs=40
    )

    def measure(**kwargs):
        start = time.perf_counter()
        report = run_campaign(spec, **kwargs)
        return time.perf_counter() - start, report

    rounds = {"serial": [], "pooled": [], "disk_cold": [], "disk_warm": []}
    reports = {}
    for _ in range(repeats):
        with tempfile.TemporaryDirectory(prefix="repro-diskcache-") as cache_dir:
            for label, kwargs in (
                ("serial", {"workers": 1}),
                ("pooled", {"workers": workers}),
                ("disk_cold", {"workers": 1, "cache_dir": cache_dir}),
                ("disk_warm", {"workers": 1, "cache_dir": cache_dir}),
            ):
                seconds, rep = measure(**kwargs)
                rounds[label].append((seconds, rep.smt_check_seconds))
                reports[label] = rep

    digests = {label: rep.campaign_digest for label, rep in reports.items()}
    assert len(set(digests.values())) == 1, (
        f"campaign digests diverged across configurations: {digests}"
    )
    warm_cache = reports["disk_warm"].cache_totals()
    payload = {
        "generator": "benchmarks/run_experiments.py --pr4",
        "suite": "paper examples x (higher_order, unsound, sound)",
        "jobs": len(reports["serial"].jobs),
        "workers_pooled": workers,
        "repeats": repeats,
        "campaign_digest": digests["serial"],
        "digests_identical": True,
        "warm_disk_hits": warm_cache.get("disk_hits", 0),
        "warm_disk_misses": warm_cache.get("disk_misses", 0),
        "cpu_count": os.cpu_count(),
        "note": (
            "on a single-core host the pooled configuration pays spawn "
            "overhead without gaining parallelism; the determinism claim "
            "(identical digest at every worker count) is the CI gate"
        ),
    }
    for label, samples in rounds.items():
        payload[f"{label}_wall_seconds"] = round(
            statistics.median(s for s, _ in samples), 6
        )
        payload[f"{label}_smt_seconds"] = round(
            statistics.median(m for _, m in samples), 6
        )
    payload["warm_vs_cold_smt_speedup"] = round(
        payload["disk_cold_smt_seconds"]
        / max(payload["disk_warm_smt_seconds"], 1e-9),
        3,
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"## PR 4 batch-engine benchmark ({payload['jobs']} jobs)")
    print()
    print("| configuration | wall (s) | SMT (s) |")
    print("|---|---|---|")
    for label in ("serial", "pooled", "disk_cold", "disk_warm"):
        print(
            f"| {label} | {payload[f'{label}_wall_seconds']:.3f} | "
            f"{payload[f'{label}_smt_seconds']:.3f} |"
        )
    print()
    print(
        f"warm disk cache: {payload['warm_disk_hits']} hits / "
        f"{payload['warm_disk_misses']} misses; SMT speedup "
        f"{payload['warm_vs_cold_smt_speedup']}x; digest "
        f"{payload['campaign_digest'][:16]}... identical everywhere"
    )
    print(f"BENCH JSON written to {path}")


def scheduler_bench(path, repeats=3):
    """PR 5 frontier-scheduler benchmark: runs-to-coverage-plateau per policy.

    Runs three benchmark apps (lexer, tinyvm, protocol) under every
    frontier scheduler (dfs / generational / coverage) for ``repeats``
    rounds and writes ``BENCH_pr5.json``:

    - ``runs_to_plateau`` — first run index at which the search covers
      the app's *reachable plateau*: the maximum branch-outcome count any
      scheduler reaches within the app's run budget.  (None of these apps
      reaches 100% of static outcomes — some sides are infeasible — so
      the plateau is the honest "full coverage" reference.)
    - ``wall_seconds`` — median end-to-end search time.

    Schedulers are deterministic, so runs_to_plateau is identical across
    rounds; rounds exist to stabilize the wall-clock medians.  The gate:
    the coverage scheduler must reach the plateau on at least one app in
    fewer runs than dfs.
    """
    import statistics

    from repro.apps import (
        build_lexer_program,
        build_protocol_app,
        build_tinyvm_app,
    )
    from repro.search.scheduler import scheduler_names

    apps = {
        "lexer": (build_lexer_program, lambda a: a.initial_inputs("zzz", 0), 120),
        "tinyvm": (build_tinyvm_app, lambda a: a.initial_inputs(), 200),
        "protocol": (build_protocol_app, lambda a: a.initial_inputs(), 80),
    }
    results = {}
    for app_name, (build, seed_fn, max_runs) in apps.items():
        per = {}
        for scheduler in scheduler_names():
            walls = []
            coverage = None
            runs = 0
            for _ in range(repeats):
                app = build()
                config = _config(max_runs=max_runs, scheduler=scheduler)
                start = time.perf_counter()
                with use_cache(QueryCache()):
                    res = DirectedSearch.for_mode(
                        app.program, app.entry, app.fresh_natives(),
                        ConcretizationMode.HIGHER_ORDER, config,
                    ).run(dict(seed_fn(app)))
                walls.append(time.perf_counter() - start)
                coverage, runs = res.coverage, res.runs
            per[scheduler] = {
                "covered": len(coverage.covered),
                "total_outcomes": coverage.total_outcomes,
                "total_runs": runs,
                "history": list(coverage.history),
                "wall_seconds": round(statistics.median(walls), 6),
            }
        plateau = max(row["covered"] for row in per.values())
        for row in per.values():
            row["runs_to_plateau"] = next(
                (r for r, n in row["history"] if n >= plateau), None
            )
            del row["history"]
        results[app_name] = {
            "plateau": plateau,
            "max_runs": max_runs,
            "schedulers": per,
        }

    coverage_wins = [
        name
        for name, data in results.items()
        if data["schedulers"]["coverage"]["runs_to_plateau"] is not None
        and data["schedulers"]["dfs"]["runs_to_plateau"] is not None
        and data["schedulers"]["coverage"]["runs_to_plateau"]
        < data["schedulers"]["dfs"]["runs_to_plateau"]
    ]
    assert coverage_wins, (
        "the coverage scheduler reached no app's plateau in fewer runs "
        f"than dfs: {results}"
    )
    payload = {
        "generator": "benchmarks/run_experiments.py --pr5",
        "repeats": repeats,
        "plateau_definition": (
            "max branch-outcome count any scheduler reaches within the "
            "app's run budget (100% of static outcomes is unreachable: "
            "some branch sides are infeasible)"
        ),
        "coverage_beats_dfs_on": coverage_wins,
        "apps": results,
        "cpu_count": os.cpu_count(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("## PR 5 frontier-scheduler benchmark")
    print()
    print("| app | scheduler | covered | runs to plateau | wall (s) |")
    print("|---|---|---|---|---|")
    for app_name, data in results.items():
        for scheduler, row in data["schedulers"].items():
            hit = row["runs_to_plateau"]
            print(
                f"| {app_name} | {scheduler} | "
                f"{row['covered']}/{row['total_outcomes']} | "
                f"{hit if hit is not None else '—'} | "
                f"{row['wall_seconds']:.3f} |"
            )
    print()
    print(f"coverage beats dfs to the plateau on: {', '.join(coverage_wins)}")
    print(f"BENCH JSON written to {path}")


def exec_backend_bench(path, repeats=3):
    """PR 7 execution-core benchmark: tree walker vs bytecode VM.

    Measures three things and writes ``BENCH_pr7.json``:

    - **end-to-end campaign** — the paper-example campaign under each
      ``exec_backend``; the campaign digests must be byte-identical
      (the VM is answer-preserving) while the bytecode arm is faster.
    - **concrete throughput** — a branch-dense mixed workload (the same
      shape ``benchmarks/exec_backend_gate.py`` gates on) interpreted
      under each backend; this isolates raw dispatch cost from solver
      time.
    - **compile cache** — compiling every paper-example program cold
      (empty cache) vs warm (second compile of identical source); warm
      compiles are near-free, so per-run compile cost amortizes to zero
      across a campaign.

    Timings are medians over ``repeats`` interleaved rounds; arms
    alternate within each round so frequency drift cannot favour one.
    """
    import statistics

    from repro.api import CampaignSpec, run_campaign
    from repro.lang import (
        Interpreter,
        clear_compile_cache,
        compile_program,
        parse_program,
    )

    spec = CampaignSpec.paper_suite(
        strategies=["higher_order", "unsound"], max_runs=40
    )
    mixed = parse_program(
        """
        int twist(int x) { return x * 2 + 1; }
        int fold(int x) { return twist(x) - 3; }
        int main(int n) {
            int a; int b; int acc; int i;
            a = 0; b = 1; acc = 0; i = 0;
            while (i < n) {
                if (i % 2 == 0) { acc = acc + i; } else { acc = acc - 1; }
                if (acc > 100) { acc = acc - 50; }
                a = a + b;
                b = a - b;
                if (a > 1000) { a = a % 997; }
                if (a < b) { a = a + 2; } else { b = b + 3; }
                acc = acc + fold(i) % 13;
                i = i + 1;
            }
            return acc + a + b;
        }
        """
    )
    sources = [ex.program() for ex in PAPER_EXAMPLES.values()]

    rounds = {
        "campaign_tree": [], "campaign_bytecode": [],
        "exec_tree": [], "exec_bytecode": [],
        "compile_cold": [], "compile_warm": [],
    }
    digests = {}
    exec_outcomes = set()
    for round_index in range(repeats):
        backends = (
            ("tree", "bytecode") if round_index % 2 == 0
            else ("bytecode", "tree")
        )
        for backend in backends:
            start = time.perf_counter()
            report = run_campaign(spec, exec_backend=backend)
            rounds[f"campaign_{backend}"].append(time.perf_counter() - start)
            digests[backend] = report.campaign_digest
        for backend in backends:
            interp = Interpreter(
                mixed, step_budget=100_000_000, backend=backend
            )
            interp.run("main", {"n": 200})  # warm the compile cache
            start = time.perf_counter()
            res = interp.run("main", {"n": 20000})
            rounds[f"exec_{backend}"].append(time.perf_counter() - start)
            exec_outcomes.add((res.returned, res.steps))
        clear_compile_cache()
        start = time.perf_counter()
        for program in sources:
            program._bytecode = None  # drop the per-Program memo too
            compile_program(program)
        rounds["compile_cold"].append(time.perf_counter() - start)
        start = time.perf_counter()
        for program in sources:
            program._bytecode = None  # warm = global digest-cache hit
            compile_program(program)
        rounds["compile_warm"].append(time.perf_counter() - start)

    assert len(set(digests.values())) == 1, (
        f"campaign digests diverged across execution backends: {digests}"
    )
    assert len(exec_outcomes) == 1, (
        f"mixed-workload outcomes diverged across backends: {exec_outcomes}"
    )
    payload = {
        "generator": "benchmarks/run_experiments.py --pr7",
        "suite": "paper examples x (higher_order, unsound)",
        "repeats": repeats,
        "campaign_digest": digests["bytecode"],
        "digests_identical": True,
        "cpu_count": os.cpu_count(),
    }
    for label, samples in rounds.items():
        payload[f"{label}_seconds"] = round(statistics.median(samples), 6)
    payload["campaign_speedup"] = round(
        payload["campaign_tree_seconds"]
        / max(payload["campaign_bytecode_seconds"], 1e-9),
        3,
    )
    payload["exec_speedup"] = round(
        payload["exec_tree_seconds"]
        / max(payload["exec_bytecode_seconds"], 1e-9),
        3,
    )
    payload["compile_warm_vs_cold_speedup"] = round(
        payload["compile_cold_seconds"]
        / max(payload["compile_warm_seconds"], 1e-9),
        3,
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("## PR 7 execution-core benchmark")
    print()
    print("| measurement | tree (s) | bytecode (s) | speedup |")
    print("|---|---|---|---|")
    print(
        f"| paper campaign | {payload['campaign_tree_seconds']:.3f} | "
        f"{payload['campaign_bytecode_seconds']:.3f} | "
        f"{payload['campaign_speedup']}x |"
    )
    print(
        f"| mixed concrete workload | {payload['exec_tree_seconds']:.3f} | "
        f"{payload['exec_bytecode_seconds']:.3f} | "
        f"{payload['exec_speedup']}x |"
    )
    print()
    print(
        f"compile cache: cold {payload['compile_cold_seconds']:.4f}s, warm "
        f"{payload['compile_warm_seconds']:.4f}s "
        f"({payload['compile_warm_vs_cold_speedup']}x); digest "
        f"{payload['campaign_digest'][:16]}... identical across backends"
    )
    print(f"BENCH JSON written to {path}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write BENCH JSON (with an aggregated metrics section) to FILE",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker threads planning branch flips (same results at any value)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the normalized query cache (cold-solver baseline)",
    )
    parser.add_argument(
        "--pr4",
        default=None,
        metavar="FILE",
        help=(
            "run the batch-engine benchmark (serial vs pooled, cold vs "
            "warm disk cache) and write its BENCH JSON to FILE"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="process-pool size for the --pr4 pooled configuration",
    )
    parser.add_argument(
        "--pr5",
        default=None,
        metavar="FILE",
        help=(
            "run the frontier-scheduler benchmark (runs-to-coverage-"
            "plateau per policy on the benchmark apps) and write its "
            "BENCH JSON to FILE"
        ),
    )
    parser.add_argument(
        "--pr7",
        default=None,
        metavar="FILE",
        help=(
            "run the execution-core benchmark (tree walker vs bytecode "
            "VM, cold vs warm compile cache) and write its BENCH JSON "
            "to FILE"
        ),
    )
    args = parser.parse_args(argv)
    global JOBS
    JOBS = args.jobs
    if args.pr4 is not None:
        campaign_bench(args.pr4, workers=args.workers)
        return
    if args.pr5 is not None:
        scheduler_bench(args.pr5)
        return
    if args.pr7 is not None:
        exec_backend_bench(args.pr7)
        return
    cache = None if args.no_cache else QueryCache()
    if args.json is None:
        with use_cache(cache):
            report()
        return
    registry = MetricsRegistry()
    start = time.perf_counter()
    with use_registry(registry), use_cache(cache):
        report()
    payload = {
        "generator": "benchmarks/run_experiments.py",
        "jobs": args.jobs,
        "cache": not args.no_cache,
        "cache_hits": cache.hits if cache is not None else 0,
        "cache_misses": cache.misses if cache is not None else 0,
        "cache_hit_rate": round(cache.hit_rate, 4) if cache is not None else 0.0,
        "elapsed_seconds": round(time.perf_counter() - start, 3),
        "metrics": registry.snapshot(),
    }
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"BENCH JSON with metrics section written to {args.json}")


if __name__ == "__main__":
    main()
