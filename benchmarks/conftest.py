"""Shared helpers for the benchmark suite.

Each benchmark regenerates one experiment from DESIGN.md's index: it runs
the experiment under ``pytest-benchmark`` timing *and* asserts the paper's
qualitative claim (who finds the bug, who diverges, who wins on coverage),
so a regression in either speed or reproduction fidelity is caught here.
"""

import pytest

from repro.apps.paper_programs import PAPER_EXAMPLES, make_paper_natives
from repro.search import DirectedSearch, SearchConfig
from repro.symbolic import ConcretizationMode


def run_example(name, mode, max_runs=40, use_antecedent=True):
    """Run one paper example under one engine; returns the SearchResult."""
    ex = PAPER_EXAMPLES[name]
    search = DirectedSearch.for_mode(
        ex.program(),
        ex.entry,
        make_paper_natives(),
        mode,
        SearchConfig.from_options(max_runs=max_runs),
        use_antecedent=use_antecedent,
    )
    return search.run(dict(ex.initial_inputs))


@pytest.fixture
def paper_runner():
    return run_example
