"""Scaling sweeps: how the solver and validity engine grow with input size.

The paper's §6 frames implementability as a scaling question ("gigantic
path constraints that would overwhelm even the best engineered constraint
solvers").  These sweeps measure the three dimensions that grow in
practice: sample-table size (hash inversion), application count
(Ackermann pressure), and path-constraint length (deep programs).
"""

import pytest

from repro.lang import NativeRegistry, parse_program
from repro.search import DirectedSearch, SearchConfig
from repro.solver import Solver, TermManager
from repro.solver.validity import Sample, ValidityChecker, ValidityStatus
from repro.symbolic import ConcretizationMode


@pytest.mark.benchmark(group="SCALE-samples")
@pytest.mark.parametrize("n_samples", [8, 32, 128])
def test_scale_hash_inversion_by_table_size(benchmark, n_samples):
    """Validity with grounding over n recorded samples."""
    tm = TermManager()
    h = tm.mk_function("h", 1)
    y = tm.mk_var("y")
    samples = [Sample(h, (i,), (i * 37) % 1009) for i in range(n_samples)]
    target = ((n_samples - 1) * 37) % 1009
    pc = tm.mk_eq(tm.mk_app(h, [y]), tm.mk_int(target))

    def run():
        return ValidityChecker(tm).check(pc, [y], samples)

    verdict = benchmark(run)
    assert verdict.status is ValidityStatus.VALID


@pytest.mark.benchmark(group="SCALE-ackermann")
@pytest.mark.parametrize("n_apps", [4, 8, 16])
def test_scale_ackermann_pressure(benchmark, n_apps):
    """SAT queries with n same-symbol applications: O(n²) constraints."""
    def run():
        tm = TermManager()
        solver = Solver(tm)
        h = tm.mk_function("h", 1)
        vs = [tm.mk_var(f"k{i}") for i in range(n_apps)]
        for i, v in enumerate(vs):
            solver.add(
                tm.mk_eq(tm.mk_app(h, [v]), tm.mk_int(i % 3))
            )
        solver.add(tm.mk_distinct(vs[: min(4, n_apps)]))
        return solver.check()

    assert benchmark(run).sat


@pytest.mark.benchmark(group="SCALE-depth")
@pytest.mark.parametrize("depth", [4, 8, 16])
def test_scale_search_with_deep_constraint_chains(benchmark, depth):
    """Directed search through a comb of `depth` sequential conditions."""
    conds = "\n".join(
        f"    if (x + {i} == y * 2) {{ count = count + 1; }}"
        for i in range(depth)
    )
    src = f"""
    int main(int x, int y) {{
        int count = 0;
    {conds}
        return count;
    }}
    """
    program = parse_program(src)

    def run():
        search = DirectedSearch.for_mode(
            program, "main", NativeRegistry(),
            ConcretizationMode.SOUND, SearchConfig.from_options(max_runs=depth + 5),
        )
        return search.run({"x": 0, "y": 1000})

    result = benchmark(run)
    assert result.runs >= 2
