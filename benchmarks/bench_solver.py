"""Benchmarks SOL: micro-benchmarks of the from-scratch solver stack.

The paper's §6 discusses implementability: higher-order test generation
stands or falls with the solver's throughput on path-constraint-shaped
formulas.  These benches track SAT, EUF, LIA, combined SMT, and validity
query performance.
"""

import pytest

from repro.solver import (
    CongruenceClosure,
    LiaSolver,
    SatSolver,
    Solver,
    TermManager,
)
from repro.solver.validity import Sample, ValidityChecker, ValidityStatus


@pytest.mark.benchmark(group="SOL-sat")
class TestSatBench:
    def test_sol_sat_pigeonhole_5(self, benchmark):
        def run():
            s = SatSolver()
            holes = 5
            pigeons = holes + 1
            var = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
            for p in range(pigeons):
                s.add_clause([var[p][h] for h in range(holes)])
            for h in range(holes):
                for p1 in range(pigeons):
                    for p2 in range(p1 + 1, pigeons):
                        s.add_clause([-var[p1][h], -var[p2][h]])
            return s.solve()

        result = benchmark(run)
        assert not result.sat

    def test_sol_sat_chain_implication(self, benchmark):
        def run():
            s = SatSolver()
            n = 500
            v = [s.new_var() for _ in range(n)]
            s.add_clause([v[0]])
            for i in range(n - 1):
                s.add_clause([-v[i], v[i + 1]])
            return s.solve()

        result = benchmark(run)
        assert result.sat and result.model[500]


@pytest.mark.benchmark(group="SOL-euf")
class TestEufBench:
    def test_sol_euf_congruence_chain(self, benchmark):
        tm = TermManager()
        f = tm.mk_function("f", 1)
        x = tm.mk_var("x")

        def nest(t, n):
            for _ in range(n):
                t = tm.mk_app(f, [t])
            return t

        def run():
            cc = CongruenceClosure()
            cc.assert_equal(nest(x, 3), x)
            cc.assert_equal(nest(x, 5), x)
            return cc.are_equal(nest(x, 1), x)

        assert benchmark(run)

    def test_sol_euf_many_classes(self, benchmark):
        tm = TermManager()
        vs = [tm.mk_var(f"v{i}") for i in range(200)]

        def run():
            cc = CongruenceClosure()
            for a, b in zip(vs, vs[1:]):
                cc.assert_equal(a, b)
            return cc.are_equal(vs[0], vs[-1])

        assert benchmark(run)


@pytest.mark.benchmark(group="SOL-lia")
class TestLiaBench:
    def test_sol_lia_diophantine(self, benchmark):
        def run():
            lia = LiaSolver()
            x, y = lia.new_var("x"), lia.new_var("y")
            lia.add_ge({x: 1}, 0)
            lia.add_ge({y: 1}, 0)
            lia.add_le({x: 1}, 50)
            lia.add_le({y: 1}, 50)
            lia.add_eq({x: 7, y: 11}, 100)
            return lia.check()

        result = benchmark(run)
        assert result.sat

    def test_sol_lia_diseq_splitting(self, benchmark):
        def run():
            lia = LiaSolver()
            x = lia.new_var("x")
            lia.add_ge({x: 1}, 0)
            lia.add_le({x: 1}, 20)
            for v in range(15):
                lia.add_diseq({x: 1}, v)
            return lia.check()

        result = benchmark(run)
        assert result.sat and result.model[0] >= 15


@pytest.mark.benchmark(group="SOL-smt")
class TestSmtBench:
    def test_sol_smt_pc_shaped_query(self, benchmark):
        """A query shaped like the lexer pc: UF equalities + grounding ORs."""
        def run():
            tm = TermManager()
            s = Solver(tm)
            h = tm.mk_function("h", 4)
            cs = [tm.mk_var(f"c{i}") for i in range(4)]
            app = tm.mk_app(h, cs)
            # grounding disjunction over 9 sampled keywords
            options = []
            for k in range(9):
                eqs = [tm.mk_eq(c, tm.mk_int(90 + k + i)) for i, c in enumerate(cs)]
                options.append(tm.mk_and(*eqs))
            s.add(tm.mk_or(*options))
            s.add(tm.mk_eq(app, tm.mk_app(h, cs)))
            return s.check()

        result = benchmark(run)
        assert result.sat

    def test_sol_smt_ackermann_pressure(self, benchmark):
        """Many applications of one symbol: quadratic consistency clauses."""
        def run():
            tm = TermManager()
            s = Solver(tm)
            h = tm.mk_function("h", 1)
            vs = [tm.mk_var(f"k{i}") for i in range(10)]
            for i, v in enumerate(vs):
                s.add(tm.mk_eq(tm.mk_app(h, [v]), tm.mk_int(i % 3)))
            s.add(tm.mk_distinct(vs[:4]))
            return s.check()

        result = benchmark(run)
        assert result.sat


@pytest.mark.benchmark(group="SOL-validity")
class TestValidityBench:
    def test_sol_validity_grounding(self, benchmark):
        """Hash inversion through 32 samples (the §7 query shape)."""
        tm = TermManager()
        h = tm.mk_function("h", 1)
        y = tm.mk_var("y")
        samples = [Sample(h, (i,), (i * 37) % 101) for i in range(32)]
        target = (20 * 37) % 101
        pc = tm.mk_eq(tm.mk_app(h, [y]), tm.mk_int(target))

        def run():
            checker = ValidityChecker(tm)
            return checker.check(pc, [y], samples)

        verdict = benchmark(run)
        assert verdict.status is ValidityStatus.VALID

    def test_sol_validity_invalidity_adversaries(self, benchmark):
        tm = TermManager()
        h = tm.mk_function("h", 1)
        x, y = tm.mk_var("x"), tm.mk_var("y")
        pc = tm.mk_and(
            tm.mk_eq(x, tm.mk_app(h, [y])), tm.mk_eq(y, tm.mk_app(h, [x]))
        )
        samples = [Sample(h, (42,), 567), Sample(h, (33,), 123)]

        def run():
            checker = ValidityChecker(tm)
            return checker.check(pc, [x, y], samples)

        verdict = benchmark(run)
        assert verdict.status is ValidityStatus.INVALID
