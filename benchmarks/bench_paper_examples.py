"""Benchmarks E0–E7: every worked example in the paper.

Each bench times the full directed-search session for the engine the
paper's claim concerns, and asserts the claim itself.  The bench names
carry the experiment ids from DESIGN.md §4.
"""

import pytest

from repro.symbolic import ConcretizationMode

from conftest import run_example

HO = ConcretizationMode.HIGHER_ORDER
UNSOUND = ConcretizationMode.UNSOUND
SOUND = ConcretizationMode.SOUND
DELAYED = ConcretizationMode.SOUND_DELAYED


@pytest.mark.benchmark(group="E0-obscure")
class TestE0:
    def test_e0_obscure_dynamic_unsound(self, benchmark):
        result = benchmark(run_example, "obscure", UNSOUND)
        assert result.found_error

    def test_e0_obscure_higher_order(self, benchmark):
        result = benchmark(run_example, "obscure", HO)
        assert result.found_error and result.divergences == 0

    def test_e0_obscure_static_helpless(self, benchmark):
        from repro.apps.paper_programs import PAPER_EXAMPLES, make_paper_natives
        from repro.baselines import StaticTestGenerator
        from repro.search import SearchConfig

        ex = PAPER_EXAMPLES["obscure"]

        def run():
            gen = StaticTestGenerator(
                ex.program(), ex.entry, make_paper_natives(),
                SearchConfig.from_options(max_runs=20),
            )
            return gen.run(dict(ex.initial_inputs))

        result = benchmark(run)
        assert not result.found_error and result.divergences >= 1


@pytest.mark.benchmark(group="E1-foo-sound")
class TestE1:
    def test_e1_foo_sound_no_divergence_no_bug(self, benchmark):
        result = benchmark(run_example, "foo", SOUND)
        assert not result.found_error and result.divergences == 0

    def test_e1u_foo_unsound_diverges(self, benchmark):
        result = benchmark(run_example, "foo", UNSOUND)
        assert result.divergences >= 1 and not result.found_error


@pytest.mark.benchmark(group="E2-foo_bis")
class TestE2:
    def test_e2_foo_bis_unsound_good_divergence(self, benchmark):
        result = benchmark(run_example, "foo_bis", UNSOUND)
        assert result.found_error

    def test_e2_foo_bis_sound_misses(self, benchmark):
        result = benchmark(run_example, "foo_bis", SOUND)
        assert not result.found_error

    def test_e2_foo_bis_higher_order_sound_catch(self, benchmark):
        result = benchmark(run_example, "foo_bis", HO)
        assert result.found_error and result.divergences == 0


@pytest.mark.benchmark(group="E3-bar")
class TestE3:
    def test_e3_bar_unsound_bad_divergence(self, benchmark):
        result = benchmark(run_example, "bar", UNSOUND)
        assert result.divergences >= 1 and not result.found_error

    def test_e3_bar_higher_order_proves_invalid(self, benchmark):
        result = benchmark(run_example, "bar", HO)
        assert result.runs == 1  # no test generated: POST proved invalid
        assert result.divergences == 0


@pytest.mark.benchmark(group="E4-pub")
class TestE4:
    def test_e4_pub_higher_order_with_antecedent(self, benchmark):
        result = benchmark(run_example, "pub", HO)
        assert result.found_error

    def test_e4_pub_higher_order_without_antecedent(self, benchmark):
        result = benchmark(run_example, "pub", HO, 40, False)
        assert not result.found_error


@pytest.mark.benchmark(group="E5-euf")
class TestE5:
    def test_e5_euf_equality_strategy(self, benchmark):
        result = benchmark(run_example, "euf_eq", HO)
        assert result.found_error

    def test_e5_sound_concretization_cannot(self, benchmark):
        result = benchmark(run_example, "euf_eq", SOUND)
        assert not result.found_error


@pytest.mark.benchmark(group="E6-antecedent")
class TestE6:
    def test_e6_sound_cannot(self, benchmark):
        result = benchmark(run_example, "succ_link", SOUND)
        assert not result.found_error


@pytest.mark.benchmark(group="E7-multistep")
class TestE7:
    def test_e7_foo_higher_order_two_step(self, benchmark):
        result = benchmark(run_example, "foo", HO)
        assert result.found_error
        err = result.errors[0]
        assert err.inputs["y"] == 10

    def test_e7_delayed_concretization_variant(self, benchmark):
        result = benchmark(run_example, "delayed", DELAYED)
        assert result.found_error

    def test_e7_eager_sound_variant_misses(self, benchmark):
        result = benchmark(run_example, "delayed", SOUND)
        assert not result.found_error
