"""Benchmark: engine throughput over randomly generated programs.

Measures end-to-end robustness-at-speed: concolic execution and the
higher-order search across a fleet of generated programs.  Catches
performance regressions that the targeted benches (fixed programs) miss.
"""

import random

import pytest

from repro.lang.randprog import generate_program
from repro.search import DirectedSearch, SearchConfig
from repro.solver import TermManager
from repro.symbolic import ConcolicEngine, ConcretizationMode


@pytest.mark.benchmark(group="DIFF-random-programs")
class TestRandomProgramThroughput:
    def test_diff_concolic_execution_fleet(self, benchmark):
        programs = [generate_program(seed) for seed in range(10)]

        def run():
            total = 0
            for rp in programs:
                engine = ConcolicEngine(
                    rp.program, rp.natives(),
                    ConcretizationMode.HIGHER_ORDER, TermManager(),
                )
                rng = random.Random(rp.seed)
                for _ in range(3):
                    result = engine.run(rp.entry, rp.random_inputs(rng))
                    total += result.steps
            return total

        assert benchmark(run) > 0

    def test_diff_higher_order_search_fleet(self, benchmark):
        programs = [generate_program(seed) for seed in range(6)]

        def run():
            total_runs = 0
            for rp in programs:
                search = DirectedSearch.for_mode(
                    rp.program, rp.entry, rp.natives(),
                    ConcretizationMode.HIGHER_ORDER,
                    SearchConfig.from_options(max_runs=10),
                )
                result = search.run({p: 0 for p in rp.params})
                total_runs += result.runs
            return total_runs

        assert benchmark.pedantic(run, rounds=3, iterations=1) >= 6
