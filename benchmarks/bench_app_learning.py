"""Benchmark PRE: cross-run sample learning (paper §7, last paragraph).

When keyword hashes are hard-coded (not recomputed at startup), samples
cannot be observed within a single run.  The paper proposes learning them
over time from a seed corpus of well-formed inputs.  This bench measures a
cold search (no corpus, provably stuck) vs a warm search (store primed by
running each keyword once) and asserts only the warm one finds the bug.
"""

import pytest

from repro.apps import build_hardcoded_lexer_program
from repro.core import SampleStore
from repro.search import DirectedSearch, SearchConfig
from repro.solver import TermManager
from repro.symbolic import ConcolicEngine, ConcretizationMode


@pytest.fixture(scope="module")
def app():
    return build_hardcoded_lexer_program()


def warm_store(app):
    """Session 1: run the keyword corpus, recording hash samples."""
    tm = TermManager()
    store = SampleStore()
    engine = ConcolicEngine(
        app.program, app.fresh_natives(), ConcretizationMode.HIGHER_ORDER, tm
    )
    for kw in app.keywords:
        store.merge_from_run(engine.run(app.entry, app.initial_inputs(kw, 0)))
    return tm, store


@pytest.mark.benchmark(group="PRE-learning")
class TestCrossRunLearning:
    def test_pre_cold_search_is_blind(self, benchmark, app):
        def run():
            search = DirectedSearch.for_mode(
                app.program, app.entry, app.fresh_natives(),
                ConcretizationMode.HIGHER_ORDER, SearchConfig.from_options(max_runs=80),
            )
            return search.run(app.initial_inputs("zzz", 0))

        result = benchmark(run)
        assert not result.found_error  # no samples observable in-run

    def test_pre_corpus_priming(self, benchmark, app):
        tm, store = benchmark(warm_store, app)
        assert len(store) >= 1

    def test_pre_warm_search_finds_bug(self, benchmark, app):
        tm, store = warm_store(app)

        def run():
            search = DirectedSearch.for_mode(
                app.program, app.entry, app.fresh_natives(),
                ConcretizationMode.HIGHER_ORDER, SearchConfig.from_options(max_runs=120),
                manager=tm, store=store,
            )
            return search.run(app.initial_inputs("zzz", 0))

        result = run()  # correctness once
        assert result.found_error
        benchmark(run)

    def test_pre_store_persistence(self, benchmark, app, tmp_path):
        tm, store = warm_store(app)
        path = str(tmp_path / "samples.json")

        def roundtrip():
            store.save(path)
            return SampleStore.load(path, TermManager())

        loaded = benchmark(roundtrip)
        assert len(loaded) == len(store)
