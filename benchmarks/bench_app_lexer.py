"""Benchmark APP: the §7 lexer comparison — random vs DART vs HOTG.

Reproduces the section's qualitative table: blackbox random testing and
plain dynamic test generation stall at the lexer; higher-order test
generation drives execution through it (keyword synthesis by hash
inversion) and finds the buried bug.
"""

import pytest

from repro.apps import build_lexer_program, build_table_lexer_program, codes_to_word
from repro.baselines import RandomFuzzer
from repro.search import DirectedSearch, SearchConfig
from repro.symbolic import ConcretizationMode


@pytest.fixture(scope="module")
def app():
    return build_lexer_program()


@pytest.mark.benchmark(group="APP-lexer")
class TestLexerComparison:
    def test_app_lexer_random_fuzzing(self, benchmark, app):
        def run():
            fuzzer = RandomFuzzer(
                app.program, app.entry, app.fresh_natives(),
                ranges={f"c{i}": (0, 127) for i in range(app.width)},
                default_range=(-200, 200), seed=11,
            )
            return fuzzer.run(max_runs=300)

        result = benchmark(run)
        assert not result.found_error
        assert result.coverage.ratio() < 0.6

    def test_app_lexer_dart_unsound(self, benchmark, app):
        def run():
            search = DirectedSearch.for_mode(
                app.program, app.entry, app.fresh_natives(),
                ConcretizationMode.UNSOUND, SearchConfig.from_options(max_runs=120),
            )
            return search.run(app.initial_inputs("zzz", 0))

        result = benchmark(run)
        assert not result.found_error
        assert result.coverage.ratio() < 0.6

    def test_app_lexer_higher_order(self, benchmark, app):
        def run():
            search = DirectedSearch.for_mode(
                app.program, app.entry, app.fresh_natives(),
                ConcretizationMode.HIGHER_ORDER, SearchConfig.from_options(max_runs=120),
            )
            return search.run(app.initial_inputs("zzz", 0))

        result = benchmark(run)
        assert result.found_error
        err = result.errors[0]
        word = codes_to_word([err.inputs[f"c{i}"] for i in range(app.width)])
        assert word == "ret" and err.inputs["arg"] == 99
        assert result.coverage.ratio() >= 0.7

    def test_app_table_lexer_higher_order_limit(self, benchmark):
        """The Figure-4 table variant: the store lookup defeats inversion."""
        table_app = build_table_lexer_program()

        def run():
            search = DirectedSearch.for_mode(
                table_app.program, table_app.entry, table_app.fresh_natives(),
                ConcretizationMode.HIGHER_ORDER, SearchConfig.from_options(max_runs=60),
            )
            return search.run(table_app.initial_inputs("zzz", 0))

        result = benchmark(run)
        assert not result.found_error  # documented §6 limitation
