#!/usr/bin/env python
"""CI gate: the shared content-addressed store is answer-neutral, warm,
and its cross-campaign corpus seeding actually transfers coverage.

The store (PR 10) persists three artifact kinds — solver verdicts,
generated corpora, crash buckets — under one root.  It earns its keep
only if three claims hold, and this gate measures all of them:

- **answer neutrality** — the paper campaign's digest is byte-identical
  with the store off, cold, warm, and at ``--workers 1`` and ``2``; a
  warm run must also report disk-cache hits (the store is actually
  *used*, not just harmless).
- **eviction safety** — after ``gc`` under a zero-byte budget evicts
  every entry, the campaign still reproduces the same digest.  Store
  entries are pure functions of their digests; losing one may cost a
  recomputation, never a different answer.
- **seed transfer** — the paper's ``foo`` example (§3.2): unsound
  concretization *provably never* reaches the ``foo bug`` error on its
  own — it plateaus at partial path coverage no matter the run budget.
  Seeded from a higher-order campaign's stored corpus, the same unsound
  engine must reach full coverage and the error, within fewer runs than
  the cold engine's exhausted budget.

Usage::

    PYTHONPATH=src python benchmarks/store_seed_gate.py
    PYTHONPATH=src python benchmarks/store_seed_gate.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro import api  # noqa: E402
from repro.apps.paper_programs import PAPER_EXAMPLES  # noqa: E402
from repro.engine.planner import SearchJob, resolve_strategy  # noqa: E402
from repro.engine.runner import run_job  # noqa: E402
from repro.store import ContentStore  # noqa: E402

#: run budget for the seed-transfer arm — generous: the cold unsound
#: engine plateaus far below it, the seeded one finishes well inside it
SEED_BUDGET = 20


def _campaign(store_dir=None, workers=1):
    client = api.Client(workers=workers, store_dir=store_dir)
    return client.submit("paper").wait()


def _foo_job(strategy: str) -> SearchJob:
    foo = PAPER_EXAMPLES["foo"]
    mode = resolve_strategy(strategy)
    return SearchJob(
        key=f"foo//{foo.entry}//{mode}//dfs",
        program_name="foo",
        source=foo.source,
        entry=foo.entry,
        strategy=mode,
        natives="paper",
        seed=dict(foo.initial_inputs),
        config={"max_runs": SEED_BUDGET, "scheduler": "dfs"},
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=None, metavar="FILE")
    args = parser.parse_args()
    workdir = tempfile.mkdtemp(prefix="store-gate-")
    store_dir = os.path.join(workdir, "campaign-store")
    failures = []

    # -- answer neutrality: off / cold / warm / workers 2 -------------------
    reference = _campaign()
    cold = _campaign(store_dir=store_dir)
    warm = _campaign(store_dir=store_dir)
    warm2 = _campaign(store_dir=store_dir, workers=2)
    digests = {
        "no_store": reference.campaign_digest,
        "cold": cold.campaign_digest,
        "warm": warm.campaign_digest,
        "warm_workers2": warm2.campaign_digest,
    }
    for name, digest in digests.items():
        status = "OK" if digest == reference.campaign_digest else "DRIFT"
        print(f"{name}: {digest} [{status}]")
    if len(set(digests.values())) != 1:
        failures.append("the store changed the campaign digest")
    disk_hits = warm.cache_totals().get("disk_hits", 0)
    print(f"warm run: {disk_hits} disk-cache hits")
    if disk_hits <= 0:
        failures.append("warm run reported no disk-cache hits")
    corpus_hits = ContentStore(store_dir).stats()["hits"].get("corpus", 0)

    # -- eviction safety: gc to zero, digest must still reproduce -----------
    evicted = ContentStore(store_dir).gc(0)
    total_evicted = sum(evicted.values())
    print(f"gc(0): evicted {total_evicted} entries {dict(sorted(evicted.items()))}")
    if total_evicted <= 0:
        failures.append("gc under a zero budget evicted nothing")
    after_gc = _campaign(store_dir=store_dir)
    print(f"after eviction: {after_gc.campaign_digest}")
    if after_gc.campaign_digest != reference.campaign_digest:
        failures.append("eviction changed the campaign digest")

    # -- seed transfer: unsound cold plateaus short; seeded finds the bug ---
    seed_store = os.path.join(workdir, "seed-store")
    donor = run_job(_foo_job("higher_order"), store_dir=seed_store)
    cold_unsound = run_job(_foo_job("unsound"))
    seeded = run_job(
        _foo_job("unsound"), store_dir=seed_store, seed_from_store=True
    )
    cold_found = any("foo bug" in e for e in cold_unsound.errors)
    seeded_found = any("foo bug" in e for e in seeded.errors)
    print(
        f"donor (higher_order): runs={donor.runs} paths={donor.paths} "
        f"errors={len(donor.errors)}"
    )
    print(
        f"unsound cold:   runs={cold_unsound.runs} paths={cold_unsound.paths} "
        f"error={cold_found} (budget {SEED_BUDGET})"
    )
    print(
        f"unsound seeded: runs={seeded.runs} paths={seeded.paths} "
        f"error={seeded_found}"
    )
    if cold_found:
        failures.append(
            "unsound concretization found foo's bug cold — the paper's "
            "negative claim (and this gate's premise) no longer holds"
        )
    if not seeded_found:
        failures.append("seeding did not transfer the error-reaching input")
    if seeded.paths <= cold_unsound.paths:
        failures.append("seeding did not raise path coverage past the plateau")
    if seeded.runs >= SEED_BUDGET:
        failures.append(
            f"seeded run needed its whole budget ({seeded.runs} runs) — "
            "no 'plateau in fewer runs' win to claim"
        )

    payload = {
        "digests": digests,
        "disk_hits": disk_hits,
        "corpus_hits": corpus_hits,
        "evicted": evicted,
        "digest_after_gc": after_gc.campaign_digest,
        "seed_budget": SEED_BUDGET,
        "unsound_cold": {
            "runs": cold_unsound.runs,
            "paths": cold_unsound.paths,
            "found_error": cold_found,
        },
        "unsound_seeded": {
            "runs": seeded.runs,
            "paths": seeded.paths,
            "found_error": seeded_found,
        },
        "failures": failures,
    }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    shutil.rmtree(workdir, ignore_errors=True)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
