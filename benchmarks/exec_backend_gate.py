#!/usr/bin/env python
"""CI gate: the bytecode execution core must beat the tree walker 2x.

PR 7 replaced the recursive AST walker with a register-bytecode VM as
the default concrete/concolic execution core.  The VM only earns its
keep if it is *substantially* faster on the kind of program the paper's
search actually runs — branch-dense integer code with function calls —
while producing byte-identical results.  This gate measures both claims:

- **throughput** — the mixed workload below runs under both backends
  for ``--rounds`` interleaved rounds (plus one unmeasured warmup) and
  the **minimum** wall time of each arm is compared; min-of-N is the
  standard noise-robust statistic for short benchmarks since scheduling
  noise only ever adds time.  Arms alternate order within each round so
  CPU frequency drift cannot systematically favour either backend.
  Fails when bytecode is less than ``--threshold`` (default 2.0) times
  faster than the tree walker.
- **equality** — every run's observable outcome (return value, step
  count, branch trace, coverage set) must match exactly between
  backends.  A fast VM that disagrees with the reference walker is a
  bug, not a win.

The workload mixes the shapes that dominate the paper suite: two-sided
conditionals on variables, accumulator arithmetic with a modulus guard,
and a call chain through small helpers.  Array traffic and raw
division-heavy loops are deliberately *not* the centrepiece — those
spend most of their time in bounds/zero checks both backends share, so
they dilute the dispatch-cost signal this gate exists to protect.

Usage::

    PYTHONPATH=src python benchmarks/exec_backend_gate.py
    PYTHONPATH=src python benchmarks/exec_backend_gate.py --rounds 6 --json out.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.lang import Interpreter, parse_program  # noqa: E402

#: branch-dense mixed workload: conditionals, accumulator arithmetic
#: with modulus guards, and a two-deep call chain per iteration — the
#: instruction mix of the paper examples, scaled up to benchmark length
MIXED_SOURCE = """
int twist(int x) { return x * 2 + 1; }
int fold(int x) { return twist(x) - 3; }
int main(int n) {
    int a; int b; int acc; int i;
    a = 0; b = 1; acc = 0; i = 0;
    while (i < n) {
        if (i % 2 == 0) { acc = acc + i; } else { acc = acc - 1; }
        if (acc > 100) { acc = acc - 50; }
        a = a + b;
        b = a - b;
        if (a > 1000) { a = a % 997; }
        if (a < b) { a = a + 2; } else { b = b + 3; }
        acc = acc + fold(i) % 13;
        i = i + 1;
    }
    return acc + a + b;
}
"""

#: loop iterations per measured run — large enough that dispatch cost
#: dominates interpreter start-up, small enough for a CI smoke job
ITERATIONS = 20000


def _outcome(res):
    return (res.returned, res.steps, tuple(res.path), frozenset(res.covered))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="minimum required tree/bytecode speedup ratio (default 2.0)",
    )
    parser.add_argument("--json", default=None, metavar="FILE")
    args = parser.parse_args()

    program = parse_program(MIXED_SOURCE)
    interps = {
        backend: Interpreter(
            program, step_budget=100_000_000, backend=backend
        )
        for backend in ("tree", "bytecode")
    }
    for interp in interps.values():  # warmup: pyc, compile cache, allocator
        interp.run("main", {"n": 200})

    times: dict[str, list[float]] = {"tree": [], "bytecode": []}
    outcomes = set()
    for round_index in range(args.rounds):
        # alternate which backend goes first so frequency/thermal drift
        # cannot bias the comparison toward either arm
        order = (
            ("tree", "bytecode") if round_index % 2 == 0
            else ("bytecode", "tree")
        )
        for backend in order:
            start = time.perf_counter()
            res = interps[backend].run("main", {"n": ITERATIONS})
            times[backend].append(time.perf_counter() - start)
            outcomes.add(_outcome(res))
        print(
            f"round {round_index + 1}/{args.rounds}: "
            f"tree={times['tree'][-1]:.3f}s "
            f"bytecode={times['bytecode'][-1]:.3f}s"
        )

    tree, byte = min(times["tree"]), min(times["bytecode"])
    ratio = tree / byte
    print(
        f"min wall time: tree {tree:.3f}s, bytecode {byte:.3f}s "
        f"-> speedup {ratio:.2f}x (threshold {args.threshold:.1f}x)"
    )
    payload = {
        "iterations": ITERATIONS,
        "tree_seconds": times["tree"],
        "bytecode_seconds": times["bytecode"],
        "min_tree": tree,
        "min_bytecode": byte,
        "speedup": ratio,
        "threshold": args.threshold,
        "outcomes_identical": len(outcomes) == 1,
    }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if len(outcomes) != 1:
        print("FAIL: run outcomes differed between backends")
        return 1
    print("outcomes identical across all runs and both backends")
    if ratio < args.threshold:
        print("FAIL: bytecode speedup below the gate")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
