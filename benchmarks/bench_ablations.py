"""Ablation benchmarks for the design choices DESIGN.md §6 calls out.

Each ablation toggles one mechanism and asserts the qualitative effect the
design rationale predicts, while timing both arms.
"""

import pytest

from repro.solver import SatSolver, TermManager, Solver
from repro.symbolic import ConcretizationMode

from conftest import run_example

HO = ConcretizationMode.HIGHER_ORDER
SOUND = ConcretizationMode.SOUND
DELAYED = ConcretizationMode.SOUND_DELAYED


@pytest.mark.benchmark(group="ABL-antecedent")
class TestAntecedentAblation:
    """Samples-in-antecedent on/off (Example 4 hinges on it)."""

    def test_abl_antecedent_on(self, benchmark):
        result = benchmark(run_example, "pub", HO, 40, True)
        assert result.found_error

    def test_abl_antecedent_off(self, benchmark):
        result = benchmark(run_example, "pub", HO, 40, False)
        assert not result.found_error


@pytest.mark.benchmark(group="ABL-pin-timing")
class TestPinTimingAblation:
    """Eager (Fig.1 line 14) vs delayed (§3.3 end) pin injection."""

    def test_abl_eager_pins(self, benchmark):
        result = benchmark(run_example, "delayed", SOUND)
        assert not result.found_error

    def test_abl_delayed_pins(self, benchmark):
        result = benchmark(run_example, "delayed", DELAYED)
        assert result.found_error


def _php(holes, **kwargs):
    s = SatSolver(**kwargs)
    pigeons = holes + 1
    var = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for p in range(pigeons):
        s.add_clause([var[p][h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                s.add_clause([-var[p1][h], -var[p2][h]])
    return s


@pytest.mark.benchmark(group="ABL-sat-heuristics")
class TestSatHeuristicsAblation:
    """VSIDS decay and restarts on/off on a hard UNSAT instance."""

    def test_abl_sat_default_heuristics(self, benchmark):
        def run():
            return _php(5).solve()

        assert not benchmark(run).sat

    def test_abl_sat_no_restarts(self, benchmark):
        def run():
            return _php(5, enable_restarts=False).solve()

        assert not benchmark(run).sat

    def test_abl_sat_no_activity_decay(self, benchmark):
        def run():
            return _php(5, activity_decay=1.0).solve()

        assert not benchmark(run).sat


@pytest.mark.benchmark(group="ABL-model-verify")
class TestModelVerificationAblation:
    """The model-verification safety net's overhead."""

    @staticmethod
    def _query(verify):
        tm = TermManager()
        s = Solver(tm, verify_models=verify)
        h = tm.mk_function("h", 1)
        xs = [tm.mk_var(f"x{i}") for i in range(6)]
        for i, x in enumerate(xs):
            s.add(tm.mk_eq(tm.mk_app(h, [x]), tm.mk_int(i % 2)))
        s.add(tm.mk_distinct(xs[:3]))
        return s.check()

    def test_abl_verify_on(self, benchmark):
        assert benchmark(self._query, True).sat

    def test_abl_verify_off(self, benchmark):
        assert benchmark(self._query, False).sat
