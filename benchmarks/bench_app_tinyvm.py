"""Benchmark: cracking the TinyVM (checksum + bytecode synthesis).

The hardest target in the suite: a valid 6-byte CRC must be forged while
simultaneously synthesizing an opcode sequence and a data value.  Also
hosts the frontier-scheduler ablation (dfs vs generational vs coverage).
"""

import pytest

from repro.apps import build_tinyvm_app
from repro.search import DirectedSearch, SearchConfig
from repro.symbolic import ConcretizationMode


@pytest.fixture(scope="module")
def app():
    return build_tinyvm_app()


@pytest.mark.benchmark(group="APP-tinyvm")
class TestTinyVmBench:
    def test_app_tinyvm_higher_order_first_bug(self, benchmark, app):
        def run():
            search = DirectedSearch.for_mode(
                app.program, app.entry, app.fresh_natives(),
                ConcretizationMode.HIGHER_ORDER,
                SearchConfig.from_options(max_runs=200, stop_on_first_error=True),
            )
            return search.run(app.initial_inputs())

        result = benchmark.pedantic(run, rounds=2, iterations=1)
        assert result.found_error

    def test_app_tinyvm_unsound_stalls(self, benchmark, app):
        def run():
            search = DirectedSearch.for_mode(
                app.program, app.entry, app.fresh_natives(),
                ConcretizationMode.UNSOUND, SearchConfig.from_options(max_runs=100),
            )
            return search.run(app.initial_inputs())

        result = benchmark(run)
        assert not result.found_error


@pytest.mark.benchmark(group="ABL-scheduler")
class TestSchedulerAblation:
    """dfs vs generational vs coverage scheduling to the first TinyVM bug."""

    @pytest.mark.parametrize("scheduler", ["dfs", "generational", "coverage"])
    def test_abl_scheduler(self, benchmark, app, scheduler):
        def run():
            search = DirectedSearch.for_mode(
                app.program, app.entry, app.fresh_natives(),
                ConcretizationMode.HIGHER_ORDER,
                SearchConfig.from_options(
                    max_runs=200, stop_on_first_error=True, scheduler=scheduler
                ),
            )
            return search.run(app.initial_inputs())

        result = benchmark.pedantic(run, rounds=2, iterations=1)
        assert result.found_error
