"""Benchmarks for the staged applications: protocol, auth, calculator.

These extend the §7 experiment to the whitebox-fuzzing-shaped workloads
the paper's introduction motivates (checksum-guarded parsers, staged
interpreters): higher-order generation forges the guards, baselines stall.
"""

import pytest

from repro.apps import build_auth_app, build_calculator_app, build_protocol_app
from repro.baselines import RandomFuzzer
from repro.search import DirectedSearch, SearchConfig
from repro.symbolic import ConcretizationMode


@pytest.mark.benchmark(group="APP-protocol")
class TestProtocolBench:
    def test_app_protocol_higher_order(self, benchmark):
        app = build_protocol_app()

        def run():
            search = DirectedSearch.for_mode(
                app.program, app.entry, app.fresh_natives(),
                ConcretizationMode.HIGHER_ORDER, SearchConfig.from_options(max_runs=80),
            )
            return search.run(app.initial_inputs())

        result = benchmark(run)
        assert len(result.errors) >= 2  # both buried bugs
        assert result.divergences == 0

    def test_app_protocol_random(self, benchmark):
        app = build_protocol_app()

        def run():
            return RandomFuzzer(
                app.program, app.entry, app.fresh_natives(),
                default_range=(-100000, 100000), seed=2,
            ).run(300)

        result = benchmark(run)
        assert not result.found_error

    def test_app_protocol_unsound(self, benchmark):
        app = build_protocol_app()

        def run():
            search = DirectedSearch.for_mode(
                app.program, app.entry, app.fresh_natives(),
                ConcretizationMode.UNSOUND, SearchConfig.from_options(max_runs=80),
            )
            return search.run(app.initial_inputs())

        result = benchmark(run)
        assert not result.found_error


@pytest.mark.benchmark(group="APP-auth")
class TestAuthBench:
    def test_app_auth_higher_order_forges_mac(self, benchmark):
        app = build_auth_app()

        def run():
            search = DirectedSearch.for_mode(
                app.program, app.entry, app.fresh_natives(),
                ConcretizationMode.HIGHER_ORDER, SearchConfig.from_options(max_runs=60),
            )
            return search.run(app.initial_inputs())

        result = benchmark(run)
        assert result.found_error
        assert result.coverage.ratio() == 1.0


@pytest.mark.benchmark(group="APP-calculator")
class TestCalculatorBench:
    def test_app_calculator_higher_order(self, benchmark):
        app = build_calculator_app()

        def run():
            search = DirectedSearch.for_mode(
                app.program, app.entry, app.fresh_natives(),
                ConcretizationMode.HIGHER_ORDER, SearchConfig.from_options(max_runs=200),
            )
            return search.run(app.initial_inputs("zzzz", "qqqq", 1))

        result = benchmark(run)
        assert result.found_error
        assert result.coverage.ratio() >= 0.9

    def test_app_calculator_random(self, benchmark):
        app = build_calculator_app()

        def run():
            return RandomFuzzer(
                app.program, app.entry, app.fresh_natives(),
                ranges={
                    n: (0, 127) for n in app.input_names if n != "operand"
                },
                seed=4,
            ).run(300)

        result = benchmark(run)
        assert not result.found_error
