"""Benchmark T4: the Simulation Theorem check (paper Theorem 4).

Times the full hypothesis→conclusion check on the program family from
tests/test_simulation_theorem.py: build both SC and UF path constraints,
decide satisfiability of the SC alternates, and prove validity of the
corresponding POST formulas.
"""

import pytest

from repro.core import alternate_constraint, negatable_indices
from repro.lang import NativeRegistry, parse_program
from repro.solver import Solver, TermManager
from repro.solver.validity import ValidityChecker, ValidityStatus
from repro.symbolic import ConcolicEngine, ConcretizationMode

SRC = """
int p(int x, int y, int z) {
    int v = hash(x);
    if (v == hash(y)) { return 1; }
    if (z > 20) { return 2; }
    if (x + z == 50) { return 3; }
    return 0;
}
"""


def make_natives():
    n = NativeRegistry()
    n.register("hash", lambda y: (y * 37 + 11) % 211)
    return n


def simulation_check(inputs):
    prog = parse_program(SRC)
    tm_sc, tm_ho = TermManager(), TermManager()
    sc = ConcolicEngine(prog, make_natives(), ConcretizationMode.SOUND, tm_sc)
    ho = ConcolicEngine(
        prog, make_natives(), ConcretizationMode.HIGHER_ORDER, tm_ho
    )
    run_sc = sc.run("p", inputs)
    run_ho = ho.run("p", inputs)
    sc_by_pos = {
        run_sc.path_conditions[i].path_pos: i
        for i in negatable_indices(run_sc.path_conditions)
    }
    ho_by_pos = {
        run_ho.path_conditions[i].path_pos: i
        for i in negatable_indices(run_ho.path_conditions)
    }
    holds = 0
    for pos, i_sc in sc_by_pos.items():
        alt_sc = alternate_constraint(tm_sc, run_sc.path_conditions, i_sc)
        solver = Solver(tm_sc)
        solver.add(alt_sc)
        if not solver.check().sat:
            continue
        alt_ho = alternate_constraint(
            tm_ho, run_ho.path_conditions, ho_by_pos[pos]
        )
        verdict = ValidityChecker(tm_ho).check(
            alt_ho, list(run_ho.input_vars.values()), run_ho.samples,
            defaults=dict(inputs),
        )
        assert verdict.status is ValidityStatus.VALID
        holds += 1
    return holds


@pytest.mark.benchmark(group="T4-simulation")
class TestSimulationTheoremBench:
    def test_t4_simulation_check(self, benchmark):
        holds = benchmark(simulation_check, {"x": 3, "y": 4, "z": 0})
        assert holds >= 1

    def test_t4_simulation_check_other_path(self, benchmark):
        holds = benchmark(simulation_check, {"x": 30, "y": 7, "z": 25})
        assert holds >= 1
