#!/usr/bin/env python
"""CI gate: campaign telemetry must be cheap and answer-preserving.

Runs a fixed four-job campaign with telemetry off and on for
``--rounds`` rounds (plus one unmeasured warmup) and compares the
**minimum** wall time of each arm — min-of-N is the standard
noise-robust statistic for short benchmarks, since scheduling noise only
ever adds time.  The two arms alternate order within each round so CPU
frequency drift cannot systematically favour whichever arm runs first.
Fails when

- telemetry costs more than ``--threshold`` (default 3%) wall time, or
- any run's campaign digest differs from any other's (telemetry touched
  the answers — the one thing it must never do).

The workload is deliberately compute-heavy per run (a 2500-iteration
concrete loop before the symbolic branches): overhead is a *ratio*, so
the gate measures telemetry against a realistic event density rather
than against toy programs that execute in microseconds and make any
fixed cost look enormous.

Usage::

    PYTHONPATH=src python benchmarks/obs_overhead_gate.py
    PYTHONPATH=src python benchmarks/obs_overhead_gate.py --rounds 6 --json out.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro import api  # noqa: E402
from repro.engine import CampaignSpec  # noqa: E402

#: compute-heavy concolic workload: the concrete loop dominates wall
#: time (as real programs do), then two symbolic branches exercise the
#: solver, the generational frontier, and higher-order test generation
CHURN_SOURCE = """
int churn(int x, int y) {
    int acc = 0;
    int i = 0;
    while (i < 2500) {
        acc = acc + ((acc * 31 + i) % 97);
        i = i + 1;
    }
    if (x == hash(y + acc - acc)) {
        error("churn reached");
    }
    if (hash(x) == hash(y) + 1) {
        error("churn linked");
    }
    return acc;
}
"""


def _gate_spec() -> CampaignSpec:
    return CampaignSpec(
        programs=[
            {
                "name": "churn",
                "source": CHURN_SOURCE,
                "entry": "churn",
                "natives": "paper",
                "seed": {"x": 5, "y": 9},
            }
        ],
        strategies=["higher_order", "unsound"],
        schedulers=["dfs", "generational"],
        max_runs=60,
    )


def _run_once(spec: CampaignSpec, telemetry: bool) -> tuple[float, str]:
    if telemetry:
        with tempfile.TemporaryDirectory(prefix="repro-obs-gate-") as tele:
            start = time.perf_counter()
            report = api.run_campaign(spec, telemetry=tele)
            elapsed = time.perf_counter() - start
    else:
        start = time.perf_counter()
        report = api.run_campaign(spec)
        elapsed = time.perf_counter() - start
    assert not report.failed_jobs, "gate campaign had failed jobs"
    return elapsed, report.campaign_digest


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.03,
        help="max tolerated relative overhead (default 0.03 = 3%%)",
    )
    parser.add_argument("--json", default=None, metavar="FILE")
    args = parser.parse_args()

    spec = _gate_spec()
    _run_once(spec, telemetry=False)  # warmup: imports, pyc, allocator
    digests = set()
    off_times: list[float] = []
    on_times: list[float] = []
    for round_index in range(args.rounds):
        # alternate which arm goes first so frequency/thermal drift
        # cannot bias the comparison toward either arm
        order = (False, True) if round_index % 2 == 0 else (True, False)
        for telemetry in order:
            elapsed, digest = _run_once(spec, telemetry)
            (on_times if telemetry else off_times).append(elapsed)
            digests.add(digest)
        print(
            f"round {round_index + 1}/{args.rounds}: "
            f"off={off_times[-1]:.3f}s on={on_times[-1]:.3f}s"
        )

    base, shipped = min(off_times), min(on_times)
    overhead = (shipped - base) / base
    print(
        f"min wall time: telemetry off {base:.3f}s, on {shipped:.3f}s "
        f"-> overhead {overhead:+.1%} (threshold {args.threshold:.0%})"
    )
    payload = {
        "off_seconds": off_times,
        "on_seconds": on_times,
        "min_off": base,
        "min_on": shipped,
        "overhead": overhead,
        "threshold": args.threshold,
        "digests": sorted(digests),
    }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if len(digests) != 1:
        print(f"FAIL: campaign digest varied across runs: {sorted(digests)}")
        return 1
    print(f"digest stable across all runs: {next(iter(digests))}")
    if overhead > args.threshold:
        print("FAIL: telemetry overhead exceeds the gate")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
