"""Tests for supervised campaigns (repro.engine.supervisor).

Covers the recovery ladder end to end: cooperative per-job deadlines,
deterministic bounded retry with an attempt ledger that survives
kill→resume, poison-job quarantine, pool rebuilds, the heartbeat
watchdog, and graceful shutdown — plus the supporting satellites
(interrupt mapping in ``repro run``, traceback tails on failed jobs,
corrupt disk-cache entry removal).

The load-bearing invariant throughout: supervision is answer-preserving.
Every recovered campaign's digest must be byte-identical to the
fault-free run at every ``--workers`` value.
"""

import json
import os
import signal
import subprocess
import sys
import time
from collections import deque

import pytest

from repro import api
from repro.engine import CampaignCheckpoint, SupervisorConfig
from repro.engine.runner import (
    JOB_RESULT_FORMAT,
    JobResult,
    ProcessPoolRunner,
    _trace_tail,
    run_job,
)
from repro.engine.planner import BatchPlanner, CampaignSpec, SearchJob
from repro.errors import DeadlineExceeded, ReproError, SearchInterrupted
from repro.interrupt import (
    clear_interrupt,
    interrupt_requested,
    request_interrupt,
    trap_signals,
)
from repro.search import SearchConfig


def _spec(max_runs=20, n_programs=2, config=None):
    """A small campaign of self-contained programs (no natives)."""
    programs = [
        {
            "name": "p1",
            "source": (
                "int main(int x) { if (x == 7) { error(\"boom\"); } "
                "return 0; }"
            ),
            "natives": "none",
        },
        {
            "name": "p2",
            "source": "int main(int y) { if (y > 3) { return 1; } return 0; }",
            "natives": "none",
        },
        {
            "name": "p3",
            "source": (
                "int main(int z) { int i; int acc; acc = 0; "
                "for (i = 0; i < 8; i = i + 1) { "
                "if (z == i * 3) { acc = acc + 1; } } return acc; }"
            ),
            "natives": "none",
        },
    ][:n_programs]
    return CampaignSpec(
        programs=programs,
        strategies=["higher_order"],
        max_runs=max_runs,
        config=dict(config or {}),
    )


def _job(spec=None):
    return BatchPlanner().expand(spec or _spec(n_programs=1))[0]


# -- deadlines ---------------------------------------------------------------


class TestDeadline:
    def test_config_rejects_negative_deadline(self):
        with pytest.raises(ReproError):
            SearchConfig(job_deadline=-1.0).validate()

    def test_deadline_reclaims_injected_hang(self):
        job = _job(_spec(n_programs=1, config={"job_deadline": 0.5}))
        start = time.monotonic()
        result = run_job(job, hang=True)
        elapsed = time.monotonic() - start
        assert result.deadline_exceeded
        assert result.ok  # partial suite salvaged, not an error
        assert result.interrupted
        assert 0.3 < elapsed < 5.0

    def test_no_deadline_means_no_flag(self):
        result = run_job(_job())
        assert not result.deadline_exceeded
        assert result.ok

    def test_deadline_exceeded_is_a_search_interrupt(self):
        # the CLI's exit-3 mapping and the checkpoint salvage path both
        # key off SearchInterrupted, so the subclassing is load-bearing
        assert issubclass(DeadlineExceeded, SearchInterrupted)


# -- error traces (satellite) ------------------------------------------------


class TestTraceTail:
    def test_keeps_last_frames_and_marks_elision(self):
        def f0():
            raise ValueError("bottom")

        def f1():
            f0()

        def f2():
            f1()

        def f3():
            f2()

        def f4():
            f3()

        def f5():
            f4()

        def f6():
            f5()

        try:
            f6()
        except ValueError as exc:
            tail = _trace_tail(exc)
        assert tail.endswith("ValueError: bottom")
        assert "frames elided" in tail
        assert "in f0" in tail and "in f4" in tail  # last 5 frames kept
        assert "in f6" not in tail  # outer frames elided

    def test_short_traces_are_untouched(self):
        try:
            raise KeyError("x")
        except KeyError as exc:
            tail = _trace_tail(exc)
        assert "frames elided" not in tail
        assert tail.endswith("KeyError: 'x'")

    def test_failed_job_carries_trace(self):
        broken = SearchJob(
            key="broken//main//higher_order",
            program_name="broken",
            source="int main(int x) { return x; }",
            entry="main",
            strategy="higher_order",
            natives="no_such_registry",
            seed={"x": 0},
        )
        result = run_job(broken)
        assert not result.ok
        assert "no_such_registry" in result.error
        assert result.error_trace  # diagnosis without re-running
        assert result.error_trace.splitlines()[-1] == result.error


# -- the attempt ledger ------------------------------------------------------


class TestAttemptLedger:
    def test_record_and_reload(self, tmp_path):
        ckpt = CampaignCheckpoint(str(tmp_path))
        partial = JobResult(key="a//main//higher_order//dfs", runs=3)
        ckpt.record_attempt(
            "a//main//higher_order//dfs", 1, "deadline",
            error="deadline exceeded after 3 runs", partial=partial,
        )
        ckpt.record(JobResult(key="b//main//higher_order//dfs"))
        fresh = CampaignCheckpoint(str(tmp_path))
        assert fresh.attempts("a//main//higher_order//dfs") == 1
        assert fresh.attempts("b//main//higher_order//dfs") == 0
        last = fresh.last_attempt("a//main//higher_order//dfs")
        assert last is not None and last["outcome"] == "deadline"
        assert last["partial"]["runs"] == 3
        assert fresh.completed("b//main//higher_order//dfs") is not None
        assert fresh.completed("a//main//higher_order//dfs") is None

    def test_attempt_count_keeps_maximum(self, tmp_path):
        ckpt = CampaignCheckpoint(str(tmp_path))
        ckpt.record_attempt("k", 1, "deadline")
        ckpt.record_attempt("k", 2, "stalled")
        assert CampaignCheckpoint(str(tmp_path)).attempts("k") == 2

    def test_stale_result_format_is_skipped(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        stale = JobResult(key="old//main//higher_order//dfs").to_payload()
        stale["format"] = JOB_RESULT_FORMAT - 1
        path.write_text(json.dumps(stale) + "\n", encoding="utf-8")
        ckpt = CampaignCheckpoint(str(tmp_path))
        assert ckpt.completed("old//main//higher_order//dfs") is None


# -- retry: answer-preserving recovery ---------------------------------------


class TestRetry:
    def test_hang_retry_digest_identical_across_workers(self):
        spec = _spec()
        clean = api.run_campaign(spec, workers=1)
        for workers in (1, 2):
            chaotic = api.run_campaign(
                spec,
                workers=workers,
                fault_plan="hang:at=1",
                job_deadline=2.0,
                max_attempts=2,
            )
            assert chaotic.campaign_digest == clean.campaign_digest
            assert chaotic.retried_jobs == 1
            assert not chaotic.quarantined_jobs

    def test_hang_campaign_bounded_by_jobs_times_deadline(self):
        spec = _spec()
        deadline = 2.0
        start = time.monotonic()
        report = api.run_campaign(
            spec,
            workers=1,
            fault_plan="hang:at=1",
            job_deadline=deadline,
            max_attempts=2,
        )
        elapsed = time.monotonic() - start
        assert elapsed < len(report.jobs) * deadline + 10.0
        assert not report.quarantined_jobs

    def test_pool_break_recovers_with_identical_digest(self):
        spec = _spec()
        clean = api.run_campaign(spec, workers=1)
        for workers in (1, 2):
            chaotic = api.run_campaign(
                spec, workers=workers, fault_plan="pool:at=2", max_attempts=2
            )
            assert chaotic.campaign_digest == clean.campaign_digest
            assert chaotic.retried_jobs == 1

    def test_retried_job_reports_attempts(self):
        report = api.run_campaign(
            _spec(),
            workers=1,
            fault_plan="hang:at=1",
            job_deadline=1.0,
            max_attempts=2,
        )
        retried = [j for j in report.jobs if j.attempts > 1]
        assert len(retried) == 1
        assert retried[0].attempts == 2
        assert retried[0].ok

    def test_supervisor_config_validation(self):
        with pytest.raises(ReproError):
            SupervisorConfig(max_attempts=0).validate()
        with pytest.raises(ReproError):
            SupervisorConfig(retry_backoff=-1).validate()
        with pytest.raises(ReproError):
            SupervisorConfig(stall_timeout=-1).validate()
        assert SupervisorConfig().validate().max_attempts == 2


# -- quarantine --------------------------------------------------------------


class TestQuarantine:
    def test_exhausted_attempts_quarantine_not_crash(self):
        report = api.run_campaign(
            _spec(),
            workers=1,
            fault_plan="hang:at=1",
            job_deadline=0.5,
            max_attempts=1,
        )
        assert len(report.quarantined_jobs) == 1
        poisoned = [j for j in report.jobs if j.quarantined]
        assert len(poisoned) == 1
        assert not poisoned[0].ok
        assert "quarantined after 1 attempts" in poisoned[0].error
        assert poisoned[0] in report.failed_jobs
        # the rest of the campaign completed normally
        assert len(report.ok_jobs) == len(report.jobs) - 1
        assert "quarantined=1" in report.summary()
        payload = report.to_payload()
        assert payload["totals"]["quarantined_jobs"] == report.quarantined_jobs

    def test_resume_quarantines_spent_attempts_without_retrying(self, tmp_path):
        spec = _spec()
        jobs = BatchPlanner().expand(spec)
        ckpt_dir = str(tmp_path / "ckpt")
        ckpt = CampaignCheckpoint(ckpt_dir)
        # as if a previous run burned the whole budget and was killed
        ckpt.record_attempt(
            jobs[0].key, 2, "stalled", error="no heartbeat for 1s"
        )
        report = api.run_campaign(
            spec, workers=1, checkpoint=ckpt_dir, max_attempts=2
        )
        assert report.quarantined_jobs == [jobs[0].key]
        poisoned = [j for j in report.jobs if j.quarantined]
        assert "stalled" in poisoned[0].error
        # spent attempts were honored, not re-fired
        assert CampaignCheckpoint(ckpt_dir).attempts(jobs[0].key) == 2


# -- pool breakage: innocent bystanders --------------------------------------


class TestPoolBreakBlame:
    def test_real_pool_break_charges_no_job(self):
        # which in-flight job poisoned a genuinely broken pool is
        # unknowable — the future that surfaces BrokenProcessPool first
        # is arbitrary, so charging *it* an attempt could walk a healthy
        # job into quarantine while the real culprit retries for free
        from concurrent.futures.process import BrokenProcessPool

        from repro.engine.supervisor import CampaignSupervisor, _JobState

        supervisor = CampaignSupervisor(ProcessPoolRunner(workers=2))
        jobs = BatchPlanner().expand(_spec())
        first = _JobState(jobs[0], 0, False, False, False, spent=0)
        second = _JobState(jobs[1], 1, False, False, False, spent=0)

        class _BrokenFuture:
            def result(self):
                raise BrokenProcessPool("pool died")

        queue = deque()
        inflight = {object(): second}
        assert supervisor._collect(first, _BrokenFuture(), queue, inflight)
        assert first.attempts == 0 and second.attempts == 0
        assert list(queue) == [first, second]  # both requeued for free
        assert not inflight
        assert supervisor.retries == 0
        assert supervisor.pool_rebuilds == 1  # bounded by rebuilds instead


# -- heartbeat watchdog ------------------------------------------------------


class TestWatchdog:
    def test_stall_timeout_without_telemetry_rejected(self):
        # without shards to tail the watchdog would silently never arm;
        # the flag the operator asked for must not be inert
        with pytest.raises(ReproError, match="telemetry"):
            api.run_campaign(
                _spec(n_programs=1), workers=2, stall_timeout=1.0
            )

    def test_stall_timeout_zero_without_telemetry_is_fine(self):
        # an explicit 0 means "watchdog off" — nothing to reject
        report = api.run_campaign(
            _spec(n_programs=1), workers=1, stall_timeout=0.0
        )
        assert report.jobs

    def test_stall_watchdog_reclaims_wedged_worker(self, tmp_path):
        spec = _spec()
        clean = api.run_campaign(spec, workers=1)
        report = api.run_campaign(
            spec,
            workers=2,
            fault_plan="hang:at=1",  # no deadline: only the watchdog helps
            stall_timeout=1.5,
            max_attempts=2,
            telemetry=str(tmp_path / "telemetry"),
        )
        assert report.campaign_digest == clean.campaign_digest
        assert report.stalled_jobs == 1
        assert report.pool_rebuilds >= 1
        assert not report.quarantined_jobs
        stalled = [j for j in report.jobs if j.stalled]
        assert len(stalled) == 1 and stalled[0].ok


# -- graceful shutdown and crash resume --------------------------------------


REPRO = [sys.executable, "-m", "repro"]


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _write_spec(tmp_path, max_runs=20):
    spec_path = tmp_path / "spec.json"
    spec = _spec(max_runs=max_runs)
    spec_path.write_text(
        json.dumps(
            {
                "programs": spec.programs,
                "strategies": spec.strategies,
                "max_runs": spec.max_runs,
            }
        ),
        encoding="utf-8",
    )
    return str(spec_path)


def _wait_for_result_line(jobs_path, timeout=60.0):
    """Block until jobs.jsonl holds at least one finished-job line."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with open(jobs_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    if '"format"' in line:
                        return
        except OSError:
            pass
        time.sleep(0.05)
    raise AssertionError(f"no finished job appeared in {jobs_path}")


class TestGracefulShutdown:
    def test_interrupt_during_inprocess_dispatch_raises(self, monkeypatch):
        # regression: in the pooled path, an interrupt landing while a
        # job ran in the parent (worker-proc containment / downgraded
        # pool) returned its shutdown artifact without settling; once
        # the queue drained with nothing in flight the loop exited
        # before the interrupt check, so the campaign returned normally
        # (exit 0) with the remaining jobs silently dropped
        from repro.engine import supervisor as supervisor_mod

        def wedge_then_interrupt(job, *args, **kwargs):
            request_interrupt("SIGTERM")
            return JobResult(key=job.key, interrupted=True)

        monkeypatch.setattr(supervisor_mod, "run_job", wedge_then_interrupt)
        # worker-proc on every job forces the in-process dispatch path
        runner = ProcessPoolRunner(
            workers=2, fault_spec="worker-proc:every=1"
        )
        jobs = BatchPlanner().expand(_spec())
        assert len(jobs) > 1  # pooled path, with jobs left to drop
        clear_interrupt()
        try:
            with pytest.raises(SearchInterrupted):
                supervisor_mod.CampaignSupervisor(runner).run(jobs)
        finally:
            clear_interrupt()

    def test_interrupt_flag_stops_campaign_between_jobs(self, tmp_path):
        ckpt_dir = str(tmp_path / "ckpt")
        clear_interrupt()
        request_interrupt("SIGTERM")
        try:
            with pytest.raises(SearchInterrupted) as excinfo:
                api.run_campaign(_spec(), workers=1, checkpoint=ckpt_dir)
        finally:
            clear_interrupt()
        assert "SIGTERM" in str(excinfo.value)
        assert excinfo.value.checkpoint_dir == os.path.abspath(ckpt_dir)
        assert excinfo.value.resume_hint is not None
        assert "--checkpoint" in excinfo.value.resume_hint

    def test_trap_signals_maps_sigterm_to_flag(self):
        clear_interrupt()
        with trap_signals():
            os.kill(os.getpid(), signal.SIGTERM)
            deadline = time.monotonic() + 5.0
            while not interrupt_requested() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert interrupt_requested() == "SIGTERM"
        assert interrupt_requested() is None  # cleared on exit

    def test_sigterm_campaign_exits_3_and_resume_matches(self, tmp_path):
        spec_path = _write_spec(tmp_path)
        ckpt_dir = str(tmp_path / "ckpt")
        clean = api.run_campaign(CampaignSpec.load(spec_path), workers=1)
        # second job wedges on an injected hang with a long deadline, so
        # the campaign is alive when SIGTERM lands
        proc = subprocess.Popen(
            REPRO
            + [
                "campaign",
                spec_path,
                "--checkpoint",
                ckpt_dir,
                "--fault-plan",
                "hang:at=2",
                "--job-deadline",
                "60",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=_env(),
            text=True,
        )
        try:
            _wait_for_result_line(os.path.join(ckpt_dir, "jobs.jsonl"))
            time.sleep(0.4)  # let the hung job reach its wedge
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 3, (stdout, stderr)
        assert "interrupted" in stderr
        assert "resume with:" in stderr
        assert "--checkpoint" in stderr
        # resume (the hang was transient) completes with the clean digest
        resumed = api.run_campaign(
            CampaignSpec.load(spec_path), workers=1, checkpoint=ckpt_dir
        )
        assert resumed.campaign_digest == clean.campaign_digest
        assert resumed.resumed_jobs >= 1

    @pytest.mark.parametrize("workers", [1, 2])
    def test_parent_sigkill_resume_digest_identical(self, tmp_path, workers):
        spec_path = _write_spec(tmp_path)
        ckpt_dir = str(tmp_path / f"ckpt-{workers}")
        clean = api.run_campaign(CampaignSpec.load(spec_path), workers=1)
        proc = subprocess.Popen(
            REPRO
            + [
                "campaign",
                spec_path,
                "--checkpoint",
                ckpt_dir,
                "--workers",
                str(workers),
                "--fault-plan",
                "hang:at=2",
                "--job-deadline",
                "60",
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=_env(),
        )
        try:
            _wait_for_result_line(os.path.join(ckpt_dir, "jobs.jsonl"))
            proc.send_signal(signal.SIGKILL)  # no cleanup of any kind
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # resume without the fault: remaining jobs run, finished jobs are
        # skipped, and the digest matches an uninterrupted campaign
        resumed = api.run_campaign(
            CampaignSpec.load(spec_path),
            workers=workers,
            checkpoint=ckpt_dir,
            max_attempts=2,
        )
        assert resumed.campaign_digest == clean.campaign_digest
        # no double counting: at most one result line per key, and no
        # job burned more attempts than the budget allows
        keys = {}
        attempts = {}
        with open(os.path.join(ckpt_dir, "jobs.jsonl"), encoding="utf-8") as f:
            for line in f:
                payload = json.loads(line)
                if "attempt_of" in payload:
                    key = payload["attempt_of"]
                    attempts[key] = attempts.get(key, 0) + 1
                else:
                    keys[payload["key"]] = keys.get(payload["key"], 0) + 1
        assert all(count == 1 for count in keys.values()), keys
        assert all(count <= 2 for count in attempts.values()), attempts

    def test_resume_continues_attempt_count(self, tmp_path):
        # a killed run left one spent attempt in the ledger; the resumed
        # run starts at attempt 2 and must NOT re-fire attempt 1
        spec = _spec()
        jobs = BatchPlanner().expand(spec)
        ckpt_dir = str(tmp_path / "ckpt")
        CampaignCheckpoint(ckpt_dir).record_attempt(
            jobs[0].key, 1, "deadline", error="deadline exceeded after 2 runs"
        )
        report = api.run_campaign(
            spec, workers=1, checkpoint=ckpt_dir, max_attempts=2
        )
        done = {j.key: j for j in report.jobs}
        assert done[jobs[0].key].ok
        assert done[jobs[0].key].attempts == 2  # continued, not restarted
        assert CampaignCheckpoint(ckpt_dir).attempts(jobs[0].key) == 1


# -- `repro run` interrupt mapping (satellite) -------------------------------


class TestRunInterrupt:
    def test_sigterm_run_exits_3_with_resume_hint(self, tmp_path):
        program = tmp_path / "slow.c"
        # path space far beyond what fits in the signal-delivery window
        program.write_text(
            "int main(int a, int b) {\n"
            "  int i; int acc; acc = 0;\n"
            "  for (i = 0; i < 500; i = i + 1) {\n"
            "    if (a == i) { acc = acc + 1; }\n"
            "    if (b == i * 2) { acc = acc + 2; }\n"
            "  }\n"
            "  return acc;\n"
            "}\n",
            encoding="utf-8",
        )
        ckpt_dir = str(tmp_path / "ckpt")
        proc = subprocess.Popen(
            REPRO
            + [
                "run",
                str(program),
                "--max-runs",
                "100000",
                "--checkpoint",
                ckpt_dir,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=_env(),
            text=True,
        )
        # give the search a moment to start, then interrupt it
        try:
            time.sleep(2.0)
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 3, (stdout, stderr)
        assert "interrupted" in stderr
        assert "resume with:" in stderr

    def test_run_job_deadline_flag_exits_3(self, tmp_path):
        program = tmp_path / "wide.c"
        program.write_text(
            "int main(int a, int b, int c, int d, int e) {\n"
            "  int acc; acc = 0;\n"
            "  if (a > 0) { acc = acc + 1; }\n"
            "  if (b > a) { acc = acc + 1; }\n"
            "  if (c > b) { acc = acc + 1; }\n"
            "  if (d > c) { acc = acc + 1; }\n"
            "  if (e > d) { acc = acc + 1; }\n"
            "  return acc;\n"
            "}\n",
            encoding="utf-8",
        )
        proc = subprocess.run(
            REPRO
            + [
                "run",
                str(program),
                "--max-runs",
                "100000",
                "--job-deadline",
                "1.0",
            ],
            capture_output=True,
            env=_env(),
            text=True,
            timeout=120,
        )
        # either the deadline fired (exit 3) or the tiny search finished
        # first (exit 0); on this wide program the deadline should win,
        # but never crash
        assert proc.returncode in (0, 3), (proc.stdout, proc.stderr)

    def test_interrupt_flag_raises_inside_generate_tests(self):
        clear_interrupt()
        request_interrupt("SIGINT")
        try:
            with pytest.raises(SearchInterrupted):
                api.generate_tests(
                    "int main(int x) { if (x > 0) { return 1; } return 0; }",
                )
        finally:
            clear_interrupt()


# -- corrupt disk-cache removal (satellite) ----------------------------------


class TestCorruptCacheRemoval:
    def test_corrupt_entry_deleted_on_first_detection(self, tmp_path):
        from repro.solver.cache import CachedResult
        from repro.solver.diskcache import DiskCache

        cache = DiskCache(str(tmp_path))
        key = ("check", ("var", 0))
        cache.store(key, CachedResult(sat=False, iterations=1))
        path = cache.path_for(key)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json at all")
        fresh = DiskCache(str(tmp_path))
        assert fresh.lookup(key) is None
        assert fresh.skipped == 1
        assert fresh.corrupt_removed == 1
        assert not os.path.exists(path)  # one failed parse, ever
        # the second lookup is a clean miss, not another corrupt skip
        assert fresh.lookup(key) is None
        assert fresh.skipped == 1
        assert fresh.corrupt_removed == 1


# -- CLI flags ---------------------------------------------------------------


class TestCliSurface:
    def test_campaign_parser_accepts_supervision_flags(self):
        from repro.cli.main import build_parser

        args = build_parser().parse_args(
            [
                "campaign",
                "paper",
                "--job-deadline",
                "10",
                "--max-attempts",
                "3",
                "--stall-timeout",
                "5",
            ]
        )
        assert args.job_deadline == 10.0
        assert args.max_attempts == 3
        assert args.stall_timeout == 5.0

    def test_run_parser_accepts_job_deadline(self):
        from repro.cli.main import build_parser

        args = build_parser().parse_args(
            ["run", "prog.c", "--job-deadline", "2.5"]
        )
        assert args.job_deadline == 2.5
