"""Unit tests for the MiniC tokenizer and parser."""

import pytest

from repro.errors import ParseError
from repro.lang import (
    ArrayAssign,
    ArrayDecl,
    ArrayRef,
    Assign,
    AssertStmt,
    Binary,
    Call,
    ErrorStmt,
    If,
    IntLit,
    Return,
    Unary,
    VarDecl,
    VarRef,
    While,
    parse_expression,
    parse_program,
    tokenize,
)


class TestTokenizer:
    def test_simple_tokens(self):
        toks = tokenize("int x = 5;")
        kinds = [(t.kind, t.text) for t in toks]
        assert kinds == [
            ("keyword", "int"),
            ("ident", "x"),
            ("op", "="),
            ("int_lit", "5"),
            ("op", ";"),
            ("eof", ""),
        ]

    def test_two_char_operators(self):
        toks = tokenize("== != <= >= && ||")
        assert [t.text for t in toks[:-1]] == ["==", "!=", "<=", ">=", "&&", "||"]

    def test_line_comment_skipped(self):
        toks = tokenize("x // comment\ny")
        assert [t.text for t in toks[:-1]] == ["x", "y"]

    def test_block_comment_skipped(self):
        toks = tokenize("x /* multi\nline */ y")
        assert [t.text for t in toks[:-1]] == ["x", "y"]

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError):
            tokenize("/* never closed")

    def test_string_literal(self):
        toks = tokenize('error("boom")')
        assert toks[2].kind == "string" and toks[2].text == "boom"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('"no close')

    def test_line_numbers_tracked(self):
        toks = tokenize("a\nb\n  c")
        assert [t.line for t in toks[:-1]] == [1, 2, 3]
        assert toks[2].column == 3

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("a $ b")

    def test_keywords_recognized(self):
        toks = tokenize("if else while return error assert int")
        assert all(t.kind == "keyword" for t in toks[:-1])


class TestExpressionParsing:
    def test_precedence_mul_over_add(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, Binary) and e.op == "+"
        assert isinstance(e.right, Binary) and e.right.op == "*"
        e2 = parse_expression("2 * 3 + 1")
        assert e2.op == "+"

    def test_parens_override(self):
        e = parse_expression("(1 + 2) * 3")
        assert isinstance(e, Binary) and e.op == "*"

    def test_comparison_binds_looser_than_add(self):
        e = parse_expression("a + 1 < b")
        assert e.op == "<"
        assert isinstance(e.left, Binary) and e.left.op == "+"

    def test_logical_precedence(self):
        e = parse_expression("a == 1 && b == 2 || c == 3")
        assert e.op == "||"
        assert e.left.op == "&&"

    def test_unary_minus(self):
        e = parse_expression("-x + 1")
        assert e.op == "+"
        assert isinstance(e.left, Unary) and e.left.op == "-"

    def test_unary_not(self):
        e = parse_expression("!(a && b)")
        assert isinstance(e, Unary) and e.op == "!"

    def test_call_with_args(self):
        e = parse_expression("hash(x, y + 1)")
        assert isinstance(e, Call) and e.name == "hash" and len(e.args) == 2

    def test_call_no_args(self):
        e = parse_expression("rand()")
        assert isinstance(e, Call) and e.args == ()

    def test_array_read(self):
        e = parse_expression("a[i + 1]")
        assert isinstance(e, ArrayRef) and e.name == "a"

    def test_junk_after_expression_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a b")


def _body(src_stmts):
    prog = parse_program("int main(int x) { " + src_stmts + " }")
    return prog.function("main").body.stmts


class TestStatementParsing:
    def test_var_decl(self):
        (s,) = _body("int y = x + 1;")
        assert isinstance(s, VarDecl) and s.name == "y"

    def test_var_decl_no_init(self):
        (s,) = _body("int y;")
        assert isinstance(s, VarDecl) and s.init is None

    def test_array_decl(self):
        (s,) = _body("int a[10];")
        assert isinstance(s, ArrayDecl) and s.size == 10

    def test_assignment(self):
        (s,) = _body("x = 3;")
        assert isinstance(s, Assign)

    def test_assignment_to_array(self):
        (s,) = _body("int a[4]; a[x] = 1;")[1:]
        assert isinstance(s, ArrayAssign)

    def test_if_else(self):
        (s,) = _body("if (x > 0) { x = 1; } else { x = 2; }")
        assert isinstance(s, If) and s.else_body is not None

    def test_else_if_chain(self):
        (s,) = _body(
            "if (x > 0) { x = 1; } else if (x < 0) { x = 2; } else { x = 3; }"
        )
        assert isinstance(s, If)
        nested = s.else_body.stmts[0]
        assert isinstance(nested, If) and nested.else_body is not None

    def test_while(self):
        (s,) = _body("while (x > 0) { x = x - 1; }")
        assert isinstance(s, While)

    def test_return_void(self):
        (s,) = _body("return;")
        assert isinstance(s, Return) and s.expr is None

    def test_error_statement(self):
        (s,) = _body('error("boom");')
        assert isinstance(s, ErrorStmt) and s.message == "boom"

    def test_error_statement_default_message(self):
        (s,) = _body("error();")
        assert isinstance(s, ErrorStmt) and s.message == "error"

    def test_assert_statement(self):
        (s,) = _body("assert(x > 0);")
        assert isinstance(s, AssertStmt)

    def test_expression_statement_call(self):
        (s,) = _body("log(x);")
        assert s.expr.name == "log"


class TestProgramStructure:
    def test_branch_ids_unique_and_counted(self):
        prog = parse_program(
            """
            int f(int x) {
                if (x > 0) { x = 1; }
                while (x < 10) { x = x + 1; }
                assert(x == 10);
                return x;
            }
            int g(int y) {
                if (y == 0) { return 1; }
                return 0;
            }
            """
        )
        ids = [bid for bid, _line in prog.branch_sites()]
        assert len(ids) == len(set(ids)) == 4
        assert prog.num_branches == 4

    def test_duplicate_function_rejected(self):
        with pytest.raises(ParseError):
            parse_program("int f(int x) { return 0; } int f(int y) { return 1; }")

    def test_missing_function_lookup(self):
        prog = parse_program("int f(int x) { return 0; }")
        with pytest.raises(KeyError):
            prog.function("nope")

    def test_params_parsed(self):
        prog = parse_program("int f(int a, int b, int c) { return a; }")
        assert prog.function("f").params == ("a", "b", "c")

    def test_no_params(self):
        prog = parse_program("int f() { return 7; }")
        assert prog.function("f").params == ()

    def test_parse_error_has_location(self):
        with pytest.raises(ParseError) as exc:
            parse_program("int f(int x) { if x } ")
        assert "line" in str(exc.value)
