"""Tests for the campaign service (repro.service) and the Client API.

The load-bearing acceptance criterion: two concurrent campaigns
sharing one ``repro serve`` fleet must complete with campaign digests
byte-identical to standalone runs — including after SIGKILLing the
server mid-campaign and restarting it (no attempt double-spend, no
duplicated result lines).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import api
from repro.engine.planner import BatchPlanner, CampaignSpec
from repro.engine.runner import JobResult
from repro.errors import ReproError, SearchInterrupted
from repro.service import (
    CampaignService,
    ServiceClient,
    ServiceScheduler,
    ServiceState,
    is_service_dir,
)
from repro.service.state import submission_ticket


def _spec(max_runs=20, n_programs=2, prefix=""):
    """A small campaign of self-contained programs (no natives).

    ``prefix`` renames the programs; job keys embed the program name, so
    distinct prefixes give campaigns non-overlapping key spaces.
    """
    programs = [
        {
            "name": "p1",
            "source": (
                "int main(int x) { if (x == 7) { error(\"boom\"); } "
                "return 0; }"
            ),
            "natives": "none",
        },
        {
            "name": "p2",
            "source": "int main(int y) { if (y > 3) { return 1; } return 0; }",
            "natives": "none",
        },
        {
            "name": "p3",
            "source": (
                "int main(int z) { int i; int acc; acc = 0; "
                "for (i = 0; i < 8; i = i + 1) { "
                "if (z == i * 3) { acc = acc + 1; } } return acc; }"
            ),
            "natives": "none",
        },
    ][:n_programs]
    if prefix:
        programs = [dict(p, name=prefix + p["name"]) for p in programs]
    return CampaignSpec(
        programs=programs,
        strategies=["higher_order"],
        max_runs=max_runs,
    )


def _serve_until_idle(state_dir, **kwargs):
    kwargs.setdefault("workers", 1)
    service = CampaignService(state_dir, idle_exit=True, **kwargs)
    return service.serve()


# -- durable state -----------------------------------------------------------


class TestServiceState:
    def test_submit_is_content_addressed_and_dedups(self, tmp_path):
        state = ServiceState(str(tmp_path / "state"))
        payload = _spec().as_payload()
        rec1, created1 = state.submit(payload, priority=1, tenant="a")
        rec2, created2 = state.submit(payload, priority=9, tenant="a")
        assert created1 and not created2
        # priority is excluded from the ticket: same work, same campaign
        assert rec1.ticket == rec2.ticket
        assert rec2.priority == 1  # the original record wins
        other, created3 = state.submit(payload, tenant="b")
        assert created3 and other.ticket != rec1.ticket

    def test_records_survive_reload_in_seq_order(self, tmp_path):
        state = ServiceState(str(tmp_path / "state"))
        state.submit(_spec(max_runs=10).as_payload())
        state.submit(_spec(max_runs=20).as_payload())
        reloaded = ServiceState(str(tmp_path / "state"))
        records = reloaded.records()
        assert [r.seq for r in records] == [1, 2]
        assert all(r.status == "queued" for r in records)

    def test_resolve_prefix(self, tmp_path):
        state = ServiceState(str(tmp_path / "state"))
        record, _ = state.submit(_spec().as_payload())
        assert state.resolve(record.ticket[:8]) == record.ticket
        with pytest.raises(ReproError):
            state.resolve("ffff")

    def test_cancel_marker(self, tmp_path):
        state = ServiceState(str(tmp_path / "state"))
        record, _ = state.submit(_spec().as_payload())
        assert not state.cancel_requested(record.ticket)
        assert state.request_cancel(record.ticket)
        assert state.cancel_requested(record.ticket)
        assert not state.request_cancel("no-such-ticket")

    def test_is_service_dir(self, tmp_path):
        assert not is_service_dir(str(tmp_path))
        ServiceState(str(tmp_path / "state"))
        assert is_service_dir(str(tmp_path / "state"))

    def test_ticket_ignores_priority_but_not_options(self):
        payload = _spec().as_payload()
        base = submission_ticket(payload, {}, "t")
        assert submission_ticket(payload, {}, "t") == base
        assert submission_ticket(payload, {"jobs": 2}, "t") != base
        assert submission_ticket(payload, {}, "u") != base


# -- the lease policy --------------------------------------------------------


def _scheduler(tmp_path, **kwargs):
    state = ServiceState(str(tmp_path / "state"))
    return state, ServiceScheduler(state, idle_exit=True, **kwargs)


class TestSchedulerPolicy:
    def test_priority_wins_the_next_lease(self, tmp_path):
        state, sched = _scheduler(tmp_path)
        low, _ = state.submit(_spec(max_runs=10).as_payload(), priority=0)
        high, _ = state.submit(_spec(max_runs=20).as_payload(), priority=5)
        lease = sched.lease()
        assert lease is not None
        assert sched._leased_keys[lease.job.key] == high.ticket

    def test_fair_share_alternates_tenants(self, tmp_path):
        state, sched = _scheduler(tmp_path)
        a, _ = state.submit(_spec(prefix="a_").as_payload(), tenant="a")
        b, _ = state.submit(_spec(prefix="b_").as_payload(), tenant="b")
        owners = []
        for _i in range(4):
            lease = sched.lease()
            assert lease is not None
            owners.append(sched._leased_keys[lease.job.key])
        # seq breaks the first tie; after that the tenant with fewer
        # in-flight leases wins, so leases alternate a, b, a, b
        assert owners == [a.ticket, b.ticket, a.ticket, b.ticket]

    def test_quota_throttles_tenant(self, tmp_path):
        state, sched = _scheduler(tmp_path, default_quota=1)
        a, _ = state.submit(_spec(prefix="a_").as_payload(), tenant="a")
        b, _ = state.submit(_spec(prefix="b_").as_payload(), tenant="b")
        first = sched.lease()
        second = sched.lease()
        assert {
            sched._leased_keys[first.job.key],
            sched._leased_keys[second.job.key],
        } == {a.ticket, b.ticket}
        # both tenants are at quota 1: nothing more to lease, yet
        # the queue is still outstanding
        assert sched.lease() is None
        assert sched.outstanding()

    def test_same_key_never_leased_twice_concurrently(self, tmp_path):
        state, sched = _scheduler(tmp_path)
        payload = _spec(max_runs=10, n_programs=1).as_payload()
        a, _ = state.submit(payload, tenant="a")
        b, _ = state.submit(payload, tenant="b")
        first = sched.lease()
        assert sched._leased_keys[first.job.key] == a.ticket
        # b's only job has the same key; it must wait for a's lease
        assert sched.lease() is None
        sched.completed(JobResult(key=first.job.key, ok=True))
        second = sched.lease()
        assert second.job.key == first.job.key
        assert sched._leased_keys[second.job.key] == b.ticket

    def test_released_job_is_leasable_again(self, tmp_path):
        state, sched = _scheduler(tmp_path)
        state.submit(_spec(max_runs=10, n_programs=1).as_payload())
        lease = sched.lease()
        assert sched.lease() is None
        sched.released(lease.job)
        again = sched.lease()
        assert again is not None and again.job.key == lease.job.key

    def test_unplannable_submission_fails_without_crashing(self, tmp_path):
        state, sched = _scheduler(tmp_path)
        state.submit({"programs": [{"name": "bad", "source": "int ("}]})
        good, _ = state.submit(_spec(max_runs=10).as_payload())
        lease = sched.lease()
        assert sched._leased_keys[lease.job.key] == good.ticket
        bad = [r for r in state.records() if r.ticket != good.ticket][0]
        assert bad.status == "failed"
        assert bad.error


# -- end to end: shared fleet, byte-identical digests ------------------------


class TestServiceEndToEnd:
    def test_two_campaigns_one_fleet_digest_identical(self, tmp_path):
        spec_a = _spec(max_runs=10)
        spec_b = _spec(max_runs=25, n_programs=3, prefix="b_")
        baseline_a = api.Client().submit(spec_a).wait()
        baseline_b = api.Client().submit(spec_b).wait()
        client = ServiceClient(str(tmp_path / "state"))
        ha = client.submit(spec_a, priority=1, tenant="alice")
        hb = client.submit(spec_b, priority=0, tenant="bob")
        settled = _serve_until_idle(str(tmp_path / "state"), workers=2)
        assert settled == len(baseline_a.jobs) + len(baseline_b.jobs)
        assert ha.result().campaign_digest == baseline_a.campaign_digest
        assert hb.result().campaign_digest == baseline_b.campaign_digest
        assert ha.status() == hb.status() == "done"

    def test_results_survive_server_exit_and_restart(self, tmp_path):
        client = ServiceClient(str(tmp_path / "state"))
        handle = client.submit(_spec(max_runs=10))
        _serve_until_idle(str(tmp_path / "state"))
        digest = handle.result().campaign_digest
        # a fresh server over the same state dir has nothing to do and
        # the finished campaign stays fetchable
        assert _serve_until_idle(str(tmp_path / "state")) == 0
        fresh = ServiceClient(str(tmp_path / "state"))
        assert fresh.handle(handle.ticket[:10]).result().campaign_digest == digest

    def test_cancel_before_serve_finalizes_cancelled(self, tmp_path):
        client = ServiceClient(str(tmp_path / "state"))
        handle = client.submit(_spec(max_runs=10))
        assert handle.cancel()
        _serve_until_idle(str(tmp_path / "state"))
        assert handle.status() == "cancelled"
        with pytest.raises(SearchInterrupted):
            handle.wait(timeout=5)

    def test_stream_events_after_the_fact(self, tmp_path):
        client = ServiceClient(str(tmp_path / "state"))
        handle = client.submit(_spec(max_runs=10))
        _serve_until_idle(str(tmp_path / "state"))
        kinds = {e.get("kind") for e in handle.stream_events(timeout=10)}
        assert "job_finished" in kinds
        assert all("job" in e for e in handle.stream_events(timeout=5))

    def test_service_fault_site_interrupts_then_recovers(self, tmp_path):
        spec = _spec(max_runs=10)
        baseline = api.Client().submit(spec).wait()
        client = ServiceClient(str(tmp_path / "state"))
        handle = client.submit(spec)
        # the service site kills the server mid-lease: after the grant,
        # before dispatch — the lease is not durable, so a restarted
        # server re-leases the job
        with pytest.raises(SearchInterrupted):
            _serve_until_idle(str(tmp_path / "state"), fault_plan="service:at=2")
        assert handle.status() == "running"  # durable record, not lost
        _serve_until_idle(str(tmp_path / "state"))
        assert handle.result().campaign_digest == baseline.campaign_digest


# -- the Client / CampaignHandle object model --------------------------------


class TestClientApi:
    def test_local_submit_wait_result_contract(self, tmp_path):
        client = api.Client(workers=1)
        handle = client.submit(_spec(max_runs=10))
        assert isinstance(handle, api.CampaignHandle)
        assert len(handle.ticket) == 64
        report = handle.wait(timeout=120)
        assert handle.done() and handle.status() == "done"
        assert handle.result().campaign_digest == report.campaign_digest

    def test_local_ticket_matches_service_ticket(self, tmp_path):
        # content-addressing is backend-independent: the same submission
        # gets the same ticket locally and against a state dir
        spec = _spec(max_runs=10)
        local = api.Client().submit(spec)
        local.wait(timeout=120)
        remote = ServiceClient(str(tmp_path / "state")).submit(spec)
        assert local.ticket == remote.ticket

    def test_local_result_before_done_raises(self):
        client = api.Client(workers=1)
        handle = client.submit(_spec(max_runs=25, n_programs=3))
        try:
            with pytest.raises(ReproError):
                # the campaign just started on its thread; a result this
                # early means wait() semantics leaked into result()
                handle.result()
        finally:
            handle.wait(timeout=120)

    def test_local_invalid_spec_raises_synchronously(self):
        with pytest.raises(ReproError):
            api.Client().submit({"programs": [{"name": "bad", "source": "int ("}]})

    def test_local_stall_timeout_requires_telemetry(self):
        with pytest.raises(ReproError, match="telemetry"):
            api.Client(stall_timeout=5.0).submit(_spec(max_runs=10))

    def test_service_mode_rejects_local_only_options(self, tmp_path):
        client = api.Client(state_dir=str(tmp_path / "state"))
        with pytest.raises(ReproError, match="local-only"):
            client.submit(_spec(), checkpoint=str(tmp_path / "ckpt"))
        with pytest.raises(ReproError, match="local-only"):
            client.submit(_spec(), progress=lambda r: None)

    def test_local_handle_rejects_reattach(self):
        with pytest.raises(ReproError):
            api.Client().handle("f" * 64)

    def test_run_campaign_is_deprecated_thin_wrapper(self):
        import warnings

        api._DEPRECATED_ONCE.discard("run_campaign")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = api.run_campaign(_spec(max_runs=10))
            api.run_campaign(_spec(max_runs=10))
        assert (
            sum(
                issubclass(w.category, DeprecationWarning)
                and "run_campaign" in str(w.message)
                for w in caught
            )
            == 1  # one-shot per process
        )
        direct = api.Client().submit(_spec(max_runs=10)).wait()
        assert legacy.campaign_digest == direct.campaign_digest

    def test_client_checkpoint_resume_skips_finished_jobs(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        first = api.Client().submit(_spec(max_runs=10), checkpoint=ckpt).wait()
        second = api.Client().submit(_spec(max_runs=10), checkpoint=ckpt).wait()
        assert second.resumed_jobs == len(first.jobs)
        assert second.campaign_digest == first.campaign_digest


# -- kill the server, restart, digests must not budge ------------------------


REPRO = [sys.executable, "-m", "repro"]


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _write_spec(tmp_path, name, **kwargs):
    spec = _spec(**kwargs)
    path = tmp_path / name
    path.write_text(
        json.dumps(
            {
                "programs": spec.programs,
                "strategies": spec.strategies,
                "max_runs": spec.max_runs,
            }
        ),
        encoding="utf-8",
    )
    return str(path)


def _wait_for_result_line(jobs_path, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with open(jobs_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    if '"format"' in line:
                        return
        except OSError:
            pass
        time.sleep(0.05)
    raise AssertionError(f"no finished job appeared in {jobs_path}")


class TestServeKillRecovery:
    def test_sigkill_mid_campaign_restart_completes_both(self, tmp_path):
        spec_a = _write_spec(tmp_path, "a.json", max_runs=20, n_programs=3)
        spec_b = _write_spec(
            tmp_path, "b.json", max_runs=35, n_programs=2, prefix="b_"
        )
        clean_a = api.Client().submit(spec_a).wait()
        clean_b = api.Client().submit(spec_b).wait()
        state_dir = str(tmp_path / "state")
        tickets = []
        for spec_path, priority in ((spec_a, 1), (spec_b, 0)):
            out = subprocess.run(
                REPRO
                + [
                    "submit",
                    "--state-dir",
                    state_dir,
                    spec_path,
                    "--priority",
                    str(priority),
                ],
                capture_output=True,
                text=True,
                env=_env(),
                timeout=60,
            )
            assert out.returncode == 0, out.stderr
            tickets.append(out.stdout.split("ticket", 1)[1].split()[0])
        state = ServiceState(state_dir)
        proc = subprocess.Popen(
            REPRO
            + ["serve", "--state-dir", state_dir, "--workers", "1", "--quiet"],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=_env(),
        )
        try:
            # spec_a has priority 1, so the server starts there; kill it
            # as soon as one job has landed in a's checkpoint
            _wait_for_result_line(
                os.path.join(state.campaign_dir(tickets[0]), "jobs.jsonl")
            )
            proc.send_signal(signal.SIGKILL)  # no cleanup of any kind
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # restart over the same state dir: in-flight campaigns resume
        # from their attempt ledgers, queued ones get served
        restarted = subprocess.run(
            REPRO
            + [
                "serve",
                "--state-dir",
                state_dir,
                "--workers",
                "1",
                "--idle-exit",
                "--quiet",
            ],
            capture_output=True,
            text=True,
            env=_env(),
            timeout=300,
        )
        assert restarted.returncode == 0, restarted.stderr
        client = ServiceClient(state_dir)
        result_a = client.handle(tickets[0]).result()
        result_b = client.handle(tickets[1]).result()
        assert result_a.campaign_digest == clean_a.campaign_digest
        assert result_b.campaign_digest == clean_b.campaign_digest
        # no double-spend: at most one result line per key, and no job
        # burned more attempts than the default budget allows
        for ticket in tickets:
            keys = {}
            attempts = {}
            jobs_path = os.path.join(state.campaign_dir(ticket), "jobs.jsonl")
            with open(jobs_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    payload = json.loads(line)
                    if "attempt_of" in payload:
                        key = payload["attempt_of"]
                        attempts[key] = attempts.get(key, 0) + 1
                    else:
                        keys[payload["key"]] = keys.get(payload["key"], 0) + 1
            assert all(count == 1 for count in keys.values()), keys
            assert all(count <= 2 for count in attempts.values()), attempts


# -- CLI surface -------------------------------------------------------------


class TestServeCliSurface:
    def test_serve_help_flags(self, capsys):
        from repro.cli.main import main

        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        helptext = capsys.readouterr().out
        for flag in (
            "--state-dir",
            "--workers",
            "--idle-exit",
            "--tenant-quota",
            "--cache-dir",
            "--job-deadline",
            "--max-attempts",
            "--stall-timeout",
            "--fault-plan",
        ):
            assert flag in helptext, f"serve --help lost {flag}"

    def test_submit_serve_status_results_cancel_roundtrip(
        self, tmp_path, capsys
    ):
        from repro.cli.main import main

        spec_path = _write_spec(tmp_path, "spec.json", max_runs=10)
        state_dir = str(tmp_path / "state")
        assert main(["submit", "--state-dir", state_dir, spec_path]) == 0
        ticket = capsys.readouterr().out.split("ticket", 1)[1].split()[0]
        assert main(["status", "--state-dir", state_dir]) == 0
        assert "queued" in capsys.readouterr().out
        assert (
            main(
                [
                    "serve",
                    "--state-dir",
                    state_dir,
                    "--idle-exit",
                    "--quiet",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["results", "--state-dir", state_dir, ticket[:12]]) == 0
        out = capsys.readouterr().out
        assert "campaign digest:" in out
        assert main(["cancel", "--state-dir", state_dir, ticket[:12]]) == 0
        assert "already terminal" in capsys.readouterr().out

    def test_stats_renders_service_view(self, tmp_path, capsys):
        from repro.cli.main import main

        state_dir = str(tmp_path / "state")
        ServiceClient(state_dir).submit(_spec(max_runs=10), tenant="ci")
        _serve_until_idle(state_dir)
        assert main(["stats", state_dir]) == 0
        out = capsys.readouterr().out
        assert "[service]" in out
        assert "tenant" in out and "ci" in out
