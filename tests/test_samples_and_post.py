"""Tests for the IOF sample store and POST(pc) construction."""

import pytest

from repro.core import (
    SampleStore,
    alternate_constraint,
    build_post,
    negatable_indices,
)
from repro.errors import ReproError
from repro.solver import TermManager
from repro.solver.validity import Sample
from repro.symbolic.concolic import PathCondition


@pytest.fixture()
def tm():
    return TermManager()


@pytest.fixture()
def h(tm):
    return tm.mk_function("h", 1)


class TestSampleStore:
    def test_add_and_lookup(self, tm, h):
        store = SampleStore()
        assert store.add(Sample(h, (42,), 567))
        assert store.has(h, (42,))
        assert store.value(h, (42,)) == 567
        assert len(store) == 1

    def test_duplicate_is_noop(self, tm, h):
        store = SampleStore()
        store.add(Sample(h, (42,), 567))
        assert not store.add(Sample(h, (42,), 567))
        assert len(store) == 1

    def test_nondeterminism_rejected(self, tm, h):
        store = SampleStore()
        store.add(Sample(h, (42,), 567))
        with pytest.raises(ReproError):
            store.add(Sample(h, (42,), 568))

    def test_add_all_counts_new(self, tm, h):
        store = SampleStore()
        count = store.add_all(
            [Sample(h, (1,), 10), Sample(h, (2,), 20), Sample(h, (1,), 10)]
        )
        assert count == 2

    def test_preimages(self, tm, h):
        store = SampleStore()
        store.add(Sample(h, (13,), 52))
        store.add(Sample(h, (99,), 52))
        store.add(Sample(h, (7,), 1))
        assert sorted(store.preimages(h, 52)) == [(13,), (99,)]
        assert store.preimages(h, 1000) == []

    def test_for_function_filters(self, tm, h):
        g = tm.mk_function("g", 2)
        store = SampleStore()
        store.add(Sample(h, (1,), 10))
        store.add(Sample(g, (1, 2), 3))
        assert len(store.for_function(h)) == 1
        assert len(store.for_function(g)) == 1

    def test_persistence_roundtrip(self, tmp_path, tm, h):
        store = SampleStore()
        store.add(Sample(h, (42,), 567))
        g = tm.mk_function("g", 2)
        store.add(Sample(g, (1, 2), 3))
        path = str(tmp_path / "samples.json")
        store.save(path)

        tm2 = TermManager()
        loaded = SampleStore.load(path, tm2)
        assert len(loaded) == 2
        h2 = tm2.mk_function("h", 1)
        assert loaded.value(h2, (42,)) == 567

    def test_str_preview(self, tm, h):
        store = SampleStore()
        for i in range(12):
            store.add(Sample(h, (i,), i * 2))
        text = str(store)
        assert "12 total" in text


class TestNegatableIndices:
    def test_pins_excluded(self, tm):
        x = tm.mk_var("x")
        pcs = [
            PathCondition(term=tm.mk_eq(x, tm.mk_int(1)), is_concretization=True),
            PathCondition(term=tm.mk_gt(x, tm.mk_int(0))),
            PathCondition(term=tm.mk_lt(x, tm.mk_int(9))),
        ]
        assert negatable_indices(pcs) == [1, 2]

    def test_empty(self):
        assert negatable_indices([]) == []


class TestAlternateConstraint:
    def test_prefix_and_negation(self, tm):
        x = tm.mk_var("x")
        pcs = [
            PathCondition(term=tm.mk_gt(x, tm.mk_int(0))),
            PathCondition(term=tm.mk_lt(x, tm.mk_int(9))),
        ]
        alt = alternate_constraint(tm, pcs, 1)
        expected = tm.mk_and(
            tm.mk_gt(x, tm.mk_int(0)), tm.mk_not(tm.mk_lt(x, tm.mk_int(9)))
        )
        assert alt is expected

    def test_first_condition(self, tm):
        x = tm.mk_var("x")
        pcs = [PathCondition(term=tm.mk_gt(x, tm.mk_int(0)))]
        alt = alternate_constraint(tm, pcs, 0)
        assert alt is tm.mk_not(tm.mk_gt(x, tm.mk_int(0)))

    def test_pin_kept_in_prefix(self, tm):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        pin = PathCondition(
            term=tm.mk_eq(y, tm.mk_int(42)), is_concretization=True
        )
        cond = PathCondition(term=tm.mk_gt(x, tm.mk_int(0)))
        alt = alternate_constraint(tm, [pin, cond], 1)
        assert "(= y 42)" in str(alt)

    def test_cannot_negate_pin(self, tm):
        y = tm.mk_var("y")
        pin = PathCondition(
            term=tm.mk_eq(y, tm.mk_int(42)), is_concretization=True
        )
        with pytest.raises(ValueError):
            alternate_constraint(tm, [pin], 0)


class TestPostFormula:
    def test_render_with_antecedent(self, tm, h):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        pcs = [
            PathCondition(term=tm.mk_not(tm.mk_eq(x, tm.mk_app(h, [y]))))
        ]
        post = build_post(tm, pcs, 0, [x, y], [Sample(h, (42,), 567)])
        text = post.render()
        assert text.startswith("∃x, y :")
        assert "h(42)=567" in text
        assert "⇒" in text

    def test_render_without_antecedent(self, tm):
        x = tm.mk_var("x")
        pcs = [PathCondition(term=tm.mk_gt(x, tm.mk_int(0)))]
        post = build_post(tm, pcs, 0, [x], [])
        assert "⇒" not in post.render()
