"""Tests for the protocol/auth and staged-calculator applications."""

import pytest

from repro.apps import (
    build_auth_app,
    build_calculator_app,
    build_protocol_app,
    codes_to_word,
)
from repro.apps.hashes import crc32, toy_block_cipher
from repro.apps.protocol_app import AUTH_SECRET_KEY
from repro.baselines import RandomFuzzer
from repro.lang import Interpreter
from repro.search import DirectedSearch, SearchConfig
from repro.symbolic import ConcretizationMode


class TestProtocolAppConcrete:
    def test_malformed_packet_rejected(self):
        app = build_protocol_app()
        interp = Interpreter(app.program, app.fresh_natives())
        result = interp.run(app.entry, app.initial_inputs(kind=1, checksum=123456))
        assert result.returned == -1

    def test_valid_ping_accepted(self):
        app = build_protocol_app()
        natives = app.fresh_natives()
        crc = natives.lookup("crc")
        interp = Interpreter(app.program, natives)
        checksum = crc(1, 0, 0)
        result = interp.run(
            app.entry, app.initial_inputs(kind=1, checksum=checksum)
        )
        assert result.returned == 1

    def test_write_bug_reachable_with_valid_checksum(self):
        app = build_protocol_app()
        natives = app.fresh_natives()
        crc = natives.lookup("crc")
        interp = Interpreter(app.program, natives)
        checksum = crc(3, 5, 5)
        result = interp.run(
            app.entry, app.initial_inputs(kind=3, a=5, b=5, checksum=checksum)
        )
        assert result.error and "aliasing" in result.error_message


class TestProtocolAppSearch:
    def test_higher_order_forges_checksums_and_finds_bugs(self):
        app = build_protocol_app()
        search = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=80),
        )
        result = search.run(app.initial_inputs())
        messages = {e.message for e in result.errors}
        assert "write bug: aliasing addresses" in messages
        assert "reset bug: magic argument" in messages
        assert result.divergences == 0
        # the generated packets really carry valid checksums
        natives = app.fresh_natives()
        crc = natives.lookup("crc")
        for e in result.errors:
            assert e.inputs["checksum"] == crc(
                e.inputs["kind"], e.inputs["a"], e.inputs["b"]
            )

    def test_unsound_concretization_cannot_forge(self):
        app = build_protocol_app()
        search = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(),
            ConcretizationMode.UNSOUND, SearchConfig(max_runs=80),
        )
        result = search.run(app.initial_inputs())
        assert not result.found_error

    def test_random_fuzzing_rejected_at_checksum(self):
        app = build_protocol_app()
        fuzzer = RandomFuzzer(
            app.program, app.entry, app.fresh_natives(),
            default_range=(-100000, 100000), seed=2,
        )
        result = fuzzer.run(400)
        assert not result.found_error
        assert result.coverage.ratio() < 0.3


class TestAuthApp:
    def test_mac_matches_cipher(self):
        app = build_auth_app()
        natives = app.fresh_natives()
        mac = natives.lookup("mac")
        assert mac(7777) == toy_block_cipher(7777, AUTH_SECRET_KEY)

    def test_wrong_tag_rejected(self):
        app = build_auth_app()
        interp = Interpreter(app.program, app.fresh_natives())
        result = interp.run(
            app.entry, app.initial_inputs(message=7777, tag=0, action=3)
        )
        assert result.returned == -1

    def test_higher_order_forges_mac(self):
        app = build_auth_app()
        search = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=60),
        )
        result = search.run(app.initial_inputs())
        assert result.found_error
        err = result.errors[0]
        assert err.inputs["message"] == 7777
        assert err.inputs["tag"] == toy_block_cipher(7777, AUTH_SECRET_KEY)
        assert err.inputs["action"] == 3

    def test_full_coverage_by_higher_order(self):
        app = build_auth_app()
        search = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=60),
        )
        result = search.run(app.initial_inputs())
        assert result.coverage.ratio() == 1.0


class TestCalculatorAppConcrete:
    @pytest.fixture(scope="class")
    def app(self):
        return build_calculator_app()

    def test_load_updates_register(self, app):
        interp = Interpreter(app.program, app.fresh_natives())
        result = interp.run(app.entry, app.initial_inputs("load", "ra", 5))
        assert result.returned == 5 + 20

    def test_addi_accumulates(self, app):
        interp = Interpreter(app.program, app.fresh_natives())
        result = interp.run(app.entry, app.initial_inputs("addi", "rb", 7))
        assert result.returned == 10 + 27

    def test_halt_short_circuits(self, app):
        interp = Interpreter(app.program, app.fresh_natives())
        result = interp.run(app.entry, app.initial_inputs("halt"))
        assert result.returned == 100

    def test_unknown_command_rejected(self, app):
        interp = Interpreter(app.program, app.fresh_natives())
        result = interp.run(app.entry, app.initial_inputs("zzzz", "ra", 1))
        assert result.returned == -1

    def test_missing_register_rejected(self, app):
        interp = Interpreter(app.program, app.fresh_natives())
        result = interp.run(app.entry, app.initial_inputs("load", "qq", 1))
        assert result.returned == -2

    def test_division_bug_concrete(self, app):
        interp = Interpreter(app.program, app.fresh_natives())
        result = interp.run(app.entry, app.initial_inputs("divi", "ra", 0))
        assert result.error

    def test_division_works_nonzero(self, app):
        interp = Interpreter(app.program, app.fresh_natives())
        result = interp.run(app.entry, app.initial_inputs("divi", "ra", 2))
        assert result.returned == 5 + 20


class TestCalculatorAppSearch:
    def test_higher_order_synthesizes_both_keywords(self):
        app = build_calculator_app()
        search = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=200),
        )
        result = search.run(app.initial_inputs("zzzz", "qqqq", 1))
        assert result.found_error
        err = result.errors[0]
        cmd = codes_to_word([err.inputs[f"w{i}"] for i in range(4)])
        reg = codes_to_word([err.inputs[f"v{i}"] for i in range(4)])
        assert cmd == "divi" and reg in ("ra", "rb")
        assert err.inputs["operand"] == 0
        assert result.divergences == 0

    def test_higher_order_near_total_coverage(self):
        app = build_calculator_app()
        search = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=200),
        )
        result = search.run(app.initial_inputs("zzzz", "qqqq", 1))
        assert result.coverage.ratio() >= 0.9

    def test_random_stuck_in_stage_one(self):
        app = build_calculator_app()
        fuzzer = RandomFuzzer(
            app.program, app.entry, app.fresh_natives(),
            ranges={n: (0, 127) for n in app.input_names if n != "operand"},
            seed=4,
        )
        result = fuzzer.run(500)
        assert not result.found_error
        assert result.coverage.ratio() < 0.5

    def test_dart_stuck_in_stage_one(self):
        app = build_calculator_app()
        search = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(),
            ConcretizationMode.UNSOUND, SearchConfig(max_runs=100),
        )
        result = search.run(app.initial_inputs("zzzz", "qqqq", 1))
        assert not result.found_error
