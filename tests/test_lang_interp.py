"""Unit and property tests for the concrete MiniC interpreter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InterpError, StepBudgetExceeded
from repro.lang import Interpreter, NativeRegistry, c_div, c_mod, parse_program


def run(src, entry, inputs, natives=None, budget=1_000_000):
    prog = parse_program(src)
    return Interpreter(prog, natives, step_budget=budget).run(entry, inputs)


class TestArithmetic:
    def test_addition(self):
        r = run("int f(int x) { return x + 5; }", "f", {"x": 2})
        assert r.returned == 7

    def test_operator_precedence(self):
        r = run("int f(int x) { return 2 + 3 * x; }", "f", {"x": 4})
        assert r.returned == 14

    def test_unary_minus(self):
        r = run("int f(int x) { return -x; }", "f", {"x": 9})
        assert r.returned == -9

    def test_logical_not(self):
        assert run("int f(int x) { return !x; }", "f", {"x": 5}).returned == 0
        assert run("int f(int x) { return !x; }", "f", {"x": 0}).returned == 1

    @pytest.mark.parametrize(
        "a,b,q,r",
        [(7, 2, 3, 1), (-7, 2, -3, -1), (7, -2, -3, 1), (-7, -2, 3, -1)],
    )
    def test_c_division_semantics(self, a, b, q, r):
        assert c_div(a, b) == q
        assert c_mod(a, b) == r
        src = "int f(int a, int b) { return a / b * 1000 + (a % b + 100); }"
        out = run(src, "f", {"a": a, "b": b}).returned
        assert out == q * 1000 + r + 100

    def test_division_by_zero_is_program_error(self):
        # division by zero is a confirmable program error (like a failed
        # assert), so searches can find and report it — paper §3.2's
        # injected-check bug class
        r = run("int f(int x) { return 1 / x; }", "f", {"x": 0})
        assert r.error and "division by zero" in r.error_message

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    @settings(max_examples=100, deadline=None)
    def test_cdiv_cmod_invariant(self, a, b):
        if b == 0:
            return
        assert a == b * c_div(a, b) + c_mod(a, b)
        assert abs(c_mod(a, b)) < abs(b)


class TestControlFlow:
    def test_if_else(self):
        src = "int f(int x) { if (x > 0) { return 1; } else { return 2; } }"
        assert run(src, "f", {"x": 5}).returned == 1
        assert run(src, "f", {"x": -5}).returned == 2

    def test_logical_and_is_strict(self):
        # MiniC logical operators evaluate BOTH operands (paper Example 3
        # derives both conjuncts of one `if (A AND B)` into the pc), so the
        # division by zero in the right operand fires even when A is false
        src = "int f(int x) { if (x != 0 && 10 / x > 1) { return 1; } return 0; }"
        r = run(src, "f", {"x": 0})
        assert r.error and "division by zero" in r.error_message

    def test_logical_or_is_strict_but_correct(self):
        src = "int f(int x) { if (x == 0 || x > 1) { return 1; } return 0; }"
        assert run(src, "f", {"x": 0}).returned == 1
        assert run(src, "f", {"x": 5}).returned == 1
        assert run(src, "f", {"x": 1}).returned == 0

    def test_while_loop(self):
        src = """
        int f(int n) {
            int total = 0;
            int i = 1;
            while (i <= n) { total = total + i; i = i + 1; }
            return total;
        }
        """
        assert run(src, "f", {"n": 10}).returned == 55

    def test_nested_loops(self):
        src = """
        int f(int n) {
            int count = 0;
            int i = 0;
            while (i < n) {
                int j = 0;
                while (j < n) { count = count + 1; j = j + 1; }
                i = i + 1;
            }
            return count;
        }
        """
        assert run(src, "f", {"n": 7}).returned == 49

    def test_step_budget_stops_infinite_loop(self):
        src = "int f(int x) { while (1) { x = x + 1; } return x; }"
        with pytest.raises(StepBudgetExceeded):
            run(src, "f", {"x": 0}, budget=5000)

    def test_fall_off_end_returns_zero(self):
        assert run("int f(int x) { x = 1; }", "f", {"x": 0}).returned == 0


class TestErrorsAndAsserts:
    def test_error_statement(self):
        r = run('int f(int x) { if (x == 7) { error("seven"); } return 0; }',
                "f", {"x": 7})
        assert r.error and r.error_message == "seven"
        assert r.returned is None

    def test_assert_pass(self):
        r = run("int f(int x) { assert(x > 0); return x; }", "f", {"x": 3})
        assert not r.error and r.returned == 3

    def test_assert_fail(self):
        r = run("int f(int x) { assert(x > 0); return x; }", "f", {"x": -3})
        assert r.error and "assertion" in r.error_message

    def test_assert_records_branch(self):
        r = run("int f(int x) { assert(x > 0); return x; }", "f", {"x": 3})
        assert len(r.path) == 1 and r.path[0][1] is True


class TestFunctionsAndNatives:
    def test_user_function_call(self):
        src = """
        int square(int v) { return v * v; }
        int f(int x) { return square(x) + square(x + 1); }
        """
        assert run(src, "f", {"x": 3}).returned == 9 + 16

    def test_recursion(self):
        src = """
        int fact(int n) {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        """
        assert run(src, "fact", {"n": 6}).returned == 720

    def test_native_call_and_log(self):
        natives = NativeRegistry()
        natives.register("twice", lambda v: 2 * v)
        r = run("int f(int x) { return twice(x) + 1; }", "f", {"x": 10}, natives)
        assert r.returned == 21
        assert natives.call_log == [("twice", (10,), 20)]

    def test_unknown_native_raises(self):
        with pytest.raises(InterpError):
            run("int f(int x) { return mystery(x); }", "f", {"x": 1})

    def test_native_arity_checked(self):
        natives = NativeRegistry()
        natives.register("one", lambda v: v, arity=1)
        with pytest.raises(InterpError):
            run("int f(int x) { return one(x, x); }", "f", {"x": 1}, natives)

    def test_native_nonint_result_rejected(self):
        natives = NativeRegistry()
        natives.register("bad", lambda v: "nope", arity=1)
        with pytest.raises(InterpError):
            run("int f(int x) { return bad(x); }", "f", {"x": 1}, natives)

    def test_duplicate_native_rejected(self):
        natives = NativeRegistry()
        natives.register("h", lambda v: v)
        with pytest.raises(InterpError):
            natives.register("h", lambda v: v + 1)

    def test_missing_inputs_detected(self):
        with pytest.raises(InterpError):
            run("int f(int x, int y) { return x; }", "f", {"x": 1})


class TestArrays:
    def test_write_read(self):
        src = """
        int f(int i) {
            int a[5];
            a[2] = 42;
            return a[i];
        }
        """
        assert run(src, "f", {"i": 2}).returned == 42
        assert run(src, "f", {"i": 3}).returned == 0

    def test_out_of_bounds_read_is_program_error(self):
        r = run("int f(int i) { int a[3]; return a[i]; }", "f", {"i": 5})
        assert r.error and "out of bounds" in r.error_message

    def test_out_of_bounds_write_is_program_error(self):
        r = run("int f(int i) { int a[3]; a[i] = 1; return 0; }", "f", {"i": -1})
        assert r.error and "out of bounds" in r.error_message

    def test_array_as_scalar_rejected(self):
        with pytest.raises(InterpError):
            run("int f(int i) { int a[3]; return a + 1; }", "f", {"i": 0})

    def test_scalar_as_array_rejected(self):
        with pytest.raises(InterpError):
            run("int f(int i) { return i[0]; }", "f", {"i": 0})


class TestPathTracing:
    def test_path_records_branches_in_order(self):
        src = """
        int f(int x) {
            if (x > 0) { x = x - 1; }
            if (x > 0) { x = x - 1; }
            return x;
        }
        """
        r = run(src, "f", {"x": 1})
        assert r.path == [(0, True), (1, False)]

    def test_loop_iterations_recorded(self):
        src = "int f(int n) { while (n > 0) { n = n - 1; } return 0; }"
        r = run(src, "f", {"n": 3})
        assert r.path == [(0, True)] * 3 + [(0, False)]

    def test_covered_is_set_of_outcomes(self):
        src = "int f(int n) { while (n > 0) { n = n - 1; } return 0; }"
        r = run(src, "f", {"n": 3})
        assert r.covered == {(0, True), (0, False)}

    def test_path_key_hashable(self):
        src = "int f(int x) { if (x > 0) { return 1; } return 0; }"
        r = run(src, "f", {"x": 1})
        assert hash(r.path_key) == hash(((0, True),))


class TestAgainstPythonSemantics:
    @given(
        st.integers(-50, 50), st.integers(-50, 50), st.integers(-50, 50)
    )
    @settings(max_examples=100, deadline=None)
    def test_polynomial_matches_python(self, a, b, c):
        src = "int f(int a, int b, int c) { return a * a - 2 * b + c * a; }"
        out = run(src, "f", {"a": a, "b": b, "c": c}).returned
        assert out == a * a - 2 * b + c * a

    @given(st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_fib_loop_matches_python(self, n):
        src = """
        int fib(int n) {
            int a = 0;
            int b = 1;
            while (n > 0) {
                int t = a + b;
                a = b;
                b = t;
                n = n - 1;
            }
            return a;
        }
        """
        def pyfib(k):
            x, y = 0, 1
            for _ in range(k):
                x, y = y, x + y
            return x

        assert run(src, "fib", {"n": n}).returned == pyfib(n)
