"""Ablation: the strategy-language extensions matter.

Disabling offset strategies recreates the expressiveness of the paper's
literal §7 prototype ("replace h(x)=c2 by a disjunction of x=c1 ...
handles only limited cases"): disequality branches over unknown-function
values become uncoverable, while everything the paper's examples need
still works.
"""

import pytest

from repro.solver import TermManager
from repro.solver.validity import Sample, ValidityChecker, ValidityStatus


@pytest.fixture()
def ctx():
    tm = TermManager()
    return {
        "tm": tm,
        "x": tm.mk_var("x"),
        "y": tm.mk_var("y"),
        "h": tm.mk_function("h", 1),
    }


class TestOffsetAblation:
    def pc_diseq(self, ctx):
        """foo_bis's inner flip: x != h(y) ∧ y = 10 (needs x := h(10)+1)."""
        tm = ctx["tm"]
        return tm.mk_and(
            tm.mk_ne(ctx["x"], tm.mk_app(ctx["h"], [ctx["y"]])),
            tm.mk_eq(ctx["y"], tm.mk_int(10)),
        )

    def test_with_offsets_valid(self, ctx):
        checker = ValidityChecker(ctx["tm"], enable_offsets=True)
        verdict = checker.check(
            self.pc_diseq(ctx), [ctx["x"], ctx["y"]],
            [Sample(ctx["h"], (42,), 567)],
        )
        assert verdict.status is ValidityStatus.VALID
        # the strategy is the offset witness
        assert "+1" in str(verdict.strategy)

    def test_without_offsets_undecided(self, ctx):
        checker = ValidityChecker(ctx["tm"], enable_offsets=False)
        verdict = checker.check(
            self.pc_diseq(ctx), [ctx["x"], ctx["y"]],
            [Sample(ctx["h"], (42,), 567)],
        )
        # the formula IS valid, but without offset strategies no candidate
        # verifies and no adversary exists: honest UNKNOWN, no test
        assert verdict.status is not ValidityStatus.VALID

    def test_paper_examples_unaffected(self, ctx):
        """Everything the paper's own examples need works without offsets."""
        tm, x, y, h = ctx["tm"], ctx["x"], ctx["y"], ctx["h"]
        checker = ValidityChecker(tm, enable_offsets=False)
        # obscure (§4.2)
        v1 = checker.check(
            tm.mk_eq(x, tm.mk_app(h, [y])), [x, y], [Sample(h, (42,), 567)]
        )
        assert v1.status is ValidityStatus.VALID
        # Example 7 (multi-step)
        v2 = checker.check(
            tm.mk_and(tm.mk_eq(x, tm.mk_app(h, [y])), tm.mk_eq(y, tm.mk_int(10))),
            [x, y],
            [Sample(h, (42,), 567)],
        )
        assert v2.status is ValidityStatus.VALID
        # Example 3 (invalid)
        v3 = checker.check(
            tm.mk_and(
                tm.mk_eq(x, tm.mk_app(h, [y])), tm.mk_eq(y, tm.mk_app(h, [x]))
            ),
            [x, y],
            [Sample(h, (42,), 567), Sample(h, (33,), 123)],
        )
        assert v3.status is ValidityStatus.INVALID
