"""Tests for the campaign telemetry pipeline (PR 6).

Covers the full chain: the journal's monotonic clock field, per-worker
shard shipping and deterministic merging, kernel stage profiling, the
exporters (JSON / Prometheus text / Chrome trace-event JSON), the
``repro stats`` campaign rollup and ``--follow``/``top`` live view, and
above all the answer-preservation contract — campaign digests are
byte-identical with telemetry on or off, at any ``--workers`` value,
and a journal that starts failing mid-campaign disables itself without
touching the campaign's answers.
"""

import io
import json
import os

import pytest

from repro import api
from repro.apps.paper_programs import PAPER_EXAMPLES
from repro.cli.main import main as cli_main
from repro.engine import CampaignSpec
from repro.obs.export import (
    KERNEL_STAGES,
    journal_to_chrome_trace,
    load_journal,
    render_prometheus,
    snapshot_to_json,
)
from repro.obs.journal import RunJournal
from repro.obs.metrics import MetricsRegistry
from repro.obs.shipper import (
    CAMPAIGN_JOURNAL,
    CampaignStats,
    ShardReader,
    list_shards,
    merge_shards,
    open_shard,
    shard_path,
)


def _tiny_spec(max_runs=12):
    """Two programs x two strategies = four fast jobs."""
    foo = PAPER_EXAMPLES["foo"]
    obscure = PAPER_EXAMPLES["obscure"]
    return CampaignSpec(
        programs=[
            {
                "name": ex.name,
                "source": ex.source,
                "entry": ex.entry,
                "natives": "paper",
                "seed": dict(ex.initial_inputs),
            }
            for ex in (foo, obscure)
        ],
        strategies=["higher_order", "unsound"],
        max_runs=max_runs,
    )


# -- journal mono field ------------------------------------------------------


class TestJournalMono:
    def test_every_event_has_ts_and_mono(self):
        sink = io.StringIO()
        journal = RunJournal(sink)
        journal.emit("a")
        journal.emit("b", x=1)
        journal.close()
        events = [json.loads(l) for l in sink.getvalue().splitlines()]
        for event in events:
            assert "ts" in event and "mono" in event and "seq" in event

    def test_mono_is_monotone_even_with_clock_skew(self):
        sink = io.StringIO()
        wall = iter([100.0, 50.0, 75.0])  # wall clock jumps backwards
        journal = RunJournal(sink, clock=lambda: next(wall))
        for _ in range(3):
            journal.emit("tick")
        journal.close()
        events = [json.loads(l) for l in sink.getvalue().splitlines()]
        monos = [e["mono"] for e in events]
        assert monos == sorted(monos)
        assert [e["ts"] for e in events] == [100.0, 50.0, 75.0]

    def test_flush_batching_still_writes_every_event(self):
        sink = io.StringIO()
        journal = RunJournal(sink, flush_every=16)
        for i in range(40):
            journal.emit("tick", i=i)
        journal.close()
        assert len(sink.getvalue().splitlines()) == 40


# -- shard shipping & merging ------------------------------------------------


class TestShardShipping:
    def test_shard_has_header_and_is_listed(self, tmp_path):
        d = str(tmp_path)
        shard = open_shard(d, "prog//entry//hotg//dfs", worker_pid=42)
        shard.emit("search_started", scheduler="dfs")
        shard.close()
        shards = list_shards(d)
        assert shards == [
            ("prog//entry//hotg//dfs", shard_path(d, "prog//entry//hotg//dfs"))
        ]
        events = load_journal(shards[0][1])
        assert events[0]["kind"] == "shard_opened"
        assert events[0]["job"] == "prog//entry//hotg//dfs"
        assert events[0]["worker"] == 42

    def test_hostile_job_keys_cannot_collide(self, tmp_path):
        d = str(tmp_path)
        a = shard_path(d, "x/../../etc passwd")
        b = shard_path(d, "x/……/etc passwd")
        assert a != b
        assert os.path.dirname(a) == os.path.join(d, "shards")
        # no path separators survive sanitization: a hostile key cannot
        # escape the shard directory
        assert "/" not in os.path.basename(a)
        assert os.path.basename(a) != ".." and os.path.basename(b) != ".."

    def test_merge_orders_by_job_key_then_seq(self, tmp_path):
        d = str(tmp_path)
        # written in "wrong" order: zebra first, alpha second
        for key in ("zebra//z//h//dfs", "alpha//a//h//dfs"):
            shard = open_shard(d, key)
            shard.emit("one")
            shard.emit("two")
            shard.close()
        path, count = merge_shards(d)
        events = load_journal(path)
        assert count == len(events) == 6
        jobs = [e["job"] for e in events]
        assert jobs == sorted(jobs)
        assert [e["gseq"] for e in events] == list(range(6))
        # within one job, seq order
        alpha = [e["seq"] for e in events if e["job"].startswith("alpha")]
        assert alpha == sorted(alpha)

    def test_merge_skips_corrupt_lines(self, tmp_path):
        d = str(tmp_path)
        shard = open_shard(d, "j//e//h//dfs")
        shard.emit("fine")
        shard.close()
        with open(shard_path(d, "j//e//h//dfs"), "a", encoding="utf-8") as h:
            h.write('{"kind": "trunca')  # a write cut short mid-line
        path, count = merge_shards(d)
        assert count == 2  # header + fine; the torn line is skipped
        assert all(e["kind"] != "trunca" for e in load_journal(path))

    def test_shard_reader_is_incremental_and_partial_line_safe(self, tmp_path):
        d = str(tmp_path)
        os.makedirs(os.path.join(d, "shards"))
        path = os.path.join(d, "shards", "live.jsonl")
        with open(path, "w", encoding="utf-8") as h:
            h.write('{"seq": 0, "kind": "shard_opened", "job": "j"}\n')
            h.write('{"seq": 1, "kind": "a"}\n')
            h.write('{"seq": 2, "kind"')  # partial write in flight
        reader = ShardReader(d)
        batch = reader.poll()
        assert [e["kind"] for _, e in batch] == ["shard_opened", "a"]
        assert all(job == "j" for job, _ in batch)
        with open(path, "a", encoding="utf-8") as h:
            h.write(': "b"}\n')  # the partial line completes
        batch = reader.poll()
        assert [e["kind"] for _, e in batch] == ["b"]
        assert reader.poll() == []


# -- campaign integration: determinism contract ------------------------------


class TestCampaignTelemetry:
    def test_digest_identical_with_telemetry_on_and_off(self, tmp_path):
        spec = _tiny_spec()
        plain = api.run_campaign(spec)
        shipped = api.run_campaign(spec, telemetry=str(tmp_path / "t1"))
        assert shipped.campaign_digest == plain.campaign_digest
        assert shipped.telemetry_dir == str(tmp_path / "t1")
        assert shipped.journal_events > 0
        assert (tmp_path / "t1" / CAMPAIGN_JOURNAL).exists()

    def test_merged_stream_identical_across_worker_counts(self, tmp_path):
        spec = _tiny_spec()
        streams = {}
        for workers in (1, 2):
            d = str(tmp_path / f"w{workers}")
            report = api.run_campaign(spec, workers=workers, telemetry=d)
            events = load_journal(os.path.join(d, CAMPAIGN_JOURNAL))
            # the deterministic skeleton: ordering and content, not timings
            streams[workers] = [
                (e["job"], e["seq"], e["gseq"], e["kind"]) for e in events
            ]
            assert report.journal_events == len(events)
        assert streams[1] == streams[2]

    def test_rollup_folds_shards_and_checkpoint(self, tmp_path):
        d = str(tmp_path / "camp")
        report = api.run_campaign(_tiny_spec(), checkpoint=d, telemetry=d)
        stats = CampaignStats()
        assert stats.fold_checkpoint(d) == len(report.jobs)
        for job, event in ShardReader(d).poll():
            stats.consume(job, event)
        assert len(stats.jobs) == len(report.jobs)
        assert stats.failed_jobs == 0
        assert stats.running_jobs == 0
        by_key = {j.key: j for j in report.jobs}
        for job in stats.ordered_jobs():
            assert job.runs == by_key[job.key].runs
            assert job.tests == len(by_key[job.key].corpus)

    def test_disk_cache_rollup_in_report_payload(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        api.run_campaign(_tiny_spec(), cache_dir=cache_dir)  # warm
        report = api.run_campaign(_tiny_spec(), cache_dir=cache_dir)  # hit
        disk = report.disk_cache_stats()
        assert disk["hits"] > 0
        assert disk["hit_rate"] == pytest.approx(
            disk["hits"] / (disk["hits"] + disk["misses"])
        )
        payload = report.to_payload()
        assert payload["disk_cache"]["hits"] == disk["hits"]
        assert payload["disk_cache"]["corrupt_skipped"] == 0
        # corrupt-skip counters are part of the aggregated merge contract
        from repro.engine.merger import ResultMerger

        assert "solver.diskcache.skipped" in ResultMerger.AGGREGATED_COUNTERS

    def test_journal_fault_does_not_kill_campaign_or_change_digest(
        self, tmp_path
    ):
        spec = _tiny_spec()
        baseline = api.run_campaign(spec)
        d = str(tmp_path / "faulty")
        report = api.run_campaign(
            spec,
            workers=2,
            telemetry=d,
            fault_plan="journal:at=2",
        )
        assert report.campaign_digest == baseline.campaign_digest
        assert all(j.ok for j in report.jobs)
        # every job's journal hit the injected OSError, disabled itself,
        # and counted it exactly once
        errors = [
            j.metrics.get("counters", {}).get("obs.journal.write_errors", 0)
            for j in report.jobs
        ]
        assert all(count == 1 for count in errors)


# -- kernel stage profiling --------------------------------------------------


class TestStageProfiling:
    def _run_with_obs(self, tmp_path):
        from repro.apps.paper_programs import make_paper_natives
        from repro.obs import Observability, Tracer

        trace = str(tmp_path / "run.jsonl")
        journal = RunJournal(trace)
        obs = Observability(
            tracer=Tracer(journal=journal),
            metrics=MetricsRegistry(),
            journal=journal,
        )
        ex = PAPER_EXAMPLES["obscure"]
        result = api.generate_tests(
            ex.source,
            entry=ex.entry,
            strategy="hotg",
            natives=make_paper_natives(),
            seed=dict(ex.initial_inputs),
            obs=obs,
        )
        journal.close()
        return result, obs, trace

    def test_all_five_stages_have_histograms(self, tmp_path):
        result, obs, _ = self._run_with_obs(tmp_path)
        assert result.found_error
        histograms = obs.metrics.snapshot()["histograms"]
        for stage in KERNEL_STAGES:
            summary = histograms[f"kernel.stage.{stage}_seconds"]
            assert summary["count"] > 0
            assert summary["total"] >= 0.0
        # scheduler attribution on the scheduling/solving stages
        assert histograms["kernel.stage.schedule_seconds.dfs"]["count"] > 0
        assert histograms["kernel.stage.generate_seconds.dfs"]["count"] > 0

    def test_iteration_counter_and_cache_gauge(self, tmp_path):
        _, obs, _ = self._run_with_obs(tmp_path)
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["kernel.iterations.dfs"] > 0
        assert "kernel.cache.hit_rate" in snapshot["gauges"]

    def test_run_executed_events_carry_live_coverage_and_cache(self, tmp_path):
        _, _, trace = self._run_with_obs(tmp_path)
        runs = [e for e in load_journal(trace) if e["kind"] == "run_executed"]
        assert runs
        for event in runs:
            assert "cache" in event and "hits" in event["cache"]
        coverages = [e["coverage"] for e in runs if e["coverage"] is not None]
        assert coverages == sorted(coverages)  # coverage only grows


# -- exporters ---------------------------------------------------------------


class TestExporters:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter("smt.checks").inc(7)
        registry.gauge("kernel.cache.hit_rate").set(0.5)
        registry.histogram("smt.check_seconds").observe(0.25)
        registry.histogram("smt.check_seconds").observe(0.75)
        return registry.snapshot()

    def test_snapshot_json_is_deterministic(self):
        text = snapshot_to_json(self._snapshot())
        assert text == snapshot_to_json(self._snapshot())
        assert json.loads(text)["counters"]["smt.checks"] == 7

    def test_prometheus_text_format(self):
        text = render_prometheus(self._snapshot())
        assert "# TYPE repro_smt_checks counter\nrepro_smt_checks 7" in text
        assert "# TYPE repro_kernel_cache_hit_rate gauge" in text
        assert "repro_kernel_cache_hit_rate 0.5" in text
        assert "# TYPE repro_smt_check_seconds summary" in text
        assert "repro_smt_check_seconds_count 2" in text
        assert "repro_smt_check_seconds_sum 1" in text
        assert "repro_smt_check_seconds_min 0.25" in text
        assert "repro_smt_check_seconds_max 0.75" in text
        assert text.endswith("\n")

    def test_chrome_trace_round_trip(self, tmp_path):
        d = str(tmp_path)
        api.run_campaign(_tiny_spec(max_runs=6), telemetry=d)
        events = load_journal(os.path.join(d, CAMPAIGN_JOURNAL))
        trace = journal_to_chrome_trace(events)
        text = json.dumps(trace)  # must be JSON-serializable
        parsed = json.loads(text)
        slices = {
            e["name"] for e in parsed["traceEvents"] if e.get("ph") == "X"
        }
        for stage in KERNEL_STAGES:
            assert stage in slices
        # one trace process per job plus its metadata record
        meta = [
            e for e in parsed["traceEvents"] if e.get("name") == "process_name"
        ]
        assert len(meta) == 4
        pids = {e["pid"] for e in parsed["traceEvents"] if e.get("ph") == "X"}
        assert pids == {e["pid"] for e in meta}

    def test_spans_are_positioned_on_the_mono_clock(self):
        events = [
            {
                "seq": 0,
                "ts": 1.0,
                "mono": 10.0,
                "kind": "span",
                "label": "execute",
                "seconds": 2.0,
            }
        ]
        trace = journal_to_chrome_trace(events)
        (slice_,) = trace["traceEvents"]
        assert slice_["ts"] == pytest.approx((10.0 - 2.0) * 1e6)
        assert slice_["dur"] == pytest.approx(2.0 * 1e6)

    def test_events_without_mono_are_skipped(self):
        trace = journal_to_chrome_trace([{"seq": 0, "kind": "legacy"}])
        assert trace["traceEvents"] == []


# -- CLI: campaign rollup, follow, top --------------------------------------


class TestStatsCli:
    @pytest.fixture()
    def campaign_dir(self, tmp_path):
        d = str(tmp_path / "camp")
        api.run_campaign(_tiny_spec(max_runs=6), checkpoint=d, telemetry=d)
        return d

    def test_stats_accepts_campaign_directory(self, campaign_dir, capsys):
        assert cli_main(["stats", campaign_dir]) == 0
        out = capsys.readouterr().out
        assert "[campaign]" in out
        assert "foo//foo//higher_order//dfs" in out
        assert "done" in out
        assert "cache totals:" in out

    def test_follow_renders_and_stops_after_iterations(
        self, campaign_dir, capsys
    ):
        assert (
            cli_main(
                [
                    "stats",
                    campaign_dir,
                    "--follow",
                    "--iterations",
                    "2",
                    "--interval",
                    "0.01",
                    "--no-clear",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.count("[campaign]") == 2
        assert "follow: tick 2" in out

    def test_top_is_a_follow_alias(self, campaign_dir, capsys):
        assert (
            cli_main(
                [
                    "top",
                    campaign_dir,
                    "--iterations",
                    "1",
                    "--interval",
                    "0.01",
                    "--no-clear",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[campaign]" in out
        assert "follow: tick 1" in out

    def test_campaign_trace_export_via_stats(self, campaign_dir, tmp_path):
        out_file = str(tmp_path / "trace.json")
        assert (
            cli_main(["stats", campaign_dir, "--trace-out", out_file])
            == 0
        )
        with open(out_file, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
        assert trace["traceEvents"]

    def test_campaign_cli_telemetry_flag(self, tmp_path, capsys):
        spec = {
            "programs": [
                {
                    "name": "foo",
                    "source": PAPER_EXAMPLES["foo"].source,
                    "entry": "foo",
                    "natives": "paper",
                    "seed": dict(PAPER_EXAMPLES["foo"].initial_inputs),
                }
            ],
            "strategies": ["higher_order"],
            "max_runs": 6,
        }
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(spec), encoding="utf-8")
        d = str(tmp_path / "tele")
        assert (
            cli_main(
                [
                    "campaign",
                    str(spec_file),
                    "--telemetry",
                    d,
                    "--quiet",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert os.path.exists(os.path.join(d, CAMPAIGN_JOURNAL))

    def test_single_run_exports_still_work(self, tmp_path, capsys):
        program = tmp_path / "p.minic"
        program.write_text(PAPER_EXAMPLES["foo"].source, encoding="utf-8")
        prom = str(tmp_path / "m.prom")
        trace = str(tmp_path / "t.json")
        assert (
            cli_main(
                [
                    "stats",
                    str(program),
                    "--max-runs",
                    "6",
                    "--prom-out",
                    prom,
                    "--trace-out",
                    trace,
                ]
            )
            == 0
        )
        with open(prom, "r", encoding="utf-8") as handle:
            assert "# TYPE" in handle.read()
        with open(trace, "r", encoding="utf-8") as handle:
            parsed = json.load(handle)
        slices = {
            e["name"] for e in parsed["traceEvents"] if e.get("ph") == "X"
        }
        for stage in KERNEL_STAGES:
            assert stage in slices
