"""Tests for the markdown session report."""

import pytest

from repro.cli import main
from repro.lang import NativeRegistry, parse_program
from repro.search import DirectedSearch, SearchConfig
from repro.search.report import render_report
from repro.symbolic import ConcretizationMode

SRC = """
int main(int x, int y) {
    if (x == hash(y)) {
        if (y == 10) { error("deep bug"); }
    }
    return 0;
}
"""


def run_session():
    natives = NativeRegistry()
    natives.register("hash", lambda y: (y * 31 + 7) % 1000)
    program = parse_program(SRC)
    search = DirectedSearch.for_mode(
        program, "main", natives,
        ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=20),
    )
    return program, search, search.run({"x": 33, "y": 42})


class TestRenderReport:
    def test_sections_present(self):
        program, search, result = run_session()
        text = render_report(
            result, program, "main", mode="higher_order", store=search.store
        )
        for heading in (
            "## Errors",
            "## Branch coverage",
            "## Learned function samples",
            "## Execution genealogy",
        ):
            assert heading in text

    def test_error_details_rendered(self):
        program, search, result = run_session()
        text = render_report(result, program, "main", store=search.store)
        assert "deep bug" in text
        assert "replay:" in text
        assert "y=10" in text

    def test_full_coverage_has_no_missing_section(self):
        program, search, result = run_session()
        text = render_report(result, program, "main")
        assert result.coverage.ratio() == 1.0
        assert "Missing outcomes" not in text

    def test_missing_outcomes_listed_when_incomplete(self):
        natives = NativeRegistry()
        natives.register("hash", lambda y: (y * 31 + 7) % 1000)
        program = parse_program(SRC)
        search = DirectedSearch.for_mode(
            program, "main", natives,
            ConcretizationMode.UNSOUND, SearchConfig(max_runs=5),
        )
        result = search.run({"x": 33, "y": 42})
        text = render_report(result, program, "main")
        assert "Missing outcomes" in text

    def test_no_errors_case(self):
        program = parse_program("int main(int x) { return x; }")
        search = DirectedSearch.for_mode(
            program, "main", NativeRegistry(),
            ConcretizationMode.SOUND, SearchConfig(max_runs=5),
        )
        result = search.run({"x": 1})
        text = render_report(result, program, "main")
        assert "No errors found" in text

    def test_cli_report_flag(self, tmp_path, capsys):
        src_path = tmp_path / "p.minic"
        src_path.write_text(SRC)
        report_path = tmp_path / "session.md"
        code = main(
            [
                "run", str(src_path), "--seed", "x=33,y=42",
                "--report", str(report_path),
            ]
        )
        assert code == 0
        content = report_path.read_text()
        assert content.startswith("# Testing session")
        assert "Execution genealogy" in content
