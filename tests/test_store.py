"""Tests for the shared content-addressed store (repro.store).

Covers the store's hard guarantees — atomic publication under
concurrent multi-process writers (same and different keys, no torn
reads), LRU eviction under a byte budget (including while writers are
racing), corrupt-entry quarantine, the one-shot flat-layout migration —
and its integration seams: the DiskCache adapter, campaign-level crash
buckets qualified by program source, deterministic corpus seeding, and
the ``repro store`` CLI verbs.

The load-bearing invariant throughout: the store is answer-neutral.
Campaign digests are byte-identical with the store on or off, warm or
cold, and before or after eviction.
"""

import json
import os
import subprocess
import sys
import threading

import pytest

from repro import api
from repro.apps.paper_programs import PAPER_EXAMPLES
from repro.cli.main import main as cli_main
from repro.engine.merger import ResultMerger
from repro.engine.planner import CampaignSpec, SearchJob, resolve_strategy
from repro.engine.runner import JobResult, run_job
from repro.solver.cache import CachedResult
from repro.solver.diskcache import DISKCACHE_FORMAT, DiskCache
from repro.store import (
    CORPUS_ENTRY_FORMAT,
    ContentStore,
    corpus_group,
    crash_group,
    input_digest,
    source_sha,
)

FOO = PAPER_EXAMPLES["foo"]


def _foo_spec() -> CampaignSpec:
    """A one-job campaign over the paper's foo example."""
    return CampaignSpec.from_payload(
        {
            "programs": [
                {
                    "name": "foo",
                    "source": FOO.source,
                    "entry": FOO.entry,
                    "natives": "paper",
                    "seed": dict(FOO.initial_inputs),
                }
            ],
            "strategies": ["higher_order"],
            "max_runs": 50,
        }
    )


def _foo_job(strategy: str = "higher_order", **config) -> SearchJob:
    options = {"max_runs": 50, "scheduler": "dfs"}
    options.update(config)
    mode = resolve_strategy(strategy)
    return SearchJob(
        key=f"foo//{FOO.entry}//{mode}//dfs",
        program_name="foo",
        source=FOO.source,
        entry=FOO.entry,
        strategy=mode,
        natives="paper",
        seed=dict(FOO.initial_inputs),
        config=options,
    )


class TestStoreBasics:
    def test_flat_round_trip(self, tmp_path):
        store = ContentStore(str(tmp_path))
        path = store.path_for("solver", "ab" * 32)
        assert store.save("solver", path, {"format": 1, "x": 3})
        assert store.load("solver", path) == {"format": 1, "x": 3}
        assert store.counters["store.solver.stores"] == 1
        assert store.counters["store.solver.hits"] == 1

    def test_grouped_round_trip_and_sorted_enumeration(self, tmp_path):
        store = ContentStore(str(tmp_path))
        group = corpus_group(source_sha("src"), "main")
        digests = [input_digest({"x": n}) for n in range(5)]
        for n, digest in enumerate(digests):
            store.save(
                "corpus",
                store.group_path("corpus", group, digest),
                {"format": CORPUS_ENTRY_FORMAT, "inputs": {"x": n}},
            )
        loaded = store.load_group(
            "corpus", group, expected_format=CORPUS_ENTRY_FORMAT
        )
        assert [d for d, _ in loaded] == sorted(digests)
        assert len(loaded) == 5
        # a different group is empty
        assert store.load_group("corpus", corpus_group("other", "main")) == []

    def test_miss_is_none_not_error(self, tmp_path):
        store = ContentStore(str(tmp_path))
        assert store.load("solver", store.path_for("solver", "cd" * 32)) is None
        assert store.counters["store.solver.misses"] == 1

    def test_input_digest_order_insensitive(self):
        assert input_digest({"a": 1, "b": 2}) == input_digest({"b": 2, "a": 1})
        assert input_digest({"a": 1}) != input_digest({"a": 2})

    def test_group_digests_differ_per_identity(self):
        assert corpus_group("s1", "main") != corpus_group("s2", "main")
        assert corpus_group("s1", "main") != corpus_group("s1", "other")
        assert crash_group("s1") != crash_group("s2")


class TestQuarantine:
    def test_corrupt_json_is_quarantined_once(self, tmp_path):
        store = ContentStore(str(tmp_path))
        path = store.path_for("solver", "ab" * 32)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        payload, corrupt = store.load_entry("solver", path)
        assert payload is None and corrupt
        assert not os.path.exists(path)
        quarantined = os.listdir(os.path.join(str(tmp_path), "quarantine"))
        assert len(quarantined) == 1
        assert quarantined[0].startswith("solver--")
        # second lookup: clean miss, nothing left to quarantine
        payload, corrupt = store.load_entry("solver", path)
        assert payload is None and not corrupt
        assert store.counters["store.solver.quarantined"] == 1

    def test_stale_format_is_quarantined(self, tmp_path):
        store = ContentStore(str(tmp_path))
        path = store.path_for("corpus", "ef" * 32)
        store.save("corpus", path, {"format": 999, "inputs": {}})
        assert store.load("corpus", path, expected_format=1) is None
        assert not os.path.exists(path)

    def test_verify_sweeps_corrupt_entries(self, tmp_path):
        store = ContentStore(str(tmp_path))
        good = store.path_for("solver", "ab" * 32)
        store.save("solver", good, {"format": 1})
        bad = store.path_for("solver", "cd" * 32)
        os.makedirs(os.path.dirname(bad), exist_ok=True)
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write("garbage")
        outcome = store.verify()
        assert outcome == {"checked": 2, "quarantined": 1}
        assert os.path.exists(good)
        assert not os.path.exists(bad)


_WRITER_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.store import ContentStore
store = ContentStore({root!r})
wid = int(sys.argv[1])
for round_ in range(30):
    # everyone hammers one shared key...
    shared = store.path_for("solver", "ff" * 32)
    store.save("solver", shared, {{"format": 1, "payload": "x" * 256}})
    loaded = store.load("solver", shared)
    assert loaded is None or loaded["payload"] == "x" * 256, "torn read"
    # ...and also writes its own keys
    own = store.path_for("solver", ("%02x" % wid) * 32)
    store.save("solver", own, {{"format": 1, "wid": wid, "round": round_}})
    got = store.load("solver", own)
    assert got is not None and got["wid"] == wid, "lost own write"
print("ok")
"""


class TestConcurrentWriters:
    def test_multiprocess_writers_no_torn_reads(self, tmp_path):
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        script = _WRITER_SCRIPT.format(
            src=os.path.abspath(src), root=str(tmp_path)
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(wid)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for wid in range(4)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert out.strip() == "ok"
        store = ContentStore(str(tmp_path))
        # every surviving entry parses cleanly — no torn files anywhere
        assert store.verify()["quarantined"] == 0
        shared = store.load("solver", store.path_for("solver", "ff" * 32))
        assert shared is not None and shared["payload"] == "x" * 256

    def test_eviction_under_writers(self, tmp_path):
        """gc racing live writers: never crashes, never leaves torn state."""
        store = ContentStore(str(tmp_path))
        stop = threading.Event()
        errors = []

        def _writer(wid: int) -> None:
            n = 0
            while not stop.is_set():
                digest = ("%02x" % wid) + ("%06x" % (n % 64)).zfill(62)
                try:
                    store.save(
                        "solver",
                        store.path_for("solver", digest),
                        {"format": 1, "fill": "y" * 512},
                    )
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)
                    return
                n += 1

        threads = [
            threading.Thread(target=_writer, args=(w,)) for w in range(3)
        ]
        for t in threads:
            t.start()
        try:
            for _ in range(10):
                store.gc(4096)  # tight budget: constant eviction pressure
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not errors
        assert store.verify()["quarantined"] == 0
        final = store.gc(4096)
        assert isinstance(final, dict)
        assert store.stats()["total_bytes"] <= 4096


class TestEviction:
    def test_gc_respects_lru_order(self, tmp_path):
        store = ContentStore(str(tmp_path))
        paths = {}
        for n in range(4):
            digest = ("%02x" % n) * 32
            paths[n] = store.path_for("solver", digest)
            store.save("solver", paths[n], {"format": 1, "fill": "z" * 200})
        # touch 0 and 2 so 1 and 3 are the LRU victims
        store.load("solver", paths[0])
        store.load("solver", paths[2])
        size = os.path.getsize(paths[0])
        evicted = store.gc(2 * size + 10)
        assert evicted == {"solver": 2}
        assert os.path.exists(paths[0]) and os.path.exists(paths[2])
        assert not os.path.exists(paths[1]) and not os.path.exists(paths[3])

    def test_gc_preserves_lifetime_totals_across_compaction(self, tmp_path):
        store = ContentStore(str(tmp_path))
        path = store.path_for("solver", "ab" * 32)
        store.save("solver", path, {"format": 1})
        store.load("solver", path)
        store.gc(10**9)  # no eviction, but compacts the journal
        store.gc(10**9)  # twice: totals must not double or vanish
        stats = store.stats()
        assert stats["stores"] == {"solver": 1}
        assert stats["hits"] == {"solver": 1}

    def test_gc_prunes_empty_group_dirs(self, tmp_path):
        store = ContentStore(str(tmp_path))
        group = corpus_group("src", "main")
        path = store.group_path("corpus", group, "ab" * 32)
        store.save("corpus", path, {"format": 1})
        assert store.gc(0) == {"corpus": 1}
        assert not os.path.exists(store.group_dir("corpus", group))

    def test_compaction_preserves_lru_order(self, tmp_path):
        store = ContentStore(str(tmp_path))
        old = store.path_for("solver", "aa" * 32)
        new = store.path_for("solver", "bb" * 32)
        store.save("solver", old, {"format": 1, "fill": "z" * 200})
        store.save("solver", new, {"format": 1, "fill": "z" * 200})
        store.load("solver", old)  # most recently used, despite older store
        store.gc(10**9)  # compaction rewrites the recency lines
        evicted = ContentStore(str(tmp_path)).gc(os.path.getsize(old) + 10)
        assert evicted == {"solver": 1}
        assert os.path.exists(old) and not os.path.exists(new)

    def test_tenant_accounting(self, tmp_path):
        a = ContentStore(str(tmp_path), tenant="alpha")
        b = ContentStore(str(tmp_path), tenant="beta")
        path = a.path_for("solver", "ab" * 32)
        a.save("solver", path, {"format": 1})
        b.load("solver", path)
        b.load("solver", path)
        tenants = a.stats()["tenants"]
        assert tenants == {"alpha": 1, "beta": 2}


class TestFlatMigration:
    def _flat_entry(self, root, key=("q",)) -> str:
        """Plant one entry in the pre-store flat DiskCache layout."""
        import hashlib

        from repro.solver.diskcache import _encode

        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        flat = os.path.join(root, digest[:2])
        os.makedirs(flat, exist_ok=True)
        path = os.path.join(flat, digest + ".json")
        entry = CachedResult(
            sat=True, iterations=1, int_values={0: 7},
            bool_values={}, tables={}, default=0,
        )
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(_encode(entry), handle)
        return path

    def test_flat_layout_imported_once_originals_intact(self, tmp_path, capfd):
        original = self._flat_entry(str(tmp_path))
        cache = DiskCache(str(tmp_path))
        # the old entry answers through the new layout
        hit = cache.lookup(("q",))
        assert hit is not None and hit.int_values == {0: 7}
        assert os.path.exists(original), "migration must not consume originals"
        assert "migrated 1 flat solver-cache entries" in capfd.readouterr().err
        # a second open is silent: the marker makes migration one-shot
        DiskCache(str(tmp_path))
        assert "migrated" not in capfd.readouterr().err

    def test_migration_marker_race_single_winner(self, tmp_path):
        self._flat_entry(str(tmp_path))
        first = ContentStore(str(tmp_path)).migrate_flat_solver_cache()
        second = ContentStore(str(tmp_path)).migrate_flat_solver_cache()
        assert first == 1 and second == 0


class TestDiskCacheAdapter:
    def test_digests_and_payloads_unchanged_from_flat_layout(self, tmp_path):
        """The adapter moves only the fanout: same digest, same payload."""
        import hashlib

        cache = DiskCache(str(tmp_path))
        key = ("canonical", 1, (2, 3))
        entry = CachedResult(
            sat=True, iterations=2, int_values={0: 1},
            bool_values={1: True}, tables={}, default=5,
        )
        cache.store(key, entry)
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        expected = os.path.join(
            str(tmp_path), "solver", digest[:2], digest + ".json"
        )
        assert cache.path_for(key) == expected
        with open(expected, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["format"] == DISKCACHE_FORMAT
        assert payload["sat"] is True and payload["default"] == 5
        assert len(cache) == 1

    def test_lookup_counts_follow_store(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        key = ("k",)
        assert cache.lookup(key) is None
        cache.store(key, CachedResult(
            sat=False, iterations=1, int_values={}, bool_values={},
            tables={}, default=0,
        ))
        assert cache.lookup(key) is not None
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)
        store_counters = cache.content_store.counters
        assert store_counters["store.solver.hits"] == 1
        assert store_counters["store.solver.misses"] == 1


class TestCampaignIntegration:
    def test_digest_identical_store_on_off_warm_and_after_eviction(
        self, tmp_path
    ):
        spec = _foo_spec()
        reference = api.Client(workers=1).submit(spec).wait()
        store_dir = str(tmp_path / "store")
        cold = api.Client(workers=1, store_dir=store_dir).submit(spec).wait()
        warm = api.Client(workers=1, store_dir=store_dir).submit(spec).wait()
        assert cold.campaign_digest == reference.campaign_digest
        assert warm.campaign_digest == reference.campaign_digest
        assert warm.cache_totals().get("disk_hits", 0) > 0
        # evict everything; the digest must still reproduce
        assert sum(ContentStore(store_dir).gc(0).values()) > 0
        again = api.Client(workers=1, store_dir=store_dir).submit(spec).wait()
        assert again.campaign_digest == reference.campaign_digest

    def test_corpus_and_crashes_persisted(self, tmp_path):
        store_dir = str(tmp_path / "store")
        report = api.Client(workers=1, store_dir=store_dir).submit(
            _foo_spec()
        ).wait()
        job = report.jobs[0]
        assert job.source_sha == source_sha(FOO.source)
        store = ContentStore(store_dir)
        entries = store.load_group(
            "corpus",
            corpus_group(job.source_sha, FOO.entry),
            expected_format=CORPUS_ENTRY_FORMAT,
        )
        assert len(entries) == len(job.corpus) > 0
        assert {input_digest(p["inputs"]) for _d, p in entries} == {
            input_digest(e["inputs"]) for e in job.corpus
        }
        crash_entries = store.load_group("crashes", crash_group(job.source_sha))
        assert {p["bucket"] for _d, p in crash_entries} == {
            str(c.get("bucket")) for c in job.crashes
        }

    def test_store_max_bytes_enforced_after_campaign(self, tmp_path):
        store_dir = str(tmp_path / "store")
        api.Client(
            workers=1, store_dir=store_dir, store_max_bytes=1
        ).submit(_foo_spec()).wait()
        assert ContentStore(store_dir).stats()["total_bytes"] <= 1


class TestSeeding:
    def test_seeded_run_is_deterministic(self, tmp_path):
        """Seeding is a pure function of the store state: two runs from
        identical stores agree byte-for-byte.  (A seeded run persists its
        own corpus back, so the copies keep the states identical.)"""
        import shutil

        store_dir = str(tmp_path / "store")
        run_job(_foo_job(), store_dir=store_dir)
        copy_a = str(tmp_path / "copy-a")
        copy_b = str(tmp_path / "copy-b")
        shutil.copytree(store_dir, copy_a)
        shutil.copytree(store_dir, copy_b)
        one = run_job(_foo_job(), store_dir=copy_a, seed_from_store=True)
        two = run_job(_foo_job(), store_dir=copy_b, seed_from_store=True)
        assert one.suite_digest == two.suite_digest
        assert one.runs == two.runs

    def test_seeding_off_by_default_preserves_digest(self, tmp_path):
        baseline = run_job(_foo_job())
        store_dir = str(tmp_path / "store")
        run_job(_foo_job(), store_dir=store_dir)
        rerun = run_job(_foo_job(), store_dir=store_dir)
        assert rerun.suite_digest == baseline.suite_digest

    def test_seeds_transfer_coverage_across_strategies(self, tmp_path):
        """The paper's foo: unsound concretization alone never reaches the
        error; seeded with the higher-order corpus it must."""
        store_dir = str(tmp_path / "store")
        run_job(_foo_job(), store_dir=store_dir)  # higher_order warms corpus
        unsound = _foo_job("unsound")
        cold = run_job(unsound)
        seeded = run_job(unsound, store_dir=store_dir, seed_from_store=True)
        assert not any("foo bug" in e for e in cold.errors)
        assert any("foo bug" in e for e in seeded.errors)
        assert seeded.paths > cold.paths

    def test_explicit_seed_corpus_wins_over_store(self, tmp_path):
        store_dir = str(tmp_path / "store")
        run_job(_foo_job(), store_dir=store_dir)
        explicit = _foo_job(seed_corpus=[dict(FOO.initial_inputs)])
        with_store = run_job(
            explicit, store_dir=store_dir, seed_from_store=True
        )
        without = run_job(explicit)
        assert with_store.suite_digest == without.suite_digest

    def test_seed_corpus_option_validates(self):
        from repro.errors import ReproError
        from repro.search.directed import SearchConfig

        config = SearchConfig.from_options(seed_corpus=[{"x": 1}])
        assert config.seed_corpus == ({"x": 1},)
        with pytest.raises(ReproError):
            SearchConfig.from_options(seed_corpus=[{"x": "not-an-int"}])


class TestCrashBucketQualification:
    def _result(self, key, source, bucket):
        return JobResult(
            key=key,
            source_sha=source_sha(source),
            crashes=[{"bucket": bucket, "count": 1}],
        )

    def test_same_bucket_different_programs_stay_distinct(self):
        report = ResultMerger().merge(
            [
                self._result("a", "int a;", "Error@3"),
                self._result("b", "int b;", "Error@3"),
            ]
        )
        assert len(report.crash_buckets) == 2
        for bucket in report.crash_buckets:
            assert bucket.endswith(":Error@3")

    def test_same_program_same_bucket_folds(self):
        report = ResultMerger().merge(
            [
                self._result("a", "int a;", "Error@3"),
                self._result("b", "int a;", "Error@3"),
            ]
        )
        assert list(report.crash_buckets.values()) == [2]

    def test_legacy_results_without_source_sha_unqualified(self):
        legacy = JobResult(key="a", crashes=[{"bucket": "Error@3", "count": 1}])
        report = ResultMerger().merge([legacy])
        assert report.crash_buckets == {"Error@3": 1}


class TestStoreCli:
    def _write_program(self, tmp_path):
        path = tmp_path / "foo.c"
        path.write_text(FOO.source, encoding="utf-8")
        return str(path)

    def test_run_with_store_then_stats_gc_verify_export(self, tmp_path, capsys):
        program = self._write_program(tmp_path)
        store_dir = str(tmp_path / "store")
        assert cli_main(["run", program, "--store-dir", store_dir]) == 0
        capsys.readouterr()
        assert cli_main(["store", "stats", "--store-dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "corpus:" in out and "solver:" in out
        assert cli_main(["store", "verify", "--store-dir", store_dir]) == 0
        assert (
            cli_main(
                [
                    "store", "export", "--store-dir", store_dir,
                    "--namespace", "corpus",
                    "--dest", str(tmp_path / "exported"),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            cli_main(
                ["store", "gc", "--store-dir", store_dir, "--max-bytes", "0"]
            )
            == 0
        )
        assert "evicted" in capsys.readouterr().out
        assert ContentStore(store_dir).stats()["total_bytes"] == 0

    def test_run_seed_from_store_finds_transferred_error(self, tmp_path):
        program = self._write_program(tmp_path)
        store_dir = str(tmp_path / "store")
        assert cli_main(["run", program, "--store-dir", store_dir]) == 0
        rc = cli_main(
            [
                "run", program, "--mode", "unsound",
                "--store-dir", store_dir, "--seed-from-store",
                "--expect-error",
            ]
        )
        assert rc == 0  # the seeded corpus carries the error-triggering input
        # and the corpus namespace recorded hits for the seed loads
        stats = ContentStore(store_dir).stats()
        assert stats["hits"].get("corpus", 0) > 0

    def test_campaign_store_flags(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(
            json.dumps(_foo_spec().as_payload()), encoding="utf-8"
        )
        store_dir = str(tmp_path / "store")
        rc = cli_main(
            ["campaign", str(spec), "--quiet", "--store-dir", store_dir]
        )
        assert rc == 0
        assert "store:" in capsys.readouterr().out
        assert ContentStore(store_dir).stats()["total_bytes"] > 0
