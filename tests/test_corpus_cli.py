"""Tests for the test corpus and the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.lang import NativeRegistry, parse_program
from repro.search import DirectedSearch, SearchConfig
from repro.search.corpus import CorpusEntry
from repro.search.corpus import TestCorpus as Corpus
from repro.symbolic import ConcretizationMode

SRC = """
int main(int x, int y) {
    if (x == hash(y)) {
        if (y == 10) {
            error("deep bug");
        }
    }
    return 0;
}
"""

PLAIN_SRC = """
int main(int x) {
    if (x > 5) { return 1; }
    return 0;
}
"""


def run_search():
    natives = NativeRegistry()
    natives.register("hash", lambda y: (y * 31 + 7) % 1000)
    search = DirectedSearch.for_mode(
        parse_program(SRC), "main", natives,
        ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=20),
    )
    return search.run({"x": 33, "y": 42})


class TestCorpusBasics:
    def test_harvest_from_search(self):
        corpus = Corpus()
        result = run_search()
        added = corpus.add_from_search(result)
        assert added == result.runs
        assert len(corpus.error_entries()) >= 1

    def test_dedup(self):
        corpus = Corpus()
        e = CorpusEntry.from_run({"x": 1}, 0, False)
        assert corpus.add(e)
        assert not corpus.add(e)
        assert len(corpus) == 1

    def test_save_load_roundtrip(self, tmp_path):
        corpus = Corpus()
        corpus.add_from_search(run_search())
        path = str(tmp_path / "corpus.json")
        corpus.save(path)
        loaded = Corpus.load(path)
        assert len(loaded) == len(corpus)
        assert [e.inputs for e in loaded] == [e.inputs for e in corpus]

    def test_load_rejects_non_list(self, tmp_path):
        from repro.errors import ReproError

        path = tmp_path / "bad.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(ReproError):
            Corpus.load(str(path))

    def test_replay_matches_original(self):
        corpus = Corpus()
        corpus.add_from_search(run_search())
        natives = NativeRegistry()
        natives.register("hash", lambda y: (y * 31 + 7) % 1000)
        report = corpus.replay(parse_program(SRC), "main", natives)
        assert report.all_match

    def test_replay_detects_behaviour_drift(self):
        corpus = Corpus()
        corpus.add_from_search(run_search())
        # a "fixed" program: the error was removed
        fixed = SRC.replace('error("deep bug");', "return 7;")
        natives = NativeRegistry()
        natives.register("hash", lambda y: (y * 31 + 7) % 1000)
        report = corpus.replay(parse_program(fixed), "main", natives)
        assert not report.all_match
        assert len(report.mismatches) >= 1

    def test_replay_detects_native_drift(self):
        corpus = Corpus()
        corpus.add_from_search(run_search())
        natives = NativeRegistry()
        natives.register("hash", lambda y: y + 1)  # different hash
        report = corpus.replay(parse_program(SRC), "main", natives)
        assert not report.all_match


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "prog.minic"
    path.write_text(SRC)
    return str(path)


class TestCli:
    def test_run_higher_order_finds_bug(self, program_file, capsys):
        code = main(
            ["run", program_file, "--seed", "x=33,y=42", "--expect-error"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "errors=1" in out

    def test_run_unsound_misses(self, program_file, capsys):
        code = main(
            [
                "run", program_file, "--mode", "unsound",
                "--seed", "x=33,y=42", "--expect-error",
            ]
        )
        assert code == 1  # expect-error not met

    def test_modes_compares_engines(self, program_file, capsys):
        assert main(["modes", program_file, "--seed", "x=33,y=42"]) == 0
        out = capsys.readouterr().out
        assert "unsound" in out and "higher_order" in out

    def test_fuzz_command(self, tmp_path, capsys):
        path = tmp_path / "plain.minic"
        path.write_text(PLAIN_SRC)
        assert main(["fuzz", str(path), "--runs", "50"]) == 0
        out = capsys.readouterr().out
        assert "[random]" in out

    def test_corpus_save_and_replay(self, program_file, tmp_path, capsys):
        corpus_path = str(tmp_path / "c.json")
        assert main(
            ["run", program_file, "--seed", "x=33,y=42", "--corpus", corpus_path]
        ) == 0
        assert main(["replay", program_file, corpus_path]) == 0
        out = capsys.readouterr().out
        assert "matching" in out

    def test_missing_file_reports_error(self, capsys):
        code = main(["run", "/nonexistent/prog.minic"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_seed_reports_error(self, program_file, capsys):
        code = main(["run", program_file, "--seed", "garbage"])
        assert code == 2

    def test_default_entry_is_main(self, program_file, capsys):
        assert main(["run", program_file, "--seed", "x=33,y=42"]) == 0

    def test_coverage_frontier_flag(self, program_file):
        assert main(
            [
                "run", program_file, "--seed", "x=33,y=42",
                "--frontier", "coverage",
            ]
        ) == 0
