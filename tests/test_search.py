"""Tests for the directed search, coverage tracking, and backends."""

import pytest

from repro.core import SampleStore
from repro.core.hotg import HigherOrderBackend, MultiStepDriver
from repro.lang import NativeRegistry, parse_program
from repro.search import (
    BranchCoverage,
    DirectedSearch,
    QuantifierFreeBackend,
    SearchConfig,
)
from repro.search.request import GenerationRequest
from repro.solver import TermManager
from repro.symbolic import ConcolicEngine, ConcretizationMode


def natives_with_hash():
    n = NativeRegistry()
    n.register("hash", lambda y: (y * 31 + 7) % 1000)
    return n


LINEAR = """
int f(int x, int y) {
    if (x > 10) {
        if (y == x + 1) {
            error("both");
        }
        return 1;
    }
    if (y < 0) { return 2; }
    return 0;
}
"""


class TestDirectedSearchBasics:
    def test_full_coverage_on_linear_program(self):
        search = DirectedSearch.for_mode(
            parse_program(LINEAR), "f", NativeRegistry(),
            ConcretizationMode.SOUND, SearchConfig(max_runs=30),
        )
        res = search.run({"x": 0, "y": 0})
        assert res.found_error
        assert res.coverage.ratio() == 1.0

    def test_deterministic_across_sessions(self):
        outs = []
        for _ in range(2):
            search = DirectedSearch.for_mode(
                parse_program(LINEAR), "f", NativeRegistry(),
                ConcretizationMode.SOUND, SearchConfig(max_runs=30),
            )
            res = search.run({"x": 0, "y": 0})
            outs.append(
                (res.runs, res.distinct_paths, len(res.errors))
            )
        assert outs[0] == outs[1]

    def test_stop_on_first_error(self):
        cfg = SearchConfig(max_runs=50, stop_on_first_error=True)
        search = DirectedSearch.for_mode(
            parse_program(LINEAR), "f", NativeRegistry(),
            ConcretizationMode.SOUND, cfg,
        )
        res = search.run({"x": 0, "y": 0})
        assert len(res.errors) == 1

    def test_run_budget_respected(self):
        cfg = SearchConfig(max_runs=2)
        search = DirectedSearch.for_mode(
            parse_program(LINEAR), "f", NativeRegistry(),
            ConcretizationMode.SOUND, cfg,
        )
        res = search.run({"x": 0, "y": 0})
        assert res.runs <= 2

    def test_input_dedup(self):
        search = DirectedSearch.for_mode(
            parse_program(LINEAR), "f", NativeRegistry(),
            ConcretizationMode.SOUND, SearchConfig(max_runs=50),
        )
        res = search.run({"x": 0, "y": 0})
        vectors = [tuple(sorted(r.result.inputs.items())) for r in res.executions]
        assert len(vectors) == len(set(vectors))

    def test_unconstrained_inputs_keep_previous_values(self):
        src = "int f(int x, int y) { if (x == 5) { return 1; } return 0; }"
        search = DirectedSearch.for_mode(
            parse_program(src), "f", NativeRegistry(),
            ConcretizationMode.SOUND, SearchConfig(max_runs=10),
        )
        res = search.run({"x": 0, "y": 77})
        # every generated vector keeps y = 77: only x was constrained
        assert all(r.result.inputs["y"] == 77 for r in res.executions)

    def test_loop_bounded_exploration(self):
        src = """
        int f(int n) {
            int i = 0;
            while (i < n) { i = i + 1; }
            if (i == 3) { error("loop hit 3"); }
            return i;
        }
        """
        search = DirectedSearch.for_mode(
            parse_program(src), "f", NativeRegistry(),
            ConcretizationMode.SOUND, SearchConfig(max_runs=40),
        )
        res = search.run({"n": 0})
        assert res.found_error
        assert res.errors[0].inputs["n"] == 3

    def test_error_report_rendering(self):
        search = DirectedSearch.for_mode(
            parse_program(LINEAR), "f", NativeRegistry(),
            ConcretizationMode.SOUND, SearchConfig(max_runs=30),
        )
        res = search.run({"x": 0, "y": 0})
        text = str(res.errors[0])
        assert "both" in text and "line" in text

    def test_summary_string(self):
        search = DirectedSearch.for_mode(
            parse_program(LINEAR), "f", NativeRegistry(),
            ConcretizationMode.SOUND, SearchConfig(max_runs=5),
        )
        res = search.run({"x": 0, "y": 0})
        assert "runs=" in res.summary() and "coverage=" in res.summary()


class TestBranchCoverage:
    def test_ratio_and_missing(self):
        prog = parse_program(LINEAR)
        cov = BranchCoverage(prog)
        assert cov.ratio() == 0.0
        cov.record({(0, False), (2, False)})
        assert 0 < cov.ratio() < 1
        missing = cov.missing()
        assert (0, True) in missing and (0, False) not in missing

    def test_history_tracks_runs(self):
        prog = parse_program(LINEAR)
        cov = BranchCoverage(prog)
        cov.record({(0, True)})
        cov.record({(0, True)})
        cov.record({(0, False)})
        assert cov.history == [(1, 1), (2, 1), (3, 2)]

    def test_report_lists_missing(self):
        prog = parse_program(LINEAR)
        cov = BranchCoverage(prog)
        cov.record({(0, True)})
        report = cov.report()
        assert "missing" in report

    def test_program_without_branches(self):
        prog = parse_program("int f(int x) { return x; }")
        cov = BranchCoverage(prog)
        assert cov.ratio() == 1.0
        assert cov.report().startswith("branch coverage: 0/0")


class TestDivergenceDetection:
    def test_unsound_hash_divergence_counted(self):
        src = """
        int f(int x, int y) {
            if (x == hash(y)) {
                if (y == 10) { error("deep"); }
            }
            return 0;
        }
        """
        search = DirectedSearch.for_mode(
            parse_program(src), "f", natives_with_hash(),
            ConcretizationMode.UNSOUND, SearchConfig(max_runs=20),
        )
        hv = (42 * 31 + 7) % 1000
        res = search.run({"x": hv, "y": 42})
        assert res.divergences >= 1
        diverged = [r for r in res.executions if r.diverged]
        assert diverged

    def test_sound_modes_never_diverge(self):
        src = """
        int f(int x, int y) {
            if (x == hash(y)) {
                if (y == 10) { error("deep"); }
            }
            return 0;
        }
        """
        for mode in (
            ConcretizationMode.SOUND,
            ConcretizationMode.SOUND_DELAYED,
            ConcretizationMode.HIGHER_ORDER,
        ):
            search = DirectedSearch.for_mode(
                parse_program(src), "f", natives_with_hash(), mode,
                SearchConfig(max_runs=30),
            )
            res = search.run({"x": 3, "y": 42})
            assert res.divergences == 0, mode


class TestMultiStepDriver:
    def test_resolves_with_existing_samples(self):
        from repro.solver.validity import AppValue, Sample, Strategy

        tm = TermManager()
        h = tm.mk_function("h", 1)
        store = SampleStore()
        store.add(Sample(h, (10,), 66))
        calls = []
        driver = MultiStepDriver(store, calls.append, max_steps=2)
        strategy = Strategy({"x": AppValue(h, (10,)), "y": 10})
        inputs = driver.resolve(strategy, {"x": 0, "y": 0})
        assert inputs == {"x": 66, "y": 10}
        assert calls == []  # no probe needed

    def test_probes_until_sample_learned(self):
        from repro.solver.validity import AppValue, Sample, Strategy

        tm = TermManager()
        h = tm.mk_function("h", 1)
        store = SampleStore()

        def probe(inputs):
            # the "program" hashes its y input
            store.add(Sample(h, (inputs["y"],), inputs["y"] * 7))

        driver = MultiStepDriver(store, probe, max_steps=2)
        strategy = Strategy({"x": AppValue(h, (10,)), "y": 10})
        inputs = driver.resolve(strategy, {"x": 5, "y": 5})
        assert inputs == {"x": 70, "y": 10}
        assert len(driver.probes) == 1
        assert driver.probes[0].resolved

    def test_gives_up_when_probe_learns_nothing(self):
        from repro.solver.validity import AppValue, Strategy

        tm = TermManager()
        h = tm.mk_function("h", 1)
        store = SampleStore()
        driver = MultiStepDriver(store, lambda inputs: None, max_steps=3)
        strategy = Strategy({"x": AppValue(h, (10,)), "y": 10})
        assert driver.resolve(strategy, {}) is None
        assert len(driver.probes) == 1  # stops after a fruitless probe

    def test_offset_applied_after_learning(self):
        from repro.solver.validity import AppValue, Sample, Strategy

        tm = TermManager()
        h = tm.mk_function("h", 1)
        store = SampleStore()

        def probe(inputs):
            store.add(Sample(h, (10,), 100))

        driver = MultiStepDriver(store, probe, max_steps=2)
        strategy = Strategy({"x": AppValue(h, (10,), offset=1), "y": 10})
        inputs = driver.resolve(strategy, {})
        assert inputs == {"x": 101, "y": 10}


class TestHigherOrderBackendDirect:
    def test_generate_returns_none_on_invalid(self):
        tm = TermManager()
        prog = parse_program(
            "int f(int x, int y) {"
            " if (x == hash(y) && y == hash(x)) { error(\"e\"); } return 0; }"
        )
        engine = ConcolicEngine(
            prog, natives_with_hash(), ConcretizationMode.HIGHER_ORDER, tm
        )
        run = engine.run("f", {"x": 3, "y": 4})
        store = SampleStore()
        store.merge_from_run(run)
        backend = HigherOrderBackend(tm, store)
        request = GenerationRequest(
            conditions=list(run.path_conditions),
            index=0,
            input_vars=dict(run.input_vars),
            defaults=dict(run.inputs),
        )
        assert backend.generate(request) is None
        assert backend.verdicts[-1].status.value == "invalid"

    def test_post_formula_rendering(self):
        tm = TermManager()
        prog = parse_program(
            "int f(int x, int y) { if (x == hash(y)) { return 1; } return 0; }"
        )
        engine = ConcolicEngine(
            prog, natives_with_hash(), ConcretizationMode.HIGHER_ORDER, tm
        )
        run = engine.run("f", {"x": 3, "y": 4})
        store = SampleStore()
        store.merge_from_run(run)
        backend = HigherOrderBackend(tm, store)
        request = GenerationRequest(
            conditions=list(run.path_conditions),
            index=0,
            input_vars=dict(run.input_vars),
            defaults=dict(run.inputs),
        )
        post = backend.post_formula(request)
        text = post.render()
        assert "∃" in text and "⇒" in text and "hash" in text
