"""Tests for `for` loops and resource-limit behaviour."""

import pytest

from repro.errors import ParseError, ResourceLimitError, StepBudgetExceeded
from repro.lang import Interpreter, NativeRegistry, parse_program
from repro.search import DirectedSearch, SearchConfig
from repro.solver import Solver, TermManager
from repro.symbolic import ConcolicEngine, ConcretizationMode


class TestForLoops:
    def test_basic_counting(self):
        src = """
        int main(int n) {
            int total = 0;
            for (int i = 1; i <= n; i = i + 1) {
                total = total + i;
            }
            return total;
        }
        """
        assert Interpreter(parse_program(src)).run("main", {"n": 10}).returned == 55

    def test_assignment_init(self):
        src = """
        int main(int n) {
            int i = 100;
            int count = 0;
            for (i = 0; i < n; i = i + 1) { count = count + 2; }
            return count + i;
        }
        """
        assert Interpreter(parse_program(src)).run("main", {"n": 3}).returned == 9

    def test_empty_init_and_update(self):
        src = """
        int main(int n) {
            for (; n > 0;) { n = n - 1; }
            return n;
        }
        """
        assert Interpreter(parse_program(src)).run("main", {"n": 5}).returned == 0

    def test_array_update_clause(self):
        src = """
        int main(int n) {
            int a[4];
            int i = 0;
            for (; i < 4; a[i] = i) { i = i + 1; }
            return a[3];
        }
        """
        # documents evaluation order: the update clause runs AFTER the
        # body, so the body's `i = i + 1` makes the final update write
        # a[4] — out of bounds, surfaced as a confirmable program error
        result = Interpreter(parse_program(src)).run("main", {"n": 0})
        assert result.error and "out of bounds" in result.error_message

    def test_loop_variable_visible_after_loop(self):
        src = """
        int main(int n) {
            for (int i = 0; i < n; i = i + 1) { }
            return 0;
        }
        """
        # desugaring keeps `i` in function scope; verify it parses and runs
        assert Interpreter(parse_program(src)).run("main", {"n": 2}).returned == 0

    def test_for_is_a_branch_site(self):
        src = """
        int main(int n) {
            for (int i = 0; i < n; i = i + 1) { }
            return 0;
        }
        """
        prog = parse_program(src)
        assert prog.num_branches == 1

    def test_concolic_explores_for_loop(self):
        src = """
        int main(int n) {
            int total = 0;
            for (int i = 0; i < n; i = i + 1) { total = total + 1; }
            if (total == 3) { error("three iterations"); }
            return total;
        }
        """
        search = DirectedSearch.for_mode(
            parse_program(src), "main", NativeRegistry(),
            ConcretizationMode.SOUND, SearchConfig(max_runs=30),
        )
        result = search.run({"n": 0})
        assert result.found_error
        assert result.errors[0].inputs["n"] == 3

    def test_pretty_printer_handles_desugared_for(self):
        from repro.lang import pretty_program

        src = """
        int main(int n) {
            for (int i = 0; i < n; i = i + 1) { n = n; }
            return n;
        }
        """
        prog = parse_program(src)
        rendered = pretty_program(prog)
        # renders as the desugared while loop; must re-parse cleanly
        reparsed = parse_program(rendered)
        assert reparsed.num_branches == prog.num_branches

    def test_malformed_for_rejected(self):
        with pytest.raises(ParseError):
            parse_program("int main(int n) { for (int i = 0) { } return 0; }")


class TestResourceLimits:
    def test_concolic_step_budget(self):
        src = "int main(int x) { while (1) { x = x + 1; } return x; }"
        engine = ConcolicEngine(
            parse_program(src), NativeRegistry(),
            ConcretizationMode.SOUND, TermManager(), step_budget=2000,
        )
        with pytest.raises(StepBudgetExceeded):
            engine.run("main", {"x": 0})

    def test_solver_iteration_budget(self):
        tm = TermManager()
        solver = Solver(tm, max_iterations=1)
        x = tm.mk_var("x")
        h = tm.mk_function("h", 1)
        # force at least one theory conflict so the loop needs 2 iterations
        solver.add(
            tm.mk_or(
                tm.mk_and(tm.mk_gt(x, tm.mk_int(5)), tm.mk_lt(x, tm.mk_int(3))),
                tm.mk_eq(tm.mk_app(h, [x]), tm.mk_int(1)),
            )
        )
        try:
            solver.check()
        except ResourceLimitError:
            pass  # acceptable: budget genuinely exhausted

    def test_lia_branch_budget(self):
        from repro.solver import LiaSolver

        lia = LiaSolver(max_branches=1, presolve=False)
        x, y = lia.new_var("x"), lia.new_var("y")
        lia.add_ge({x: 2, y: 3}, 7)
        lia.add_le({x: 2, y: 3}, 7)
        with pytest.raises(ResourceLimitError):
            lia.check()

    def test_search_multistep_budget_respected(self):
        natives = NativeRegistry()
        natives.register("hash", lambda v: (v * 131 + 17) % 10007)
        src = """
        int main(int x, int y) {
            if (x == hash(y)) {
                if (y == 10) { error("bug"); }
            }
            return 0;
        }
        """
        search = DirectedSearch.for_mode(
            parse_program(src), "main", natives,
            ConcretizationMode.HIGHER_ORDER,
            SearchConfig(max_runs=40, max_multistep_probes=0),
        )
        result = search.run({"x": 1, "y": 2})
        # with zero probes allowed, multi-step strategies cannot resolve;
        # the deep bug stays unfound but nothing crashes
        assert not result.found_error
