"""Tests for the hash zoo and word codecs."""

import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.hashes import (
    codes_to_word,
    crc32,
    djb2,
    flex_hash,
    fnv1a,
    sdbm,
    standard_registry,
    toy_block_cipher,
    word_to_codes,
)


def codes(word):
    return [ord(c) for c in word]


class TestFlexHash:
    def test_deterministic(self):
        assert flex_hash(codes("while"), 1 << 14) == flex_hash(
            codes("while"), 1 << 14
        )

    def test_range(self):
        for word in ("if", "for", "return", "x"):
            assert 0 <= flex_hash(codes(word), 100) < 100

    def test_zero_terminates(self):
        assert flex_hash([105, 102, 0, 99], 1 << 14) == flex_hash(
            [105, 102], 1 << 14
        )

    def test_empty_word(self):
        assert flex_hash([], 64) == 0


class TestClassicHashes:
    def test_djb2_known_value(self):
        # djb2("a") = 5381*33 + 97 = 177670
        assert djb2(codes("a")) == 177670

    def test_fnv1a_known_value(self):
        # standard FNV-1a test vector: fnv1a("a") = 0xe40c292c
        assert fnv1a(codes("a")) == 0xE40C292C

    def test_sdbm_nonzero(self):
        assert sdbm(codes("test")) != 0

    def test_crc32_matches_zlib(self):
        for word in ("a", "abc", "hello world", "keyword"):
            assert crc32(codes(word)) == zlib.crc32(word.encode())

    @given(st.text(alphabet=st.characters(min_codepoint=1, max_codepoint=127), max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_crc32_property_matches_zlib(self, word):
        assert crc32(codes(word)) == zlib.crc32(word.encode())

    def test_all_hashes_distinguish_some_words(self):
        words = ["if", "for", "int", "ret"]
        for fn in (djb2, fnv1a, sdbm, crc32):
            values = {fn(codes(w)) for w in words}
            assert len(values) == len(words), fn.__name__


class TestToyCipher:
    def test_deterministic(self):
        assert toy_block_cipher(12345, 999) == toy_block_cipher(12345, 999)

    def test_key_sensitivity(self):
        assert toy_block_cipher(12345, 1) != toy_block_cipher(12345, 2)

    def test_block_sensitivity(self):
        assert toy_block_cipher(1, 999) != toy_block_cipher(2, 999)

    def test_range(self):
        assert 0 <= toy_block_cipher(2**31, 2**31) < 2**32


class TestWordCodecs:
    def test_roundtrip(self):
        for word in ("if", "ret", "abcd", ""):
            assert codes_to_word(word_to_codes(word, 4)) == word

    def test_padding(self):
        assert word_to_codes("if", 4) == (105, 102, 0, 0)

    def test_too_long_rejected(self):
        with pytest.raises(ValueError):
            word_to_codes("toolong", 4)

    def test_nonprintable_replaced(self):
        assert codes_to_word((5, 200)) == "??"

    @given(st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126), max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, word):
        assert codes_to_word(word_to_codes(word, 8)) == word


class TestStandardRegistry:
    def test_all_functions_present(self):
        reg = standard_registry(width=4)
        for name in ("flex_hash", "djb2", "fnv1a", "sdbm", "crc32", "cipher", "hash"):
            assert name in reg

    def test_word_hash_callable_through_registry(self):
        reg = standard_registry(width=4)
        w = word_to_codes("ret", 4)
        assert reg.call("djb2", w) == djb2(w)

    def test_arities(self):
        reg = standard_registry(width=4)
        assert reg.lookup("flex_hash").arity == 4
        assert reg.lookup("cipher").arity == 2
        assert reg.lookup("hash").arity == 1
