"""Tests for validity/invalidity certificates."""

import pytest

from repro.errors import SolverError
from repro.solver import TermManager
from repro.solver.certificates import (
    InvalidityCertificate,
    ValidityCertificate,
    certify,
)
from repro.solver.validity import (
    AppValue,
    Sample,
    Strategy,
    ValidityChecker,
    ValidityResult,
    ValidityStatus,
)


@pytest.fixture()
def ctx():
    tm = TermManager()
    return {
        "tm": tm,
        "x": tm.mk_var("x"),
        "y": tm.mk_var("y"),
        "h": tm.mk_function("h", 1),
        "vc": ValidityChecker(tm),
    }


class TestValidityCertificates:
    def test_certify_valid_verdict(self, ctx):
        tm, x, y, h = ctx["tm"], ctx["x"], ctx["y"], ctx["h"]
        pc = tm.mk_eq(x, tm.mk_app(h, [y]))
        samples = [Sample(h, (42,), 567)]
        verdict = ctx["vc"].check(pc, [x, y], samples)
        cert = certify(tm, verdict, pc, [x, y], samples)
        assert isinstance(cert, ValidityCertificate)
        assert cert.check(tm)

    def test_certificate_smtlib_export(self, ctx):
        tm, x, y, h = ctx["tm"], ctx["x"], ctx["y"], ctx["h"]
        pc = tm.mk_eq(x, tm.mk_app(h, [y]))
        samples = [Sample(h, (42,), 567)]
        verdict = ctx["vc"].check(pc, [x, y], samples)
        cert = certify(tm, verdict, pc, [x, y], samples)
        script = cert.to_smtlib(tm)
        assert "(check-sat)" in script and "(declare-fun h" in script

    def test_bogus_strategy_rejected(self, ctx):
        tm, x, y, h = ctx["tm"], ctx["x"], ctx["y"], ctx["h"]
        pc = tm.mk_eq(x, tm.mk_app(h, [y]))
        bogus = ValidityResult(
            status=ValidityStatus.VALID,
            strategy=Strategy({"x": 1, "y": 2}),  # 1 != h(2) in general
        )
        with pytest.raises(SolverError):
            certify(tm, bogus, pc, [x, y], [Sample(h, (42,), 567)])

    def test_multistep_strategy_certifies(self, ctx):
        tm, x, y, h = ctx["tm"], ctx["x"], ctx["y"], ctx["h"]
        pc = tm.mk_and(
            tm.mk_eq(x, tm.mk_app(h, [y])), tm.mk_eq(y, tm.mk_int(10))
        )
        samples = [Sample(h, (42,), 567)]
        verdict = ctx["vc"].check(pc, [x, y], samples)
        cert = certify(tm, verdict, pc, [x, y], samples)
        # the strategy references the unsampled point h(10) yet the
        # certificate holds for every h: the UNSAT check is symbolic
        assert cert.check(tm)

    def test_incomplete_strategy_fails_check(self, ctx):
        tm, x, y, h = ctx["tm"], ctx["x"], ctx["y"], ctx["h"]
        pc = tm.mk_eq(x, tm.mk_app(h, [y]))
        cert = ValidityCertificate(
            pc=pc, input_vars=[x, y], samples=[], strategy=Strategy({"x": 1})
        )
        assert not cert.check(tm)


class TestInvalidityCertificates:
    def test_certify_invalid_verdict(self, ctx):
        tm, x, y, h = ctx["tm"], ctx["x"], ctx["y"], ctx["h"]
        pc = tm.mk_and(
            tm.mk_eq(x, tm.mk_app(h, [y])), tm.mk_eq(y, tm.mk_app(h, [x]))
        )
        samples = [Sample(h, (42,), 567), Sample(h, (33,), 123)]
        verdict = ctx["vc"].check(pc, [x, y], samples)
        assert verdict.status is ValidityStatus.INVALID
        cert = certify(tm, verdict, pc, [x, y], samples)
        assert isinstance(cert, InvalidityCertificate)
        assert cert.check(tm)

    def test_fastpath_invalid_gets_default_adversary(self, ctx):
        tm, x = ctx["tm"], ctx["x"]
        pc = tm.mk_and(
            tm.mk_gt(x, tm.mk_int(0)), tm.mk_lt(x, tm.mk_int(0))
        )
        verdict = ctx["vc"].check(pc, [x], [])
        cert = certify(tm, verdict, pc, [x], [])
        assert isinstance(cert, InvalidityCertificate)
        assert cert.check(tm)

    def test_unknown_cannot_certify(self, ctx):
        tm, x = ctx["tm"], ctx["x"]
        with pytest.raises(SolverError):
            certify(
                tm,
                ValidityResult(status=ValidityStatus.UNKNOWN),
                tm.mk_gt(x, tm.mk_int(0)),
                [x],
            )

    def test_sample_inconsistent_adversary_fails(self, ctx):
        from repro.solver import Model

        tm, x, h = ctx["tm"], ctx["x"], ctx["h"]
        pc = tm.mk_gt(tm.mk_app(h, [x]), tm.mk_int(0))
        bad = Model(default=0)
        bad.functions[h] = {(1,): 99}  # contradicts the recorded sample
        cert = InvalidityCertificate(
            pc=pc,
            input_vars=[x],
            samples=[Sample(h, (1,), 5)],
            adversary=bad,
        )
        assert not cert.check(tm)


class TestEndToEndCertification:
    @pytest.mark.parametrize(
        "name", ["obscure", "bar", "pub", "euf_eq"]
    )
    def test_all_paper_verdicts_certify(self, name):
        """Every decidable verdict on the paper examples round-trips
        through certification."""
        from repro.apps.paper_programs import PAPER_EXAMPLES, make_paper_natives
        from repro.core import SampleStore, alternate_constraint, negatable_indices
        from repro.symbolic import ConcolicEngine, ConcretizationMode

        ex = PAPER_EXAMPLES[name]
        tm = TermManager()
        engine = ConcolicEngine(
            ex.program(), make_paper_natives(),
            ConcretizationMode.HIGHER_ORDER, tm,
        )
        run = engine.run(ex.entry, dict(ex.initial_inputs))
        store = SampleStore()
        store.merge_from_run(run)
        checker = ValidityChecker(tm)
        for i in negatable_indices(run.path_conditions):
            alt = alternate_constraint(tm, run.path_conditions, i)
            verdict = checker.check(
                alt, list(run.input_vars.values()), store.samples(),
                defaults=dict(run.inputs),
            )
            if verdict.status is ValidityStatus.UNKNOWN:
                continue
            cert = certify(
                tm, verdict, alt, list(run.input_vars.values()), store.samples()
            )
            assert cert.check(tm)
