"""Tests for the random-fuzzing and static test generation baselines."""

import pytest

from repro.apps.paper_programs import PAPER_EXAMPLES, make_paper_natives
from repro.baselines import RandomFuzzer, StaticTestGenerator
from repro.lang import NativeRegistry, parse_program
from repro.search import SearchConfig

EASY = """
int easy(int x) {
    if (x > 0) {
        if (x < 10) { error("window"); }
    }
    return 0;
}
"""


class TestRandomFuzzer:
    def test_finds_wide_bug(self):
        fuzzer = RandomFuzzer(
            parse_program(EASY), "easy", NativeRegistry(),
            default_range=(-20, 20), seed=1,
        )
        res = fuzzer.run(max_runs=200)
        assert res.found_error

    def test_deterministic_with_seed(self):
        mk = lambda: RandomFuzzer(
            parse_program(EASY), "easy", NativeRegistry(),
            default_range=(-20, 20), seed=5,
        )
        r1, r2 = mk().run(100), mk().run(100)
        assert len(r1.errors) == len(r2.errors)
        assert r1.distinct_paths == r2.distinct_paths

    def test_different_seeds_differ(self):
        runs = []
        for seed in (1, 2):
            fuzzer = RandomFuzzer(
                parse_program(EASY), "easy", NativeRegistry(),
                default_range=(-1000, 1000), seed=seed,
            )
            res = fuzzer.run(50)
            runs.append([e.inputs for e in res.errors])
        # not a strict requirement, but overwhelmingly likely
        assert runs[0] != runs[1] or not runs[0]

    def test_stop_on_first_error(self):
        fuzzer = RandomFuzzer(
            parse_program(EASY), "easy", NativeRegistry(),
            default_range=(1, 9), seed=1,
        )
        res = fuzzer.run(max_runs=100, stop_on_first_error=True)
        assert len(res.errors) == 1
        assert res.runs < 100

    def test_per_variable_ranges(self):
        src = "int f(int a, int b) { if (a == b) { error(\"eq\"); } return 0; }"
        fuzzer = RandomFuzzer(
            parse_program(src), "f", NativeRegistry(),
            ranges={"a": (5, 5), "b": (5, 5)}, seed=0,
        )
        res = fuzzer.run(3)
        assert len(res.errors) == 3

    def test_coverage_tracked(self):
        fuzzer = RandomFuzzer(
            parse_program(EASY), "easy", NativeRegistry(),
            default_range=(-20, 20), seed=1,
        )
        res = fuzzer.run(200)
        assert res.coverage.ratio() > 0
        assert res.summary().startswith("runs=200")


class TestStaticTestGenerator:
    def test_covers_arithmetic_only_programs(self):
        # with no unknown functions, static generation works fine
        gen = StaticTestGenerator(
            parse_program(EASY), "easy", NativeRegistry(),
            SearchConfig(max_runs=20),
        )
        res = gen.run({"x": -5})
        assert res.found_error

    def test_helpless_on_obscure(self):
        ex = PAPER_EXAMPLES["obscure"]
        gen = StaticTestGenerator(
            ex.program(), ex.entry, make_paper_natives(),
            SearchConfig(max_runs=30),
        )
        res = gen.run(dict(ex.initial_inputs))
        assert not res.found_error

    def test_invented_function_values_cause_divergence(self):
        ex = PAPER_EXAMPLES["obscure"]
        gen = StaticTestGenerator(
            ex.program(), ex.entry, make_paper_natives(),
            SearchConfig(max_runs=30),
        )
        res = gen.run(dict(ex.initial_inputs))
        assert res.divergences >= 1
