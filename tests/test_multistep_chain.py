"""k-step test generation: the paper's Example 7 generalized.

"Of course, such examples can easily be generalized to k-step test
generation for any k bounded by the number of program inputs."  These
tests build chained hash dependencies of depth 3 and 4 and check the
higher-order engine threads the whole chain, learning one sample per
level, while every other technique is blind past level one.
"""

import pytest

from repro.lang import NativeRegistry, parse_program
from repro.search import DirectedSearch, SearchConfig
from repro.symbolic import ConcretizationMode

CHAIN3 = """
int chain3(int x, int y, int z) {
    if (x == hash(y)) {
        if (z == hash(x)) {
            if (y == 5) {
                error("three levels deep");
            }
        }
    }
    return 0;
}
"""

CHAIN4 = """
int chain4(int w, int x, int y, int z) {
    if (x == hash(y)) {
        if (z == hash(x)) {
            if (w == hash(z)) {
                if (y == 5) {
                    error("four levels deep");
                }
            }
        }
    }
    return 0;
}
"""


def hash_fn(v):
    return (v * 131 + 17) % 10007


def make_natives():
    n = NativeRegistry()
    n.register("hash", hash_fn)
    return n


class TestThreeStepChain:
    def test_higher_order_threads_the_chain(self):
        search = DirectedSearch.for_mode(
            parse_program(CHAIN3), "chain3", make_natives(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=60),
        )
        result = search.run({"x": 1, "y": 2, "z": 3})
        assert result.found_error
        err = result.errors[0]
        assert err.inputs["y"] == 5
        assert err.inputs["x"] == hash_fn(5)
        assert err.inputs["z"] == hash_fn(hash_fn(5))

    def test_no_divergences(self):
        search = DirectedSearch.for_mode(
            parse_program(CHAIN3), "chain3", make_natives(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=60),
        )
        result = search.run({"x": 1, "y": 2, "z": 3})
        assert result.divergences == 0

    def test_probes_were_needed(self):
        search = DirectedSearch.for_mode(
            parse_program(CHAIN3), "chain3", make_natives(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=60),
        )
        result = search.run({"x": 1, "y": 2, "z": 3})
        probes = [r for r in result.executions if r.note == "multi-step probe"]
        assert probes  # at least one intermediate learning run

    def test_unsound_cannot_thread(self):
        search = DirectedSearch.for_mode(
            parse_program(CHAIN3), "chain3", make_natives(),
            ConcretizationMode.UNSOUND, SearchConfig(max_runs=60),
        )
        result = search.run({"x": 1, "y": 2, "z": 3})
        assert not result.found_error

    def test_sound_cannot_thread(self):
        search = DirectedSearch.for_mode(
            parse_program(CHAIN3), "chain3", make_natives(),
            ConcretizationMode.SOUND, SearchConfig(max_runs=60),
        )
        result = search.run({"x": 1, "y": 2, "z": 3})
        assert not result.found_error


class TestFourStepChain:
    def test_higher_order_threads_four_levels(self):
        search = DirectedSearch.for_mode(
            parse_program(CHAIN4), "chain4", make_natives(),
            ConcretizationMode.HIGHER_ORDER,
            SearchConfig(max_runs=120, max_multistep_probes=6),
        )
        result = search.run({"w": 0, "x": 1, "y": 2, "z": 3})
        assert result.found_error
        err = result.errors[0]
        x = hash_fn(5)
        z = hash_fn(x)
        w = hash_fn(z)
        assert err.inputs == {"y": 5, "x": x, "z": z, "w": w}

    def test_full_coverage(self):
        search = DirectedSearch.for_mode(
            parse_program(CHAIN4), "chain4", make_natives(),
            ConcretizationMode.HIGHER_ORDER,
            SearchConfig(max_runs=120, max_multistep_probes=6),
        )
        result = search.run({"w": 0, "x": 1, "y": 2, "z": 3})
        assert result.coverage.ratio() == 1.0


class TestFrontierScheduling:
    def test_generational_scheduler_also_finds_chain(self):
        search = DirectedSearch.for_mode(
            parse_program(CHAIN3), "chain3", make_natives(),
            ConcretizationMode.HIGHER_ORDER,
            SearchConfig(max_runs=60, scheduler="generational"),
        )
        result = search.run({"x": 1, "y": 2, "z": 3})
        assert result.found_error

    def test_timing_stats_populated(self):
        search = DirectedSearch.for_mode(
            parse_program(CHAIN3), "chain3", make_natives(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=60),
        )
        result = search.run({"x": 1, "y": 2, "z": 3})
        assert result.time_total > 0
        assert result.time_executing > 0
        assert result.time_generating > 0
        # note: probe runs execute *inside* generation, so the two buckets
        # overlap; each individually stays below the total
        assert result.time_executing <= result.time_total
        assert result.time_generating <= result.time_total
