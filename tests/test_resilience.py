"""Tests for the resilience layer: fault injection, the solver degradation
ladder, crash containment, journal/checkpoint write tolerance, and
checkpoint/resume determinism."""

import io
import json
import os

import pytest

from repro.cli import main
from repro.search.report import suite_digest
from repro.core import SampleStore
from repro.errors import (
    FaultPlanError,
    ResourceLimitError,
    RunBudgetExhausted,
    SearchInterrupted,
    StepBudgetExceeded,
)
from repro.faults import (
    NULL_PLAN,
    FaultPlan,
    FaultRule,
    current_fault_plan,
    use_fault_plan,
)
from repro.lang import NativeRegistry, parse_program
from repro.obs import Observability
from repro.obs.journal import RunJournal
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.search import (
    DirectedSearch,
    QuantifierFreeBackend,
    ReplayCursor,
    SearchConfig,
    SearchResult,
)
from repro.solver import TermManager
from repro.solver.budget import (
    DEFAULT_BUDGET,
    DEGRADED_BUDGET,
    SolverBudget,
    current_budget,
    use_budget,
)
from repro.solver.cache import use_cache
from repro.symbolic import ConcolicEngine, ConcretizationMode


def natives_with_hash():
    n = NativeRegistry()
    n.register("hash", lambda y: (y * 31 + 7) % 1000)
    return n


CHAIN = """
int main(int x, int y, int z) {
    if (x == hash(y)) {
        if (z == hash(x)) {
            if (y == 5) {
                error("three levels deep");
            }
        }
    }
    return 0;
}
"""

#: the flip of ``x > 5`` generates an input whose run blows the step budget
LOOPY = """
int f(int x) {
    if (x > 5) {
        int i;
        int s;
        s = 0;
        for (i = 0; i < 500; i = i + 1) { s = s + 1; }
        return s;
    }
    return 0;
}
"""

#: the flip of ``x > 7`` generates an input that uses an array as a scalar
ARRAY_MISUSE = """
int f(int x) {
    int a[4];
    a[0] = 1;
    if (x > 7) {
        int y;
        y = a + 1;
        return y;
    }
    return 0;
}
"""

#: the flip of ``y == 0`` generates an input that divides by zero
DIV_MID_SEARCH = """
int f(int x, int y) {
    if (y == 0) {
        int r;
        r = 10 / y;
        return r;
    }
    return x;
}
"""


def chain_search(checkpoint_dir=None, resume_from=None, jobs=1, max_runs=60):
    config = SearchConfig(
        max_runs=max_runs,
        jobs=jobs,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=2,
        resume_from=resume_from,
    )
    return DirectedSearch.for_mode(
        parse_program(CHAIN),
        "main",
        natives_with_hash(),
        ConcretizationMode.HIGHER_ORDER,
        config,
    )


CHAIN_SEED = {"x": 1, "y": 2, "z": 3}


class TestFaultPlanParsing:
    def test_parse_and_spec_round_trip(self):
        spec = "solver:rate=0.2,seed=7;interp:at=3+5;kill:at=25"
        plan = FaultPlan.parse(spec)
        reparsed = FaultPlan.parse(plan.spec())
        assert reparsed.spec() == plan.spec()
        assert "interp:at=3+5" in plan.spec()

    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("disk:at=1")

    def test_bad_option_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("solver:at=banana")
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("solver:frequency=2")
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("solver")

    def test_exactly_one_trigger_per_rule(self):
        with pytest.raises(FaultPlanError):
            FaultRule("solver", at={1}, every=2)
        with pytest.raises(FaultPlanError):
            FaultRule("solver")

    def test_duplicate_site_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("solver:at=1;solver:at=2")


class TestFaultPlanFiring:
    def test_at_fires_on_listed_invocations_only(self):
        plan = FaultPlan.parse("solver:at=2+4")
        fired = [plan.should_fire("solver") for _ in range(5)]
        assert fired == [False, True, False, True, False]

    def test_every_fires_periodically(self):
        plan = FaultPlan.parse("interp:every=3")
        fired = [plan.should_fire("interp") for _ in range(6)]
        assert fired == [False, False, True, False, False, True]

    def test_rate_is_deterministic_per_seed(self):
        a = FaultPlan.parse("solver:rate=0.4,seed=11")
        b = FaultPlan.parse("solver:rate=0.4,seed=11")
        decisions_a = [a.should_fire("solver") for _ in range(100)]
        decisions_b = [b.should_fire("solver") for _ in range(100)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_fire_raises_site_specific_exceptions(self):
        cases = [
            ("solver", ResourceLimitError),
            ("interp", StepBudgetExceeded),
            ("worker", RuntimeError),
            ("journal", OSError),
            ("checkpoint", OSError),
            ("kill", SearchInterrupted),
        ]
        for site, exc_type in cases:
            plan = FaultPlan.parse(f"{site}:at=1")
            with pytest.raises(exc_type):
                plan.fire(site)
        assert plan.fired == {"kill": 1}

    def test_state_restore_continues_the_sequence(self):
        plan = FaultPlan.parse("kill:at=3")
        assert not plan.should_fire("kill")
        assert not plan.should_fire("kill")
        resumed = FaultPlan.parse("kill:at=3")
        resumed.restore_state(plan.state())
        assert resumed.should_fire("kill")  # the third invocation overall
        assert not resumed.should_fire("kill")  # one-shot: fired once

    def test_null_plan_is_default_and_never_fires(self):
        assert current_fault_plan() is NULL_PLAN
        NULL_PLAN.fire("solver")  # no-op
        plan = FaultPlan.parse("solver:at=1")
        with use_fault_plan(plan):
            assert current_fault_plan() is plan
        assert current_fault_plan() is NULL_PLAN


class TestCrashContainment:
    def _loopy_search(self, step_budget=200, max_runs=20):
        tm = TermManager()
        engine = ConcolicEngine(
            parse_program(LOOPY),
            NativeRegistry(),
            ConcretizationMode.SOUND,
            tm,
            step_budget=step_budget,
        )
        return DirectedSearch(
            engine,
            "f",
            QuantifierFreeBackend(tm),
            SampleStore(),
            SearchConfig(max_runs=max_runs),
        )

    def test_step_budget_blowup_is_contained(self):
        result = self._loopy_search().run({"x": 0})
        assert isinstance(result, SearchResult)
        assert result.crashes, "the flipped branch must blow the step budget"
        assert result.crashes[0].bucket.startswith("StepBudgetExceeded@")
        # the suite still contains the non-crashing executions, and the
        # crashing input is a crash record, not a suite entry
        assert result.executions
        crash_inputs = {
            tuple(sorted(c.inputs.items())) for c in result.crashes
        }
        suite_inputs = {
            tuple(sorted(r.result.inputs.items())) for r in result.executions
        }
        assert not crash_inputs & suite_inputs

    def test_crash_buckets_are_stable_across_runs(self):
        buckets = []
        for _ in range(2):
            result = self._loopy_search().run({"x": 0})
            buckets.append([(c.bucket, c.count) for c in result.crashes])
        assert buckets[0] == buckets[1]
        assert buckets[0]

    def test_array_misuse_interp_error_is_contained(self):
        search = DirectedSearch.for_mode(
            parse_program(ARRAY_MISUSE),
            "f",
            NativeRegistry(),
            ConcretizationMode.SOUND,
            SearchConfig(max_runs=20),
        )
        result = search.run({"x": 0})
        assert result.crashes
        crash = result.crashes[0]
        assert crash.bucket.startswith("InterpError@")
        assert crash.line > 0, "array misuse carries its MiniC line"
        assert "array" in crash.message
        assert result.executions  # search survived and kept its suite

    def test_division_by_zero_mid_search_is_survived(self):
        # division by zero is a *modeled* runtime error in this engine
        # (paper-style abort finding), so the generated y == 0 input must
        # land in result.errors — and must not take the session down
        search = DirectedSearch.for_mode(
            parse_program(DIV_MID_SEARCH),
            "f",
            NativeRegistry(),
            ConcretizationMode.SOUND,
            SearchConfig(max_runs=20),
        )
        result = search.run({"x": 1, "y": 3})
        assert any("division by zero" in e.message for e in result.errors)
        assert result.runs >= 2

    def test_injected_interp_fault_becomes_a_crash_record(self):
        plan = FaultPlan.parse("interp:at=2")
        search = chain_search(max_runs=12)
        with use_cache(None), use_fault_plan(plan):
            result = search.run(dict(CHAIN_SEED))
        assert plan.fired.get("interp") == 1
        assert any(
            c.bucket.startswith("StepBudgetExceeded@") for c in result.crashes
        )
        assert result.executions

    def test_crash_bucketing_deduplicates(self):
        # every flip of the loop guard crashes in the same bucket; the
        # record count grows instead of the record list
        result = self._loopy_search(max_runs=30).run({"x": 0})
        buckets = [c.bucket for c in result.crashes]
        assert len(buckets) == len(set(buckets))

    def test_summary_mentions_crashes(self):
        result = self._loopy_search().run({"x": 0})
        assert "crashes=" in result.summary()


class TestDegradationLadder:
    def test_budget_scaling(self):
        scaled = DEFAULT_BUDGET.scaled(2.0)
        assert scaled.max_iterations == 2 * DEFAULT_BUDGET.max_iterations
        assert DEGRADED_BUDGET.max_iterations < DEFAULT_BUDGET.max_iterations
        with use_budget(DEGRADED_BUDGET):
            assert current_budget() is DEGRADED_BUDGET
        assert current_budget() is not DEGRADED_BUDGET

    def test_solver_exhaustion_walks_the_ladder(self):
        plan = FaultPlan.parse("solver:every=2")
        search = chain_search(max_runs=40)
        with use_cache(None), use_fault_plan(plan):
            result = search.run(dict(CHAIN_SEED))
        assert plan.fired.get("solver", 0) > 0
        assert sum(result.downgrades.values()) > 0
        assert result.executions, "degraded search still generates tests"

    def test_degraded_search_is_deterministic(self):
        digests = []
        for _ in range(2):
            plan = FaultPlan.parse("solver:rate=0.5,seed=3")
            search = chain_search(max_runs=40)
            with use_cache(None), use_fault_plan(plan):
                result = search.run(dict(CHAIN_SEED))
            digests.append(suite_digest(result))
        assert digests[0] == digests[1]

    def test_deferred_flips_are_retried_or_abandoned(self):
        plan = FaultPlan.parse("solver:every=1")
        search = chain_search(max_runs=30)
        with use_cache(None), use_fault_plan(plan):
            result = search.run(dict(CHAIN_SEED))
        # with every solver call exhausted, every rung fails: flips are
        # deferred, retried under the escalated budget, and abandoned
        assert result.deferred_flips > 0
        assert result.abandoned_flips > 0
        assert isinstance(result, SearchResult)


class TestProbeBudgetGraceful:
    def test_run_budget_during_probes_preserves_partial_result(self):
        # a tiny run budget exhausts mid multi-step probe; the strategy
        # must end gracefully with the partial suite, not raise
        search = chain_search(max_runs=4)
        result = search.run(dict(CHAIN_SEED))
        assert isinstance(result, SearchResult)
        assert result.runs <= 4
        assert result.executions


class TestJournalWriteTolerance:
    def test_injected_oserror_disables_the_sink(self):
        registry = MetricsRegistry()
        buf = io.StringIO()
        journal = RunJournal(buf)
        plan = FaultPlan.parse("journal:at=2")
        with use_registry(registry), use_fault_plan(plan):
            assert journal.emit("first") is not None
            assert journal.emit("second") is None  # the injected failure
            assert journal.emit("third") is None  # sink stays disabled
        assert journal.enabled is False
        assert "injected fault" in journal.write_error
        assert journal.events_written == 1
        assert registry.counter("obs.journal.write_errors").value == 1

    def test_search_survives_journal_failure(self, tmp_path):
        journal = RunJournal(str(tmp_path / "events.jsonl"))
        plan = FaultPlan.parse("journal:at=3")
        search = chain_search(max_runs=20)
        search.obs = Observability(journal=journal)
        with use_fault_plan(plan):
            result = search.run(dict(CHAIN_SEED))
        journal.close()
        assert journal.enabled is False
        assert result.executions


class TestCheckpointWriteTolerance:
    def test_injected_oserror_disables_checkpointing(self, tmp_path):
        registry = MetricsRegistry()
        plan = FaultPlan.parse("checkpoint:at=1")
        search = chain_search(checkpoint_dir=str(tmp_path / "ckpt"), max_runs=20)
        with use_registry(registry), use_fault_plan(plan):
            result = search.run(dict(CHAIN_SEED))
        assert result.executions, "search completes without its checkpoint"
        assert registry.counter("search.checkpoint.errors").value == 1

    def test_checkpoint_directory_contents(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        result = chain_search(checkpoint_dir=str(ckpt)).run(dict(CHAIN_SEED))
        assert result.executions
        for name in (
            "meta.json",
            "decisions.jsonl",
            "state.json",
            "samples.jsonl",
            "frontier.jsonl",
            "corpus.json",
        ):
            assert (ckpt / name).exists(), name
        meta = json.loads((ckpt / "meta.json").read_text())
        assert meta["entry"] == "main"
        state = json.loads((ckpt / "state.json").read_text())
        assert state["runs"] == result.runs
        with open(ckpt / "decisions.jsonl", encoding="utf-8") as handle:
            decisions = [json.loads(line) for line in handle]
        assert decisions and all("rung" in d for d in decisions)

    def test_replay_cursor_loads_the_checkpoint(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        chain_search(checkpoint_dir=str(ckpt)).run(dict(CHAIN_SEED))
        cursor = ReplayCursor.load(str(ckpt))
        assert not cursor.exhausted
        assert cursor.checkpoint_runs > 0


class TestResumeDeterminism:
    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("kill_at", [2, 5])
    def test_resumed_suite_matches_uninterrupted(self, tmp_path, jobs, kill_at):
        baseline = chain_search(jobs=jobs).run(dict(CHAIN_SEED))
        expected = suite_digest(baseline)

        ckpt = str(tmp_path / "ckpt")
        spec = f"kill:at={kill_at}"
        with use_fault_plan(FaultPlan.parse(spec)):
            with pytest.raises(SearchInterrupted) as info:
                chain_search(checkpoint_dir=ckpt, jobs=jobs).run(dict(CHAIN_SEED))
        assert info.value.checkpoint_dir == ckpt
        assert isinstance(info.value.partial_result, SearchResult)

        # resuming under the *same* plan must not re-fire the one-shot
        # kill: the checkpoint restored its invocation counters
        with use_fault_plan(FaultPlan.parse(spec)):
            resumed = chain_search(
                checkpoint_dir=ckpt, resume_from=ckpt, jobs=jobs
            ).run(dict(CHAIN_SEED))
        assert resumed.replayed_decisions > 0
        assert suite_digest(resumed) == expected

    def test_resume_from_missing_directory_fails_cleanly(self, tmp_path):
        from repro.errors import ReproError

        search = chain_search(resume_from=str(tmp_path / "nope"))
        with pytest.raises(ReproError):
            search.run(dict(CHAIN_SEED))


class TestResilienceCli:
    def test_kill_then_resume_round_trip(self, tmp_path, capsys):
        program = tmp_path / "chain3.minic"
        program.write_text(CHAIN)
        ckpt = str(tmp_path / "ckpt")
        common = [
            "run",
            str(program),
            "--seed",
            "x=1,y=2,z=3",
            "--max-runs",
            "40",
        ]
        code = main(common + ["--checkpoint", ckpt, "--fault-plan", "kill:at=3"])
        err = capsys.readouterr().err
        assert code == 3
        assert "interrupted" in err
        assert "--resume" in err

        code = main(common + ["--resume", ckpt])
        out = capsys.readouterr().out
        assert code == 0
        assert "resumed:" in out

    def test_fault_plan_ladder_is_reported(self, tmp_path, capsys):
        program = tmp_path / "chain3.minic"
        program.write_text(CHAIN)
        with use_cache(None):
            code = main(
                [
                    "run",
                    str(program),
                    "--seed",
                    "x=1,y=2,z=3",
                    "--max-runs",
                    "30",
                    "--fault-plan",
                    "solver:every=2",
                ]
            )
        out = capsys.readouterr().out
        assert code == 0
        assert "ladder:" in out

    def test_bad_fault_plan_is_a_usage_error(self, tmp_path, capsys):
        program = tmp_path / "p.minic"
        program.write_text("int main(int x) { return x; }")
        code = main(["run", str(program), "--fault-plan", "disk:at=1"])
        assert code != 0
