"""Smoke tests: every shipped example script runs to completion."""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

SCRIPTS = [
    "quickstart.py",
    "multistep_demo.py",
    "divergence_study.py",
    "compositional_summaries.py",
    "protocol_forging.py",
    "lexer_keywords.py",
    # tinyvm_cracking.py is exercised by its own bench (slower)
]


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_script_runs(script, capsys):
    path = os.path.join(EXAMPLES_DIR, script)
    assert os.path.exists(path), f"missing example {script}"
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_all_examples_are_listed():
    """Every example script in the directory is either smoke-tested here
    or covered by a dedicated bench."""
    present = {
        name
        for name in os.listdir(EXAMPLES_DIR)
        if name.endswith(".py")
    }
    covered = set(SCRIPTS) | {"tinyvm_cracking.py"}
    assert present == covered, f"unlisted examples: {present - covered}"
