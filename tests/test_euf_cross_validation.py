"""Cross-validation of the two independent EUF decision paths.

The library decides equality-with-uninterpreted-functions two ways that
share no code: the congruence-closure engine (union-find + congruence
table) and the SMT facade (Ackermann reduction into LIA).  On random
conjunctions of equalities and disequalities over a small term universe,
both must agree — a disagreement pinpoints a bug in one of them.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import CongruenceClosure, Solver, TermManager


def build_universe(tm):
    """A small universe of terms: variables plus f/g applications."""
    vs = [tm.mk_var(f"v{i}") for i in range(4)]
    f = tm.mk_function("f", 1)
    g = tm.mk_function("g", 2)
    terms = list(vs)
    for v in vs[:3]:
        terms.append(tm.mk_app(f, [v]))
    terms.append(tm.mk_app(f, [tm.mk_app(f, [vs[0]])]))
    terms.append(tm.mk_app(g, [vs[0], vs[1]]))
    terms.append(tm.mk_app(g, [vs[1], vs[0]]))
    terms.append(tm.mk_app(g, [vs[2], vs[3]]))
    return terms


def decide_with_cc(tm, eqs, diseqs):
    cc = CongruenceClosure()
    for a, b in eqs:
        if not cc.assert_equal(a, b):
            return False
    for a, b in diseqs:
        if not cc.assert_diseq(a, b):
            return False
    return cc.check().sat


def decide_with_smt(tm, eqs, diseqs):
    solver = Solver(tm)
    for a, b in eqs:
        solver.add(tm.mk_eq(a, b))
    for a, b in diseqs:
        solver.add(tm.mk_ne(a, b))
    return solver.check().sat


@given(seed=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=120, deadline=None)
def test_cc_agrees_with_ackermannized_smt(seed):
    rng = random.Random(seed)
    tm = TermManager()
    universe = build_universe(tm)
    n_eqs = rng.randint(0, 5)
    n_diseqs = rng.randint(0, 3)
    eqs = [
        (rng.choice(universe), rng.choice(universe)) for _ in range(n_eqs)
    ]
    diseqs = [
        (rng.choice(universe), rng.choice(universe)) for _ in range(n_diseqs)
    ]
    # drop trivially-false diseqs (t != t) so both sides see the same input
    verdict_cc = decide_with_cc(tm, eqs, diseqs)
    verdict_smt = decide_with_smt(tm, eqs, diseqs)
    assert verdict_cc == verdict_smt, (
        f"seed {seed}: CC says {verdict_cc}, SMT says {verdict_smt}\n"
        f"eqs={[(str(a), str(b)) for a, b in eqs]}\n"
        f"diseqs={[(str(a), str(b)) for a, b in diseqs]}"
    )


@given(seed=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=60, deadline=None)
def test_cc_entailed_equalities_hold_in_smt_models(seed):
    """Every equality the closure entails is satisfied by any SMT model of
    the same assertions."""
    from repro.solver import evaluate

    rng = random.Random(seed)
    tm = TermManager()
    universe = build_universe(tm)
    eqs = [
        (rng.choice(universe), rng.choice(universe))
        for _ in range(rng.randint(1, 4))
    ]
    cc = CongruenceClosure()
    for a, b in eqs:
        cc.assert_equal(a, b)

    solver = Solver(tm)
    for a, b in eqs:
        solver.add(tm.mk_eq(a, b))
    result = solver.check()
    assert result.sat
    for a in universe:
        for b in universe:
            if cc.are_equal(a, b):
                assert evaluate(a, result.model) == evaluate(b, result.model)
