"""Theorem 1: an exhaustive directed search is a verification procedure.

"Given a program P ..., a directed search using a path constraint
generation and a constraint solver that are both sound and complete
exercises all feasible program paths exactly once. Thus, if a program
statement has not been executed when the search is over, this statement
is not executable in any context."

For loop-free programs within the solver's theory (no unknown functions),
our SOUND-mode pipeline is sound and complete, so when the search stops
with budget to spare, the uncovered branch outcomes are provably
infeasible — cross-checked here by exhaustive input enumeration.
"""

import itertools

import pytest

from repro.lang import Interpreter, NativeRegistry, parse_program
from repro.search import DirectedSearch, SearchConfig
from repro.symbolic import ConcretizationMode

DEAD_BRANCH = """
int main(int x) {
    if (x > 5) {
        if (x < 3) {
            error("provably unreachable");
        }
        return 1;
    }
    return 0;
}
"""

ALL_FEASIBLE = """
int main(int x, int y) {
    if (x > y) {
        if (x + y == 10) { return 1; }
        return 2;
    }
    if (y == x + 7) { return 3; }
    return 4;
}
"""


class TestTheorem1:
    def test_dead_branch_never_covered_and_search_terminates(self):
        search = DirectedSearch.for_mode(
            parse_program(DEAD_BRANCH), "main", NativeRegistry(),
            ConcretizationMode.SOUND, SearchConfig(max_runs=50),
        )
        result = search.run({"x": 0})
        # search stopped well below budget: frontier genuinely exhausted
        assert result.runs < 50
        assert not result.found_error
        # the inner then-branch (branch 1, True) stays uncovered
        assert not result.coverage.is_covered(1, True)
        # cross-check by brute force: no input in a wide window reaches it
        interp = Interpreter(parse_program(DEAD_BRANCH))
        for x in range(-50, 51):
            assert not interp.run("main", {"x": x}).error

    def test_all_feasible_outcomes_covered(self):
        search = DirectedSearch.for_mode(
            parse_program(ALL_FEASIBLE), "main", NativeRegistry(),
            ConcretizationMode.SOUND, SearchConfig(max_runs=60),
        )
        result = search.run({"x": 0, "y": 0})
        assert result.runs < 60  # exhaustion, not budget
        # every return value 1..4 is reachable; brute-force the oracle set
        interp = Interpreter(parse_program(ALL_FEASIBLE))
        reachable = set()
        for x, y in itertools.product(range(-12, 13), repeat=2):
            reachable.add(interp.run("main", {"x": x, "y": y}).returned)
        search_returns = {
            r.result.returned for r in result.executions
        }
        assert reachable <= search_returns
        assert result.coverage.ratio() == 1.0

    def test_distinct_paths_explored_once(self):
        """'exercises all feasible program paths exactly once': no two
        non-probe executions follow the same path."""
        search = DirectedSearch.for_mode(
            parse_program(ALL_FEASIBLE), "main", NativeRegistry(),
            ConcretizationMode.SOUND, SearchConfig(max_runs=60),
        )
        result = search.run({"x": 0, "y": 0})
        paths = [r.result.path_key for r in result.executions]
        assert len(paths) == len(set(paths))

    def test_infeasible_assert_side_proved(self):
        src = """
        int main(int a, int b) {
            int s = a + b;
            int d = a - b;
            // (a+b) + (a-b) == 2a always: the assert can never fail
            assert(s + d == 2 * a);
            return s;
        }
        """
        search = DirectedSearch.for_mode(
            parse_program(src), "main", NativeRegistry(),
            ConcretizationMode.SOUND, SearchConfig(max_runs=30),
        )
        result = search.run({"a": 1, "b": 2})
        assert result.runs < 30
        assert not result.found_error  # failing side proved infeasible
