"""Round-trip tests for the MiniC pretty-printer."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import Interpreter, parse_program
from repro.lang.ast import Binary, If, While
from repro.lang.parser import parse_expression
from repro.lang.pretty import pretty_expr, pretty_program, pretty_stmt
from repro.lang.randprog import generate_program


def _strip_positions(node):
    """Structural fingerprint of an AST node ignoring line numbers."""
    from dataclasses import fields, is_dataclass

    if is_dataclass(node):
        out = [type(node).__name__]
        for f in fields(node):
            if f.name == "line":
                continue
            out.append((f.name, _strip_positions(getattr(node, f.name))))
        return tuple(out)
    if isinstance(node, tuple):
        return tuple(_strip_positions(x) for x in node)
    if isinstance(node, dict):
        return tuple(sorted((k, _strip_positions(v)) for k, v in node.items()))
    return node


def fingerprint_program(program):
    return tuple(
        (name, _strip_positions(fn)) for name, fn in program.functions.items()
    )


class TestExpressionRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "a - b - c",
            "a - (b - c)",
            "x == y && z != 0 || w < 5",
            "(x == y && z != 0) || w < 5",
            "x == (y && 1)" if False else "hash(x + 1)",
            "!(a && b) || !c",
            "-x + -3",
            "arr[i + 1] * 2",
            "mix(a, b + 1) % 7",
            "a / b / c",
            "a / (b / c)",
        ],
    )
    def test_roundtrip_preserves_structure(self, source):
        original = parse_expression(source)
        rendered = pretty_expr(original)
        reparsed = parse_expression(rendered)
        assert _strip_positions(original) == _strip_positions(reparsed), rendered

    def test_minimal_parentheses(self):
        assert pretty_expr(parse_expression("1 + 2 * 3")) == "1 + 2 * 3"
        assert pretty_expr(parse_expression("(1 + 2) * 3")) == "(1 + 2) * 3"

    def test_left_associativity_preserved(self):
        # a - b - c parses as (a-b)-c; a-(b-c) must keep its parens
        assert pretty_expr(parse_expression("a - b - c")) == "a - b - c"
        assert pretty_expr(parse_expression("a - (b - c)")) == "a - (b - c)"


class TestProgramRoundTrip:
    SOURCES = [
        """
        int main(int x, int y) {
            int a[4];
            a[0] = x;
            if (x == hash(y)) {
                if (y == 10) { error("bug"); }
            } else {
                while (x > 0) { x = x - 1; }
            }
            assert(x >= 0);
            return a[0] + y;
        }
        """,
        """
        int helper(int v) { return v * 2; }
        int main(int x) {
            if (helper(x) > 10 && x != 7) { return 1; }
            return 0;
        }
        """,
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_roundtrip(self, source):
        original = parse_program(source)
        rendered = pretty_program(original)
        reparsed = parse_program(rendered)
        assert fingerprint_program(original) == fingerprint_program(reparsed)

    @pytest.mark.parametrize("seed", range(20))
    def test_roundtrip_on_generated_programs(self, seed):
        rp = generate_program(seed)
        rendered = pretty_program(rp.program)
        reparsed = parse_program(rendered)
        assert fingerprint_program(rp.program) == fingerprint_program(reparsed)

    @pytest.mark.parametrize("seed", range(10))
    def test_rendered_program_behaves_identically(self, seed):
        rp = generate_program(seed)
        rendered = pretty_program(rp.program)
        reparsed = parse_program(rendered)
        rng = random.Random(seed + 999)
        i1 = Interpreter(rp.program, rp.natives())
        i2 = Interpreter(reparsed, rp.natives())
        for _ in range(5):
            inputs = rp.random_inputs(rng)
            r1 = i1.run(rp.entry, dict(inputs))
            r2 = i2.run(rp.entry, dict(inputs))
            assert (r1.returned, r1.error) == (r2.returned, r2.error)
