"""Unit tests for the congruence-closure EUF engine."""

import pytest

from repro.solver import CongruenceClosure, TermManager, check_euf_conjunction


@pytest.fixture()
def tm():
    return TermManager()


class TestBasicEquality:
    def test_reflexive(self, tm):
        x = tm.mk_var("x")
        cc = CongruenceClosure()
        assert cc.are_equal(x, x)

    def test_asserted_equality(self, tm):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        cc = CongruenceClosure()
        cc.assert_equal(x, y)
        assert cc.are_equal(x, y)

    def test_transitivity(self, tm):
        x, y, z = tm.mk_var("x"), tm.mk_var("y"), tm.mk_var("z")
        cc = CongruenceClosure()
        cc.assert_equal(x, y)
        cc.assert_equal(y, z)
        assert cc.are_equal(x, z)

    def test_unrelated_stay_distinct(self, tm):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        cc = CongruenceClosure()
        assert not cc.are_equal(x, y)

    def test_long_chain(self, tm):
        vs = [tm.mk_var(f"v{i}") for i in range(50)]
        cc = CongruenceClosure()
        for a, b in zip(vs, vs[1:]):
            cc.assert_equal(a, b)
        assert cc.are_equal(vs[0], vs[-1])


class TestCongruence:
    def test_unary_congruence(self, tm):
        h = tm.mk_function("h", 1)
        x, y = tm.mk_var("x"), tm.mk_var("y")
        cc = CongruenceClosure()
        cc.assert_equal(x, y)
        assert cc.are_equal(tm.mk_app(h, [x]), tm.mk_app(h, [y]))

    def test_congruence_after_registration(self, tm):
        h = tm.mk_function("h", 1)
        x, y = tm.mk_var("x"), tm.mk_var("y")
        hx, hy = tm.mk_app(h, [x]), tm.mk_app(h, [y])
        cc = CongruenceClosure()
        cc.register(hx)
        cc.register(hy)
        cc.assert_equal(x, y)
        assert cc.are_equal(hx, hy)

    def test_binary_congruence_requires_both_args(self, tm):
        g = tm.mk_function("g", 2)
        x, y, z = tm.mk_var("x"), tm.mk_var("y"), tm.mk_var("z")
        cc = CongruenceClosure()
        g1 = tm.mk_app(g, [x, z])
        g2 = tm.mk_app(g, [y, z])
        cc.register(g1)
        cc.register(g2)
        assert not cc.are_equal(g1, g2)
        cc.assert_equal(x, y)
        assert cc.are_equal(g1, g2)

    def test_nested_congruence(self, tm):
        h = tm.mk_function("h", 1)
        x, y = tm.mk_var("x"), tm.mk_var("y")
        hhx = tm.mk_app(h, [tm.mk_app(h, [x])])
        hhy = tm.mk_app(h, [tm.mk_app(h, [y])])
        cc = CongruenceClosure()
        cc.register(hhx)
        cc.register(hhy)
        cc.assert_equal(x, y)
        assert cc.are_equal(hhx, hhy)

    def test_curried_chain(self, tm):
        # classic: f(f(f(x))) = x and f(f(f(f(f(x))))) = x imply f(x) = x
        f = tm.mk_function("f", 1)
        x = tm.mk_var("x")

        def fn(t, n):
            for _ in range(n):
                t = tm.mk_app(f, [t])
            return t

        cc = CongruenceClosure()
        cc.assert_equal(fn(x, 3), x)
        cc.assert_equal(fn(x, 5), x)
        assert cc.are_equal(fn(x, 1), x)


class TestDisequality:
    def test_diseq_consistent(self, tm):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        cc = CongruenceClosure()
        assert cc.assert_diseq(x, y)
        assert cc.check().sat

    def test_direct_conflict(self, tm):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        cc = CongruenceClosure()
        cc.assert_equal(x, y)
        assert not cc.assert_diseq(x, y)
        assert not cc.check().sat

    def test_conflict_via_congruence(self, tm):
        h = tm.mk_function("h", 1)
        x, y = tm.mk_var("x"), tm.mk_var("y")
        cc = CongruenceClosure()
        cc.assert_diseq(tm.mk_app(h, [x]), tm.mk_app(h, [y]))
        assert not cc.assert_equal(x, y)

    def test_conflict_order_independent(self, tm):
        h = tm.mk_function("h", 1)
        x, y = tm.mk_var("x"), tm.mk_var("y")
        cc = CongruenceClosure()
        cc.assert_equal(x, y)
        assert not cc.assert_diseq(tm.mk_app(h, [x]), tm.mk_app(h, [y]))


class TestExplanations:
    def test_explain_direct(self, tm):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        cc = CongruenceClosure()
        cc.assert_equal(x, y, tag=(x, y, True))
        expl = cc.explain(x, y)
        assert (x, y, True) in expl

    def test_explain_transitive_contains_both(self, tm):
        x, y, z = tm.mk_var("x"), tm.mk_var("y"), tm.mk_var("z")
        cc = CongruenceClosure()
        cc.assert_equal(x, y, tag="e1")
        cc.assert_equal(y, z, tag="e2")
        expl = cc.explain(x, z)
        assert set(expl) == {"e1", "e2"}

    def test_explain_congruence_recurses_to_args(self, tm):
        h = tm.mk_function("h", 1)
        x, y = tm.mk_var("x"), tm.mk_var("y")
        hx, hy = tm.mk_app(h, [x]), tm.mk_app(h, [y])
        cc = CongruenceClosure()
        cc.register(hx)
        cc.register(hy)
        cc.assert_equal(x, y, tag="xy")
        expl = cc.explain(hx, hy)
        assert expl == ["xy"]

    def test_explain_is_subset_of_inputs(self, tm):
        vs = [tm.mk_var(f"w{i}") for i in range(6)]
        cc = CongruenceClosure()
        for i, (a, b) in enumerate(zip(vs, vs[1:])):
            cc.assert_equal(a, b, tag=f"t{i}")
        # also an irrelevant equality
        p, q = tm.mk_var("p"), tm.mk_var("q")
        cc.assert_equal(p, q, tag="irrelevant")
        expl = cc.explain(vs[0], vs[5])
        assert "irrelevant" not in expl
        assert set(expl) == {f"t{i}" for i in range(5)}

    def test_conflict_explanation_in_result(self, tm):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        cc = CongruenceClosure()
        cc.assert_equal(x, y, tag=(x, y, True))
        cc.assert_diseq(x, y, tag=(x, y, False))
        result = cc.check()
        assert not result.sat
        assert (x, y, True) in result.conflict
        assert (x, y, False) in result.conflict


class TestClasses:
    def test_classes_partition(self, tm):
        x, y, z = tm.mk_var("x"), tm.mk_var("y"), tm.mk_var("z")
        cc = CongruenceClosure()
        cc.assert_equal(x, y)
        cc.register(z)
        classes = cc.classes()
        flat = [t for group in classes for t in group]
        assert set(flat) >= {x, y, z}
        for group in classes:
            if x in group:
                assert y in group
                assert z not in group


class TestOneShot:
    def test_check_euf_conjunction_sat(self, tm):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        r = check_euf_conjunction([(x, y)], [])
        assert r.sat

    def test_check_euf_conjunction_unsat(self, tm):
        h = tm.mk_function("h", 1)
        x, y = tm.mk_var("x"), tm.mk_var("y")
        r = check_euf_conjunction(
            [(x, y)], [(tm.mk_app(h, [x]), tm.mk_app(h, [y]))]
        )
        assert not r.sat

    def test_constants_distinct_by_default(self, tm):
        # CC itself does not know 1 != 2 unless told; the SMT layer adds that
        one, two = tm.mk_int(1), tm.mk_int(2)
        cc = CongruenceClosure()
        assert not cc.are_equal(one, two)
