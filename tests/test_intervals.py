"""Tests for interval propagation and its integration into the LIA solver."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import LiaSolver
from repro.solver.intervals import BoundsAnalysis


class TestBoundsAnalysis:
    def test_unit_upper_bound(self):
        ba = BoundsAnalysis(num_vars=1)
        ba.add_le({0: 1}, 5)
        assert ba.propagate() is None
        assert ba.interval(0) == (None, 5)

    def test_unit_lower_bound(self):
        ba = BoundsAnalysis(num_vars=1)
        ba.add_le({0: -1}, -3)  # x >= 3
        assert ba.propagate() is None
        assert ba.interval(0) == (3, None)

    def test_coefficient_division_floors(self):
        ba = BoundsAnalysis(num_vars=1)
        ba.add_le({0: 2}, 7)  # 2x <= 7 -> x <= 3
        ba.propagate()
        assert ba.interval(0) == (None, 3)

    def test_negative_coefficient_ceils(self):
        ba = BoundsAnalysis(num_vars=1)
        ba.add_le({0: -2}, -7)  # -2x <= -7 -> x >= 4
        ba.propagate()
        assert ba.interval(0) == (4, None)

    def test_direct_conflict(self):
        ba = BoundsAnalysis(num_vars=1)
        ba.add_le({0: 1}, 2, tag="hi")
        ba.add_le({0: -1}, -5, tag="lo")  # x >= 5
        core = ba.propagate()
        assert core is not None
        assert set(core) == {"hi", "lo"}

    def test_transitive_propagation(self):
        # x <= 3, y >= x ... encoded: y - x >= 0 is -(x - y) <= 0
        ba = BoundsAnalysis(num_vars=2)
        ba.add_le({0: 1}, 3, tag="x<=3")
        ba.add_le({1: -1, 0: 1}, 0, tag="x<=y")   # x - y <= 0
        ba.add_le({1: 1}, 1, tag="y<=1")
        # no conflict: x <= y? wait x <= 3 and y <= 1 and x <= y is fine (x=0,y=1)
        assert ba.propagate() is None
        lo, hi = ba.interval(0)
        assert hi is not None and hi <= 1  # x <= y <= 1 propagated

    def test_chain_conflict_with_provenance(self):
        # x >= 10, y >= x, y <= 5: conflict involving all three
        ba = BoundsAnalysis(num_vars=2)
        ba.add_le({0: -1}, -10, tag="x>=10")
        ba.add_le({0: 1, 1: -1}, 0, tag="x<=y")
        ba.add_le({1: 1}, 5, tag="y<=5")
        core = ba.propagate()
        assert core is not None
        assert "y<=5" in core
        assert "x>=10" in core

    def test_equality_bounds_both_sides(self):
        ba = BoundsAnalysis(num_vars=1)
        ba.add_eq({0: 1}, 7, tag="eq")
        ba.propagate()
        assert ba.interval(0) == (7, 7)

    def test_unbounded_vars_do_not_block(self):
        ba = BoundsAnalysis(num_vars=2)
        ba.add_le({0: 1, 1: 1}, 10)  # neither var bounded alone
        assert ba.propagate() is None
        assert ba.interval(0) == (None, None)

    def test_bounded_vars_listing(self):
        ba = BoundsAnalysis(num_vars=3)
        ba.add_le({0: 1}, 5)
        ba.add_le({2: -1}, 0)
        ba.propagate()
        assert ba.bounded_vars() == [0, 2]


class TestLiaPresolveIntegration:
    def test_presolve_catches_bound_conflict(self):
        lia = LiaSolver(presolve=True)
        x = lia.new_var("x")
        lia.add_ge({x: 1}, 10, tag="ge")
        lia.add_le({x: 1}, 5, tag="le")
        result = lia.check()
        assert not result.sat
        assert lia.presolve_hit
        assert set(result.core) == {"ge", "le"}

    def test_presolve_off_same_verdict(self):
        for presolve in (True, False):
            lia = LiaSolver(presolve=presolve)
            x = lia.new_var("x")
            lia.add_ge({x: 1}, 10)
            lia.add_le({x: 1}, 5)
            assert not lia.check().sat

    def test_presolve_does_not_break_sat(self):
        lia = LiaSolver(presolve=True)
        x, y = lia.new_var("x"), lia.new_var("y")
        lia.add_ge({x: 1}, 0)
        lia.add_le({x: 1, y: 1}, 10)
        result = lia.check()
        assert result.sat and not lia.presolve_hit

    @given(
        bounds=st.lists(
            st.tuples(
                st.integers(0, 2),               # var
                st.sampled_from(["le", "ge"]),
                st.integers(-20, 20),
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_presolve_agrees_with_full_solver(self, bounds):
        results = []
        for presolve in (True, False):
            lia = LiaSolver(presolve=presolve)
            variables = [lia.new_var(f"v{i}") for i in range(3)]
            for var, op, const in bounds:
                if op == "le":
                    lia.add_le({variables[var]: 1}, const)
                else:
                    lia.add_ge({variables[var]: 1}, const)
            results.append(lia.check().sat)
        assert results[0] == results[1]
