"""Property test of the paper's Theorem 4 (the Simulation Theorem).

    If ALT(pc^SC) is satisfiable, then POST(ALT(pc^UF)) is valid.

For a family of programs with unknown-function calls, run the same inputs
under sound concretization and under higher-order symbolic execution, pair
up the negatable conditions (they come from the same branch occurrences),
and check: whenever the SC alternate constraint is satisfiable, the
higher-order POST formula (with the run's samples as antecedent) is proved
VALID by the validity engine.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SampleStore, alternate_constraint, negatable_indices
from repro.lang import NativeRegistry, parse_program
from repro.solver import Solver, TermManager
from repro.solver.validity import ValidityChecker, ValidityStatus
from repro.symbolic import ConcolicEngine, ConcretizationMode

PROGRAMS = [
    (
        "p1",
        """
        int p1(int x, int y) {
            if (x == hash(y)) {
                if (y > 5) { return 1; }
            }
            return 0;
        }
        """,
    ),
    (
        "p2",
        """
        int p2(int x, int y) {
            int v = hash(x);
            if (v == hash(y)) { return 1; }
            if (x + y > 20) { return 2; }
            return 0;
        }
        """,
    ),
    (
        "p3",
        """
        int p3(int x, int y) {
            if (hash(x + 1) > 100) {
                if (x < y) { return 1; }
            }
            if (y == 7) { return 2; }
            return 0;
        }
        """,
    ),
    (
        "p4",
        """
        int p4(int x, int y) {
            int a = x * y;
            if (a == 12) { return 1; }
            if (x - y == 3) { return 2; }
            return 0;
        }
        """,
    ),
]


def make_natives():
    n = NativeRegistry()
    n.register("hash", lambda y: (y * 37 + 11) % 211)
    return n


def run_both(entry, src, inputs):
    """Run SC and HO engines on the same inputs with shared concrete hash."""
    prog = parse_program(src)
    tm_sc = TermManager()
    tm_ho = TermManager()
    sc = ConcolicEngine(prog, make_natives(), ConcretizationMode.SOUND, tm_sc)
    ho = ConcolicEngine(
        prog, make_natives(), ConcretizationMode.HIGHER_ORDER, tm_ho
    )
    return (tm_sc, sc.run(entry, inputs)), (tm_ho, ho.run(entry, inputs))


@pytest.mark.parametrize("entry,src", PROGRAMS)
@pytest.mark.parametrize(
    "inputs",
    [
        {"x": 0, "y": 0},
        {"x": 3, "y": 4},
        {"x": 12, "y": 1},
        {"x": -5, "y": 30},
        {"x": 48, "y": 7},
    ],
)
def test_simulation_theorem(entry, src, inputs):
    (tm_sc, run_sc), (tm_ho, run_ho) = run_both(entry, src, inputs)
    # both engines saw the same branch trace
    assert run_sc.path == run_ho.path

    sc_idx = negatable_indices(run_sc.path_conditions)
    ho_idx = negatable_indices(run_ho.path_conditions)
    # pair conditions by branch occurrence (path position)
    sc_by_pos = {
        run_sc.path_conditions[i].path_pos: i
        for i in sc_idx
        if run_sc.path_conditions[i].path_pos >= 0
    }
    ho_by_pos = {
        run_ho.path_conditions[i].path_pos: i
        for i in ho_idx
        if run_ho.path_conditions[i].path_pos >= 0
    }

    checked = 0
    for pos, i_sc in sc_by_pos.items():
        if pos not in ho_by_pos:
            # HO records strictly more conditions than SC, never fewer:
            # a condition SC saw must exist in the HO pc as well
            pytest.fail(f"branch at pos {pos} missing from the HO pc")
        alt_sc = alternate_constraint(tm_sc, run_sc.path_conditions, i_sc)
        solver = Solver(tm_sc)
        solver.add(alt_sc)
        if not solver.check().sat:
            continue  # theorem's hypothesis not met
        # hypothesis met: POST(ALT(pc^UF)) must be valid
        i_ho = ho_by_pos[pos]
        alt_ho = alternate_constraint(tm_ho, run_ho.path_conditions, i_ho)
        checker = ValidityChecker(tm_ho)
        verdict = checker.check(
            alt_ho,
            list(run_ho.input_vars.values()),
            run_ho.samples,
            defaults=dict(inputs),
        )
        assert verdict.status is ValidityStatus.VALID, (
            f"Theorem 4 violated at branch {pos}: SC alternate satisfiable "
            f"but POST invalid/unknown ({verdict.note}); alt_ho = {alt_ho}"
        )
        checked += 1


@given(
    x=st.integers(min_value=-50, max_value=50),
    y=st.integers(min_value=-50, max_value=50),
    program_index=st.integers(min_value=0, max_value=len(PROGRAMS) - 1),
)
@settings(max_examples=25, deadline=None)
def test_simulation_theorem_property(x, y, program_index):
    entry, src = PROGRAMS[program_index]
    test_simulation_theorem(entry, src, {"x": x, "y": y})
