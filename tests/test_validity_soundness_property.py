"""Property test: the validity engine's VALID verdicts are bulletproof.

For random path constraints and random sample sets, whenever the checker
answers VALID with strategy σ, then for EVERY function interpretation f
consistent with the samples, executing σ (resolving its pending points
against f itself) must yield inputs satisfying the constraint under f.

This exercises the whole pipeline — candidate synthesis, UNSAT
verification, offsets, nesting — against randomized adversaries, not just
the built-in adversary family.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import Model, TermManager, evaluate
from repro.solver.validity import (
    AppValue,
    Sample,
    ValidityChecker,
    ValidityStatus,
)


def random_pc(tm, rng, x, y, h):
    """A random constraint from paper-shaped templates."""
    c1 = rng.randint(-20, 20)
    c2 = rng.randint(-20, 20)
    hx = tm.mk_app(h, [x])
    hy = tm.mk_app(h, [y])
    templates = [
        lambda: tm.mk_eq(x, hy),
        lambda: tm.mk_ne(x, hy),
        lambda: tm.mk_and(tm.mk_eq(x, hy), tm.mk_eq(y, tm.mk_int(c1))),
        lambda: tm.mk_eq(hx, hy),
        lambda: tm.mk_eq(hx, tm.mk_add(hy, tm.mk_int(c1 % 3))),
        lambda: tm.mk_gt(hx, tm.mk_int(c1)),
        lambda: tm.mk_and(
            tm.mk_gt(hx, tm.mk_int(c1)), tm.mk_eq(y, tm.mk_int(c2))
        ),
        lambda: tm.mk_or(
            tm.mk_eq(x, hy), tm.mk_eq(x, tm.mk_int(c1))
        ),
        lambda: tm.mk_and(tm.mk_eq(x, hy), tm.mk_eq(y, hx)),
        lambda: tm.mk_and(
            tm.mk_eq(x, tm.mk_app(h, [tm.mk_app(h, [y])])),
            tm.mk_eq(y, tm.mk_int(c1)),
        ),
    ]
    return rng.choice(templates)()


def random_samples(rng, h, count):
    points = rng.sample(range(-15, 16), count)
    return [Sample(h, (p,), rng.randint(-25, 25)) for p in points]


def random_consistent_interpretation(rng, h, samples):
    """A total interpretation of h agreeing with the recorded samples."""
    table = {s.args: s.value for s in samples}

    class _RandomFn(Model):
        def apply(self, fn, args):  # type: ignore[override]
            if args in table:
                return table[args]
            # deterministic pseudo-random extension
            mix = hash((args, self.default)) % 97 - 48
            return mix

    return _RandomFn(default=rng.randint(0, 1000))


def resolve_strategy_against(strategy, interp, h):
    """Concretize σ querying the adversary for unsampled points."""
    out = {}
    for name, value in strategy.assignments.items():
        out[name] = _resolve_value(value, interp)
    return out


def _resolve_value(value, interp):
    if isinstance(value, AppValue):
        args = tuple(
            _resolve_value(a, interp) if isinstance(a, AppValue) else int(a)
            for a in value.args
        )
        return interp.apply(value.fn, args) + value.offset
    return int(value)


@given(seed=st.integers(min_value=0, max_value=20_000))
@settings(max_examples=60, deadline=None)
def test_valid_strategies_defeat_every_consistent_interpretation(seed):
    rng = random.Random(seed)
    tm = TermManager()
    x, y = tm.mk_var("x"), tm.mk_var("y")
    h = tm.mk_function("h", 1)
    pc = random_pc(tm, rng, x, y, h)
    samples = random_samples(rng, h, rng.randint(0, 4))

    checker = ValidityChecker(tm)
    verdict = checker.check(pc, [x, y], samples, defaults={"x": 1, "y": 2})
    if verdict.status is not ValidityStatus.VALID:
        return  # only VALID verdicts carry the universal guarantee

    for _ in range(8):
        adversary = random_consistent_interpretation(rng, h, samples)
        inputs = resolve_strategy_against(verdict.strategy, adversary, h)
        adversary.ints.update(inputs)
        assert evaluate(pc, adversary) is True, (
            f"seed {seed}: strategy {verdict.strategy} fails under an "
            f"interpretation consistent with {list(map(str, samples))} "
            f"on pc {pc}"
        )


@given(seed=st.integers(min_value=0, max_value=20_000))
@settings(max_examples=40, deadline=None)
def test_invalid_verdicts_have_working_adversaries(seed):
    """INVALID verdicts must come with an adversary that truly defeats a
    sample of input vectors (full universality is checked by the engine's
    own UNSAT query; here we spot-check the witness)."""
    rng = random.Random(seed)
    tm = TermManager()
    x, y = tm.mk_var("x"), tm.mk_var("y")
    h = tm.mk_function("h", 1)
    pc = random_pc(tm, rng, x, y, h)
    samples = random_samples(rng, h, rng.randint(0, 3))

    checker = ValidityChecker(tm)
    verdict = checker.check(pc, [x, y], samples)
    if verdict.status is not ValidityStatus.INVALID or verdict.adversary is None:
        return
    adversary = verdict.adversary
    is_offset = adversary.bools.get("__offset__", False)
    for _ in range(20):
        probe = Model(
            ints={"x": rng.randint(-30, 30), "y": rng.randint(-30, 30)},
            default=adversary.default,
        )
        probe.functions = adversary.functions
        if is_offset:
            sign = adversary.ints.get("__offset_sign__", 1)

            class _Offset(Model):
                def apply(self, fn, args):  # type: ignore[override]
                    table = adversary.functions.get(fn, {})
                    if args in table:
                        return table[args]
                    return adversary.default + sign * sum(args)

            probe = _Offset(ints=dict(probe.ints))
        assert evaluate(pc, probe) is not True, (
            f"seed {seed}: adversary defeated by {probe.ints} on {pc}"
        )
