"""Tests for the TinyVM application (checksum + bytecode + deep state)."""

import pytest

from repro.apps import OPCODES, build_tinyvm_app
from repro.baselines import RandomFuzzer
from repro.lang import Interpreter
from repro.search import DirectedSearch, SearchConfig
from repro.symbolic import ConcretizationMode


@pytest.fixture(scope="module")
def app():
    return build_tinyvm_app()


class TestVmSemantics:
    def test_halt_program_returns_zero(self, app):
        interp = Interpreter(app.program, app.fresh_natives())
        result = interp.run(app.entry, app.valid_inputs([0] * 6))
        assert result.returned == 0

    def test_add_and_double(self, app):
        # acc = 0 + arg; acc *= 2
        interp = Interpreter(app.program, app.fresh_natives())
        result = interp.run(app.entry, app.valid_inputs([1, 2], arg=5))
        assert result.returned == 10

    def test_dec_and_clear(self, app):
        interp = Interpreter(app.program, app.fresh_natives())
        # acc = arg; acc -= 1; clear; acc = arg
        result = interp.run(app.entry, app.valid_inputs([1, 3, 5, 1], arg=9))
        assert result.returned == 9

    def test_check_with_magic_value(self, app):
        interp = Interpreter(app.program, app.fresh_natives())
        result = interp.run(app.entry, app.valid_inputs([1, 4], arg=13))
        assert result.error and "magic" in result.error_message

    def test_check_without_magic_value(self, app):
        interp = Interpreter(app.program, app.fresh_natives())
        result = interp.run(app.entry, app.valid_inputs([1, 4], arg=12))
        assert not result.error and result.returned == 12

    def test_bad_checksum_rejected(self, app):
        interp = Interpreter(app.program, app.fresh_natives())
        result = interp.run(
            app.entry, app.initial_inputs([1, 4], arg=13, checksum=12345)
        )
        assert result.returned == -1

    def test_halt_stops_execution_early(self, app):
        interp = Interpreter(app.program, app.fresh_natives())
        # HALT at position 1: the DEC at position 2 never runs
        result = interp.run(app.entry, app.valid_inputs([1, 0, 3], arg=7))
        assert result.returned == 7

    def test_checksum_of_helper_agrees(self, app):
        ops = [2, 1, 4, 0, 0, 0]
        inputs = app.valid_inputs(ops, arg=1)
        natives = app.fresh_natives()
        assert inputs["checksum"] == natives.lookup("vmcrc")(*ops)


class TestVmSearch:
    def test_higher_order_cracks_the_vm(self, app):
        search = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(),
            ConcretizationMode.HIGHER_ORDER,
            SearchConfig(max_runs=200, stop_on_first_error=True),
        )
        result = search.run(app.initial_inputs())
        assert result.found_error
        err = result.errors[0]
        # the generated packet carries a valid checksum over its opcodes
        ops = [err.inputs[f"op{i}"] for i in range(app.code_len)]
        assert err.inputs["checksum"] == app.checksum_of(ops)
        # and the opcode sequence really produces acc == 13 at a CHECK
        interp = Interpreter(app.program, app.fresh_natives())
        replay = interp.run(app.entry, dict(err.inputs))
        assert replay.error

    def test_no_divergences(self, app):
        search = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(),
            ConcretizationMode.HIGHER_ORDER,
            SearchConfig(max_runs=150, stop_on_first_error=True),
        )
        result = search.run(app.initial_inputs())
        assert result.divergences == 0

    def test_unsound_concretization_rejected_at_crc(self, app):
        search = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(),
            ConcretizationMode.UNSOUND, SearchConfig(max_runs=100),
        )
        result = search.run(app.initial_inputs())
        assert not result.found_error

    def test_random_fuzzing_hopeless(self, app):
        fuzzer = RandomFuzzer(
            app.program, app.entry, app.fresh_natives(),
            ranges={f"op{i}": (0, 5) for i in range(app.code_len)},
            default_range=(-100000, 100000),
            seed=9,
        )
        result = fuzzer.run(500)
        assert not result.found_error
        # random checksums essentially never validate
        assert result.coverage.ratio() < 0.3
