"""Tests for the stable API surface (repro.api), the batch engine behind
``repro campaign``, the persistent disk cache, and the deprecation shims.

These are contract tests: they pin the facade's ``__all__``, the campaign
CLI flag set, and the determinism/robustness promises documented in
docs/API.md, so an accidental surface change fails loudly here before it
reaches a user.
"""

import json
import os
import warnings

import pytest

import repro
from repro import api
from repro.apps.paper_programs import PAPER_EXAMPLES, make_paper_natives
from repro.cli import main
from repro.engine import BatchPlanner, CampaignSpec
from repro.errors import ReproError
from repro.search import SearchConfig
from repro.search.corpus import TestCorpus as Corpus
from repro.search.report import suite_digest
from repro.solver.cache import CachedResult, QueryCache
from repro.solver.diskcache import DISKCACHE_FORMAT, DiskCache


def _tiny_spec(max_runs=12):
    """A two-program, two-strategy campaign that finishes in well under a
    second per job (4 jobs total)."""
    foo = PAPER_EXAMPLES["foo"]
    obscure = PAPER_EXAMPLES["obscure"]
    return CampaignSpec(
        programs=[
            {
                "name": ex.name,
                "source": ex.source,
                "entry": ex.entry,
                "natives": "paper",
                "seed": dict(ex.initial_inputs),
            }
            for ex in (foo, obscure)
        ],
        strategies=["higher_order", "unsound"],
        max_runs=max_runs,
    )


# -- facade smoke tests ------------------------------------------------------


class TestGenerateTests:
    def test_paper_example_end_to_end(self):
        ex = PAPER_EXAMPLES["obscure"]
        result = api.generate_tests(
            ex.source,
            entry=ex.entry,
            strategy="hotg",
            natives=make_paper_natives(),
            seed=dict(ex.initial_inputs),
        )
        assert result.found_error
        assert result.divergences == 0

    def test_accepts_config_dict_and_validates_it(self):
        ex = PAPER_EXAMPLES["foo"]
        result = api.generate_tests(
            ex.source,
            entry=ex.entry,
            natives=make_paper_natives(),
            config={"max_runs": 5},
        )
        assert result.runs <= 5
        with pytest.raises(TypeError):
            api.generate_tests(
                ex.source,
                entry=ex.entry,
                natives=make_paper_natives(),
                config={"max_runs": 5, "not_an_option": 1},
            )

    def test_unknown_strategy_and_entry_are_errors(self):
        ex = PAPER_EXAMPLES["foo"]
        with pytest.raises(ReproError):
            api.generate_tests(ex.source, strategy="quantum")
        with pytest.raises(ReproError):
            api.generate_tests(ex.source, entry="no_such_function")

    def test_replay_round_trip(self, tmp_path):
        ex = PAPER_EXAMPLES["obscure"]
        result = api.generate_tests(
            ex.source,
            entry=ex.entry,
            natives=make_paper_natives(),
            seed=dict(ex.initial_inputs),
        )
        corpus = Corpus()
        assert corpus.add_from_search(result) > 0
        path = str(tmp_path / "corpus.json")
        corpus.save(path)
        report = api.replay(
            path, ex.source, entry=ex.entry, natives=make_paper_natives()
        )
        assert report.all_match


# -- the batch engine --------------------------------------------------------


class TestRunCampaign:
    def test_digest_identical_across_worker_counts(self):
        spec = _tiny_spec()
        serial = api.run_campaign(spec, workers=1)
        pooled = api.run_campaign(spec, workers=2)
        assert len(serial.jobs) == 4
        assert serial.campaign_digest == pooled.campaign_digest
        assert [j.key for j in serial.jobs] == [j.key for j in pooled.jobs]

    def test_disk_cache_warm_run_hits(self, tmp_path):
        spec = _tiny_spec()
        cache_dir = str(tmp_path / "cache")
        cold = api.run_campaign(spec, workers=1, cache_dir=cache_dir)
        warm = api.run_campaign(spec, workers=1, cache_dir=cache_dir)
        assert cold.campaign_digest == warm.campaign_digest
        assert cold.cache_totals()["disk_stores"] > 0
        totals = warm.cache_totals()
        assert totals["disk_hits"] > 0
        assert totals["disk_misses"] == 0

    def test_worker_proc_kill_is_contained_and_digest_stable(self):
        spec = _tiny_spec()
        clean = api.run_campaign(spec, workers=1)
        chaotic = api.run_campaign(spec, workers=1, fault_plan="worker-proc:at=1")
        assert chaotic.killed_workers == 1
        assert sum(1 for j in chaotic.jobs if j.killed_worker) == 1
        assert chaotic.campaign_digest == clean.campaign_digest

    def test_checkpoint_resume_skips_finished_jobs(self, tmp_path):
        spec = _tiny_spec()
        ckpt = str(tmp_path / "ckpt")
        first = api.run_campaign(spec, workers=1, checkpoint=ckpt)
        assert first.resumed_jobs == 0
        second = api.run_campaign(spec, workers=1, checkpoint=ckpt)
        assert second.resumed_jobs == len(first.jobs)
        assert second.campaign_digest == first.campaign_digest

    def test_failing_job_is_contained_not_fatal(self):
        from repro.engine import ProcessPoolRunner, ResultMerger, SearchJob

        good = BatchPlanner().expand(_tiny_spec(max_runs=5))[:1]
        # a job the planner would reject (bogus natives name), standing in
        # for any job whose setup blows up inside the worker
        broken = SearchJob(
            key="broken//main//unsound",
            program_name="broken",
            source="int main(int x) { return x; }",
            entry="main",
            strategy="unsound",
            natives="no_such_registry",
            seed={"x": 0},
        )
        results = ProcessPoolRunner(workers=1).run(good + [broken])
        report = ResultMerger().merge(results, seconds=0.0)
        assert len(report.jobs) == 2
        assert len(report.failed_jobs) == 1
        assert "no_such_registry" in report.failed_jobs[0].error

    def test_planner_rejects_bad_specs(self):
        with pytest.raises(ReproError):
            BatchPlanner().expand(CampaignSpec(programs=[]))
        with pytest.raises(ReproError):
            BatchPlanner().expand(
                CampaignSpec(
                    programs=[{"name": "x", "source": "int main() { return 0; }"}],
                    strategies=["hotg", "higher_order"],  # same mode twice
                )
            )


# -- the persistent disk cache ----------------------------------------------


class TestDiskCache:
    KEY = ("check", ("var", 0), ("fun", 1))

    def _entry(self):
        return CachedResult(
            sat=True,
            iterations=2,
            int_values={0: 42},
            bool_values={1: True},
            tables={1: {(0, 7): 9}},
            default=0,
        )

    def test_round_trip(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        assert cache.lookup(self.KEY) is None
        cache.store(self.KEY, self._entry())
        assert len(cache) == 1
        got = DiskCache(str(tmp_path)).lookup(self.KEY)
        assert got is not None
        assert got.sat and got.int_values == {0: 42}
        assert got.bool_values == {1: True}
        assert got.tables == {1: {(0, 7): 9}}

    def test_corrupt_and_truncated_entries_are_skipped_not_fatal(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        cache.store(self.KEY, self._entry())
        path = cache.path_for(self.KEY)
        for garbage in ("{\"format\":", "not json at all", ""):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(garbage)
            fresh = DiskCache(str(tmp_path))
            assert fresh.lookup(self.KEY) is None
            assert fresh.skipped == 1
        # a stale format header self-invalidates the same way
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"format": DISKCACHE_FORMAT + 1}, handle)
        assert DiskCache(str(tmp_path)).lookup(self.KEY) is None

    def test_memory_cache_promotes_disk_hits(self, tmp_path):
        disk = DiskCache(str(tmp_path))
        disk.store(self.KEY, self._entry())
        cache = QueryCache(disk=DiskCache(str(tmp_path)))
        assert cache.lookup(self.KEY) is not None
        assert cache.disk_hits == 1
        # second lookup is served from memory: the disk tier is not touched
        assert cache.lookup(self.KEY) is not None
        assert cache.disk_hits == 1
        assert cache.hits == 2


# -- surface snapshots and deprecation shims --------------------------------


class TestSurfaceContracts:
    def test_api_all_snapshot(self):
        assert api.__all__ == [
            "generate_tests",
            "run_campaign",
            "replay",
            "Client",
            "CampaignHandle",
            "ServiceClient",
            "BatchPlanner",
            "CampaignReport",
            "CampaignSpec",
            "JobResult",
            "ProcessPoolRunner",
            "ResultMerger",
            "SearchJob",
            "SearchConfig",
            "SearchResult",
            "ReplayReport",
            "TestCorpus",
            "suite_digest",
        ]
        for name in api.__all__:
            assert getattr(api, name) is not None
        for name in ("generate_tests", "run_campaign", "replay", "api"):
            assert hasattr(repro, name)

    def test_campaign_help_flag_snapshot(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--help"])
        assert excinfo.value.code == 0
        helptext = capsys.readouterr().out
        for flag in (
            "spec",
            "--workers",
            "--cache-dir",
            "--checkpoint",
            "--fault-plan",
            "--corpus",
            "--json",
            "--quiet",
            "--expect-errors",
        ):
            assert flag in helptext, f"campaign --help lost {flag}"

    def test_from_options_rejects_unknown_keys(self):
        with pytest.raises(TypeError, match="not_an_option"):
            SearchConfig.from_options(not_an_option=1)

    def test_from_options_resolves_deprecated_aliases(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            # the one-shot warning may have fired already in this process;
            # force a fresh alias so the DeprecationWarning is observable
            from repro.search import directed

            directed._WARNED_ALIASES.discard("stop_on_error")
            with pytest.raises(DeprecationWarning):
                SearchConfig.from_options(stop_on_error=True)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            config = SearchConfig.from_options(stop_on_error=True, max_runs=3)
        assert config.stop_on_first_error is True
        assert config.max_runs == 3

    def test_cli_suite_digest_alias_warns_but_works(self):
        import repro.cli as cli

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            alias = cli.suite_digest
        assert alias is suite_digest
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        with pytest.raises(AttributeError):
            cli.no_such_attribute

    def test_campaign_cli_end_to_end(self, tmp_path, capsys):
        code = main(["campaign", "paper", "--quiet", "--expect-errors"])
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign digest:" in out
