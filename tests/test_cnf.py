"""Property tests for the Tseitin CNF converter.

For random boolean formulas over three atoms, the CNF encoding must be
*equisatisfiable per assignment*: for every truth assignment of the
atoms, the SAT solver restricted to that assignment accepts exactly when
the formula evaluates true.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.solver import Model, SatSolver, Sort, TermManager, evaluate
from repro.solver.cnf import CnfConverter


def random_formula(tm, draw, depth):
    p = tm.mk_var("p", Sort.BOOL)
    q = tm.mk_var("q", Sort.BOOL)
    r = tm.mk_var("r", Sort.BOOL)
    leaves = [p, q, r, tm.true_, tm.false_]
    if depth == 0:
        return draw(st.sampled_from(leaves))
    op = draw(st.sampled_from(["not", "and", "or", "implies", "ite", "leaf"]))
    if op == "leaf":
        return draw(st.sampled_from(leaves))
    if op == "not":
        return tm.mk_not(random_formula(tm, draw, depth - 1))
    a = random_formula(tm, draw, depth - 1)
    b = random_formula(tm, draw, depth - 1)
    if op == "and":
        return tm.mk_and(a, b)
    if op == "or":
        return tm.mk_or(a, b)
    if op == "implies":
        return tm.mk_implies(a, b)
    c = random_formula(tm, draw, depth - 1)
    return tm.mk_ite(a, b, c)


class TestTseitinEquisatisfiability:
    @given(data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_per_assignment_agreement(self, data):
        tm = TermManager()
        formula = random_formula(tm, data.draw, data.draw(st.integers(1, 3)))
        sat = SatSolver()
        cnf = CnfConverter(tm, sat)
        cnf.assert_formula(formula)

        atom_vars = {}
        for name in ("p", "q", "r"):
            var = tm.mk_var(name, Sort.BOOL)
            svar = cnf.atoms.get(var)
            if svar is not None:
                atom_vars[name] = svar

        for bits in itertools.product([False, True], repeat=len(atom_vars)):
            assignment = dict(zip(atom_vars, bits))
            assumptions = [
                (svar if assignment[name] else -svar)
                for name, svar in atom_vars.items()
            ]
            sat_result = sat.solve(assumptions=assumptions)
            model = Model(bools=dict(assignment))
            expected = evaluate(formula, model)
            assert sat_result.sat == bool(expected), (
                f"{formula} under {assignment}"
            )

    def test_atoms_map_is_stable(self):
        tm = TermManager()
        sat = SatSolver()
        cnf = CnfConverter(tm, sat)
        x = tm.mk_var("x")
        atom = tm.mk_gt(x, tm.mk_int(0))
        lit1 = cnf.literal_for(atom)
        lit2 = cnf.literal_for(atom)
        assert lit1 == lit2
        assert cnf.atom_of(abs(lit1)) is atom

    def test_model_literals_roundtrip(self):
        tm = TermManager()
        sat = SatSolver()
        cnf = CnfConverter(tm, sat)
        x = tm.mk_var("x")
        a1 = tm.mk_gt(x, tm.mk_int(0))
        a2 = tm.mk_lt(x, tm.mk_int(9))
        cnf.assert_formula(tm.mk_and(a1, a2))
        result = sat.solve()
        assert result.sat
        lits = dict(cnf.model_literals(result.model))
        assert lits[a1] is True and lits[a2] is True

    def test_non_boolean_assert_rejected(self):
        tm = TermManager()
        cnf = CnfConverter(tm, SatSolver())
        with pytest.raises(SolverError):
            cnf.assert_formula(tm.mk_int(1))

    def test_boolean_iff_encoded(self):
        tm = TermManager()
        sat = SatSolver()
        cnf = CnfConverter(tm, sat)
        p = tm.mk_var("p", Sort.BOOL)
        q = tm.mk_var("q", Sort.BOOL)
        cnf.assert_formula(tm.mk_eq(p, q))
        cnf.assert_formula(p)
        result = sat.solve()
        assert result.sat
        assert result.model[cnf.atoms[q]] is True


class TestSimplexInvariants:
    """After any check(), the tableau must be internally consistent."""

    def _assert_invariants(self, sx):
        from fractions import Fraction

        for basic, row in sx._rows.items():
            expected = sum(
                (c * sx._beta[v] for v, c in row.items()), Fraction(0)
            )
            assert sx._beta[basic] == expected, "row equation violated"
        for var in range(sx._n):
            if var in sx._basic:
                continue
            lo, hi = sx.bounds(var)
            value = sx.value(var)
            if lo is not None:
                assert value >= lo, "nonbasic below lower bound"
            if hi is not None:
                assert value <= hi, "nonbasic above upper bound"

    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=80, deadline=None)
    def test_invariants_after_random_session(self, seed):
        import random
        from fractions import Fraction

        from repro.solver import Simplex

        rng = random.Random(seed)
        sx = Simplex()
        variables = [sx.new_var() for _ in range(3)]
        rows = [
            sx.add_row(
                {
                    v: Fraction(rng.randint(-3, 3))
                    for v in variables
                    if rng.random() < 0.8
                }
            )
            for _ in range(2)
        ]
        everything = variables + rows
        for _ in range(rng.randint(1, 6)):
            var = rng.choice(everything)
            bound = Fraction(rng.randint(-10, 10))
            if rng.random() < 0.5:
                conflict = sx.assert_upper(var, bound, tag=None)
            else:
                conflict = sx.assert_lower(var, bound, tag=None)
            if conflict is not None:
                return  # immediate bound conflict: nothing more to check
            result = sx.check()
            self._assert_invariants(sx)
            if not result.sat:
                return
