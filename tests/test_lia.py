"""Unit and property tests for the linear integer arithmetic solver."""

import pytest
from fractions import Fraction
from hypothesis import given, settings, strategies as st

from repro.solver import LiaSolver, Simplex


class TestSimplex:
    def test_unconstrained_sat(self):
        sx = Simplex()
        sx.new_var()
        assert sx.check().sat

    def test_bounds_sat(self):
        sx = Simplex()
        x = sx.new_var()
        assert sx.assert_lower(x, Fraction(1), "lo") is None
        assert sx.assert_upper(x, Fraction(5), "hi") is None
        r = sx.check()
        assert r.sat and 1 <= r.model[x] <= 5

    def test_bounds_conflict_immediate(self):
        sx = Simplex()
        x = sx.new_var()
        sx.assert_lower(x, Fraction(10), "lo")
        conflict = sx.assert_upper(x, Fraction(5), "hi")
        assert conflict is not None
        assert set(conflict) == {"lo", "hi"}

    def test_row_constraint(self):
        sx = Simplex()
        x, y = sx.new_var(), sx.new_var()
        s = sx.add_row({x: Fraction(1), y: Fraction(1)})  # s = x + y
        sx.assert_lower(s, Fraction(10), "sum>=10")
        sx.assert_upper(x, Fraction(3), "x<=3")
        r = sx.check()
        assert r.sat
        assert r.model[x] + r.model[y] >= 10
        assert r.model[x] <= 3

    def test_infeasible_system_core(self):
        sx = Simplex()
        x, y = sx.new_var(), sx.new_var()
        s = sx.add_row({x: Fraction(1), y: Fraction(1)})
        sx.assert_lower(s, Fraction(10), "sum>=10")
        sx.assert_upper(x, Fraction(3), "x<=3")
        sx.assert_upper(y, Fraction(3), "y<=3")
        r = sx.check()
        assert not r.sat
        assert set(r.core) <= {"sum>=10", "x<=3", "y<=3"}
        assert "sum>=10" in r.core

    def test_snapshot_restore(self):
        sx = Simplex()
        x = sx.new_var()
        sx.assert_lower(x, Fraction(0), "lo")
        snap = sx.snapshot()
        sx.assert_upper(x, Fraction(-5), "bad")
        sx.restore(snap)
        sx.assert_upper(x, Fraction(5), "ok")
        assert sx.check().sat

    def test_equality_via_two_bounds(self):
        sx = Simplex()
        x, y = sx.new_var(), sx.new_var()
        s = sx.add_row({x: Fraction(2), y: Fraction(-1)})  # s = 2x - y
        sx.assert_lower(s, Fraction(4), "eq-lo")
        sx.assert_upper(s, Fraction(4), "eq-hi")
        r = sx.check()
        assert r.sat
        assert 2 * r.model[x] - r.model[y] == 4


class TestLiaBasics:
    def test_empty_sat(self):
        assert LiaSolver().check().sat

    def test_single_equality(self):
        lia = LiaSolver()
        x = lia.new_var("x")
        lia.add_eq({x: 1}, 5)
        r = lia.check()
        assert r.sat and r.model[x] == 5

    def test_le_and_ge_window(self):
        lia = LiaSolver()
        x = lia.new_var("x")
        lia.add_ge({x: 1}, 3)
        lia.add_le({x: 1}, 4)
        r = lia.check()
        assert r.sat and r.model[x] in (3, 4)

    def test_strict_inequalities_tighten(self):
        lia = LiaSolver()
        x = lia.new_var("x")
        lia.add_gt({x: 1}, 3)
        lia.add_lt({x: 1}, 5)
        r = lia.check()
        assert r.sat and r.model[x] == 4

    def test_conflicting_bounds(self):
        lia = LiaSolver()
        x = lia.new_var("x")
        lia.add_ge({x: 1}, 10, tag="ge")
        lia.add_le({x: 1}, 5, tag="le")
        r = lia.check()
        assert not r.sat
        assert set(r.core) == {"ge", "le"}

    def test_gcd_infeasible_equality(self):
        # 2x = 2y + 1 has no integer solution
        lia = LiaSolver()
        x, y = lia.new_var("x"), lia.new_var("y")
        lia.add_eq({x: 2, y: -2}, 1, tag="parity")
        r = lia.check()
        assert not r.sat
        assert r.core == ["parity"]

    def test_gcd_tightening_of_inequality(self):
        # 2x <= 5 over Z means x <= 2
        lia = LiaSolver()
        x = lia.new_var("x")
        lia.add_le({x: 2}, 5)
        lia.add_ge({x: 1}, 3, tag="x>=3")
        r = lia.check()
        assert not r.sat

    def test_trivial_constant_constraints(self):
        lia = LiaSolver()
        lia.add_le({}, 5)  # 0 <= 5: fine
        assert lia.check().sat
        lia2 = LiaSolver()
        lia2.add_le({}, -1, tag="absurd")  # 0 <= -1
        r = lia2.check()
        assert not r.sat and r.core == ["absurd"]


class TestDisequalities:
    def test_diseq_forces_split(self):
        lia = LiaSolver()
        x = lia.new_var("x")
        lia.add_ge({x: 1}, 0)
        lia.add_le({x: 1}, 1)
        lia.add_diseq({x: 1}, 0)
        r = lia.check()
        assert r.sat and r.model[x] == 1

    def test_diseq_exhausts_domain(self):
        lia = LiaSolver()
        x = lia.new_var("x")
        lia.add_ge({x: 1}, 0, tag="lo")
        lia.add_le({x: 1}, 2, tag="hi")
        for v in (0, 1, 2):
            lia.add_diseq({x: 1}, v, tag=f"ne{v}")
        r = lia.check()
        assert not r.sat

    def test_diseq_between_vars(self):
        lia = LiaSolver()
        x, y = lia.new_var("x"), lia.new_var("y")
        lia.add_eq({x: 1}, 7)
        lia.add_diseq({x: 1, y: -1}, 0)  # x != y
        r = lia.check()
        assert r.sat and r.model[y] != 7

    def test_trivial_diseq_unsat(self):
        lia = LiaSolver()
        lia.add_diseq({}, 0, tag="zero!=zero")
        r = lia.check()
        assert not r.sat


class TestBranchAndBound:
    def test_fractional_vertex_forces_branching(self):
        # 2x + 2y = 3 is rationally feasible but integrally infeasible
        lia = LiaSolver()
        x, y = lia.new_var("x"), lia.new_var("y")
        lia.add_eq({x: 2, y: 2}, 3, tag="e")
        r = lia.check()
        assert not r.sat

    def test_knapsack_style(self):
        lia = LiaSolver()
        x, y = lia.new_var("x"), lia.new_var("y")
        lia.add_ge({x: 1}, 0)
        lia.add_ge({y: 1}, 0)
        lia.add_le({x: 3, y: 5}, 14)
        lia.add_ge({x: 3, y: 5}, 14)
        r = lia.check()
        assert r.sat
        assert 3 * r.model[x] + 5 * r.model[y] == 14

    def test_branching_counts_reported(self):
        lia = LiaSolver()
        x, y = lia.new_var("x"), lia.new_var("y")
        lia.add_ge({x: 2, y: 3}, 7)
        lia.add_le({x: 2, y: 3}, 7)
        r = lia.check()
        assert r.sat and r.branches >= 1

    def test_bounded_diophantine(self):
        # 7x + 11y = 100, 0 <= x,y <= 20 has no solution... check: y=... 7x=100-11y
        # y=1 -> 89 no; y=3 -> 67 no; y=5 -> 45 no; y=7 -> 23 no; y=9 -> 1 no;
        # y=2 -> 78 no; y=4 -> 56=7*8 yes! x=8,y=4.
        lia = LiaSolver()
        x, y = lia.new_var("x"), lia.new_var("y")
        lia.add_ge({x: 1}, 0)
        lia.add_ge({y: 1}, 0)
        lia.add_le({x: 1}, 20)
        lia.add_le({y: 1}, 20)
        lia.add_eq({x: 7, y: 11}, 100)
        r = lia.check()
        assert r.sat
        assert r.model[x] == 8 and r.model[y] == 4


@st.composite
def random_lia_problem(draw):
    n_vars = draw(st.integers(min_value=1, max_value=3))
    n_cons = draw(st.integers(min_value=1, max_value=6))
    cons = []
    for _ in range(n_cons):
        coeffs = {
            v: draw(st.integers(min_value=-4, max_value=4)) for v in range(n_vars)
        }
        const = draw(st.integers(min_value=-10, max_value=10))
        op = draw(st.sampled_from(["<=", "=", "!="]))
        cons.append((coeffs, op, const))
    return n_vars, cons


def _brute_force_lia(n_vars, cons, radius=12):
    import itertools

    for point in itertools.product(range(-radius, radius + 1), repeat=n_vars):
        ok = True
        for coeffs, op, const in cons:
            total = sum(coeffs.get(v, 0) * point[v] for v in range(n_vars))
            if op == "<=" and not total <= const:
                ok = False
            elif op == "=" and total != const:
                ok = False
            elif op == "!=" and total == const:
                ok = False
            if not ok:
                break
        if ok:
            return True
    return False


class TestLiaAgainstBruteForce:
    @given(random_lia_problem())
    @settings(max_examples=120, deadline=None)
    def test_model_satisfies_constraints(self, problem):
        n_vars, cons = problem
        lia = LiaSolver()
        variables = [lia.new_var(f"x{i}") for i in range(n_vars)]
        # bound the domain so brute force and the solver agree
        for v in variables:
            lia.add_ge({v: 1}, -12)
            lia.add_le({v: 1}, 12)
        for coeffs, op, const in cons:
            mapped = {variables[v]: c for v, c in coeffs.items()}
            if op == "<=":
                lia.add_le(mapped, const)
            elif op == "=":
                lia.add_eq(mapped, const)
            else:
                lia.add_diseq(mapped, const)
        result = lia.check()
        expected = _brute_force_lia(n_vars, cons)
        assert result.sat == expected
        if result.sat:
            for coeffs, op, const in cons:
                total = sum(
                    coeffs.get(i, 0) * result.model[variables[i]]
                    for i in range(n_vars)
                )
                if op == "<=":
                    assert total <= const
                elif op == "=":
                    assert total == const
                else:
                    assert total != const
