"""Tests for input minimization and default-retention generation."""

import pytest

from repro.lang import Interpreter, NativeRegistry, parse_program
from repro.search import DirectedSearch, QuantifierFreeBackend, SearchConfig
from repro.search.minimize import minimize_error_inputs
from repro.symbolic import ConcretizationMode

WINDOW = """
int main(int x, int y, int z) {
    if (x > 100) {
        if (y == x + 1) {
            error("pair bug");
        }
    }
    return z;
}
"""


class TestMinimizer:
    def test_shrinks_toward_zero(self):
        prog = parse_program(WINDOW)
        result = minimize_error_inputs(
            prog, "main", {"x": 987654, "y": 987655, "z": -4242}
        )
        interp = Interpreter(prog)
        replay = interp.run("main", result.inputs)
        assert replay.error
        # x must stay > 100 but shrinks to the boundary; z is irrelevant
        assert result.inputs["x"] == 101
        assert result.inputs["y"] == 102
        assert result.inputs["z"] == 0
        assert result.distance_reduction() > 0

    def test_preserves_exact_error(self):
        src = """
        int main(int a) {
            if (a == 5) { error("first"); }
            if (a > 100) { error("second"); }
            return 0;
        }
        """
        prog = parse_program(src)
        result = minimize_error_inputs(prog, "main", {"a": 500})
        # must keep the "second" error, not drift to the "first"
        replay = Interpreter(prog).run("main", result.inputs)
        assert replay.error_message == "second"
        assert result.inputs["a"] == 101

    def test_custom_targets(self):
        prog = parse_program(WINDOW)
        result = minimize_error_inputs(
            prog, "main", {"x": 987654, "y": 987655, "z": 7},
            targets={"z": 7},
        )
        assert result.inputs["z"] == 7

    def test_rejects_non_error_inputs(self):
        prog = parse_program(WINDOW)
        with pytest.raises(ValueError):
            minimize_error_inputs(prog, "main", {"x": 0, "y": 0, "z": 0})

    def test_run_budget_respected(self):
        prog = parse_program(WINDOW)
        result = minimize_error_inputs(
            prog, "main", {"x": 10**9, "y": 10**9 + 1, "z": 123456},
            max_runs=10,
        )
        assert result.runs_used <= 10
        # even truncated minimization must preserve the error
        assert Interpreter(prog).run("main", result.inputs).error

    def test_changed_list(self):
        prog = parse_program(WINDOW)
        result = minimize_error_inputs(
            prog, "main", {"x": 101, "y": 102, "z": 999}
        )
        assert result.changed == ["z"]


class TestDefaultRetention:
    SRC = """
    int main(int x, int y, int z) {
        if (x == 5) { return 1; }
        return 0;
    }
    """

    def test_unconstrained_inputs_keep_values(self):
        search = DirectedSearch.for_mode(
            parse_program(self.SRC), "main", NativeRegistry(),
            ConcretizationMode.SOUND, SearchConfig(max_runs=10),
        )
        result = search.run({"x": 0, "y": 77, "z": -9})
        for record in result.executions:
            assert record.result.inputs["y"] == 77
            assert record.result.inputs["z"] == -9

    def test_constrained_conjunction_keeps_free_var(self):
        src = """
        int main(int a, int b) {
            if (a + b == 10) {
                if (a == 3) { error("split"); }
            }
            return 0;
        }
        """
        search = DirectedSearch.for_mode(
            parse_program(src), "main", NativeRegistry(),
            ConcretizationMode.SOUND, SearchConfig(max_runs=20),
        )
        result = search.run({"a": 3, "b": 0})
        assert result.found_error
        err = result.errors[0]
        # a must be 3 and b forced to 7; the retention kept a at its seed
        assert err.inputs == {"a": 3, "b": 7}

    def test_retention_can_be_disabled(self):
        from repro.solver import TermManager
        from repro.symbolic import ConcolicEngine
        from repro.search import DirectedSearch

        tm = TermManager()
        engine = ConcolicEngine(
            parse_program(self.SRC), NativeRegistry(),
            ConcretizationMode.SOUND, tm,
        )
        backend = QuantifierFreeBackend(tm, retain_defaults=False)
        search = DirectedSearch(engine, "main", backend)
        result = search.run({"x": 0, "y": 77, "z": -9})
        assert result.runs >= 2  # still works, just without the niceness
