"""Tests for the staged search kernel's pluggable frontier schedulers:
name resolution and aliases, dfs byte-identity against the recorded
paper-suite baselines, cross-jobs determinism of every scheduler,
checkpoint/resume equivalence per scheduler, the scheduler fault site,
and scheduler identity in campaign job keys."""

import json
import os
import warnings

import pytest

from repro import api
from repro.apps.paper_programs import PAPER_EXAMPLES
from repro.engine.planner import BatchPlanner, CampaignSpec
from repro.engine.runner import build_natives
from repro.errors import ReproError, SearchInterrupted
from repro.faults import FaultPlan, use_fault_plan
from repro.lang import NativeRegistry, parse_program
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.search import (
    DirectedSearch,
    SearchConfig,
    make_scheduler,
    scheduler_names,
)
from repro.search.report import suite_digest
from repro.search.scheduler import (
    CoverageScheduler,
    DfsScheduler,
    GenerationalScheduler,
    SCHEDULERS,
)
from repro.solver.cache import use_cache
from repro.symbolic import ConcretizationMode

BASELINES_PATH = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "paper_suite_digests.json"
)


def natives_with_hash():
    n = NativeRegistry()
    n.register("hash", lambda y: (y * 31 + 7) % 1000)
    return n


CHAIN = """
int main(int x, int y, int z) {
    if (x == hash(y)) {
        if (z == hash(x)) {
            if (y == 5) {
                error("three levels deep");
            }
        }
    }
    return 0;
}
"""

CHAIN_SEED = {"x": 1, "y": 2, "z": 3}


def chain_search(
    scheduler="dfs",
    checkpoint_dir=None,
    resume_from=None,
    jobs=1,
    max_runs=60,
):
    config = SearchConfig(
        max_runs=max_runs,
        jobs=jobs,
        scheduler=scheduler,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=2,
        resume_from=resume_from,
    )
    return DirectedSearch.for_mode(
        parse_program(CHAIN),
        "main",
        natives_with_hash(),
        ConcretizationMode.HIGHER_ORDER,
        config,
    )


class TestSchedulerRegistry:
    def test_registry_names(self):
        assert scheduler_names() == ("coverage", "dfs", "generational")
        assert set(SCHEDULERS) == {"dfs", "generational", "coverage"}
        assert isinstance(make_scheduler("dfs"), DfsScheduler)
        assert isinstance(make_scheduler("generational"), GenerationalScheduler)
        assert isinstance(make_scheduler("coverage"), CoverageScheduler)

    def test_unknown_name_rejected_with_allowed_set(self):
        with pytest.raises(ReproError, match="coverage, dfs, generational"):
            make_scheduler("bfs")

    def test_config_validate_rejects_unknown_scheduler(self):
        with pytest.raises(ReproError, match="coverage, dfs, generational"):
            SearchConfig(scheduler="random").validate()

    def test_from_options_maps_deprecated_frontier_values(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fifo = SearchConfig.from_options(frontier="fifo")
            cov = SearchConfig.from_options(frontier="coverage")
            pol = SearchConfig.from_options(frontier_policy="fifo")
        assert fifo.scheduler == "dfs"
        assert cov.scheduler == "generational"
        assert pol.scheduler == "dfs"
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )

    def test_from_options_native_scheduler_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            config = SearchConfig.from_options(scheduler="coverage")
        assert config.scheduler == "coverage"


class TestDfsBaselines:
    def test_foo_digest_matches_recorded_baseline(self):
        with open(BASELINES_PATH, "r", encoding="utf-8") as handle:
            baselines = json.load(handle)
        example = PAPER_EXAMPLES["foo"]
        with use_cache(None):
            result = api.generate_tests(
                example.source,
                entry=example.entry,
                strategy="higher_order",
                natives=build_natives("paper"),
                seed=dict(example.initial_inputs),
                config=SearchConfig(max_runs=40, scheduler="dfs"),
            )
        assert suite_digest(result) == baselines["foo"]


class TestSchedulerDeterminism:
    @pytest.mark.parametrize("scheduler", ["dfs", "generational", "coverage"])
    def test_digest_identical_across_jobs(self, scheduler):
        digests = []
        for jobs in (1, 2):
            with use_cache(None):
                result = chain_search(scheduler=scheduler, jobs=jobs).run(
                    dict(CHAIN_SEED)
                )
            digests.append(suite_digest(result))
        assert digests[0] == digests[1]

    def test_schedulers_explore_same_chain_but_may_order_differently(self):
        results = {}
        for scheduler in scheduler_names():
            with use_cache(None):
                results[scheduler] = chain_search(scheduler=scheduler).run(
                    dict(CHAIN_SEED)
                )
        # every scheduler finds the deep error in this small program
        for scheduler, result in results.items():
            assert result.found_error, f"{scheduler} missed the chain error"


class TestSchedulerResume:
    @pytest.mark.parametrize("scheduler", ["dfs", "generational", "coverage"])
    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("kill_at", [2, 5])
    def test_resumed_suite_matches_uninterrupted(
        self, tmp_path, scheduler, jobs, kill_at
    ):
        with use_cache(None):
            baseline = chain_search(scheduler=scheduler, jobs=jobs).run(
                dict(CHAIN_SEED)
            )
        expected = suite_digest(baseline)

        ckpt = str(tmp_path / "ckpt")
        with use_fault_plan(FaultPlan.parse(f"kill:at={kill_at}")):
            with pytest.raises(SearchInterrupted):
                with use_cache(None):
                    chain_search(
                        scheduler=scheduler, checkpoint_dir=ckpt, jobs=jobs
                    ).run(dict(CHAIN_SEED))

        with use_cache(None):
            resumed = chain_search(
                scheduler=scheduler,
                checkpoint_dir=ckpt,
                resume_from=ckpt,
                jobs=jobs,
            ).run(dict(CHAIN_SEED))
        assert resumed.replayed_decisions > 0
        assert suite_digest(resumed) == expected

    def test_resume_adopts_checkpoint_scheduler(self, tmp_path):
        """A checkpoint recorded under one scheduler resumes under it even
        when the resuming config names another — the decision log only
        replays faithfully under the scheduler that produced it."""
        with use_cache(None):
            baseline = chain_search(scheduler="coverage").run(dict(CHAIN_SEED))
        expected = suite_digest(baseline)

        ckpt = str(tmp_path / "ckpt")
        with use_fault_plan(FaultPlan.parse("kill:at=3")):
            with pytest.raises(SearchInterrupted):
                with use_cache(None):
                    chain_search(scheduler="coverage", checkpoint_dir=ckpt).run(
                        dict(CHAIN_SEED)
                    )

        registry = MetricsRegistry()
        with use_registry(registry), use_cache(None):
            resumed = chain_search(
                scheduler="dfs", checkpoint_dir=ckpt, resume_from=ckpt
            ).run(dict(CHAIN_SEED))
        assert suite_digest(resumed) == expected
        counters = registry.snapshot()["counters"]
        assert counters.get("search.resume.scheduler_override", 0) == 1


class TestSchedulerFaultSite:
    @pytest.mark.parametrize("scheduler", ["dfs", "generational", "coverage"])
    def test_scheduler_fault_is_contained(self, scheduler):
        plan = FaultPlan.parse("scheduler:at=2")
        registry = MetricsRegistry()
        with use_registry(registry), use_cache(None), use_fault_plan(plan):
            result = chain_search(scheduler=scheduler).run(dict(CHAIN_SEED))
        assert plan.fired.get("scheduler") == 1
        assert result.runs > 0
        counters = registry.snapshot()["counters"]
        assert counters.get("search.scheduler.failures", 0) == 1

    def test_scheduler_fault_keeps_digest_deterministic(self):
        digests = []
        for _ in range(2):
            plan = FaultPlan.parse("scheduler:every=2")
            with use_cache(None), use_fault_plan(plan):
                result = chain_search(scheduler="generational").run(
                    dict(CHAIN_SEED)
                )
            digests.append(suite_digest(result))
        assert digests[0] == digests[1]


class TestCampaignSchedulers:
    def _spec(self, schedulers):
        return CampaignSpec(
            programs=[
                {
                    "name": "chain",
                    "source": CHAIN,
                    "entry": "main",
                    "natives": "paper",
                    "seed": dict(CHAIN_SEED),
                }
            ],
            strategies=["higher_order"],
            schedulers=schedulers,
            max_runs=20,
        )

    def test_job_keys_carry_scheduler(self):
        jobs = BatchPlanner().expand(self._spec(["dfs", "coverage"]))
        assert [j.key for j in jobs] == [
            "chain//main//higher_order//coverage",
            "chain//main//higher_order//dfs",
        ]
        assert all(j.config["scheduler"] == j.key.split("//")[-1] for j in jobs)

    def test_unknown_scheduler_in_spec_rejected(self):
        with pytest.raises(ReproError, match="coverage, dfs, generational"):
            BatchPlanner().expand(self._spec(["bfs"]))

    def test_duplicate_scheduler_in_spec_rejected(self):
        with pytest.raises(ReproError, match="repeat"):
            BatchPlanner().expand(self._spec(["dfs", "dfs"]))

    def test_run_campaign_scheduler_override(self):
        report = api.run_campaign(self._spec(["dfs"]), scheduler="generational")
        assert len(report.jobs) == 1
        job = report.jobs[0]
        assert job.key.endswith("//generational")
        assert job.scheduler == "generational"
        assert job.ok
