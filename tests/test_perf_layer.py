"""The PR-2 solver performance layer: sessions, query cache, parallel planner.

Three cooperating pieces, each with a determinism obligation:

1. :mod:`repro.solver.session` — incremental sessions must answer exactly
   what a fresh solver would (same sat/unsat; verified models);
2. :mod:`repro.solver.cache` — canonical-key hits must be indistinguishable
   from cold solves, so cache population order is unobservable;
3. :mod:`repro.search.parallel` — the directed search must generate a
   byte-identical suite at every ``--jobs`` value.
"""

import random

import pytest

from repro.errors import SolverError
from repro.lang import NativeRegistry, parse_program
from repro.lang.randprog import generate_program
from repro.obs import MetricsRegistry, use_registry
from repro.search import DirectedSearch, SearchConfig
from repro.search.parallel import FrontierExpander, import_request
from repro.search.request import GeneratedTest, GenerationRequest
from repro.solver import (
    PrefixSession,
    QueryCache,
    Solver,
    SolverSession,
    TermManager,
    use_cache,
)
from repro.solver.evalmodel import evaluate
from repro.solver.terms import canonical_query
from repro.symbolic import ConcretizationMode


def natives_with_hash():
    n = NativeRegistry()
    n.register("hash", lambda y: (y * 31 + 7) % 1000)
    return n


# -- canonical keys ----------------------------------------------------------


class TestCanonicalQuery:
    def test_alpha_equivalent_formulas_share_a_key(self):
        tm1, tm2 = TermManager(), TermManager()
        h1 = tm1.mk_function("h", 1)
        h2 = tm2.mk_function("g", 1)  # different name, same role
        a, b = tm1.mk_var("a"), tm1.mk_var("b")
        x, y = tm2.mk_var("x"), tm2.mk_var("y")
        f1 = tm1.mk_and(
            tm1.mk_eq(a, tm1.mk_app(h1, [b])), tm1.mk_lt(b, tm1.mk_int(7))
        )
        f2 = tm2.mk_and(
            tm2.mk_eq(x, tm2.mk_app(h2, [y])), tm2.mk_lt(y, tm2.mk_int(7))
        )
        assert canonical_query([f1]).key == canonical_query([f2]).key

    def test_structural_difference_changes_the_key(self):
        tm = TermManager()
        x = tm.mk_var("x")
        f1 = tm.mk_lt(x, tm.mk_int(7))
        f2 = tm.mk_lt(x, tm.mk_int(8))
        assert canonical_query([f1]).key != canonical_query([f2]).key

    def test_commutative_argument_order_is_normalized(self):
        tm = TermManager()
        x, y = tm.mk_var("x"), tm.mk_var("y")
        f1 = tm.mk_and(tm.mk_lt(x, y), tm.mk_lt(y, tm.mk_int(3)))
        f2 = tm.mk_and(tm.mk_lt(y, tm.mk_int(3)), tm.mk_lt(x, y))
        assert canonical_query([f1]).key == canonical_query([f2]).key


# -- the query cache ---------------------------------------------------------


class TestQueryCache:
    def test_alpha_variant_query_hits_and_model_translates(self):
        cache = QueryCache()
        with use_cache(cache):
            tm1 = TermManager()
            h = tm1.mk_function("h", 1)
            a, b = tm1.mk_var("a"), tm1.mk_var("b")
            f1 = tm1.mk_and(
                tm1.mk_eq(a, tm1.mk_app(h, [b])), tm1.mk_gt(b, tm1.mk_int(5))
            )
            s1 = Solver(tm1)
            s1.add(f1)
            r1 = s1.check()
            assert r1.sat and cache.misses == 1 and cache.hits == 0

            tm2 = TermManager()
            g = tm2.mk_function("g", 1)
            x, y = tm2.mk_var("x"), tm2.mk_var("y")
            f2 = tm2.mk_and(
                tm2.mk_eq(x, tm2.mk_app(g, [y])), tm2.mk_gt(y, tm2.mk_int(5))
            )
            s2 = Solver(tm2)
            s2.add(f2)
            r2 = s2.check()
            assert r2.sat and cache.hits == 1
            # the hit's model is translated through the asking query's own
            # leaves and still satisfies it
            assert evaluate(f2, r2.model) is True

    def test_lru_eviction(self):
        cache = QueryCache(capacity=2)
        with use_cache(cache):
            tm = TermManager()
            x = tm.mk_var("x")
            for bound in (1, 2, 3):
                s = Solver(tm)
                s.add(tm.mk_gt(x, tm.mk_int(bound)))
                assert s.check().sat
            assert len(cache) == 2  # first entry evicted
            s = Solver(tm)
            s.add(tm.mk_gt(x, tm.mk_int(1)))
            s.check()
            assert cache.misses == 4  # evicted entry re-solved

    def test_disabled_cache_means_cold_solves(self):
        with use_cache(None):
            tm = TermManager()
            x = tm.mk_var("x")
            s = Solver(tm)
            s.add(tm.mk_gt(x, tm.mk_int(0)))
            assert s.check().sat

    def test_hit_metrics_recorded(self):
        registry = MetricsRegistry()
        cache = QueryCache()
        with use_registry(registry), use_cache(cache):
            tm = TermManager()
            x = tm.mk_var("x")
            for _ in range(2):
                s = Solver(tm)
                s.add(tm.mk_gt(x, tm.mk_int(0)))
                s.check()
        snap = registry.snapshot()["counters"]
        assert snap["solver.cache.misses"] == 1
        assert snap["solver.cache.hits"] == 1


# -- incremental sessions ----------------------------------------------------


def _random_formula(tm, rng, variables, fn):
    def leaf():
        choice = rng.randrange(3)
        if choice == 0:
            return rng.choice(variables)
        if choice == 1:
            return tm.mk_int(rng.randint(-8, 8))
        return tm.mk_app(fn, [rng.choice(variables)])

    def atom():
        op = rng.choice([tm.mk_eq, tm.mk_lt, tm.mk_le, tm.mk_gt])
        return op(leaf(), leaf())

    parts = [atom() for _ in range(rng.randint(1, 3))]
    formula = parts[0]
    for part in parts[1:]:
        formula = (tm.mk_and if rng.random() < 0.7 else tm.mk_or)(formula, part)
    if rng.random() < 0.25:
        formula = tm.mk_not(formula)
    return formula


class TestSolverSession:
    def test_session_matches_fresh_solver_randomized(self):
        for seed in range(20):
            rng = random.Random(seed)
            tm = TermManager()
            variables = [tm.mk_var(f"v{i}") for i in range(3)]
            fn = tm.mk_function("h", 1)
            base = _random_formula(tm, rng, variables, fn)

            session = SolverSession(tm)
            session.assert_base(base)
            for _ in range(3):
                extra = _random_formula(tm, rng, variables, fn)
                got = session.check(extra)
                cold = Solver(tm, use_cache=False)
                cold.add(base)
                cold.add(extra)
                want = cold.check()
                assert got.sat == want.sat, (seed, base, extra)
                if got.sat:
                    assert evaluate(tm.mk_and(base, extra), got.model) is True

    def test_push_pop_scopes(self):
        tm = TermManager()
        x = tm.mk_var("x")
        session = SolverSession(tm)
        session.assert_base(tm.mk_gt(x, tm.mk_int(0)))
        session.push()
        session.assert_term(tm.mk_lt(x, tm.mk_int(0)))
        assert session.check().sat is False
        session.pop()
        assert session.check().sat is True

    def test_assert_base_refused_under_open_scope(self):
        tm = TermManager()
        session = SolverSession(tm)
        session.push()
        with pytest.raises(SolverError):
            session.assert_base(tm.mk_gt(tm.mk_var("x"), tm.mk_int(0)))

    def test_prefix_session_reuses_common_prefix(self):
        registry = MetricsRegistry()
        tm = TermManager()
        x, y = tm.mk_var("x"), tm.mk_var("y")
        c1 = tm.mk_gt(x, tm.mk_int(0))
        c2 = tm.mk_gt(y, tm.mk_int(0))
        c3a = tm.mk_lt(x, y)
        c3b = tm.mk_gt(x, y)
        with use_registry(registry):
            prefix_session = PrefixSession(tm)
            assert prefix_session.solve([c1, c2, c3a]).sat
            assert prefix_session.solve([c1, c2, c3b]).sat  # retains c1, c2
        hist = registry.snapshot()["histograms"]["solver.session.reuse_depth"]
        assert hist["max"] == 2.0  # the second solve kept a 2-deep prefix
        counters = registry.snapshot()["counters"]
        assert counters["solver.session.push"] >= 4
        assert counters["solver.session.pop"] >= 1


# -- the parallel frontier expander ------------------------------------------

FOO = """
int main(int x, int y) {
    if (x == hash(y)) {
        if (y == 10) {
            error("foo deep bug");
        }
    }
    return 0;
}
"""


def _suite(source, entry, natives, seed_inputs, mode, jobs, cache=True, max_runs=60):
    with use_cache(QueryCache() if cache else None):
        search = DirectedSearch.for_mode(
            parse_program(source), entry, natives, mode,
            SearchConfig(max_runs=max_runs, jobs=jobs),
        )
        res = search.run(dict(seed_inputs))
    return (
        [
            (r.result.inputs, r.parent, r.flipped_index, r.diverged, r.note)
            for r in res.executions
        ],
        res.divergences,
        res.coverage.ratio(),
        res.distinct_paths,
    )


class TestParallelDeterminism:
    def test_import_request_shares_function_symbols(self):
        tm = TermManager()
        h = tm.mk_function("h", 1)
        y = tm.mk_var("y")
        engine_like = GenerationRequest(
            conditions=[],
            index=0,
            input_vars={"y": y},
            defaults={"y": 3},
        )
        local, copy = import_request(engine_like)
        assert local is not tm
        assert copy.input_vars["y"] is not y
        assert copy.input_vars["y"].name == "y"
        local_app = local.mk_app(h, [copy.input_vars["y"]])
        assert local_app.fn is h  # symbols shared, terms private

    @pytest.mark.parametrize("jobs", [2, 3])
    def test_foo_suite_identical_across_jobs(self, jobs):
        base = _suite(
            FOO, "main", natives_with_hash(), {"x": 3, "y": 5},
            ConcretizationMode.HIGHER_ORDER, 1,
        )
        other = _suite(
            FOO, "main", natives_with_hash(), {"x": 3, "y": 5},
            ConcretizationMode.HIGHER_ORDER, jobs,
        )
        assert base == other

    @pytest.mark.parametrize("seed", range(6))
    def test_random_program_suite_identical_across_jobs(self, seed):
        rp = generate_program(3000 + seed)
        seeds = rp.random_inputs(random.Random(seed))
        base = _suite(
            rp.source, rp.entry, rp.natives(), seeds,
            ConcretizationMode.HIGHER_ORDER, 1,
        )
        other = _suite(
            rp.source, rp.entry, rp.natives(), dict(seeds),
            ConcretizationMode.HIGHER_ORDER, 2,
        )
        assert base == other

    # seed band hand-picked to avoid generated programs whose *cold*
    # searches hit multi-minute solver queries (the cache exists for a
    # reason, but tier-1 must stay fast)
    @pytest.mark.parametrize("seed", [4100, 4101, 4103, 4104, 4105, 4106])
    def test_cached_and_cold_searches_agree(self, seed):
        rp = generate_program(seed)
        seeds = rp.random_inputs(random.Random(seed))
        # a small run budget: a handful of generated programs are
        # pathologically slow for the cold solver (the cache exists for a
        # reason), and this property only needs agreement, not depth
        cold = _suite(
            rp.source, rp.entry, rp.natives(), seeds,
            ConcretizationMode.HIGHER_ORDER, 1, cache=False, max_runs=12,
        )
        warm = _suite(
            rp.source, rp.entry, rp.natives(), dict(seeds),
            ConcretizationMode.HIGHER_ORDER, 1, cache=True, max_runs=12,
        )
        assert cold == warm

    def test_unknown_backend_falls_back_to_inline_generate(self):
        class OddBackend:
            name = "odd"

            def __init__(self):
                self.solver_calls = 0
                self.calls = []

            def generate(self, request):
                self.calls.append(request.index)
                return GeneratedTest(inputs={"x": request.index})

        backend = OddBackend()
        expander = FrontierExpander(backend, jobs=4)
        try:
            assert expander._pool is None  # nothing to speculate safely
            request = GenerationRequest(
                conditions=[], index=7, input_vars={}, defaults={}
            )
            planned = expander.plan_record([request])
            test = planned.produce(0)
            assert test.inputs == {"x": 7}
            assert backend.calls == [7]
        finally:
            expander.shutdown()


class TestProbeDedupe:
    CHAIN = """
    int chain(int x, int y, int z) {
        if (x == hash(y)) {
            if (z == hash(x)) {
                if (y == 5) {
                    error("deep");
                }
            }
        }
        return 0;
    }
    """

    def test_no_vector_is_ever_executed_twice(self):
        search = DirectedSearch.for_mode(
            parse_program(self.CHAIN), "chain", natives_with_hash(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=60),
        )
        res = search.run({"x": 1, "y": 2, "z": 3})
        assert res.found_error
        vectors = [
            tuple(sorted(r.result.inputs.items())) for r in res.executions
        ]
        assert len(vectors) == len(set(vectors)), vectors

    def test_probe_of_known_vector_consumes_no_budget(self):
        search = DirectedSearch.for_mode(
            parse_program(FOO), "main", natives_with_hash(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=60),
        )
        result = search.run({"x": 3, "y": 5})
        runs_before = search._result.runs
        # re-probing an already-executed vector is a silent no-op
        search._probe_runner(dict(result.executions[0].result.inputs))
        assert search._result.runs == runs_before
