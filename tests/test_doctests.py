"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.solver.terms


@pytest.mark.parametrize("module", [repro.solver.terms])
def test_module_doctests(module):
    results = doctest.testmod(module)
    assert results.attempted > 0, f"{module.__name__} has no doctests"
    assert results.failed == 0
