"""Tests for the validity checker / strategy synthesis engine (paper §4–5)."""

import pytest

from repro.errors import StrategyError
from repro.solver import TermManager, evaluate, Model
from repro.solver.validity import (
    AppValue,
    Sample,
    SampleRequest,
    Strategy,
    ValidityChecker,
    ValidityStatus,
)


@pytest.fixture()
def tm():
    return TermManager()


@pytest.fixture()
def ctx(tm):
    return {
        "x": tm.mk_var("x"),
        "y": tm.mk_var("y"),
        "h": tm.mk_function("h", 1),
        "f": tm.mk_function("f", 1),
        "vc": ValidityChecker(tm),
    }


class TestPaperExamples:
    def test_obscure_with_sample_valid(self, tm, ctx):
        """Paper §4.2: ∃x,y: (h(42)=567) ⇒ x = h(y) is valid."""
        pc = tm.mk_eq(ctx["x"], tm.mk_app(ctx["h"], [ctx["y"]]))
        r = ctx["vc"].check(
            pc, [ctx["x"], ctx["y"]], [Sample(ctx["h"], (42,), 567)],
            defaults={"x": 33, "y": 42},
        )
        assert r.status is ValidityStatus.VALID
        inputs = r.strategy.concretize([Sample(ctx["h"], (42,), 567)])
        assert inputs["x"] == 567 and inputs["y"] == 42

    def test_example3_bar_invalid(self, tm, ctx):
        """Paper Example 3: ∃x,y: x=h(y) ∧ y=h(x) is invalid."""
        pc = tm.mk_and(
            tm.mk_eq(ctx["x"], tm.mk_app(ctx["h"], [ctx["y"]])),
            tm.mk_eq(ctx["y"], tm.mk_app(ctx["h"], [ctx["x"]])),
        )
        samples = [Sample(ctx["h"], (42,), 567), Sample(ctx["h"], (33,), 123)]
        r = ctx["vc"].check(pc, [ctx["x"], ctx["y"]], samples)
        assert r.status is ValidityStatus.INVALID
        assert r.adversary is not None

    def test_example4_pub_without_samples_invalid(self, tm, ctx):
        """Paper Example 4: ∃x,y: h(x)>0 ∧ y=10 invalid without samples."""
        pc = tm.mk_and(
            tm.mk_gt(tm.mk_app(ctx["h"], [ctx["x"]]), tm.mk_int(0)),
            tm.mk_eq(ctx["y"], tm.mk_int(10)),
        )
        r = ctx["vc"].check(pc, [ctx["x"], ctx["y"]], [])
        assert r.status is ValidityStatus.INVALID

    def test_example4_pub_with_sample_valid(self, tm, ctx):
        """Paper Example 4: with h(1)=5 recorded the formula becomes valid."""
        pc = tm.mk_and(
            tm.mk_gt(tm.mk_app(ctx["h"], [ctx["x"]]), tm.mk_int(0)),
            tm.mk_eq(ctx["y"], tm.mk_int(10)),
        )
        r = ctx["vc"].check(pc, [ctx["x"], ctx["y"]], [Sample(ctx["h"], (1,), 5)])
        assert r.status is ValidityStatus.VALID
        inputs = r.strategy.concretize([Sample(ctx["h"], (1,), 5)])
        assert inputs == {"x": 1, "y": 10}

    def test_example5_euf_axiom_valid(self, tm, ctx):
        """Paper Example 5: ∃x,y: f(x)=f(y) valid via strategy x=y."""
        pc = tm.mk_eq(
            tm.mk_app(ctx["f"], [ctx["x"]]), tm.mk_app(ctx["f"], [ctx["y"]])
        )
        r = ctx["vc"].check(pc, [ctx["x"], ctx["y"]], [])
        assert r.status is ValidityStatus.VALID
        inputs = r.strategy.concretize([])
        assert inputs["x"] == inputs["y"]

    def test_example6_antecedent_flips_verdict(self, tm, ctx):
        """Paper Example 6: f(x)=f(y)+1 needs samples f(0)=0, f(1)=1."""
        pc = tm.mk_eq(
            tm.mk_app(ctx["f"], [ctx["x"]]),
            tm.mk_add(tm.mk_app(ctx["f"], [ctx["y"]]), tm.mk_int(1)),
        )
        r_no = ctx["vc"].check(pc, [ctx["x"], ctx["y"]], [])
        assert r_no.status is ValidityStatus.INVALID
        samples = [Sample(ctx["f"], (0,), 0), Sample(ctx["f"], (1,), 1)]
        r_yes = ctx["vc"].check(pc, [ctx["x"], ctx["y"]], samples)
        assert r_yes.status is ValidityStatus.VALID
        inputs = r_yes.strategy.concretize(samples)
        assert inputs == {"x": 1, "y": 0}

    def test_example7_multistep_strategy(self, tm, ctx):
        """Paper Example 7: strategy "y := 10, x := h(10)" with pending sample."""
        pc = tm.mk_and(
            tm.mk_eq(ctx["x"], tm.mk_app(ctx["h"], [ctx["y"]])),
            tm.mk_eq(ctx["y"], tm.mk_int(10)),
        )
        samples = [Sample(ctx["h"], (42,), 567)]
        r = ctx["vc"].check(
            pc, [ctx["x"], ctx["y"]], samples, defaults={"x": 567, "y": 42}
        )
        assert r.status is ValidityStatus.VALID
        pending = r.strategy.pending(samples)
        assert pending == [SampleRequest(ctx["h"], (10,))]
        # once the sample is learned the strategy concretizes
        learned = samples + [Sample(ctx["h"], (10,), 66)]
        assert r.strategy.concretize(learned) == {"x": 66, "y": 10}

    def test_antecedent_disabled_reproduces_paper_contrast(self, tm, ctx):
        """With use_antecedent=False, Example 4's sample is ignored."""
        vc_no_ant = ValidityChecker(tm, use_antecedent=False)
        pc = tm.mk_and(
            tm.mk_gt(tm.mk_app(ctx["h"], [ctx["x"]]), tm.mk_int(0)),
            tm.mk_eq(ctx["y"], tm.mk_int(10)),
        )
        r = vc_no_ant.check(pc, [ctx["x"], ctx["y"]], [Sample(ctx["h"], (1,), 5)])
        assert r.status is ValidityStatus.INVALID


class TestHashInversion:
    """The §7 application shape: invert a hash through recorded samples."""

    def test_single_preimage(self, tm, ctx):
        pc = tm.mk_eq(tm.mk_app(ctx["h"], [ctx["y"]]), tm.mk_int(52))
        samples = [
            Sample(ctx["h"], (7,), 99),
            Sample(ctx["h"], (13,), 52),
            Sample(ctx["h"], (21,), 14),
        ]
        r = ctx["vc"].check(pc, [ctx["y"]], samples)
        assert r.status is ValidityStatus.VALID
        assert r.strategy.concretize(samples)["y"] == 13

    def test_collision_any_preimage_accepted(self, tm, ctx):
        pc = tm.mk_eq(tm.mk_app(ctx["h"], [ctx["y"]]), tm.mk_int(52))
        samples = [Sample(ctx["h"], (13,), 52), Sample(ctx["h"], (99,), 52)]
        r = ctx["vc"].check(pc, [ctx["y"]], samples)
        assert r.status is ValidityStatus.VALID
        assert r.strategy.concretize(samples)["y"] in (13, 99)

    def test_no_preimage_invalid(self, tm, ctx):
        pc = tm.mk_eq(tm.mk_app(ctx["h"], [ctx["y"]]), tm.mk_int(1000))
        samples = [Sample(ctx["h"], (13,), 52)]
        r = ctx["vc"].check(pc, [ctx["y"]], samples)
        # not provably valid: h may have no 1000-preimage
        assert r.status is not ValidityStatus.VALID

    def test_negative_condition_avoids_samples(self, tm, ctx):
        # want h(y) != 52 with full freedom: pick y off the sampled point
        pc = tm.mk_ne(tm.mk_app(ctx["h"], [ctx["y"]]), tm.mk_int(52))
        samples = [Sample(ctx["h"], (13,), 52), Sample(ctx["h"], (7,), 99)]
        r = ctx["vc"].check(pc, [ctx["y"]], samples)
        assert r.status is ValidityStatus.VALID
        assert r.strategy.concretize(samples)["y"] == 7


class TestStrategyObject:
    def test_concretize_constants(self):
        s = Strategy({"x": 5, "y": -3})
        assert s.concretize([]) == {"x": 5, "y": -3}

    def test_concretize_missing_sample_raises(self, tm, ctx):
        s = Strategy({"x": AppValue(ctx["h"], (10,))})
        with pytest.raises(StrategyError):
            s.concretize([])

    def test_pending_lists_only_missing(self, tm, ctx):
        s = Strategy(
            {"a": AppValue(ctx["h"], (10,)), "b": AppValue(ctx["h"], (42,)), "c": 3}
        )
        pending = s.pending([Sample(ctx["h"], (42,), 567)])
        assert pending == [SampleRequest(ctx["h"], (10,))]

    def test_str_render(self, tm, ctx):
        s = Strategy({"x": AppValue(ctx["h"], (10,)), "y": 10})
        assert "x := h(10)" in str(s)


class TestEdgeCases:
    def test_true_pc_trivially_valid(self, tm, ctx):
        r = ctx["vc"].check(tm.true_, [ctx["x"]], [], defaults={"x": 7})
        assert r.status is ValidityStatus.VALID
        assert r.strategy.concretize([]) == {"x": 7}

    def test_false_pc_invalid(self, tm, ctx):
        r = ctx["vc"].check(tm.false_, [ctx["x"]], [])
        assert r.status is ValidityStatus.INVALID

    def test_uf_free_satisfiable(self, tm, ctx):
        pc = tm.mk_eq(tm.mk_add(ctx["x"], ctx["y"]), tm.mk_int(12))
        r = ctx["vc"].check(pc, [ctx["x"], ctx["y"]], [])
        assert r.status is ValidityStatus.VALID
        inputs = r.strategy.concretize([])
        assert inputs["x"] + inputs["y"] == 12

    def test_uf_free_unsat_invalid(self, tm, ctx):
        pc = tm.mk_and(
            tm.mk_gt(ctx["x"], tm.mk_int(0)), tm.mk_lt(ctx["x"], tm.mk_int(0))
        )
        r = ctx["vc"].check(pc, [ctx["x"]], [])
        assert r.status is ValidityStatus.INVALID

    def test_defaults_fill_unconstrained_vars(self, tm, ctx):
        pc = tm.mk_eq(ctx["x"], tm.mk_int(1))
        r = ctx["vc"].check(pc, [ctx["x"], ctx["y"]], [], defaults={"y": 42})
        assert r.status is ValidityStatus.VALID
        assert r.strategy.concretize([])["y"] == 42

    def test_binary_function_samples(self, tm, ctx):
        g = tm.mk_function("g", 2)
        pc = tm.mk_eq(tm.mk_app(g, [ctx["x"], ctx["y"]]), tm.mk_int(7))
        samples = [Sample(g, (2, 3), 7), Sample(g, (5, 5), 1)]
        r = ctx["vc"].check(pc, [ctx["x"], ctx["y"]], samples)
        assert r.status is ValidityStatus.VALID
        assert r.strategy.concretize(samples) == {"x": 2, "y": 3}

    def test_strategy_verified_against_adversaries(self, tm, ctx):
        """Validity answers carry a machine-checked certificate: re-verify
        the returned strategy against a hostile function interpretation."""
        pc = tm.mk_and(
            tm.mk_gt(tm.mk_app(ctx["h"], [ctx["x"]]), tm.mk_int(0)),
            tm.mk_eq(ctx["y"], tm.mk_int(10)),
        )
        samples = [Sample(ctx["h"], (1,), 5)]
        r = ctx["vc"].check(pc, [ctx["x"], ctx["y"]], samples)
        assert r.status is ValidityStatus.VALID
        inputs = r.strategy.concretize(samples)
        # hostile h: 0 everywhere except the recorded sample
        hostile = Model(ints=dict(inputs), default=0)
        hostile.functions[ctx["h"]] = {(1,): 5}
        assert evaluate(pc, hostile) is True
