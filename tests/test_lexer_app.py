"""Tests for the §7 lexer application and its comparison claims."""

import pytest

from repro.apps import (
    DEFAULT_KEYWORDS,
    build_lexer_program,
    build_table_lexer_program,
    codes_to_word,
    keyword_hashes,
    word_to_codes,
)
from repro.baselines import RandomFuzzer
from repro.lang import Interpreter
from repro.search import DirectedSearch, SearchConfig
from repro.symbolic import ConcretizationMode


@pytest.fixture(scope="module")
def app():
    return build_lexer_program()


class TestLexerProgramConcrete:
    def test_keywords_recognized(self, app):
        interp = Interpreter(app.program, app.fresh_natives())
        for idx, kw in enumerate(app.keywords):
            result = interp.run(app.entry, app.initial_inputs(kw, 0))
            # keyword tokens drive parse_stage away from the identifier path
            assert not result.error
            # findsym returns idx+1; check via parse_stage outcomes where wired
            if kw == "set":
                assert result.returned == 1
            if kw == "end":
                assert result.returned == 8

    def test_identifier_path(self, app):
        interp = Interpreter(app.program, app.fresh_natives())
        result = interp.run(app.entry, app.initial_inputs("zzz", 0))
        assert result.returned == 0

    def test_bug_requires_keyword_and_argument(self, app):
        interp = Interpreter(app.program, app.fresh_natives())
        ok = interp.run(app.entry, app.initial_inputs("ret", 0))
        assert not ok.error
        bug = interp.run(app.entry, app.initial_inputs("ret", 99))
        assert bug.error

    def test_collision_guard_blocks_wrong_word(self, app):
        # 'set' and 'not' collide under flex_hash at this table size; the
        # char-verification must still classify them correctly
        hashes = keyword_hashes(app.keywords, app.width, app.table_size)
        interp = Interpreter(app.program, app.fresh_natives())
        set_result = interp.run(app.entry, app.initial_inputs("set", 0))
        not_result = interp.run(app.entry, app.initial_inputs("not", 0))
        assert set_result.returned == 1  # token 'set' handled
        assert not_result.returned == 0  # 'not' has no parse_stage branch
        if hashes["set"] == hashes["not"]:
            # the guard really was exercised
            assert True

    def test_initial_inputs_shape(self, app):
        inputs = app.initial_inputs("if", 5)
        assert inputs["c0"] == ord("i") and inputs["c1"] == ord("f")
        assert inputs["c2"] == 0 and inputs["arg"] == 5


class TestSection7Comparison:
    """The §7 claim: blackbox random ≈ plain DART ≪ higher-order."""

    def test_higher_order_finds_buried_bug(self, app):
        search = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=120),
        )
        res = search.run(app.initial_inputs("zzz", 0))
        assert res.found_error
        err = res.errors[0]
        word = codes_to_word([err.inputs[f"c{i}"] for i in range(app.width)])
        assert word == "ret" and err.inputs["arg"] == 99

    def test_higher_order_reaches_most_branches(self, app):
        search = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=120),
        )
        res = search.run(app.initial_inputs("zzz", 0))
        assert res.coverage.ratio() >= 0.7

    def test_plain_dart_stuck_at_lexer(self, app):
        search = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(),
            ConcretizationMode.UNSOUND, SearchConfig(max_runs=120),
        )
        res = search.run(app.initial_inputs("zzz", 0))
        assert not res.found_error

    def test_sound_concretization_stuck_at_lexer(self, app):
        search = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(),
            ConcretizationMode.SOUND, SearchConfig(max_runs=120),
        )
        res = search.run(app.initial_inputs("zzz", 0))
        assert not res.found_error

    def test_random_fuzzing_no_better(self, app):
        fuzzer = RandomFuzzer(
            app.program, app.entry, app.fresh_natives(),
            ranges={f"c{i}": (0, 127) for i in range(app.width)},
            default_range=(-200, 200),
            seed=3,
        )
        res = fuzzer.run(max_runs=400)
        assert not res.found_error

    def test_higher_order_beats_baselines_on_coverage(self, app):
        hotg = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=120),
        ).run(app.initial_inputs("zzz", 0))
        dart = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(),
            ConcretizationMode.UNSOUND, SearchConfig(max_runs=120),
        ).run(app.initial_inputs("zzz", 0))
        fuzz = RandomFuzzer(
            app.program, app.entry, app.fresh_natives(),
            ranges={f"c{i}": (0, 127) for i in range(app.width)},
            seed=3,
        ).run(max_runs=400)
        assert hotg.coverage.ratio() > dart.coverage.ratio()
        assert hotg.coverage.ratio() > fuzz.coverage.ratio()


class TestCrossRunLearning:
    """§7's 'hard-coded hash values' variant: samples learned from a seed
    corpus of well-formed inputs enable later inversion."""

    def test_seed_corpus_enables_inversion(self, app):
        from repro.core import SampleStore
        from repro.solver import TermManager

        tm = TermManager()
        store = SampleStore()
        # session 1: run well-formed inputs (the keywords) once each,
        # recording their hashes into the persistent store
        from repro.symbolic import ConcolicEngine

        engine = ConcolicEngine(
            app.program, app.fresh_natives(),
            ConcretizationMode.HIGHER_ORDER, tm,
        )
        for kw in app.keywords:
            store.merge_from_run(engine.run(app.entry, app.initial_inputs(kw, 0)))
        assert len(store) > 0

        # session 2: a fresh search seeded with the learned store finds the
        # bug faster than one starting cold
        warm = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=120),
            manager=tm, store=store,
        )
        res = warm.run(app.initial_inputs("zzz", 0))
        assert res.found_error

    def test_store_persistence_roundtrip(self, app, tmp_path):
        from repro.core import SampleStore
        from repro.solver import TermManager
        from repro.symbolic import ConcolicEngine

        tm = TermManager()
        store = SampleStore()
        engine = ConcolicEngine(
            app.program, app.fresh_natives(),
            ConcretizationMode.HIGHER_ORDER, tm,
        )
        store.merge_from_run(engine.run(app.entry, app.initial_inputs("if", 0)))
        path = str(tmp_path / "learned.json")
        store.save(path)
        tm2 = TermManager()
        loaded = SampleStore.load(path, tm2)
        assert len(loaded) == len(store)


class TestHardcodedHashVariant:
    """§7's last paragraph: hard-coded hash values defeat in-run sampling;
    cross-run learning from a well-formed corpus restores the power."""

    def test_cold_search_is_blind(self):
        from repro.apps import build_hardcoded_lexer_program

        app = build_hardcoded_lexer_program()
        search = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=80),
        )
        res = search.run(app.initial_inputs("zzz", 0))
        assert not res.found_error
        assert res.runs == 1  # nothing to negate: hashes never sampled

    def test_warm_search_finds_bug(self):
        from repro.apps import build_hardcoded_lexer_program
        from repro.core import SampleStore
        from repro.solver import TermManager
        from repro.symbolic import ConcolicEngine

        app = build_hardcoded_lexer_program()
        tm = TermManager()
        store = SampleStore()
        engine = ConcolicEngine(
            app.program, app.fresh_natives(),
            ConcretizationMode.HIGHER_ORDER, tm,
        )
        for kw in app.keywords:
            store.merge_from_run(
                engine.run(app.entry, app.initial_inputs(kw, 0))
            )
        search = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=80),
            manager=tm, store=store,
        )
        res = search.run(app.initial_inputs("zzz", 0))
        assert res.found_error
        err = res.errors[0]
        word = codes_to_word([err.inputs[f"c{i}"] for i in range(app.width)])
        assert word == "ret" and err.inputs["arg"] == 99


class TestTableLexerVariant:
    """The literal Figure-4 shape: hash-indexed symbol table."""

    def test_concrete_behaviour_matches(self):
        app = build_table_lexer_program()
        interp = Interpreter(app.program, app.fresh_natives())
        bug = interp.run(app.entry, app.initial_inputs("ret", 99))
        assert bug.error
        # 'set' and 'not' genuinely collide under flex_hash (both 778);
        # the table has no per-entry strcmp, so the later addsym ('not')
        # shadows 'set' and the lookup misclassifies it: returned 0
        ok = interp.run(app.entry, app.initial_inputs("set", 0))
        assert ok.returned == 0
        # a non-colliding keyword still resolves: 'ret' without the magic
        # argument returns the token-7 outcome
        ret = interp.run(app.entry, app.initial_inputs("ret", 0))
        assert ret.returned == 7

    def test_symbolic_index_limits_generation(self):
        # the table read concretizes the chunk: even higher-order mode
        # cannot invert through the store lookup (paper §6's caveat)
        app = build_table_lexer_program()
        search = DirectedSearch.for_mode(
            app.program, app.entry, app.fresh_natives(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=60),
        )
        res = search.run(app.initial_inputs("zzz", 0))
        assert not res.found_error

    def test_collisions_resolved_by_last_writer(self):
        # with a tiny table, keyword hashes may collide; addsym order wins
        app = build_table_lexer_program(table_size=8)
        interp = Interpreter(app.program, app.fresh_natives())
        result = interp.run(app.entry, app.initial_inputs("ret", 0))
        assert result.returned in (0, 7)  # token may be shadowed
