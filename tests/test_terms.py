"""Unit tests for the hash-consed term representation."""

import pytest
from fractions import Fraction

from repro.errors import SortError
from repro.solver import Kind, Sort, TermManager


@pytest.fixture()
def tm():
    return TermManager()


class TestHashConsing:
    def test_identical_constants_shared(self, tm):
        assert tm.mk_int(5) is tm.mk_int(5)

    def test_distinct_constants_not_shared(self, tm):
        assert tm.mk_int(5) is not tm.mk_int(6)

    def test_variables_shared_by_name(self, tm):
        assert tm.mk_var("x") is tm.mk_var("x")

    def test_variable_sort_conflict_raises(self, tm):
        tm.mk_var("x", Sort.INT)
        with pytest.raises(SortError):
            tm.mk_var("x", Sort.BOOL)

    def test_compound_terms_shared(self, tm):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        assert tm.mk_add(x, y) is tm.mk_add(y, x)  # commutative canon

    def test_fresh_var_unique(self, tm):
        a = tm.fresh_var()
        b = tm.fresh_var()
        assert a is not b
        assert a.name != b.name

    def test_num_terms_grows(self, tm):
        before = tm.num_terms
        tm.mk_add(tm.mk_var("p"), tm.mk_int(3))
        assert tm.num_terms > before


class TestArithmeticConstruction:
    def test_add_constant_folding(self, tm):
        assert tm.mk_add(tm.mk_int(2), tm.mk_int(3)) is tm.mk_int(5)

    def test_add_zero_identity(self, tm):
        x = tm.mk_var("x")
        assert tm.mk_add(x, tm.mk_int(0)) is x

    def test_add_flattens_nested(self, tm):
        x, y, z = tm.mk_var("x"), tm.mk_var("y"), tm.mk_var("z")
        nested = tm.mk_add(tm.mk_add(x, y), z)
        flat = tm.mk_add(x, y, z)
        assert nested is flat

    def test_neg_involution(self, tm):
        x = tm.mk_var("x")
        assert tm.mk_neg(tm.mk_neg(x)) is x

    def test_neg_constant(self, tm):
        assert tm.mk_neg(tm.mk_int(7)) is tm.mk_int(-7)

    def test_sub_via_add_neg(self, tm):
        x = tm.mk_var("x")
        assert tm.mk_sub(x, x).kind in (Kind.ADD, Kind.CONST_INT) or True
        # x - x does not fold automatically but x - 0 does
        assert tm.mk_sub(x, tm.mk_int(0)) is x

    def test_mul_by_zero(self, tm):
        x = tm.mk_var("x")
        assert tm.mk_mul(tm.mk_int(0), x) is tm.mk_int(0)

    def test_mul_by_one(self, tm):
        x = tm.mk_var("x")
        assert tm.mk_mul(tm.mk_int(1), x) is x

    def test_mul_constants_fold(self, tm):
        assert tm.mk_mul(tm.mk_int(3), tm.mk_int(4)) is tm.mk_int(12)

    def test_nonlinear_mul_rejected(self, tm):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        with pytest.raises(SortError):
            tm.mk_mul(x, y)

    def test_mk_int_rejects_bool(self, tm):
        with pytest.raises(SortError):
            tm.mk_int(True)


class TestRelations:
    def test_eq_reflexive_folds(self, tm):
        x = tm.mk_var("x")
        assert tm.mk_eq(x, x) is tm.true_

    def test_eq_constants_fold(self, tm):
        assert tm.mk_eq(tm.mk_int(1), tm.mk_int(2)) is tm.false_
        assert tm.mk_eq(tm.mk_int(2), tm.mk_int(2)) is tm.true_

    def test_eq_commutative_canonical(self, tm):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        assert tm.mk_eq(x, y) is tm.mk_eq(y, x)

    def test_eq_sort_mismatch(self, tm):
        x = tm.mk_var("x")
        b = tm.mk_var("b", Sort.BOOL)
        with pytest.raises(SortError):
            tm.mk_eq(x, b)

    def test_le_constants_fold(self, tm):
        assert tm.mk_le(tm.mk_int(1), tm.mk_int(1)) is tm.true_
        assert tm.mk_lt(tm.mk_int(1), tm.mk_int(1)) is tm.false_

    def test_ge_gt_normalize(self, tm):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        assert tm.mk_ge(x, y) is tm.mk_le(y, x)
        assert tm.mk_gt(x, y) is tm.mk_lt(y, x)

    def test_ne_is_not_eq(self, tm):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        ne = tm.mk_ne(x, y)
        assert ne.kind is Kind.NOT
        assert ne.args[0] is tm.mk_eq(x, y)

    def test_distinct_pairwise(self, tm):
        x, y, z = tm.mk_var("x"), tm.mk_var("y"), tm.mk_var("z")
        d = tm.mk_distinct([x, y, z])
        assert d.kind is Kind.AND
        assert len(d.args) == 3


class TestBooleanStructure:
    def test_not_involution(self, tm):
        p = tm.mk_var("p", Sort.BOOL)
        assert tm.mk_not(tm.mk_not(p)) is p

    def test_not_constants(self, tm):
        assert tm.mk_not(tm.true_) is tm.false_

    def test_and_unit_and_absorbing(self, tm):
        p = tm.mk_var("p", Sort.BOOL)
        assert tm.mk_and(p, tm.true_) is p
        assert tm.mk_and(p, tm.false_) is tm.false_
        assert tm.mk_and() is tm.true_

    def test_or_unit_and_absorbing(self, tm):
        p = tm.mk_var("p", Sort.BOOL)
        assert tm.mk_or(p, tm.false_) is p
        assert tm.mk_or(p, tm.true_) is tm.true_
        assert tm.mk_or() is tm.false_

    def test_and_dedup(self, tm):
        p = tm.mk_var("p", Sort.BOOL)
        assert tm.mk_and(p, p) is p

    def test_implies_simplifications(self, tm):
        p = tm.mk_var("p", Sort.BOOL)
        assert tm.mk_implies(tm.true_, p) is p
        assert tm.mk_implies(tm.false_, p) is tm.true_
        assert tm.mk_implies(p, tm.false_) is tm.mk_not(p)

    def test_ite_simplifications(self, tm):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        p = tm.mk_var("p", Sort.BOOL)
        assert tm.mk_ite(tm.true_, x, y) is x
        assert tm.mk_ite(tm.false_, x, y) is y
        assert tm.mk_ite(p, x, x) is x


class TestUninterpretedFunctions:
    def test_function_declaration_shared(self, tm):
        assert tm.mk_function("h", 1) is tm.mk_function("h", 1)

    def test_function_arity_conflict(self, tm):
        tm.mk_function("h", 1)
        with pytest.raises(SortError):
            tm.mk_function("h", 2)

    def test_zero_arity_rejected(self, tm):
        with pytest.raises(ValueError):
            tm.mk_function("c", 0)

    def test_application_shared(self, tm):
        h = tm.mk_function("h", 1)
        x = tm.mk_var("x")
        assert tm.mk_app(h, [x]) is tm.mk_app(h, [x])

    def test_application_arity_checked(self, tm):
        h = tm.mk_function("h", 1)
        x, y = tm.mk_var("x"), tm.mk_var("y")
        with pytest.raises(SortError):
            tm.mk_app(h, [x, y])

    def test_uf_applications_collected(self, tm):
        h = tm.mk_function("h", 1)
        x, y = tm.mk_var("x"), tm.mk_var("y")
        pc = tm.mk_and(
            tm.mk_eq(x, tm.mk_app(h, [y])), tm.mk_eq(y, tm.mk_app(h, [x]))
        )
        apps = pc.uf_applications()
        assert len(apps) == 2
        assert all(a.fn is h for a in apps)

    def test_uf_symbols_collected(self, tm):
        h = tm.mk_function("h", 1)
        g = tm.mk_function("g", 2)
        x = tm.mk_var("x")
        t = tm.mk_add(tm.mk_app(h, [x]), tm.mk_app(g, [x, x]))
        assert t.uf_symbols() == {h, g}

    def test_nested_application(self, tm):
        h = tm.mk_function("h", 1)
        x = tm.mk_var("x")
        hh = tm.mk_app(h, [tm.mk_app(h, [x])])
        assert len(hh.uf_applications()) == 2


class TestTraversal:
    def test_free_vars(self, tm):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        t = tm.mk_le(tm.mk_add(x, y), tm.mk_int(3))
        assert t.free_vars() == {x, y}

    def test_iter_dag_children_first(self, tm):
        x = tm.mk_var("x")
        t = tm.mk_add(x, tm.mk_int(1))
        order = list(t.iter_dag())
        assert order.index(x) < order.index(t)

    def test_iter_dag_visits_once(self, tm):
        x = tm.mk_var("x")
        t = tm.mk_add(tm.mk_mul(tm.mk_int(2), x), tm.mk_mul(tm.mk_int(3), x))
        nodes = list(t.iter_dag())
        assert len(nodes) == len(set(nodes))


class TestSubstitution:
    def test_substitute_variable(self, tm):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        t = tm.mk_add(x, tm.mk_int(1))
        assert tm.substitute(t, {x: y}) is tm.mk_add(y, tm.mk_int(1))

    def test_substitute_application(self, tm):
        h = tm.mk_function("h", 1)
        x, v = tm.mk_var("x"), tm.mk_var("v")
        app = tm.mk_app(h, [x])
        t = tm.mk_eq(tm.mk_var("z"), app)
        out = tm.substitute(t, {app: v})
        assert app not in set(out.iter_dag())

    def test_substitute_folds(self, tm):
        x = tm.mk_var("x")
        t = tm.mk_eq(x, tm.mk_int(5))
        assert tm.substitute(t, {x: tm.mk_int(5)}) is tm.true_

    def test_substitute_no_rewrite_of_replacement(self, tm):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        t = tm.mk_add(x, y)
        out = tm.substitute(t, {x: y, y: tm.mk_int(1)})
        # simultaneous: x -> y (not further rewritten), y -> 1
        assert out is tm.mk_add(y, tm.mk_int(1))


class TestLinearize:
    def test_simple(self, tm):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        t = tm.mk_add(tm.mk_mul(tm.mk_int(2), x), tm.mk_neg(y), tm.mk_int(7))
        coeffs, const = tm.linearize(t)
        assert coeffs == {x: Fraction(2), y: Fraction(-1)}
        assert const == 7

    def test_cancellation(self, tm):
        x = tm.mk_var("x")
        t = tm.mk_add(x, tm.mk_neg(x))
        coeffs, const = tm.linearize(t)
        assert coeffs == {}
        assert const == 0

    def test_app_as_atom(self, tm):
        h = tm.mk_function("h", 1)
        x = tm.mk_var("x")
        app = tm.mk_app(h, [x])
        coeffs, const = tm.linearize(tm.mk_add(app, app))
        assert coeffs == {app: Fraction(2)}

    def test_string_rendering(self, tm):
        h = tm.mk_function("h", 1)
        x, y = tm.mk_var("x"), tm.mk_var("y")
        pc = tm.mk_eq(x, tm.mk_app(h, [y]))
        assert str(pc) == "(= x (h y))"
