"""Unit and property tests for the CDCL SAT solver."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.solver import SatSolver


def make_solver(n_vars):
    s = SatSolver()
    variables = [s.new_var() for _ in range(n_vars)]
    return s, variables


class TestBasics:
    def test_empty_formula_sat(self):
        s = SatSolver()
        assert s.solve().sat

    def test_single_unit(self):
        s, (v,) = make_solver(1)
        s.add_clause([v])
        r = s.solve()
        assert r.sat and r.model[v] is True

    def test_contradicting_units(self):
        s, (v,) = make_solver(1)
        s.add_clause([v])
        assert not s.add_clause([-v]) or not s.solve().sat

    def test_simple_implication_chain(self):
        s, (a, b, c) = make_solver(3)
        s.add_clause([a])
        s.add_clause([-a, b])
        s.add_clause([-b, c])
        r = s.solve()
        assert r.sat and r.model[a] and r.model[b] and r.model[c]

    def test_requires_search(self):
        s, (a, b) = make_solver(2)
        s.add_clause([a, b])
        s.add_clause([-a, b])
        s.add_clause([a, -b])
        r = s.solve()
        assert r.sat and r.model[a] and r.model[b]

    def test_unsat_4clauses(self):
        s, (a, b) = make_solver(2)
        s.add_clause([a, b])
        s.add_clause([-a, b])
        s.add_clause([a, -b])
        s.add_clause([-a, -b])
        assert not s.solve().sat

    def test_tautology_ignored(self):
        s, (a,) = make_solver(1)
        assert s.add_clause([a, -a])
        assert s.solve().sat

    def test_duplicate_literal_collapsed(self):
        s, (a,) = make_solver(1)
        s.add_clause([a, a])
        r = s.solve()
        assert r.sat and r.model[a]

    def test_unknown_variable_rejected(self):
        s = SatSolver()
        with pytest.raises(SolverError):
            s.add_clause([1])

    def test_solve_twice_stable(self):
        s, (a, b) = make_solver(2)
        s.add_clause([a, b])
        r1 = s.solve()
        r2 = s.solve()
        assert r1.sat and r2.sat

    def test_incremental_clause_addition(self):
        s, (a, b) = make_solver(2)
        s.add_clause([a, b])
        assert s.solve().sat
        s.add_clause([-a])
        r = s.solve()
        assert r.sat and r.model[b]
        s.add_clause([-b])
        assert not s.solve().sat


class TestAssumptions:
    def test_sat_under_assumption(self):
        s, (a, b) = make_solver(2)
        s.add_clause([a, b])
        r = s.solve(assumptions=[-a])
        assert r.sat and r.model[b]

    def test_unsat_under_assumption(self):
        s, (a, b) = make_solver(2)
        s.add_clause([a, b])
        r = s.solve(assumptions=[-a, -b])
        assert not r.sat
        assert r.core  # some failed assumptions reported

    def test_solver_reusable_after_assumption_unsat(self):
        s, (a,) = make_solver(1)
        s.add_clause([a])
        assert not s.solve(assumptions=[-a]).sat
        assert s.solve().sat


def _pigeonhole(holes):
    """PHP(holes+1, holes): unsatisfiable pigeonhole principle."""
    s = SatSolver()
    pigeons = holes + 1
    var = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for p in range(pigeons):
        s.add_clause([var[p][h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                s.add_clause([-var[p1][h], -var[p2][h]])
    return s


class TestHardInstances:
    @pytest.mark.parametrize("holes", [2, 3, 4, 5])
    def test_pigeonhole_unsat(self, holes):
        assert not _pigeonhole(holes).solve().sat

    def test_php_learns_clauses(self):
        s = _pigeonhole(4)
        s.solve()
        assert s.stats.conflicts > 0

    def test_chain_xor_sat(self):
        # x1 xor x2, x2 xor x3, ... encoded as CNF; satisfiable
        s = SatSolver()
        n = 20
        v = [s.new_var() for _ in range(n)]
        for i in range(n - 1):
            s.add_clause([v[i], v[i + 1]])
            s.add_clause([-v[i], -v[i + 1]])
        r = s.solve()
        assert r.sat
        for i in range(n - 1):
            assert r.model[v[i]] != r.model[v[i + 1]]


def _check_model(clauses, model):
    return all(
        any((lit > 0) == model[abs(lit)] for lit in clause) for clause in clauses
    )


def _brute_force_sat(clauses, n):
    for bits in range(1 << n):
        model = {v: bool(bits >> (v - 1) & 1) for v in range(1, n + 1)}
        if _check_model(clauses, model):
            return True
    return False


@st.composite
def random_cnf(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    m = draw(st.integers(min_value=1, max_value=24))
    clauses = []
    for _ in range(m):
        width = draw(st.integers(min_value=1, max_value=3))
        clause = [
            draw(st.integers(min_value=1, max_value=n))
            * (1 if draw(st.booleans()) else -1)
            for _ in range(width)
        ]
        clauses.append(clause)
    return n, clauses


class TestAgainstBruteForce:
    @given(random_cnf())
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, problem):
        n, clauses = problem
        s = SatSolver()
        for _ in range(n):
            s.new_var()
        ok = True
        for c in clauses:
            ok = s.add_clause(c) and ok
        result = s.solve()
        expected = _brute_force_sat(clauses, n)
        assert result.sat == expected
        if result.sat:
            assert _check_model(clauses, result.model)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_random_3sat_model_is_valid(self, seed):
        rng = random.Random(seed)
        n, m = 12, 40
        s = SatSolver()
        variables = [s.new_var() for _ in range(n)]
        clauses = []
        for _ in range(m):
            clause = [
                rng.choice(variables) * rng.choice([1, -1]) for _ in range(3)
            ]
            clauses.append(clause)
            s.add_clause(clause)
        r = s.solve()
        if r.sat:
            assert _check_model(clauses, r.model)
