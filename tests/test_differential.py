"""Differential tests: engines against each other on random programs.

Key internal invariants, checked over a fleet of generated programs:

1. the concolic machine's concrete semantics (values, paths, errors)
   agree exactly with the plain interpreter in every mode;
2. sound-mode path constraints satisfy Theorem 2/3 under oracle
   evaluation: real-world-satisfying inputs replay the same path;
3. the directed search completes without crashing and its error reports
   replay to real errors.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import Interpreter
from repro.lang.randprog import generate_program
from repro.lang.interp import c_div, c_mod
from repro.search import DirectedSearch, SearchConfig
from repro.solver import TermManager
from repro.solver.evalmodel import evaluate_with_oracle
from repro.symbolic import ConcolicEngine, ConcretizationMode

SEEDS = list(range(24))


def oracle_for(natives):
    def oracle(name, args):
        if name == "hash":
            return (args[0] * 131 + 17) % 4093
        if name == "mix":
            return ((args[0] * 31) ^ (args[1] * 17)) % 2039
        if name == "__mul__":
            return args[0] * args[1]
        if name == "__div__":
            return c_div(args[0], args[1])
        if name == "__mod__":
            return c_mod(args[0], args[1])
        raise AssertionError(name)

    return oracle


@pytest.mark.parametrize("seed", SEEDS)
def test_concolic_concrete_semantics_match_interpreter(seed):
    rp = generate_program(seed)
    rng = random.Random(seed * 7 + 1)
    interp = Interpreter(rp.program, rp.natives())
    for mode in ConcretizationMode:
        engine = ConcolicEngine(rp.program, rp.natives(), mode, TermManager())
        for _ in range(5):
            inputs = rp.random_inputs(rng)
            expected = interp.run(rp.entry, dict(inputs))
            actual = engine.run(rp.entry, dict(inputs))
            assert actual.returned == expected.returned, (seed, mode, inputs)
            assert actual.error == expected.error
            assert actual.path == expected.path
            assert actual.covered == expected.covered


@pytest.mark.parametrize("seed", SEEDS[:12])
@pytest.mark.parametrize(
    "mode",
    [
        ConcretizationMode.SOUND,
        ConcretizationMode.SOUND_DELAYED,
        ConcretizationMode.HIGHER_ORDER,
    ],
)
def test_sound_path_constraints_replay(seed, mode):
    """Theorem 2/3 on random programs: inputs that satisfy the pc under the
    REAL functions follow the recorded path."""
    rp = generate_program(seed)
    rng = random.Random(seed * 13 + 5)
    engine = ConcolicEngine(rp.program, rp.natives(), mode, TermManager())
    oracle = oracle_for(None)
    base_inputs = rp.random_inputs(rng)
    base = engine.run(rp.entry, dict(base_inputs))
    pc_terms = [p.term for p in base.path_conditions]
    if not pc_terms:
        pytest.skip("no symbolic conditions")
    # sample nearby input vectors (plus the base vector itself, which by
    # construction satisfies its own pc); replay those satisfying the pc
    candidates = [dict(base_inputs)] + [
        {k: v + rng.randint(-3, 3) for k, v in base_inputs.items()}
        for _ in range(30)
    ]
    checked = 0
    for candidate in candidates:
        if all(
            evaluate_with_oracle(t, candidate, oracle) is True
            for t in pc_terms
        ):
            replay = engine.run(rp.entry, candidate)
            assert replay.path == base.path, (seed, mode, candidate)
            checked += 1
    assert checked >= 1  # the base inputs at least


@pytest.mark.parametrize("seed", SEEDS[:10])
def test_directed_search_robust_and_errors_replay(seed):
    rp = generate_program(seed)
    search = DirectedSearch.for_mode(
        rp.program, rp.entry, rp.natives(),
        ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=25),
    )
    result = search.run({p: 0 for p in rp.params})
    assert result.runs >= 1
    interp = Interpreter(rp.program, rp.natives())
    for err in result.errors:
        replay = interp.run(rp.entry, dict(err.inputs))
        assert replay.error, f"reported error does not replay (seed {seed})"
    # sound modes: no divergences, ever
    assert result.divergences == 0


@pytest.mark.parametrize("seed", SEEDS[:10])
def test_search_outperforms_or_matches_random_on_generated_bugs(seed):
    """When the generated program has a reachable error that the HO search
    finds, the reported inputs are genuine; cross-check coverage monotony:
    the search's coverage is a superset of its own seed run's coverage."""
    rp = generate_program(seed)
    search = DirectedSearch.for_mode(
        rp.program, rp.entry, rp.natives(),
        ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=25),
    )
    result = search.run({p: 0 for p in rp.params})
    seed_cov = result.executions[0].result.covered
    assert seed_cov <= result.coverage.covered


@given(seed=st.integers(min_value=100, max_value=400))
@settings(max_examples=30, deadline=None)
def test_generated_programs_always_parse_and_run(seed):
    rp = generate_program(seed)
    interp = Interpreter(rp.program, rp.natives())
    rng = random.Random(seed)
    run = interp.run(rp.entry, rp.random_inputs(rng))
    assert run.returned is not None or run.error
