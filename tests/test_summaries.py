"""Tests for compositional function summaries (§8 combination)."""

import pytest

from repro.core import (
    CompositionalReachability,
    FunctionSummary,
    SummaryCase,
    SummaryExtractor,
)
from repro.errors import ReproError
from repro.lang import Interpreter, NativeRegistry, parse_program
from repro.solver import Solver, TermManager, evaluate
from repro.solver.validity import Sample, ValidityStatus

ABS_SRC = """
int myabs(int v) {
    if (v < 0) { return 0 - v; }
    return v;
}
"""

CLAMP_SRC = """
int clamp(int v, int lo, int hi) {
    if (v < lo) { return lo; }
    if (v > hi) { return hi; }
    return v;
}
"""

HASHED_HELPER_SRC = """
int classify(int v) {
    if (hash(v) > 500) { return 1; }
    return 0;
}
"""


def natives_with_hash():
    n = NativeRegistry()
    n.register("hash", lambda y: (y * 31 + 7) % 1000)
    return n


class TestSummaryExtraction:
    def test_abs_has_two_cases(self):
        extractor = SummaryExtractor(parse_program(ABS_SRC), NativeRegistry())
        summary = extractor.extract("myabs", {"v": 5})
        assert len(summary.cases) == 2
        assert summary.name == "myabs"

    def test_clamp_has_three_cases(self):
        extractor = SummaryExtractor(parse_program(CLAMP_SRC), NativeRegistry())
        summary = extractor.extract("clamp", {"v": 5, "lo": 0, "hi": 10})
        assert len(summary.cases) == 3

    def test_cases_deduplicated(self):
        extractor = SummaryExtractor(parse_program(ABS_SRC), NativeRegistry())
        summary = extractor.extract("myabs", {"v": 5}, max_runs=20)
        keys = [c.path_key for c in summary.cases]
        assert len(keys) == len(set(keys))

    def test_case_semantics_against_interpreter(self):
        """Must-fact check: any model of a case's guard makes the function
        return the case's ret value."""
        tm = TermManager()
        extractor = SummaryExtractor(
            parse_program(CLAMP_SRC), NativeRegistry(), manager=tm
        )
        summary = extractor.extract("clamp", {"v": 5, "lo": 0, "hi": 10})
        interp = Interpreter(parse_program(CLAMP_SRC))
        for case in summary.cases:
            solver = Solver(tm)
            solver.add(case.guard)
            result = solver.check()
            assert result.sat
            inputs = {
                p.name: result.model.ints.get(p.name, 0) for p in summary.params
            }
            actual = interp.run("clamp", inputs).returned
            expected = evaluate(case.ret, result.model)
            assert actual == expected

    def test_summary_rendering(self):
        extractor = SummaryExtractor(parse_program(ABS_SRC), NativeRegistry())
        summary = extractor.extract("myabs", {"v": 5})
        text = str(summary)
        assert "summary myabs(v)" in text and "ret =" in text

    def test_uf_summary_keeps_applications(self):
        extractor = SummaryExtractor(
            parse_program(HASHED_HELPER_SRC), natives_with_hash()
        )
        summary = extractor.extract("classify", {"v": 3})
        assert any("hash" in str(c.guard) for c in summary.cases)


class TestSummaryInstantiation:
    def test_instantiate_substitutes_args(self):
        tm = TermManager()
        extractor = SummaryExtractor(
            parse_program(ABS_SRC), NativeRegistry(), manager=tm
        )
        summary = extractor.extract("myabs", {"v": 5})
        x = tm.mk_var("caller_x")
        ret = tm.mk_var("r")
        formula = summary.instantiate(tm, [x], ret)
        names = {v.name for v in formula.free_vars()}
        assert "caller_x" in names and "r" in names
        assert "v" not in names

    def test_arity_mismatch_rejected(self):
        tm = TermManager()
        summary = FunctionSummary(name="g", params=[tm.mk_var("a")])
        with pytest.raises(ReproError):
            summary.instantiate(tm, [], tm.mk_var("r"))

    def test_empty_summary_is_false(self):
        tm = TermManager()
        summary = FunctionSummary(name="g", params=[tm.mk_var("a")])
        out = summary.instantiate(tm, [tm.mk_var("x")], tm.mk_var("r"))
        assert out is tm.false_


class TestCompositionalReachability:
    def test_sat_query_through_abs(self):
        tm = TermManager()
        extractor = SummaryExtractor(
            parse_program(ABS_SRC), NativeRegistry(), manager=tm
        )
        summary = extractor.extract("myabs", {"v": 5})
        x = tm.mk_var("cx")
        r = tm.mk_var("cr")
        comp = CompositionalReachability(tm)
        # can myabs(cx) == 7 with cx negative?
        cond = tm.mk_and(
            tm.mk_eq(r, tm.mk_int(7)), tm.mk_lt(x, tm.mk_int(0))
        )
        result = comp.check_sat(summary, [x], cond, ret_var=r)
        assert result.sat
        assert result.model.ints["cx"] == -7

    def test_unreachable_condition(self):
        tm = TermManager()
        extractor = SummaryExtractor(
            parse_program(ABS_SRC), NativeRegistry(), manager=tm
        )
        summary = extractor.extract("myabs", {"v": 5})
        x = tm.mk_var("cx")
        r = tm.mk_var("cr")
        comp = CompositionalReachability(tm)
        # myabs never returns a negative number
        cond = tm.mk_lt(r, tm.mk_int(0))
        result = comp.check_sat(summary, [x], cond, ret_var=r)
        assert not result.sat

    def test_higher_order_compositional_query(self):
        """The §8 combination: a summary whose guard contains an unknown
        hash, decided with the sample antecedent (validity, not sat)."""
        tm = TermManager()
        natives = natives_with_hash()
        extractor = SummaryExtractor(
            parse_program(HASHED_HELPER_SRC), natives, manager=tm
        )
        # seed corpus includes a value whose hash exceeds 500
        # (hash(20) = 627), seeding the then-branch case
        summary = extractor.extract(
            "classify", {"v": 3}, max_runs=10, extra_seeds=[{"v": 20}]
        )
        assert len(summary.cases) == 2
        # samples observed during extraction live in the extractor's store
        comp = CompositionalReachability(tm, store=extractor.store)
        x = tm.mk_var("cx")
        r = tm.mk_var("cr")
        cond = tm.mk_eq(r, tm.mk_int(1))  # want classify(cx) == 1
        verdict = comp.check_validity(
            summary, [x], cond, input_vars=[x], ret_var=r
        )
        assert verdict.status is ValidityStatus.VALID
        inputs = verdict.strategy.concretize(extractor.store.samples())
        # the witness must really classify to 1 under the actual hash
        interp = Interpreter(parse_program(HASHED_HELPER_SRC), natives_with_hash())
        assert interp.run("classify", {"v": inputs["cx"]}).returned == 1

    def test_existential_sat_on_uf_summary_can_mislead(self):
        """Contrast: plain satisfiability invents hash behaviour, so the
        produced witness need not classify correctly (the §4.2 trap)."""
        tm = TermManager()
        natives = natives_with_hash()
        extractor = SummaryExtractor(
            parse_program(HASHED_HELPER_SRC), natives, manager=tm
        )
        summary = extractor.extract(
            "classify", {"v": 3}, max_runs=10, extra_seeds=[{"v": 20}]
        )
        comp = CompositionalReachability(tm)
        x = tm.mk_var("sx")
        r = tm.mk_var("sr")
        cond = tm.mk_eq(r, tm.mk_int(1))
        result = comp.check_sat(summary, [x], cond, ret_var=r)
        assert result.sat  # the solver can always invent a suitable hash
