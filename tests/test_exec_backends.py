"""Differential sweep: tree-walking vs bytecode execution backends.

PR 7 replaced the recursive AST walker with a register-bytecode VM as the
default execution core.  The contract is byte-for-byte observational
equality: for the same program and inputs, both backends must produce
identical :class:`RunResult`/:class:`ConcolicResult` contents — return
value, error class and line, step counts, branch trace, coverage — and
identical path conditions (same terms, in the same construction order,
so suite digests match).  This file is the executable form of that
contract:

1. every paper example, every concretization mode, a grid of inputs;
2. a fleet of random programs, including tiny step budgets so
   ``StepBudgetExceeded`` fires at the same step count in both cores;
3. handcrafted crash cases (division by zero, array misuse, undeclared
   reads, arity errors) asserting identical error messages and lines;
4. end-to-end: the directed search's suite digest is identical across
   ``exec_backend`` values;
5. the compile cache: per-source memoization with hit/miss accounting.
"""

import random

import pytest

from repro import api
from repro.apps.paper_programs import PAPER_EXAMPLES, make_paper_natives
from repro.errors import InterpError, StepBudgetExceeded
from repro.lang import (
    Interpreter,
    clear_compile_cache,
    compile_cache_stats,
    compile_program,
    parse_program,
)
from repro.lang.randprog import generate_program
from repro.search.report import suite_digest
from repro.solver import TermManager
from repro.symbolic import ConcolicEngine, ConcretizationMode

GRID = [-3, 0, 1, 33, 567]


def concrete_snapshot(res):
    """Everything a RunResult observably contains, as a comparable tuple."""
    return (
        res.returned,
        res.error,
        res.error_message,
        res.error_line,
        tuple(res.path),
        frozenset(res.covered),
        res.steps,
    )


def concolic_snapshot(res):
    """Everything a ConcolicResult observably contains, including the
    path constraint (term text captures construction-order identity)."""
    return (
        res.returned,
        str(res.returned_term),
        res.error,
        res.error_message,
        res.error_line,
        tuple(res.path),
        frozenset(res.covered),
        res.steps,
        tuple(
            (str(pc.term), pc.branch_id, pc.taken,
             pc.is_concretization, pc.line, pc.path_pos)
            for pc in res.path_conditions
        ),
        tuple((s.fn.name, s.args, s.value) for s in res.samples),
        res.concretizations,
        res.uf_applications,
    )


def run_concrete_outcome(interp, entry, inputs):
    """Run and normalise to (snapshot | exception identity)."""
    try:
        return ("ok", concrete_snapshot(interp.run(entry, dict(inputs))))
    except (StepBudgetExceeded, InterpError) as exc:
        return ("raise", type(exc).__name__, str(exc))


def run_concolic_outcome(engine, entry, inputs):
    try:
        return ("ok", concolic_snapshot(engine.run(entry, dict(inputs))))
    except (StepBudgetExceeded, InterpError) as exc:
        return ("raise", type(exc).__name__, str(exc))


@pytest.mark.parametrize("name", sorted(PAPER_EXAMPLES))
def test_paper_example_concrete_equality(name):
    ex = PAPER_EXAMPLES[name]
    program = ex.program()
    tree = Interpreter(program, make_paper_natives(), backend="tree")
    byte = Interpreter(program, make_paper_natives(), backend="bytecode")
    params = program.function(ex.entry).params
    rng = random.Random(7)
    vectors = [dict(zip(params, [v] * len(params))) for v in GRID]
    vectors += [
        {p: rng.randint(-100, 100) for p in params} for _ in range(10)
    ]
    for inputs in vectors:
        expected = run_concrete_outcome(tree, ex.entry, inputs)
        actual = run_concrete_outcome(byte, ex.entry, inputs)
        assert actual == expected, (name, inputs)


@pytest.mark.parametrize("name", sorted(PAPER_EXAMPLES))
@pytest.mark.parametrize("mode", list(ConcretizationMode))
def test_paper_example_concolic_equality(name, mode):
    ex = PAPER_EXAMPLES[name]
    program = ex.program()
    params = program.function(ex.entry).params
    tree = ConcolicEngine(
        program, make_paper_natives(), mode, TermManager(), exec_backend="tree"
    )
    byte = ConcolicEngine(
        program, make_paper_natives(), mode, TermManager(),
        exec_backend="bytecode",
    )
    rng = random.Random(11)
    vectors = [dict(ex.initial_inputs)]
    vectors += [dict(zip(params, [v] * len(params))) for v in GRID]
    vectors += [{p: rng.randint(-100, 100) for p in params} for _ in range(5)]
    for inputs in vectors:
        expected = run_concolic_outcome(tree, ex.entry, inputs)
        actual = run_concolic_outcome(byte, ex.entry, inputs)
        assert actual == expected, (name, mode, inputs)


@pytest.mark.parametrize("seed", range(16))
def test_randprog_differential(seed):
    """Random programs, both engines, generous and tiny step budgets.

    The 40-step budget forces StepBudgetExceeded mid-program so the
    backends must agree on exactly *when* the budget trips, not just on
    full-run results.
    """
    rp = generate_program(seed)
    rng = random.Random(seed * 13 + 5)
    vectors = [rp.random_inputs(rng) for _ in range(4)]
    for budget in (1_000_000, 40):
        tree = Interpreter(
            rp.program, rp.natives(), step_budget=budget, backend="tree"
        )
        byte = Interpreter(
            rp.program, rp.natives(), step_budget=budget, backend="bytecode"
        )
        for inputs in vectors:
            expected = run_concrete_outcome(tree, rp.entry, inputs)
            actual = run_concrete_outcome(byte, rp.entry, inputs)
            assert actual == expected, (seed, budget, inputs)
    for mode in ConcretizationMode:
        for budget in (1_000_000, 40):
            tree = ConcolicEngine(
                rp.program, rp.natives(), mode, TermManager(),
                step_budget=budget, exec_backend="tree",
            )
            byte = ConcolicEngine(
                rp.program, rp.natives(), mode, TermManager(),
                step_budget=budget, exec_backend="bytecode",
            )
            for inputs in vectors:
                expected = run_concolic_outcome(tree, rp.entry, inputs)
                actual = run_concolic_outcome(byte, rp.entry, inputs)
                assert actual == expected, (seed, mode, budget, inputs)


CRASH_CASES = {
    "div_by_zero": """
        int main(int x) {
            return 10 / x;
        }
    """,
    "mod_by_zero": """
        int main(int x) {
            return 10 % x;
        }
    """,
    "array_oob_high": """
        int main(int x) {
            int a[3];
            a[0] = 1;
            return a[x];
        }
    """,
    "array_oob_low": """
        int main(int x) {
            int a[3];
            a[x] = 7;
            return a[0];
        }
    """,
    "error_stmt": """
        int main(int x) {
            if (x == 0) { error("boom"); }
            return x;
        }
    """,
    "assert_failure": """
        int main(int x) {
            assert(x != 0);
            return x;
        }
    """,
    "arity_mismatch": """
        int helper(int a, int b) { return a + b; }
        int main(int x) {
            return helper(x);
        }
    """,
}


@pytest.mark.parametrize("case", sorted(CRASH_CASES))
def test_crash_case_equality(case):
    program = parse_program(CRASH_CASES[case])
    tree = Interpreter(program, backend="tree")
    byte = Interpreter(program, backend="bytecode")
    for x in (-2, -1, 0, 1, 2, 5):
        inputs = {"x": x}
        expected = run_concrete_outcome(tree, "main", inputs)
        actual = run_concrete_outcome(byte, "main", inputs)
        assert actual == expected, (case, x)
    for mode in ConcretizationMode:
        ctree = ConcolicEngine(
            program, None, mode, TermManager(), exec_backend="tree"
        )
        cbyte = ConcolicEngine(
            program, None, mode, TermManager(), exec_backend="bytecode"
        )
        for x in (-2, 0, 1, 5):
            inputs = {"x": x}
            expected = run_concolic_outcome(ctree, "main", inputs)
            actual = run_concolic_outcome(cbyte, "main", inputs)
            assert actual == expected, (case, mode, x)


def test_div_by_zero_message_and_line():
    program = parse_program("int main(int x) { return 1 / x; }")
    res = Interpreter(program, backend="bytecode").run("main", {"x": 0})
    assert res.error
    assert res.error_message == "division by zero"
    tree = Interpreter(program, backend="tree").run("main", {"x": 0})
    assert (res.error_message, res.error_line) == (
        tree.error_message, tree.error_line
    )


def test_step_budget_trips_at_same_count():
    program = parse_program(
        """
        int main(int n) {
            int i;
            i = 0;
            while (i < n) { i = i + 1; }
            return i;
        }
        """
    )
    # Find the budget boundary with the tree walker, then assert the
    # bytecode VM trips at exactly the same budget value.
    full = Interpreter(program, backend="tree").run("main", {"n": 10})
    for budget in (full.steps, full.steps - 1):
        outcomes = []
        for backend in ("tree", "bytecode"):
            interp = Interpreter(program, step_budget=budget, backend=backend)
            outcomes.append(run_concrete_outcome(interp, "main", {"n": 10}))
        assert outcomes[0] == outcomes[1], budget
    tripped = run_concrete_outcome(
        Interpreter(program, step_budget=full.steps - 1, backend="bytecode"),
        "main",
        {"n": 10},
    )
    assert tripped[0] == "raise" and tripped[1] == "StepBudgetExceeded"


def test_suite_digest_identical_across_backends():
    ex = PAPER_EXAMPLES["foo"]
    digests = []
    for backend in ("tree", "bytecode"):
        result = api.generate_tests(
            ex.program(),
            entry=ex.entry,
            strategy="hotg",
            natives=make_paper_natives(),
            seed=dict(ex.initial_inputs),
            config={"max_runs": 40, "exec_backend": backend},
        )
        digests.append(suite_digest(result))
    assert digests[0] == digests[1]


def test_compile_cache_memoizes_per_source():
    clear_compile_cache()
    program = parse_program("int main(int x) { return x + 1; }")
    before = compile_cache_stats()
    first = compile_program(program)
    second = compile_program(program)
    assert first is second  # per-Program memo
    twin = parse_program("int main(int x) { return x + 1; }")
    third = compile_program(twin)
    assert third is first  # per-source-digest global cache
    after = compile_cache_stats()
    assert after["misses"] == before["misses"] + 1
    assert after["hits"] >= before["hits"] + 1
    assert after["entries"] >= 1


def test_unknown_backend_rejected():
    program = parse_program("int main(int x) { return x; }")
    with pytest.raises(InterpError):
        Interpreter(program, backend="ast")
    with pytest.raises(InterpError):
        ConcolicEngine(program, None, exec_backend="walker")
    from repro.search import SearchConfig

    with pytest.raises(Exception):
        SearchConfig(exec_backend="walker").validate()
