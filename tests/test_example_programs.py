"""The shipped .minic example corpus works through the CLI."""

import os

import pytest

from repro.cli import main

PROGRAMS_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples", "programs"
)


def program(name):
    path = os.path.join(PROGRAMS_DIR, name)
    assert os.path.exists(path), f"missing example program {name}"
    return path


class TestExampleCorpus:
    def test_obscure_all_modes(self, capsys):
        assert main(["modes", program("obscure.minic"), "--seed", "x=33,y=42"]) == 0
        out = capsys.readouterr().out
        assert out.count("errors=1") >= 3  # all dynamic engines find it

    def test_foo_two_step(self, capsys):
        code = main(
            [
                "run", program("foo.minic"), "--seed", "x=33,y=42",
                "--expect-error",
            ]
        )
        assert code == 0
        assert "foo deep bug" in capsys.readouterr().out

    def test_div_guard_crash_found(self, capsys):
        code = main(
            [
                "run", program("div_guard.minic"), "--seed", "a=12,b=4",
                "--expect-error",
            ]
        )
        assert code == 0
        assert "division by zero" in capsys.readouterr().out

    def test_chain3_k_step(self, capsys):
        code = main(
            [
                "run", program("chain3.minic"), "--seed", "x=1,y=2,z=3",
                "--max-runs", "60", "--expect-error",
            ]
        )
        assert code == 0
        assert "three levels deep" in capsys.readouterr().out

    def test_keyword_gate(self, capsys):
        code = main(
            [
                "run", program("keyword_gate.minic"),
                "--max-runs", "80", "--expect-error",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "gate opened" in out

    def test_every_program_parses_and_fuzzes(self, capsys):
        for name in sorted(os.listdir(PROGRAMS_DIR)):
            if name.endswith(".minic"):
                assert main(["fuzz", program(name), "--runs", "20"]) == 0
