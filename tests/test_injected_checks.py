"""Tests for §3.2's injected safety checks (div-by-zero, array bounds)."""

import pytest

from repro.lang import Interpreter, NativeRegistry, parse_program
from repro.search import DirectedSearch, SearchConfig
from repro.solver import TermManager
from repro.symbolic import ConcolicEngine, ConcretizationMode

DIV_SRC = """
int main(int x, int y) {
    int q = x / y;
    if (q > 100) { return 1; }
    return 0;
}
"""

OOB_SRC = """
int main(int i) {
    int a[4];
    a[0] = 7;
    return a[i];
}
"""


class TestInjectedConditions:
    def test_div_check_recorded(self):
        engine = ConcolicEngine(
            parse_program(DIV_SRC), NativeRegistry(),
            ConcretizationMode.HIGHER_ORDER, TermManager(),
        )
        run = engine.run("main", {"x": 10, "y": 3})
        div_checks = [
            p for p in run.path_conditions
            if p.branch_id == ConcolicEngine.CHECK_DIV
        ]
        assert len(div_checks) == 1
        assert "(not (= y 0))" in str(div_checks[0].term)

    def test_div_check_not_recorded_for_concrete_divisor(self):
        src = "int main(int x) { return x / 2; }"
        engine = ConcolicEngine(
            parse_program(src), NativeRegistry(),
            ConcretizationMode.HIGHER_ORDER, TermManager(),
        )
        run = engine.run("main", {"x": 10})
        assert all(
            p.branch_id != ConcolicEngine.CHECK_DIV
            for p in run.path_conditions
        )

    def test_bounds_checks_recorded(self):
        engine = ConcolicEngine(
            parse_program(OOB_SRC), NativeRegistry(),
            ConcretizationMode.HIGHER_ORDER, TermManager(),
        )
        run = engine.run("main", {"i": 2})
        ids = [p.branch_id for p in run.path_conditions]
        assert ConcolicEngine.CHECK_BOUNDS_LOW in ids
        assert ConcolicEngine.CHECK_BOUNDS_HIGH in ids

    def test_checks_can_be_disabled(self):
        engine = ConcolicEngine(
            parse_program(DIV_SRC), NativeRegistry(),
            ConcretizationMode.HIGHER_ORDER, TermManager(),
            inject_checks=False,
        )
        run = engine.run("main", {"x": 10, "y": 3})
        assert all(
            p.branch_id != ConcolicEngine.CHECK_DIV
            for p in run.path_conditions
        )


class TestBugFinding:
    def test_search_finds_division_by_zero(self):
        search = DirectedSearch.for_mode(
            parse_program(DIV_SRC), "main", NativeRegistry(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=20),
        )
        result = search.run({"x": 10, "y": 3})
        messages = [e.message for e in result.errors]
        assert "division by zero" in messages
        err = next(e for e in result.errors if e.message == "division by zero")
        assert err.inputs["y"] == 0

    def test_search_finds_both_oob_directions(self):
        search = DirectedSearch.for_mode(
            parse_program(OOB_SRC), "main", NativeRegistry(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=20),
        )
        result = search.run({"i": 2})
        indices = sorted(e.inputs["i"] for e in result.errors)
        assert indices == [-1, 4]

    def test_violations_confirmed_by_execution(self):
        """The paper: generated violations 'should be executed to confirm
        the bug before reporting it' — our reports come from real runs."""
        search = DirectedSearch.for_mode(
            parse_program(DIV_SRC), "main", NativeRegistry(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=20),
        )
        result = search.run({"x": 10, "y": 3})
        interp = Interpreter(parse_program(DIV_SRC))
        for err in result.errors:
            replay = interp.run("main", dict(err.inputs))
            assert replay.error and replay.error_message == err.message

    def test_sound_mode_also_finds_div_zero(self):
        search = DirectedSearch.for_mode(
            parse_program(DIV_SRC), "main", NativeRegistry(),
            ConcretizationMode.SOUND, SearchConfig(max_runs=20),
        )
        result = search.run({"x": 10, "y": 3})
        assert any(e.message == "division by zero" for e in result.errors)

    def test_guarded_division_is_safe(self):
        src = """
        int main(int x, int y) {
            if (y == 0) { return 0 - 1; }
            return x / y;
        }
        """
        search = DirectedSearch.for_mode(
            parse_program(src), "main", NativeRegistry(),
            ConcretizationMode.SOUND, SearchConfig(max_runs=20),
        )
        result = search.run({"x": 10, "y": 3})
        # the guard makes the injected check's negation infeasible
        assert not result.found_error

    def test_check_conditions_never_cause_divergence(self):
        search = DirectedSearch.for_mode(
            parse_program(DIV_SRC), "main", NativeRegistry(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=20),
        )
        result = search.run({"x": 10, "y": 3})
        assert result.divergences == 0
