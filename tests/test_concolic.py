"""Tests for the concolic machine and its four concretization modes."""

import pytest

from repro.lang import NativeRegistry, parse_program
from repro.solver import TermManager, Solver, evaluate, Model
from repro.symbolic import ConcolicEngine, ConcretizationMode


def make_natives():
    n = NativeRegistry()
    n.register("hash", lambda y: (y * 31 + 7) % 1000)
    return n


def engine_for(src, mode, natives=None, tm=None):
    return ConcolicEngine(
        parse_program(src),
        natives if natives is not None else make_natives(),
        mode,
        tm if tm is not None else TermManager(),
    )


FOO = """
int foo(int x, int y) {
    if (x == hash(y)) {
        if (y == 10) {
            error("bug");
        }
    }
    return 0;
}
"""


class TestSymbolicTracking:
    def test_linear_constraint_built(self):
        src = "int f(int x) { if (2 * x + 1 > 7) { return 1; } return 0; }"
        eng = engine_for(src, ConcretizationMode.SOUND)
        r = eng.run("f", {"x": 5})
        assert len(r.path_conditions) == 1
        assert "x" in str(r.path_conditions[0].term)

    def test_concrete_condition_not_recorded(self):
        src = "int f(int x) { int k = 3; if (k > 1) { return 1; } return 0; }"
        eng = engine_for(src, ConcretizationMode.SOUND)
        r = eng.run("f", {"x": 0})
        assert r.path_conditions == []
        assert r.path == [(0, True)]

    def test_dataflow_through_assignments(self):
        src = """
        int f(int x) {
            int a = x + 1;
            int b = a * 2;
            if (b == 12) { return 1; }
            return 0;
        }
        """
        eng = engine_for(src, ConcretizationMode.SOUND)
        r = eng.run("f", {"x": 5})
        # (x+1)*2 == 12 recorded with x symbolic
        term = r.path_conditions[0].term
        assert any(v.name == "x" for v in term.free_vars())

    def test_dataflow_through_user_functions(self):
        src = """
        int inc(int v) { return v + 1; }
        int f(int x) { if (inc(x) == 5) { return 1; } return 0; }
        """
        eng = engine_for(src, ConcretizationMode.SOUND)
        r = eng.run("f", {"x": 4})
        assert len(r.path_conditions) == 1
        assert r.path_conditions[0].taken

    def test_returned_value_matches_interpreter(self):
        src = """
        int f(int x) {
            int t = 0;
            while (x > 0) { t = t + x; x = x - 1; }
            return t;
        }
        """
        eng = engine_for(src, ConcretizationMode.HIGHER_ORDER)
        assert eng.run("f", {"x": 5}).returned == 15

    def test_error_propagates(self):
        eng = engine_for(FOO, ConcretizationMode.HIGHER_ORDER)
        hv = (10 * 31 + 7) % 1000
        r = eng.run("foo", {"x": hv, "y": 10})
        assert r.error and r.error_message == "bug"


class TestModesOnFoo:
    """The paper §3.2/§3.3 path constraints, verbatim."""

    def test_unsound_pc(self):
        tm = TermManager()
        eng = engine_for(FOO, ConcretizationMode.UNSOUND, tm=tm)
        hv = (42 * 31 + 7) % 1000
        r = eng.run("foo", {"x": hv, "y": 42})
        terms = [str(p) for p in r.path_conditions]
        assert terms == [f"(= x {hv})", "(not (= y 10))"]

    def test_sound_pc_has_pin(self):
        tm = TermManager()
        eng = engine_for(FOO, ConcretizationMode.SOUND, tm=tm)
        hv = (42 * 31 + 7) % 1000
        r = eng.run("foo", {"x": hv, "y": 42})
        assert r.path_conditions[0].is_concretization
        assert str(r.path_conditions[0].term) == "(= y 42)"
        assert len(r.path_conditions) == 3

    def test_higher_order_pc_uses_uf(self):
        tm = TermManager()
        eng = engine_for(FOO, ConcretizationMode.HIGHER_ORDER, tm=tm)
        hv = (42 * 31 + 7) % 1000
        r = eng.run("foo", {"x": hv, "y": 42})
        terms = [str(p) for p in r.path_conditions]
        assert terms == ["(= x (hash y))", "(not (= y 10))"]
        assert r.uf_applications == 1

    def test_samples_recorded_in_all_modes(self):
        for mode in ConcretizationMode:
            eng = engine_for(FOO, mode)
            r = eng.run("foo", {"x": 1, "y": 42})
            assert len(r.samples) == 1
            s = r.samples[0]
            assert s.args == (42,) and s.value == (42 * 31 + 7) % 1000


class TestDelayedConcretization:
    """The §3.3-end example: pin only when the value is actually tested."""

    DELAYED = """
    int f(int x, int y) {
        int v = hash(y);
        if (y == 10) { return 1; }
        return v;
    }
    """

    def test_delayed_mode_keeps_condition_negatable(self):
        eng = engine_for(self.DELAYED, ConcretizationMode.SOUND_DELAYED)
        r = eng.run("f", {"x": 0, "y": 42})
        # hash(y) concretized but never tested: no pin on y
        assert all(not p.is_concretization for p in r.path_conditions)
        assert len(r.path_conditions) == 1

    def test_eager_mode_pins_immediately(self):
        eng = engine_for(self.DELAYED, ConcretizationMode.SOUND)
        r = eng.run("f", {"x": 0, "y": 42})
        pins = [p for p in r.path_conditions if p.is_concretization]
        assert len(pins) == 1
        assert str(pins[0].term) == "(= y 42)"

    def test_delayed_pin_materializes_when_tested(self):
        src = """
        int f(int x, int y) {
            int v = hash(y);
            if (v == x) { return 1; }
            return 0;
        }
        """
        eng = engine_for(src, ConcretizationMode.SOUND_DELAYED)
        r = eng.run("f", {"x": 0, "y": 42})
        pins = [p for p in r.path_conditions if p.is_concretization]
        assert len(pins) == 1  # y pinned because hash(y)'s value was tested


class TestUnknownInstructions:
    """Non-linear arithmetic as UFs (paper §4.1 'unknown instructions')."""

    def test_symbolic_product_becomes_uf(self):
        src = "int f(int x, int y) { if (x * y == 12) { return 1; } return 0; }"
        eng = engine_for(src, ConcretizationMode.HIGHER_ORDER)
        r = eng.run("f", {"x": 3, "y": 4})
        assert "__mul__" in str(r.path_conditions[0].term)
        assert r.samples[0].args == (3, 4) and r.samples[0].value == 12

    def test_symbolic_division_becomes_uf(self):
        src = "int f(int x) { if (x / 3 == 2) { return 1; } return 0; }"
        eng = engine_for(src, ConcretizationMode.HIGHER_ORDER)
        r = eng.run("f", {"x": 7})
        assert "__div__" in str(r.path_conditions[0].term)

    def test_symbolic_mod_becomes_uf(self):
        src = "int f(int x) { if (x % 10 == 3) { return 1; } return 0; }"
        eng = engine_for(src, ConcretizationMode.HIGHER_ORDER)
        r = eng.run("f", {"x": 13})
        assert "__mod__" in str(r.path_conditions[0].term)

    def test_linear_product_stays_precise(self):
        src = "int f(int x) { if (x * 3 == 12) { return 1; } return 0; }"
        eng = engine_for(src, ConcretizationMode.HIGHER_ORDER)
        r = eng.run("f", {"x": 4})
        assert r.uf_applications == 0

    def test_sound_mode_concretizes_nonlinear(self):
        src = "int f(int x, int y) { if (x * y == 12) { return 1; } return 0; }"
        eng = engine_for(src, ConcretizationMode.SOUND)
        r = eng.run("f", {"x": 3, "y": 4})
        pins = [p for p in r.path_conditions if p.is_concretization]
        assert len(pins) == 2  # both x and y pinned


class TestArraysUnderSymbolicIndex:
    SRC = """
    int f(int i) {
        int a[4];
        a[0] = 10;
        a[1] = 20;
        if (a[i] == 20) { return 1; }
        return 0;
    }
    """

    def test_higher_order_pins_symbolic_index(self):
        eng = engine_for(self.SRC, ConcretizationMode.HIGHER_ORDER)
        r = eng.run("f", {"i": 1})
        pins = [p for p in r.path_conditions if p.is_concretization]
        assert len(pins) == 1
        assert str(pins[0].term) == "(= i 1)"

    def test_concrete_index_no_pin(self):
        src = """
        int f(int x) {
            int a[4];
            a[2] = x;
            if (a[2] == 5) { return 1; }
            return 0;
        }
        """
        eng = engine_for(src, ConcretizationMode.HIGHER_ORDER)
        r = eng.run("f", {"x": 5})
        assert all(not p.is_concretization for p in r.path_conditions)
        # the symbolic content flows through the concrete-index cell
        assert any(
            v.name == "x" for v in r.path_conditions[0].term.free_vars()
        )


class TestPathConstraintSoundness:
    """Theorems 2 and 3: every input assignment satisfying a SOUND /
    SOUND_DELAYED / HIGHER_ORDER path constraint *under the real function
    semantics* follows the same program path.  Validated by enumerating a
    grid of input vectors, evaluating the pc with the real natives via
    :func:`evaluate_with_oracle`, and replaying the satisfying ones."""

    PROGRAMS = [
        ("foo", FOO),
        (
            "g",
            """
        int g(int x, int y) {
            int v = hash(x + y);
            if (v % 2 == 0) { if (x > y) { return 1; } }
            return 0;
        }
        """,
        ),
        (
            "h2",
            """
        int h2(int x, int y) {
            if (hash(x) == hash(y)) { return 1; }
            if (x * y > 10) { return 2; }
            return 0;
        }
        """,
        ),
    ]

    def _oracle(self):
        from repro.lang.interp import c_div, c_mod

        def oracle(name, args):
            if name == "hash":
                return (args[0] * 31 + 7) % 1000
            if name == "__mul__":
                return args[0] * args[1]
            if name == "__div__":
                return c_div(args[0], args[1])
            if name == "__mod__":
                return c_mod(args[0], args[1])
            raise AssertionError(f"unexpected oracle call {name}")

        return oracle

    @pytest.mark.parametrize("entry,src", PROGRAMS)
    @pytest.mark.parametrize(
        "mode",
        [
            ConcretizationMode.SOUND,
            ConcretizationMode.SOUND_DELAYED,
            ConcretizationMode.HIGHER_ORDER,
        ],
    )
    @pytest.mark.parametrize("seed", [{"x": 3, "y": 4}, {"x": 42, "y": 42}])
    def test_real_world_satisfying_inputs_replay(self, entry, src, mode, seed):
        from repro.solver.evalmodel import evaluate_with_oracle

        tm = TermManager()
        eng = ConcolicEngine(parse_program(src), make_natives(), mode, tm)
        base = eng.run(entry, seed)
        if not base.path_conditions:
            pytest.skip("no symbolic conditions for this input")
        pc_terms = [p.term for p in base.path_conditions]
        oracle = self._oracle()
        grid = [-7, 0, 3, 4, 10, 42, 100]
        checked = 0
        for x in grid:
            for y in grid:
                ints = {"x": x, "y": y}
                if all(
                    evaluate_with_oracle(t, ints, oracle) is True
                    for t in pc_terms
                ):
                    replay = eng.run(entry, ints)
                    assert replay.path == base.path, (
                        f"inputs {ints} satisfy the pc but diverged"
                    )
                    checked += 1
        assert checked >= 1  # at least the seed itself must satisfy its pc

    def test_unsound_mode_admits_violations(self):
        """Contrast (paper §3.2): an UNSOUND pc can be satisfied by inputs
        that do NOT follow the path — the divergence phenomenon."""
        from repro.solver.evalmodel import evaluate_with_oracle

        tm = TermManager()
        eng = ConcolicEngine(
            parse_program(FOO), make_natives(), ConcretizationMode.UNSOUND, tm
        )
        hv = (42 * 31 + 7) % 1000
        base = eng.run("foo", {"x": hv, "y": 42})
        pc_terms = [p.term for p in base.path_conditions]
        oracle = self._oracle()
        # x = hv, y = 5 satisfies (x = hv) and (y != 10) but hash(5) != hv,
        # so the real execution takes the other branch: unsound
        ints = {"x": hv, "y": 5}
        assert all(
            evaluate_with_oracle(t, ints, oracle) is True for t in pc_terms
        )
        replay = eng.run("foo", ints)
        assert replay.path != base.path
