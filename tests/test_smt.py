"""Unit and property tests for the SMT facade (LIA + EUF via Ackermann)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.solver import Solver, TermManager, ackermannize, evaluate


@pytest.fixture()
def tm():
    return TermManager()


@pytest.fixture()
def solver(tm):
    return Solver(tm)


class TestPlainArithmetic:
    def test_empty_sat(self, solver):
        assert solver.check().sat

    def test_equality(self, tm, solver):
        x = tm.mk_var("x")
        solver.add(tm.mk_eq(x, tm.mk_int(42)))
        r = solver.check()
        assert r.sat and r.model.ints["x"] == 42

    def test_window_with_diseq(self, tm, solver):
        x = tm.mk_var("x")
        solver.add(
            tm.mk_gt(x, tm.mk_int(5)),
            tm.mk_lt(x, tm.mk_int(8)),
            tm.mk_ne(x, tm.mk_int(7)),
        )
        r = solver.check()
        assert r.sat and r.model.ints["x"] == 6

    def test_unsat_bounds(self, tm, solver):
        x = tm.mk_var("x")
        solver.add(tm.mk_gt(x, tm.mk_int(5)), tm.mk_lt(x, tm.mk_int(5)))
        assert not solver.check().sat

    def test_parity_unsat(self, tm, solver):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        two_x = tm.mk_mul(tm.mk_int(2), x)
        two_y_plus_1 = tm.mk_add(tm.mk_mul(tm.mk_int(2), y), tm.mk_int(1))
        solver.add(tm.mk_eq(two_x, two_y_plus_1))
        assert not solver.check().sat

    def test_assert_non_bool_rejected(self, tm, solver):
        with pytest.raises(SolverError):
            solver.add(tm.mk_int(1))


class TestBooleanStructure:
    def test_disjunction(self, tm, solver):
        x = tm.mk_var("x")
        solver.add(
            tm.mk_or(tm.mk_eq(x, tm.mk_int(1)), tm.mk_eq(x, tm.mk_int(2))),
            tm.mk_ne(x, tm.mk_int(1)),
        )
        r = solver.check()
        assert r.sat and r.model.ints["x"] == 2

    def test_implication(self, tm, solver):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        solver.add(
            tm.mk_implies(tm.mk_gt(x, tm.mk_int(0)), tm.mk_eq(y, tm.mk_int(9))),
            tm.mk_eq(x, tm.mk_int(5)),
        )
        r = solver.check()
        assert r.sat and r.model.ints["y"] == 9

    def test_bool_vars(self, tm, solver):
        from repro.solver import Sort

        p = tm.mk_var("p", Sort.BOOL)
        q = tm.mk_var("q", Sort.BOOL)
        solver.add(tm.mk_or(p, q), tm.mk_not(p))
        r = solver.check()
        assert r.sat and r.model.bools["q"] is True

    def test_assert_false_unsat(self, tm, solver):
        solver.add(tm.false_)
        assert not solver.check().sat

    def test_nested_ite_int(self, tm, solver):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        ite = tm.mk_ite(tm.mk_gt(x, tm.mk_int(0)), tm.mk_int(10), tm.mk_int(20))
        solver.add(tm.mk_eq(y, ite), tm.mk_eq(x, tm.mk_int(3)))
        r = solver.check()
        assert r.sat and r.model.ints["y"] == 10

    def test_ite_else_branch(self, tm, solver):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        ite = tm.mk_ite(tm.mk_gt(x, tm.mk_int(0)), tm.mk_int(10), tm.mk_int(20))
        solver.add(tm.mk_eq(y, ite), tm.mk_eq(x, tm.mk_int(-3)))
        r = solver.check()
        assert r.sat and r.model.ints["y"] == 20


class TestUninterpretedFunctions:
    def test_simple_application_sat(self, tm, solver):
        h = tm.mk_function("h", 1)
        x, y = tm.mk_var("x"), tm.mk_var("y")
        solver.add(tm.mk_eq(x, tm.mk_app(h, [y])))
        r = solver.check()
        assert r.sat
        hv = r.model.apply(h, (r.model.ints["y"],))
        assert r.model.ints["x"] == hv

    def test_functional_consistency_unsat(self, tm, solver):
        h = tm.mk_function("h", 1)
        x, y = tm.mk_var("x"), tm.mk_var("y")
        solver.add(
            tm.mk_eq(x, y),
            tm.mk_ne(tm.mk_app(h, [x]), tm.mk_app(h, [y])),
        )
        assert not solver.check().sat

    def test_functional_consistency_through_arith(self, tm, solver):
        h = tm.mk_function("h", 1)
        x, y = tm.mk_var("x"), tm.mk_var("y")
        # x = y + 0 -> h(x) = h(y)
        solver.add(
            tm.mk_eq(x, tm.mk_add(y, tm.mk_int(0))),
            tm.mk_ne(tm.mk_app(h, [x]), tm.mk_app(h, [y])),
        )
        assert not solver.check().sat

    def test_nested_applications(self, tm, solver):
        h = tm.mk_function("h", 1)
        x = tm.mk_var("x")
        hx = tm.mk_app(h, [x])
        hhx = tm.mk_app(h, [hx])
        solver.add(tm.mk_eq(hhx, tm.mk_int(7)), tm.mk_eq(hx, x))
        r = solver.check()
        # h(x) = x means h(h(x)) = h(x) = x = 7
        assert r.sat and r.model.ints["x"] == 7

    def test_binary_function(self, tm, solver):
        g = tm.mk_function("g", 2)
        x, y = tm.mk_var("x"), tm.mk_var("y")
        solver.add(
            tm.mk_eq(tm.mk_app(g, [x, y]), tm.mk_int(3)),
            tm.mk_eq(tm.mk_app(g, [y, x]), tm.mk_int(4)),
            tm.mk_eq(x, y),
        )
        # g(x,y) and g(y,x) coincide when x=y: 3 != 4 -> unsat
        assert not solver.check().sat

    def test_sample_constraints(self, tm, solver):
        # encode paper-style antecedent: h(42)=567 /\ x = h(y) /\ y = 42
        h = tm.mk_function("h", 1)
        x, y = tm.mk_var("x"), tm.mk_var("y")
        solver.add(
            tm.mk_eq(tm.mk_app(h, [tm.mk_int(42)]), tm.mk_int(567)),
            tm.mk_eq(x, tm.mk_app(h, [y])),
            tm.mk_eq(y, tm.mk_int(42)),
        )
        r = solver.check()
        assert r.sat and r.model.ints["x"] == 567

    def test_arith_inside_application(self, tm, solver):
        h = tm.mk_function("h", 1)
        x, y = tm.mk_var("x"), tm.mk_var("y")
        solver.add(
            tm.mk_ne(
                tm.mk_app(h, [tm.mk_add(x, tm.mk_int(1))]),
                tm.mk_app(h, [tm.mk_add(tm.mk_int(1), y)]),
            ),
            tm.mk_eq(x, y),
        )
        assert not solver.check().sat


class TestModelQuality:
    def test_model_verification_catches_everything(self, tm):
        # a broad sanity pass: verified models never raise
        solver = Solver(tm, verify_models=True)
        x, y = tm.mk_var("x"), tm.mk_var("y")
        h = tm.mk_function("h", 1)
        solver.add(
            tm.mk_eq(tm.mk_app(h, [x]), tm.mk_add(tm.mk_app(h, [y]), tm.mk_int(1))),
            tm.mk_gt(x, y),
        )
        r = solver.check()
        assert r.sat

    def test_model_hides_internal_vars(self, tm, solver):
        x = tm.mk_var("x")
        h = tm.mk_function("h", 1)
        solver.add(tm.mk_gt(tm.mk_app(h, [x]), tm.mk_int(0)))
        r = solver.check()
        assert r.sat
        assert all(not name.startswith("_") for name in r.model.ints)

    def test_evaluate_model_consistency(self, tm, solver):
        x, y = tm.mk_var("x"), tm.mk_var("y")
        f = tm.mk_eq(tm.mk_add(x, y), tm.mk_int(10))
        solver.add(f)
        r = solver.check()
        assert r.sat
        assert evaluate(f, r.model) is True


class TestPushPop:
    def test_scoped_assertions(self, tm, solver):
        x = tm.mk_var("x")
        solver.add(tm.mk_gt(x, tm.mk_int(0)))
        solver.push()
        solver.add(tm.mk_lt(x, tm.mk_int(0)))
        assert not solver.check().sat
        solver.pop()
        assert solver.check().sat

    def test_pop_without_push_raises(self, solver):
        with pytest.raises(SolverError):
            solver.pop()

    def test_check_with_extra(self, tm, solver):
        x = tm.mk_var("x")
        solver.add(tm.mk_gt(x, tm.mk_int(0)))
        assert not solver.check(tm.mk_lt(x, tm.mk_int(0))).sat
        assert solver.check().sat  # extra did not persist


class TestAckermannization:
    def test_rewrites_remove_applications(self, tm):
        h = tm.mk_function("h", 1)
        x = tm.mk_var("x")
        f = tm.mk_eq(tm.mk_app(h, [x]), tm.mk_int(1))
        rewritten, app_map, constraints = ackermannize(tm, [f])
        assert len(app_map) == 1
        assert not any(t.is_app for t in rewritten[0].iter_dag())

    def test_pairwise_constraints_count(self, tm):
        h = tm.mk_function("h", 1)
        xs = [tm.mk_var(f"k{i}") for i in range(4)]
        fs = [tm.mk_eq(tm.mk_app(h, [x]), tm.mk_int(0)) for x in xs]
        _, app_map, constraints = ackermannize(tm, fs)
        assert len(app_map) == 4
        assert len(constraints) == 6  # C(4,2)

    def test_nested_apps_use_inner_var(self, tm):
        h = tm.mk_function("h", 1)
        x = tm.mk_var("x")
        hhx = tm.mk_app(h, [tm.mk_app(h, [x])])
        rewritten, app_map, _ = ackermannize(tm, [tm.mk_eq(hhx, tm.mk_int(0))])
        # no APP nodes survive anywhere
        assert not any(t.is_app for t in rewritten[0].iter_dag())


@st.composite
def arith_formula(draw, tm_holder):
    """Random small formulas over x, y with +, comparisons, and/or/not."""
    tm = tm_holder["tm"]
    x, y = tm.mk_var("x"), tm.mk_var("y")

    def atom():
        lhs = draw(
            st.sampled_from(
                [x, y, tm.mk_add(x, y), tm.mk_sub(x, y), tm.mk_mul(tm.mk_int(2), x)]
            )
        )
        c = tm.mk_int(draw(st.integers(min_value=-8, max_value=8)))
        op = draw(st.sampled_from(["eq", "le", "lt", "ne"]))
        return {
            "eq": tm.mk_eq,
            "le": tm.mk_le,
            "lt": tm.mk_lt,
            "ne": tm.mk_ne,
        }[op](lhs, c)

    formula = atom()
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        conn = draw(st.sampled_from(["and", "or", "not"]))
        if conn == "and":
            formula = tm.mk_and(formula, atom())
        elif conn == "or":
            formula = tm.mk_or(formula, atom())
        else:
            formula = tm.mk_not(formula)
    return formula


class TestPropertySat:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_models_always_verify(self, data):
        tm = TermManager()
        holder = {"tm": tm}
        formula = data.draw(arith_formula(holder))
        solver = Solver(tm, verify_models=True)
        solver.add(formula)
        # bound the search space to keep branch&bound snappy
        x, y = tm.mk_var("x"), tm.mk_var("y")
        for v in (x, y):
            solver.add(tm.mk_ge(v, tm.mk_int(-32)), tm.mk_le(v, tm.mk_int(32)))
        result = solver.check()
        if result.sat:
            assert evaluate(formula, result.model) is True

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_agreement_with_brute_force(self, data):
        tm = TermManager()
        holder = {"tm": tm}
        formula = data.draw(arith_formula(holder))
        solver = Solver(tm)
        solver.add(formula)
        x, y = tm.mk_var("x"), tm.mk_var("y")
        for v in (x, y):
            solver.add(tm.mk_ge(v, tm.mk_int(-10)), tm.mk_le(v, tm.mk_int(10)))
        result = solver.check()

        from repro.solver import Model

        brute = any(
            evaluate(formula, Model(ints={"x": a, "y": b}))
            for a in range(-10, 11)
            for b in range(-10, 11)
        )
        assert result.sat == brute
