"""Tests for the observability layer: tracer spans, metrics, journals."""

import json
import os
import time

import pytest

from repro.apps.hashes import standard_registry
from repro.lang import parse_program
from repro.obs import (
    NULL_JOURNAL,
    NULL_REGISTRY,
    NULL_TRACER,
    MetricsRegistry,
    NullJournal,
    NullRegistry,
    Observability,
    RunJournal,
    Tracer,
    current_journal,
    default_registry,
    install_journal,
    set_current_journal,
    set_default_registry,
    use_registry,
)
from repro.search import DirectedSearch, SearchConfig
from repro.solver.sat import SatSolver, SatStats
from repro.symbolic import ConcretizationMode

FOO_MINIC = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples", "programs", "foo.minic"
)


class TestTracerSpans:
    def test_span_aggregates_count_and_elapsed(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("work"):
                pass
        stats = tracer.stats()["work"]
        assert stats.count == 3
        assert stats.total >= stats.self_total >= 0.0
        assert stats.min <= stats.mean <= stats.max

    def test_nested_spans_split_self_time(self):
        tracer = Tracer()
        with tracer.span("outer"):
            time.sleep(0.02)
            with tracer.span("inner"):
                time.sleep(0.02)
        outer = tracer.stats()["outer"]
        inner = tracer.stats()["inner"]
        # inner's elapsed is charged to inner, not to outer's self time
        assert outer.self_total < outer.total
        assert outer.self_total + inner.self_total == pytest.approx(
            outer.total, rel=0.05
        )

    def test_self_time_total_equals_root_inclusive_time(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                time.sleep(0.01)
            with tracer.span("b"):
                with tracer.span("c"):
                    time.sleep(0.01)
        assert tracer.self_time_total() == pytest.approx(root.elapsed, rel=0.05)

    def test_span_exposes_elapsed_after_exit(self):
        tracer = Tracer()
        with tracer.span("t") as span:
            time.sleep(0.005)
        assert span.elapsed >= 0.005

    def test_render_table_mentions_every_label(self):
        tracer = Tracer()
        with tracer.span("solve", kind="euf"):
            with tracer.span("propagate"):
                pass
        table = tracer.render_table()
        assert "solve" in table and "propagate" in table

    def test_reset_clears_stats(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.stats() == {}

    def test_spans_emit_journal_events(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        with RunJournal(path) as journal:
            tracer = Tracer(journal=journal)
            with tracer.span("outer", phase="gen"):
                with tracer.span("inner"):
                    pass
        events = [json.loads(line) for line in open(path, encoding="utf-8")]
        assert [e["label"] for e in events] == ["inner", "outer"]
        # depth counts enclosing spans: inner sits under outer
        assert events[0]["depth"] == 1
        assert events[1]["depth"] == 0
        assert events[1]["phase"] == "gen"


class TestMetricsRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("queries").inc()
        reg.counter("queries").inc(4)
        reg.gauge("depth").set(7)
        reg.histogram("seconds").observe(0.25)
        reg.histogram("seconds").observe(0.75)
        snap = reg.snapshot()
        assert snap["counters"]["queries"] == 5
        assert snap["gauges"]["depth"] == 7
        hist = snap["histograms"]["seconds"]
        assert hist["count"] == 2
        assert hist["total"] == pytest.approx(1.0)
        assert hist["mean"] == pytest.approx(0.5)

    def test_same_name_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_render_table_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("sat.queries").inc(3)
        assert "sat.queries" in reg.render_table()
        reg.reset()
        assert len(reg) == 0

    def test_default_registry_is_null_and_restorable(self):
        assert default_registry() is NULL_REGISTRY
        live = MetricsRegistry()
        old = set_default_registry(live)
        try:
            assert default_registry() is live
        finally:
            set_default_registry(old)
        assert default_registry() is NULL_REGISTRY

    def test_use_registry_context_manager(self):
        live = MetricsRegistry()
        with use_registry(live):
            assert default_registry() is live
        assert default_registry() is NULL_REGISTRY


class TestDisabledMode:
    """With observability off, nothing is recorded anywhere."""

    def test_null_registry_records_nothing(self):
        reg = NullRegistry()
        assert not reg.enabled
        reg.counter("c").inc(10)
        reg.gauge("g").set(5)
        reg.histogram("h").observe(1.0)
        assert len(reg) == 0
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_null_journal_emits_nothing(self, tmp_path):
        journal = NullJournal()
        assert not journal.enabled
        assert journal.emit("test_generated", inputs={}) is None
        assert journal.events_written == 0

    def test_null_tracer_spans_are_free(self):
        with NULL_TRACER.span("anything") as span:
            pass
        assert NULL_TRACER.stats() == {}
        assert span.elapsed == 0.0

    def test_current_journal_defaults_to_null(self):
        assert current_journal() is NULL_JOURNAL

    def test_search_without_obs_touches_no_global_state(self):
        program = parse_program(open(FOO_MINIC, encoding="utf-8").read())
        search = DirectedSearch.for_mode(
            program, "main", standard_registry(width=4),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=20),
        )
        result = search.run({"x": 0, "y": 0})
        assert result.found_error
        # the process-wide default registry stayed untouched (null)
        assert default_registry() is NULL_REGISTRY
        assert len(default_registry()) == 0
        assert current_journal() is NULL_JOURNAL
        # backward compatibility: timings still populated by the tracer
        assert result.time_total > 0.0


class TestRunJournal:
    def test_events_round_trip_through_json(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with RunJournal(path) as journal:
            journal.emit("solver_query", solver="smt", sat=True)
            journal.emit("branch_flipped", parent=0, child=1)
        lines = open(path, encoding="utf-8").read().splitlines()
        events = [json.loads(line) for line in lines]
        assert [e["kind"] for e in events] == ["solver_query", "branch_flipped"]
        assert [e["seq"] for e in events] == [0, 1]
        assert all("ts" in e for e in events)

    def test_non_serializable_fields_fall_back_to_str(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with RunJournal(path) as journal:
            journal.emit("note", obj=object())
        event = json.loads(open(path, encoding="utf-8").read())
        assert isinstance(event["obj"], str)

    def test_emit_after_close_is_dropped(self, tmp_path):
        journal = RunJournal(str(tmp_path / "e.jsonl"))
        journal.close()
        assert journal.emit("late") is None

    def test_install_journal_restores_previous(self, tmp_path):
        journal = RunJournal(str(tmp_path / "e.jsonl"))
        with install_journal(journal):
            assert current_journal() is journal
        assert current_journal() is NULL_JOURNAL
        journal.close()

    def test_set_current_journal_returns_old(self, tmp_path):
        journal = RunJournal(str(tmp_path / "e.jsonl"))
        old = set_current_journal(journal)
        try:
            assert current_journal() is journal
        finally:
            set_current_journal(old)
        journal.close()


class TestSatStats:
    def test_to_dict_and_repr(self):
        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        solver.add_clause([-a])
        assert solver.solve().sat
        stats = solver.stats
        d = stats.to_dict()
        assert set(d) >= {"decisions", "propagations", "conflicts"}
        assert d["propagations"] == stats.propagations
        assert "decisions=" in repr(stats)
        assert isinstance(stats, SatStats)


class TestDirectedSearchJournal:
    def test_foo_search_emits_expected_event_kinds(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        program = parse_program(open(FOO_MINIC, encoding="utf-8").read())
        journal = RunJournal(path)
        obs = Observability.collecting(journal=journal)
        search = DirectedSearch.for_mode(
            program, "main", standard_registry(width=4),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=20),
            obs=obs,
        )
        result = search.run({"x": 0, "y": 0})
        journal.close()
        assert result.found_error

        events = [json.loads(line) for line in open(path, encoding="utf-8")]
        kinds = {e["kind"] for e in events}
        assert {
            "search_started",
            "test_generated",
            "solver_query",
            "branch_flipped",
            "sample_recorded",
            "error_found",
            "search_finished",
            "span",
        } <= kinds
        # seq is contiguous and monotone
        assert [e["seq"] for e in events] == list(range(len(events)))

        # the metrics registry saw the same session
        snap = obs.metrics.snapshot()["counters"]
        assert snap["search.sessions"] == 1
        assert snap["search.runs"] == result.runs
        assert snap["smt.checks"] >= 1
        assert snap["sat.queries"] >= 1

        # profile acceptance: self-time sum within 10% of time_total
        assert obs.tracer.self_time_total() == pytest.approx(
            result.time_total, rel=0.10
        )

    def test_divergence_event_on_unsound_mode(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        src = """
        int g(int y) {
            if (y == hash(y)) { return 1; }
            return 0;
        }
        """
        program = parse_program(src)
        natives = standard_registry(width=4)
        journal = RunJournal(path)
        obs = Observability.collecting(journal=journal)
        search = DirectedSearch.for_mode(
            program, "g", natives,
            ConcretizationMode.UNSOUND, SearchConfig(max_runs=10),
            obs=obs,
        )
        result = search.run({"y": 0})
        journal.close()
        events = [json.loads(line) for line in open(path, encoding="utf-8")]
        kinds = [e["kind"] for e in events]
        if result.divergences:
            assert "divergence_detected" in kinds
        assert kinds[0] == "search_started"
        assert kinds[-1] == "search_finished"
