"""Tests for NNF conversion, branch enumeration, and SMT-LIB export."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import Model, Sort, TermManager, evaluate
from repro.solver.nnf import atoms_of, conjunctive_branches, to_nnf
from repro.solver.printer import script_for_sat, script_for_validity, term_to_smtlib
from repro.solver.terms import Kind
from repro.solver.validity import Sample


@pytest.fixture()
def tm():
    return TermManager()


class TestToNnf:
    def test_atom_unchanged(self, tm):
        a = tm.mk_gt(tm.mk_var("x"), tm.mk_int(0))
        assert to_nnf(tm, a) is a

    def test_negated_atom_unchanged(self, tm):
        a = tm.mk_not(tm.mk_gt(tm.mk_var("x"), tm.mk_int(0)))
        assert to_nnf(tm, a) is a

    def test_de_morgan_and(self, tm):
        x = tm.mk_var("x")
        f = tm.mk_not(
            tm.mk_and(tm.mk_gt(x, tm.mk_int(0)), tm.mk_lt(x, tm.mk_int(9)))
        )
        nnf = to_nnf(tm, f)
        assert nnf.kind is Kind.OR
        for arg in nnf.args:
            assert arg.kind is Kind.NOT and arg.args[0].is_atom

    def test_de_morgan_or(self, tm):
        x = tm.mk_var("x")
        f = tm.mk_not(
            tm.mk_or(tm.mk_gt(x, tm.mk_int(0)), tm.mk_lt(x, tm.mk_int(-9)))
        )
        nnf = to_nnf(tm, f)
        assert nnf.kind is Kind.AND

    def test_implies_eliminated(self, tm):
        x = tm.mk_var("x")
        f = tm.mk_implies(
            tm.mk_gt(x, tm.mk_int(0)), tm.mk_lt(x, tm.mk_int(9))
        )
        nnf = to_nnf(tm, f)
        assert all(t.kind is not Kind.IMPLIES for t in nnf.iter_dag())

    def test_bool_ite_eliminated(self, tm):
        p = tm.mk_var("p", Sort.BOOL)
        q = tm.mk_var("q", Sort.BOOL)
        r = tm.mk_var("r", Sort.BOOL)
        f = tm.mk_ite(p, q, r)
        nnf = to_nnf(tm, f)
        assert all(
            t.kind is not Kind.ITE or t.sort is not Sort.BOOL
            for t in nnf.iter_dag()
        )

    def test_rejects_int_terms(self, tm):
        from repro.errors import SolverError

        with pytest.raises(SolverError):
            to_nnf(tm, tm.mk_int(3))

    @given(st.data())
    @settings(max_examples=80, deadline=None)
    def test_nnf_preserves_semantics(self, data):
        tm = TermManager()
        p = tm.mk_var("p", Sort.BOOL)
        q = tm.mk_var("q", Sort.BOOL)
        r = tm.mk_var("r", Sort.BOOL)
        leaves = [p, q, r, tm.true_, tm.false_]

        def formula(depth):
            if depth == 0:
                return data.draw(st.sampled_from(leaves))
            op = data.draw(
                st.sampled_from(["not", "and", "or", "implies", "iff", "ite"])
            )
            if op == "not":
                return tm.mk_not(formula(depth - 1))
            a, b = formula(depth - 1), formula(depth - 1)
            if op == "and":
                return tm.mk_and(a, b)
            if op == "or":
                return tm.mk_or(a, b)
            if op == "implies":
                return tm.mk_implies(a, b)
            if op == "iff":
                return tm.mk_eq(a, b)
            return tm.mk_ite(formula(depth - 1), a, b)

        f = formula(data.draw(st.integers(min_value=1, max_value=3)))
        nnf = to_nnf(tm, f)
        for bits in itertools.product([False, True], repeat=3):
            model = Model(bools={"p": bits[0], "q": bits[1], "r": bits[2]})
            assert evaluate(f, model) == evaluate(nnf, model)


class TestConjunctiveBranches:
    def test_plain_conjunction_single_branch(self, tm):
        x = tm.mk_var("x")
        f = tm.mk_and(tm.mk_gt(x, tm.mk_int(0)), tm.mk_lt(x, tm.mk_int(9)))
        branches = conjunctive_branches(tm, f)
        assert len(branches) == 1
        assert len(branches[0]) == 2

    def test_disjunction_splits(self, tm):
        x = tm.mk_var("x")
        f = tm.mk_or(tm.mk_eq(x, tm.mk_int(1)), tm.mk_eq(x, tm.mk_int(2)))
        branches = conjunctive_branches(tm, f)
        assert len(branches) == 2

    def test_negated_conjunction_splits(self, tm):
        # the strict-&& flip shape: ¬(A ∧ B) must enumerate ¬A and ¬B
        x, y = tm.mk_var("x"), tm.mk_var("y")
        f = tm.mk_not(
            tm.mk_and(tm.mk_eq(x, tm.mk_int(1)), tm.mk_eq(y, tm.mk_int(2)))
        )
        branches = conjunctive_branches(tm, f)
        assert len(branches) == 2

    def test_limit_respected(self, tm):
        x = tm.mk_var("x")
        disj = tm.mk_or(*[tm.mk_eq(x, tm.mk_int(i)) for i in range(30)])
        branches = conjunctive_branches(tm, disj, limit=5)
        assert len(branches) == 5

    def test_branches_imply_formula(self, tm):
        """Each branch conjunction must imply the original formula."""
        from repro.solver import Solver

        x, y = tm.mk_var("x"), tm.mk_var("y")
        f = tm.mk_or(
            tm.mk_and(tm.mk_gt(x, tm.mk_int(0)), tm.mk_eq(y, tm.mk_int(1))),
            tm.mk_not(tm.mk_and(tm.mk_lt(x, tm.mk_int(5)), tm.mk_gt(y, x))),
        )
        for branch in conjunctive_branches(tm, f):
            solver = Solver(tm)
            solver.add(tm.mk_and(*branch))
            solver.add(tm.mk_not(f))
            assert not solver.check().sat  # branch ∧ ¬f is UNSAT


class TestAtomsOf:
    def test_collects_distinct_atoms(self, tm):
        x = tm.mk_var("x")
        a1 = tm.mk_gt(x, tm.mk_int(0))
        a2 = tm.mk_eq(x, tm.mk_int(5))
        f = tm.mk_and(a1, tm.mk_or(a2, tm.mk_not(a1)))
        assert set(atoms_of(f)) == {a1, a2}


class TestSmtLibExport:
    def test_term_rendering(self, tm):
        h = tm.mk_function("h", 1)
        x, y = tm.mk_var("x"), tm.mk_var("y")
        t = tm.mk_eq(x, tm.mk_app(h, [tm.mk_add(y, tm.mk_int(1))]))
        text = term_to_smtlib(t)
        assert text == "(= x (h (+ y 1)))"

    def test_negative_constant(self, tm):
        assert term_to_smtlib(tm.mk_int(-5)) == "(- 5)"

    def test_sat_script_shape(self, tm):
        h = tm.mk_function("h", 1)
        x = tm.mk_var("x")
        f = tm.mk_gt(tm.mk_app(h, [x]), tm.mk_int(0))
        script = script_for_sat([f])
        assert "(set-logic QF_UFLIA)" in script
        assert "(declare-fun h (Int) Int)" in script
        assert "(declare-const x Int)" in script
        assert "(check-sat)" in script

    def test_validity_script_shape(self, tm):
        h = tm.mk_function("h", 1)
        x, y = tm.mk_var("x"), tm.mk_var("y")
        pc = tm.mk_eq(x, tm.mk_app(h, [y]))
        script = script_for_validity(tm, pc, [x, y], [Sample(h, (42,), 567)])
        assert "(set-logic UFLIA)" in script
        assert "(forall ((x Int) (y Int))" in script
        assert "(= (h 42) 567)" in script
        assert "unsat here means" in script

    def test_mul_rendering(self, tm):
        x = tm.mk_var("x")
        t = tm.mk_mul(tm.mk_int(3), x)
        assert term_to_smtlib(t) == "(* 3 x)"
