"""End-to-end reproduction of every example in the paper (E0–E7).

Each test runs the directed search on a paper program with the paper's
setup and asserts the paper's claimed outcome: which techniques cover the
target branch / find the bug, which diverge, and which provably generate
no test.  This file is the executable version of EXPERIMENTS.md.
"""

import pytest

from repro.apps.paper_programs import PAPER_EXAMPLES, make_paper_natives, paper_hash
from repro.baselines import RandomFuzzer, StaticTestGenerator
from repro.core.hotg import HigherOrderBackend
from repro.search import DirectedSearch, SearchConfig
from repro.symbolic import ConcretizationMode


def search_example(name, mode, max_runs=40, use_antecedent=True):
    ex = PAPER_EXAMPLES[name]
    search = DirectedSearch.for_mode(
        ex.program(),
        ex.entry,
        make_paper_natives(),
        mode,
        SearchConfig(max_runs=max_runs),
        use_antecedent=use_antecedent,
    )
    return search.run(dict(ex.initial_inputs))


class TestE0Obscure:
    """§1: static test generation is helpless; dynamic & HO cover both
    branches of `obscure`."""

    def test_dynamic_unsound_finds_error(self):
        res = search_example("obscure", ConcretizationMode.UNSOUND)
        assert res.found_error

    def test_dynamic_sound_finds_error(self):
        res = search_example("obscure", ConcretizationMode.SOUND)
        assert res.found_error

    def test_higher_order_finds_error(self):
        res = search_example("obscure", ConcretizationMode.HIGHER_ORDER)
        assert res.found_error
        assert res.divergences == 0

    def test_static_does_not_reach_error(self):
        ex = PAPER_EXAMPLES["obscure"]
        gen = StaticTestGenerator(
            ex.program(), ex.entry, make_paper_natives(),
            SearchConfig(max_runs=40),
        )
        res = gen.run(dict(ex.initial_inputs))
        # the solver invents hash behaviour; generated tests diverge and the
        # error branch stays uncovered
        assert not res.found_error

    def test_static_tests_diverge(self):
        ex = PAPER_EXAMPLES["obscure"]
        gen = StaticTestGenerator(
            ex.program(), ex.entry, make_paper_natives(),
            SearchConfig(max_runs=40),
        )
        res = gen.run(dict(ex.initial_inputs))
        assert res.divergences >= 1

    def test_error_inputs_satisfy_hash_relation(self):
        res = search_example("obscure", ConcretizationMode.HIGHER_ORDER)
        err = res.errors[0]
        assert err.inputs["x"] == paper_hash(err.inputs["y"])


class TestE1FooSoundConcretization:
    """§3.3 Example 1: sound concretization generates the sound pc
    y=42 ∧ x=567 ∧ y≠10; its negation is UNSAT → no divergence, no error."""

    def test_sound_no_error_no_divergence(self):
        res = search_example("foo", ConcretizationMode.SOUND)
        assert not res.found_error
        assert res.divergences == 0

    def test_sound_delayed_same_outcome(self):
        res = search_example("foo", ConcretizationMode.SOUND_DELAYED)
        assert not res.found_error
        assert res.divergences == 0


class TestE1uFooUnsound:
    """§3.2: unsound concretization produces a divergence on foo."""

    def test_unsound_diverges(self):
        res = search_example("foo", ConcretizationMode.UNSOUND)
        assert res.divergences >= 1

    def test_unsound_misses_error(self):
        res = search_example("foo", ConcretizationMode.UNSOUND)
        assert not res.found_error


class TestE2FooBis:
    """Example 2: unsound concretization reaches the bug through an unsound
    path constraint ("likely but not guaranteed" per the paper — in our
    deterministic setup it lands); sound concretization provably cannot."""

    def test_unsound_finds_error(self):
        res = search_example("foo_bis", ConcretizationMode.UNSOUND)
        assert res.found_error

    def test_sound_misses_error(self):
        res = search_example("foo_bis", ConcretizationMode.SOUND)
        assert not res.found_error
        assert res.divergences == 0

    def test_higher_order_finds_error_via_offset_strategy(self):
        # the validity proof "set y := 10, set x := hash(10) + 1" covers the
        # disequality branch soundly — multi-step learns hash(10) first
        res = search_example("foo_bis", ConcretizationMode.HIGHER_ORDER)
        assert res.found_error
        assert res.divergences == 0
        err = res.errors[0]
        assert err.inputs["y"] == 10
        assert err.inputs["x"] != paper_hash(10)


class TestE3Bar:
    """Example 3: x=h(y) ∧ y=h(x). Unsound diverges (bad divergence);
    higher-order proves invalidity and generates nothing."""

    def test_unsound_bad_divergence(self):
        res = search_example("bar", ConcretizationMode.UNSOUND)
        assert res.divergences >= 1
        assert not res.found_error

    def test_higher_order_no_divergence_no_wasted_test(self):
        res = search_example("bar", ConcretizationMode.HIGHER_ORDER)
        assert not res.found_error
        assert res.divergences == 0
        # only the seed run executed: validity checking proved no test exists
        assert res.runs == 1


class TestE4Pub:
    """Example 4: the antecedent of samples is what makes POST valid."""

    def test_sound_concretization_finds_error(self):
        res = search_example("pub", ConcretizationMode.SOUND)
        assert res.found_error

    def test_higher_order_with_antecedent_finds_error(self):
        res = search_example("pub", ConcretizationMode.HIGHER_ORDER)
        assert res.found_error
        err = res.errors[0]
        assert paper_hash(err.inputs["x"]) > 0 and err.inputs["y"] == 10

    def test_higher_order_without_antecedent_misses(self):
        res = search_example(
            "pub", ConcretizationMode.HIGHER_ORDER, use_antecedent=False
        )
        assert not res.found_error


class TestE5EufEquality:
    """Example 5: covering hash(x) == hash(y) needs the EUF strategy x=y."""

    def test_higher_order_finds_error(self):
        res = search_example("euf_eq", ConcretizationMode.HIGHER_ORDER)
        assert res.found_error
        err = res.errors[0]
        assert paper_hash(err.inputs["x"]) == paper_hash(err.inputs["y"])

    def test_sound_concretization_cannot(self):
        res = search_example("euf_eq", ConcretizationMode.SOUND)
        assert not res.found_error


class TestE6SuccLink:
    """Example 6: hash(x) = hash(y)+1 — sound concretization cannot; HO
    succeeds exactly when consecutive-valued samples exist."""

    def test_sound_cannot(self):
        res = search_example("succ_link", ConcretizationMode.SOUND)
        assert not res.found_error

    def test_higher_order_with_seeded_samples(self):
        from repro.core import SampleStore
        from repro.solver import TermManager
        from repro.solver.validity import Sample

        ex = PAPER_EXAMPLES["succ_link"]
        tm = TermManager()
        store = SampleStore()
        h = tm.mk_function("hash", 1)
        # seed the paper's Example 6 antecedent: f(0)=0, f(1)=1; the real
        # native must agree, so wire a registry with those values
        from repro.lang import NativeRegistry

        natives = NativeRegistry()
        natives.register(
            "hash", lambda y: y if y in (0, 1) else paper_hash(y), arity=1
        )
        store.add(Sample(h, (0,), 0))
        store.add(Sample(h, (1,), 1))
        search = DirectedSearch.for_mode(
            ex.program(), ex.entry, natives, ConcretizationMode.HIGHER_ORDER,
            SearchConfig(max_runs=40), manager=tm, store=store,
        )
        res = search.run(dict(ex.initial_inputs))
        assert res.found_error
        err = res.errors[0]
        assert err.inputs["x"] == 1 and err.inputs["y"] == 0


class TestE7MultiStep:
    """Example 7: two-step test generation on foo."""

    def test_higher_order_finds_deep_error(self):
        res = search_example("foo", ConcretizationMode.HIGHER_ORDER)
        assert res.found_error
        err = res.errors[0]
        assert err.inputs["y"] == 10
        assert err.inputs["x"] == paper_hash(10)

    def test_multi_step_probe_was_used(self):
        ex = PAPER_EXAMPLES["foo"]
        search = DirectedSearch.for_mode(
            ex.program(), ex.entry, make_paper_natives(),
            ConcretizationMode.HIGHER_ORDER, SearchConfig(max_runs=40),
        )
        res = search.run(dict(ex.initial_inputs))
        backend = search.backend
        assert isinstance(backend, HigherOrderBackend)
        assert backend.total_probe_runs >= 1
        probe_notes = [r.note for r in res.executions]
        assert "multi-step probe" in probe_notes

    def test_no_divergence_in_higher_order(self):
        res = search_example("foo", ConcretizationMode.HIGHER_ORDER)
        assert res.divergences == 0


class TestDelayedConcretizationExample:
    """§3.3 end: `x := hash(y); if (y == 10) error;` — delayed sound
    concretization covers the error; eager sound concretization cannot."""

    def test_delayed_finds_error(self):
        res = search_example("delayed", ConcretizationMode.SOUND_DELAYED)
        assert res.found_error

    def test_eager_sound_misses_error(self):
        res = search_example("delayed", ConcretizationMode.SOUND)
        assert not res.found_error

    def test_higher_order_finds_error(self):
        res = search_example("delayed", ConcretizationMode.HIGHER_ORDER)
        assert res.found_error


class TestRandomBaselineOnExamples:
    """Blackbox random fuzzing essentially never hits the hash-guarded
    errors (the needle is one value in a 2^32-ish haystack)."""

    @pytest.mark.parametrize("name", ["obscure", "foo", "bar"])
    def test_random_misses_hash_guarded_bugs(self, name):
        ex = PAPER_EXAMPLES[name]
        fuzzer = RandomFuzzer(
            ex.program(), ex.entry, make_paper_natives(), seed=7,
            default_range=(-10_000, 10_000),
        )
        res = fuzzer.run(max_runs=500)
        assert not res.found_error
