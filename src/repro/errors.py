"""Exception hierarchy shared across the repro packages.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without accidentally swallowing Python
built-in errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by this library."""


class SortError(ReproError):
    """A term was built with operands of the wrong sort."""


class SolverError(ReproError):
    """The SMT solver was used incorrectly or hit an internal limit."""


class ResourceLimitError(SolverError):
    """A configured resource budget (conflicts, pivots, branches) ran out."""


class RunBudgetExhausted(ResourceLimitError):
    """The search's program-execution budget ran out mid test generation.

    Unlike a plain :class:`ResourceLimitError` (a solver query giving up),
    this means the *search* is over: the directed search catches it, ends
    the current strategy gracefully, and preserves the partial result.
    """


class SearchInterrupted(ReproError):
    """A search was interrupted (injected kill or external stop request).

    The search flushes its checkpoint before this propagates, so an
    interrupted session can be continued with ``repro run --resume``.
    ``resume_hint``, when set, is the exact command the CLI should print
    (campaign interrupts resume with ``repro campaign ... --checkpoint``
    rather than ``repro run ... --resume``).
    """

    def __init__(
        self,
        message: str,
        checkpoint_dir: "str | None" = None,
        resume_hint: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.checkpoint_dir = checkpoint_dir
        self.resume_hint = resume_hint


class DeadlineExceeded(SearchInterrupted):
    """A job ran past its wall-clock deadline (``SearchConfig.job_deadline``).

    Raised cooperatively by the search kernel at a run boundary, so the
    partial result (suite, coverage, crash records so far) is salvaged
    exactly like any other interrupt; the campaign supervisor treats it as
    a failed *attempt* and retries the job up to its attempt budget.
    """


class FaultPlanError(ReproError):
    """A fault-plan specification could not be parsed."""


class ParseError(ReproError):
    """Source text could not be parsed into a MiniC program."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class InterpError(ReproError):
    """A MiniC program performed an illegal operation at runtime."""


class StepBudgetExceeded(InterpError):
    """A MiniC execution ran longer than its configured step budget.

    The paper assumes all executions terminate (Section 2, footnote 2); the
    interpreter enforces that assumption with a step budget, mirroring the
    timeout used in practice.
    """


class SymbolicExecutionError(ReproError):
    """The concolic machine reached an inconsistent state."""


class StrategyError(ReproError):
    """A test-generation strategy could not be interpreted into inputs."""
