"""``repro run`` — directed search with one engine."""

from __future__ import annotations

import os

from .. import api
from ..faults import use_fault_plan
from ..interrupt import trap_signals
from ..search import DirectedSearch, SearchConfig
from ..search.corpus import TestCorpus
from ..search.scheduler import scheduler_names
from ..symbolic import ConcretizationMode
from . import common

__all__ = ["register", "cmd_run"]


def cmd_run(args) -> int:
    from ..solver.cache import use_cache

    program = common.load_program(args.program)
    entry = common.default_entry(program, args.entry)
    seed = common.seed_for(program, entry, common.parse_seed(args.seed))
    checkpoint_dir = args.checkpoint
    if args.resume and not checkpoint_dir:
        # resuming continues checkpointing into the same directory
        checkpoint_dir = args.resume
    cache = (
        common.query_cache(args)
        if (args.cache_dir or args.store_dir)
        else None
    )
    content_store, src_sha, seed_corpus = common.open_store(
        args, args.program, entry
    )
    store = [None]

    def _capture_store(search: DirectedSearch) -> None:
        store[0] = search.store

    # SIGINT/SIGTERM become a cooperative SearchInterrupted at the next
    # run boundary — the checkpoint flushes and the exit-3 handler prints
    # the resume hint (a second signal aborts hard)
    with trap_signals(), common.CliObservability(args) as cli_obs, \
            use_fault_plan(common.fault_plan(args)):
        with use_cache(cache) if cache is not None else common.null_context():
            result = api.generate_tests(
                program,
                entry=entry,
                strategy=args.mode,
                natives=common.natives(),
                seed=seed,
                obs=cli_obs.obs,
                config=SearchConfig.from_options(
                    max_runs=args.max_runs,
                    jobs=args.jobs,
                    checkpoint_dir=checkpoint_dir,
                    checkpoint_every=args.checkpoint_every,
                    resume_from=args.resume,
                    exec_backend=args.exec_backend,
                    job_deadline=args.job_deadline,
                    seed_corpus=seed_corpus,
                    **common.scheduler_option(args),
                ),
                _search_hook=_capture_store,
            )
    if content_store is not None:
        common.persist_to_store(content_store, src_sha, entry, result)
        if args.store_max_bytes is not None:
            content_store.gc(args.store_max_bytes)
    print(f"[{args.mode}] {result.summary()}")
    for error in result.errors:
        print(f"  {error}")
    common.print_resilience(result)
    if cache is not None:
        common.print_cache(cache)
    if cli_obs.journal is not None:
        print(
            f"  trace: {cli_obs.journal.events_written} events written "
            f"to {args.trace}"
        )
    if args.corpus:
        corpus = TestCorpus()
        corpus.add_from_search(result)
        corpus.save(args.corpus)
        print(f"  corpus: {len(corpus)} tests saved to {args.corpus}")
    if args.report:
        from ..search.report import render_report

        text = render_report(
            result, program, entry, mode=args.mode, store=store[0],
            title=f"Testing session: {os.path.basename(args.program)}",
        )
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"  report written to {args.report}")
    if args.profile and cli_obs.registry is not None:
        common.print_profile_tables(cli_obs.obs, cli_obs.registry)
    return 1 if (args.expect_error and not result.found_error) else 0


def register(sub) -> None:
    run = sub.add_parser("run", help="directed search with one engine")
    run.add_argument("program", help="MiniC source file")
    run.add_argument("--entry", default=None, help="entry function (default: main)")
    run.add_argument("--seed", default="", help="seed inputs, e.g. x=1,y=2")
    run.add_argument(
        "--mode",
        default="higher_order",
        choices=[m.value for m in ConcretizationMode],
    )
    run.add_argument("--max-runs", type=int, default=100)
    common.add_supervision_flags(run, deadline_default=0.0, retry_flags=False)
    run.add_argument(
        "--scheduler",
        default="dfs",
        choices=list(scheduler_names()),
        help=(
            "frontier scheduler: dfs (paper order), generational "
            "(SAGE-style), coverage (flip-target guided); see docs/SEARCH.md"
        ),
    )
    run.add_argument(
        "--frontier",
        default=None,
        choices=["fifo", "coverage"],
        help="deprecated alias for --scheduler (fifo=dfs, coverage=generational)",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker threads planning branch flips (same suite at any value)",
    )
    run.add_argument(
        "--exec-backend",
        default="bytecode",
        choices=["tree", "bytecode"],
        help=(
            "execution core: bytecode (compiled register VM, default) or "
            "tree (recursive AST walk); suites are byte-identical"
        ),
    )
    run.add_argument("--corpus", default=None, help="save generated tests to JSON")
    run.add_argument("--report", default=None, help="write a markdown session report")
    run.add_argument(
        "--expect-error",
        action="store_true",
        help="exit non-zero when no error is found (for CI scripts)",
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="stream a JSONL journal of session events to FILE",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="print span profile and metrics tables after the search",
    )
    common.add_fault_plan_flag(run)
    common.add_cache_dir_flag(run)
    common.add_store_flags(run)
    run.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="persist search progress into DIR for crash/interrupt recovery",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=20,
        metavar="N",
        help="flush advisory checkpoint snapshots every N runs (default 20)",
    )
    run.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help=(
            "resume an interrupted search from checkpoint DIR (replays its "
            "decision log; produces the same suite as an uninterrupted run)"
        ),
    )
    run.set_defaults(fn=cmd_run)
