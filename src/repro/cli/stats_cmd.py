"""``repro stats`` — observability reports for runs and campaigns.

Two modes, selected by the positional argument:

- a **program file** runs one directed search with full observability
  (span profile, metrics table, optional JSONL trace) — the original
  ``repro stats`` behaviour;
- a **campaign directory** (checkpoint and/or telemetry dir) renders a
  per-job rollup table from the checkpointed results plus any journal
  shards.  ``--follow`` keeps tailing the shards and redrawing — a live
  view over a *running* campaign (``repro top`` is an alias).

Either mode can export artifacts: ``--metrics-out`` (JSON snapshot),
``--prom-out`` (Prometheus text exposition), ``--trace-out`` (Chrome
trace-event JSON loadable in chrome://tracing / Perfetto).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from typing import List, Optional, Tuple

from .. import api
from ..faults import use_fault_plan
from ..obs.export import (
    journal_to_chrome_trace,
    load_journal,
    render_prometheus,
    snapshot_to_json,
)
from ..obs.shipper import CAMPAIGN_JOURNAL, CampaignStats, ShardReader, merge_shards
from ..search import SearchConfig
from ..symbolic import ConcretizationMode
from . import common

__all__ = [
    "register",
    "cmd_stats",
    "cmd_top",
    "render_campaign_view",
    "render_service_view",
]


def _percent(value: Optional[float]) -> str:
    return f"{value:.0%}" if value is not None else "-"


def render_campaign_view(stats: CampaignStats, directory: str) -> str:
    """The campaign rollup as one printable block (table + totals)."""
    lines: List[str] = []
    lines.append(f"[campaign] {directory}")
    done = (
        stats.finished_jobs - stats.failed_jobs - stats.quarantined_jobs
    )
    jobs_line = (
        f"  jobs: {len(stats.jobs)} "
        f"(done {done}, "
        f"failed {stats.failed_jobs}, running {stats.running_jobs}"
    )
    if stats.quarantined_jobs:
        jobs_line += f", quarantined {stats.quarantined_jobs}"
    lines.append(jobs_line + f"); events: {stats.total_events}")
    header = (
        f"  {'job':<44} {'state':<9} {'sched':<12} {'runs':>5} "
        f"{'tests':>5} {'errs':>4} {'div':>4} {'cov':>5} "
        f"{'solve':>6} {'cache':>6} {'disk':>6} {'secs':>7}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for job in stats.ordered_jobs():
        key = job.key if len(job.key) <= 44 else job.key[:41] + "..."
        state = {"done-checkpointed": "done", "quarantined": "quarant"}.get(
            job.state, job.state
        )
        if job.attempts > 1 and state == "running":
            state = f"retry-{job.attempts}"
        lines.append(
            f"  {key:<44} {state:<9} {job.scheduler:<12} {job.runs:>5} "
            f"{job.tests:>5} {job.errors:>4} {job.divergences:>4} "
            f"{_percent(job.coverage):>5} {_percent(job.solve_rate):>6} "
            f"{_percent(job.cache_hit_rate):>6} {_percent(job.disk_hit_rate):>6} "
            f"{job.seconds:>7.2f}"
        )
    cache = stats.cache_totals()
    if cache:
        lines.append(
            f"  cache totals: {cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses; disk: "
            f"{cache.get('disk_hits', 0)} hits / "
            f"{cache.get('disk_misses', 0)} misses / "
            f"{cache.get('disk_stores', 0)} stores / "
            f"{cache.get('disk_skipped', 0)} corrupt-skips"
        )
    downgrades = stats.downgrade_totals()
    if downgrades:
        parts = " ".join(f"{r}={n}" for r, n in sorted(downgrades.items()))
        lines.append(f"  ladder downgrades: {parts}")
    crashes = stats.crash_buckets()
    if crashes:
        parts = " ".join(f"[{b}]x{n}" for b, n in sorted(crashes.items()))
        lines.append(f"  crash buckets: {parts}")
    if stats.counters:
        sched = {
            k: v
            for k, v in stats.counters.items()
            if k.startswith("search.scheduler.")
        }
        if sched:
            parts = " ".join(
                f"{k.split('search.scheduler.', 1)[1]}={v}"
                for k, v in sorted(sched.items())
            )
            lines.append(f"  scheduler counters: {parts}")
        store_line = _render_store_counters(stats.counters)
        if store_line:
            lines.append(store_line)
    return "\n".join(lines)


def _render_store_counters(counters) -> str:
    """One ``store:`` line folding ``store.<ns>.<what>`` counters per
    namespace (with a hit rate when the namespace saw lookups)."""
    per_ns: dict = {}
    for name, value in counters.items():
        if not name.startswith("store.") or not value:
            continue
        parts = name.split(".")
        if len(parts) != 3:
            continue
        per_ns.setdefault(parts[1], {})[parts[2]] = int(value)
    if not per_ns:
        return ""
    chunks = []
    for ns in sorted(per_ns):
        what = per_ns[ns]
        piece = (
            f"{ns} {what.get('hits', 0)}h/{what.get('misses', 0)}m/"
            f"{what.get('stores', 0)}s/{what.get('evictions', 0)}e"
        )
        lookups = what.get("hits", 0) + what.get("misses", 0)
        if lookups:
            piece += f" ({what.get('hits', 0) / lookups:.0%} hit)"
        chunks.append(piece)
    return "  store: " + "; ".join(chunks)


def render_service_view(directory: str) -> str:
    """A service state dir: scheduler queue + per-job rollups.

    Everything is read from disk (submission records, checkpoints,
    shards), so the view is accurate whether the server is running,
    stopped, or was killed mid-lease: 'leased' counts jobs whose shards
    show activity without a ``job_finished`` seal.
    """
    from ..service.state import ServiceState

    state = ServiceState(directory)
    records = state.records()
    lines: List[str] = [f"[service] {state.state_dir}"]
    if not records:
        lines.append("  (no submissions)")
        return "\n".join(lines)

    # per-campaign stats, folded once and reused for the tenant rollup
    per_campaign = {}
    for record in records:
        if record.status in ("running", "done", "cancelled"):
            per_campaign[record.ticket] = _campaign_snapshot(
                state.campaign_dir(record.ticket)
            )

    tenants = sorted({r.tenant for r in records})
    header = (
        f"  {'tenant':<16} {'queued':>6} {'leased':>6} {'done':>6} "
        f"{'quarantined':>11} {'failed':>6}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for tenant in tenants:
        queued = leased = done = quarantined = failed = 0
        for record in records:
            if record.tenant != tenant:
                continue
            stats = per_campaign.get(record.ticket)
            if record.status == "queued":
                queued += _queued_jobs(state, record)
            elif record.status == "failed":
                failed += 1
            elif stats is not None:
                finished = stats.finished_jobs
                quarantined += stats.quarantined_jobs
                done += finished - stats.quarantined_jobs
                leased += stats.running_jobs
                if record.status == "running":
                    queued += max(0, len(stats.jobs) - finished - stats.running_jobs)
        lines.append(
            f"  {tenant:<16} {queued:>6} {leased:>6} {done:>6} "
            f"{quarantined:>11} {failed:>6}"
        )

    lines.append("")
    for record in records:
        line = (
            f"  {record.ticket[:12]}  {record.status:<9} "
            f"tenant={record.tenant} priority={record.priority}"
        )
        if record.error:
            line += f"  ({record.error})"
        lines.append(line)
    for record in records:
        if record.status == "running":
            lines.append("")
            lines.append(
                render_campaign_view(
                    per_campaign[record.ticket],
                    f"{record.ticket[:12]} (tenant={record.tenant})",
                )
            )
    return "\n".join(lines)


def _queued_jobs(state, record) -> int:
    """Planned-but-unstarted job count for a queued submission.

    Best effort: a spec that fails to plan here will be marked failed by
    the server anyway, so fall back to 0 rather than crash the view.
    """
    try:
        from ..engine.planner import BatchPlanner, CampaignSpec

        spec = CampaignSpec.from_payload(record.spec).with_overrides(
            scheduler=record.options.get("scheduler"),
            jobs=record.options.get("jobs"),
            exec_backend=record.options.get("exec_backend"),
            job_deadline=record.options.get("job_deadline"),
        )
        return len(BatchPlanner().expand(spec))
    except Exception:  # noqa: BLE001 - display only
        return 0


def _service_stats(args, directory: str) -> int:
    if not getattr(args, "follow", False):
        print(render_service_view(directory))
        return 0
    import time as time_mod

    ticks = 0
    try:
        while True:
            view = render_service_view(directory)
            if not args.no_clear:
                sys.stdout.write("\x1b[2J\x1b[H")
            print(view)
            print(
                f"  (follow: tick {ticks + 1}, interval {args.interval}s; "
                f"Ctrl-C to stop)"
            )
            sys.stdout.flush()
            ticks += 1
            if args.iterations and ticks >= args.iterations:
                break
            time_mod.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def _campaign_snapshot(directory: str) -> CampaignStats:
    """Fold checkpointed results and all currently-readable shard events."""
    stats = CampaignStats()
    stats.fold_checkpoint(directory)
    for job, event in ShardReader(directory).poll():
        stats.consume(job, event)
    return stats


def _campaign_journal_path(directory: str) -> str:
    """The merged campaign stream, merging shards on demand if stale."""
    path = os.path.join(directory, CAMPAIGN_JOURNAL)
    shards = os.path.join(directory, "shards")
    if os.path.isdir(shards):
        path, _ = merge_shards(directory)
    return path


def _export_campaign(args, directory: str, stats: CampaignStats) -> None:
    if getattr(args, "metrics_out", None) or getattr(args, "prom_out", None):
        # campaign-level metrics are the counters aggregated across all
        # finished jobs (per-job registries live in the checkpoint)
        snapshot = {"counters": dict(stats.counters), "gauges": {}, "histograms": {}}
        if getattr(args, "metrics_out", None):
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(snapshot_to_json(snapshot))
            print(f"  metrics json -> {args.metrics_out}")
        if getattr(args, "prom_out", None):
            with open(args.prom_out, "w", encoding="utf-8") as handle:
                handle.write(render_prometheus(snapshot))
            print(f"  prometheus metrics -> {args.prom_out}")
    if getattr(args, "trace_out", None):
        path = _campaign_journal_path(directory)
        events = load_journal(path) if os.path.exists(path) else []
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(journal_to_chrome_trace(events), handle)
            handle.write("\n")
        print(f"  chrome trace: {len(events)} events -> {args.trace_out}")


def _follow(args, directory: str) -> int:
    """Tail the campaign's shards, redrawing the rollup every interval."""
    import time as time_mod

    reader = ShardReader(directory)
    history: List[Tuple[str, dict]] = []
    ticks = 0
    stats = CampaignStats()
    try:
        while True:
            history.extend(reader.poll())
            # rebuilt each tick: fold_result/counters are not idempotent
            # under re-folding, and a fresh fold keeps the view exact
            stats = CampaignStats()
            stats.fold_checkpoint(directory)
            for job, event in history:
                stats.consume(job, event)
            view = render_campaign_view(stats, directory)
            if not args.no_clear:
                sys.stdout.write("\x1b[2J\x1b[H")
            print(view)
            print(f"  (follow: tick {ticks + 1}, interval {args.interval}s; Ctrl-C to stop)")
            sys.stdout.flush()
            ticks += 1
            if args.iterations and ticks >= args.iterations:
                break
            time_mod.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    _export_campaign(args, directory, stats)
    return 0


def _campaign_stats(args) -> int:
    directory = args.program
    if getattr(args, "follow", False):
        return _follow(args, directory)
    stats = _campaign_snapshot(directory)
    print(render_campaign_view(stats, directory))
    _export_campaign(args, directory, stats)
    return 0


def _single_run_stats(args) -> int:
    """Run a search with full observability and render the stats report."""
    from ..solver.cache import use_cache

    program = common.load_program(args.program)
    entry = common.default_entry(program, args.entry)
    seed = common.seed_for(program, entry, common.parse_seed(args.seed))
    cache = common.query_cache(args) if getattr(args, "cache_dir", None) else None
    tmp_trace: Optional[str] = None
    if getattr(args, "trace_out", None) and not args.trace:
        # the Chrome trace is rendered from the journal; route it to a
        # scratch file when the user didn't ask to keep the JSONL
        fd, tmp_trace = tempfile.mkstemp(prefix="repro-trace-", suffix=".jsonl")
        os.close(fd)
        args.trace = tmp_trace
    try:
        with common.CliObservability(args, force=True) as cli_obs, use_fault_plan(
            common.fault_plan(args)
        ):
            with use_cache(cache) if cache is not None else common.null_context():
                result = api.generate_tests(
                    program,
                    entry=entry,
                    strategy=args.mode,
                    natives=common.natives(),
                    seed=seed,
                    obs=cli_obs.obs,
                    config=SearchConfig.from_options(max_runs=args.max_runs),
                )
        print(f"[{args.mode}] {result.summary()}")
        common.print_resilience(result)
        print(
            f"  wall time: {result.time_total:.3f}s "
            f"(executing {result.time_executing:.3f}s, "
            f"generating {result.time_generating:.3f}s)"
        )
        if cache is not None:
            common.print_cache(cache)
        if cli_obs.journal is not None and tmp_trace is None:
            print(
                f"  trace: {cli_obs.journal.events_written} events written "
                f"to {args.trace}"
            )
        common.print_profile_tables(cli_obs.obs, cli_obs.registry)
        snapshot = cli_obs.registry.snapshot() if cli_obs.registry else {}
        if getattr(args, "metrics_out", None):
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(snapshot_to_json(snapshot))
            print(f"  metrics json -> {args.metrics_out}")
        if getattr(args, "prom_out", None):
            with open(args.prom_out, "w", encoding="utf-8") as handle:
                handle.write(render_prometheus(snapshot))
            print(f"  prometheus metrics -> {args.prom_out}")
        if getattr(args, "trace_out", None):
            events = load_journal(args.trace)
            with open(args.trace_out, "w", encoding="utf-8") as handle:
                json.dump(journal_to_chrome_trace(events), handle)
                handle.write("\n")
            print(f"  chrome trace: {len(events)} events -> {args.trace_out}")
    finally:
        if tmp_trace is not None:
            try:
                os.unlink(tmp_trace)
            except OSError:
                pass
    return 0


def cmd_stats(args) -> int:
    """Single-run observability report, or campaign/service rollup for a
    directory."""
    if os.path.isdir(args.program):
        from ..service.state import is_service_dir

        if is_service_dir(args.program):
            return _service_stats(args, args.program)
        return _campaign_stats(args)
    return _single_run_stats(args)


def cmd_top(args) -> int:
    """``repro top`` — alias for ``repro stats --follow <campaign-dir>``."""
    from ..service.state import is_service_dir

    args.program = args.campaign_dir
    args.follow = True
    if is_service_dir(args.program):
        return _service_stats(args, args.program)
    return _campaign_stats(args)


def _add_export_flags(parser) -> None:
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="export the journal as Chrome trace-event JSON (chrome://tracing)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="export the metrics snapshot as JSON",
    )
    parser.add_argument(
        "--prom-out",
        default=None,
        metavar="FILE",
        help="export the metrics snapshot in Prometheus text format",
    )


def _add_follow_flags(parser) -> None:
    parser.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="redraw interval for --follow (default 1s)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=0,
        metavar="N",
        help="stop --follow after N redraws (0 = until Ctrl-C)",
    )
    parser.add_argument(
        "--no-clear",
        action="store_true",
        help="don't clear the screen between --follow redraws",
    )


def register(sub) -> None:
    stats = sub.add_parser(
        "stats",
        help=(
            "observability report: single-run profile, or live campaign "
            "rollup when given a campaign directory"
        ),
    )
    stats.add_argument(
        "program",
        help=(
            "MiniC program file, a campaign checkpoint/telemetry "
            "directory, or a service state dir (scheduler-queue view)"
        ),
    )
    stats.add_argument("--entry", default=None)
    stats.add_argument("--seed", default="")
    stats.add_argument(
        "--mode",
        default="higher_order",
        choices=[m.value for m in ConcretizationMode],
    )
    stats.add_argument("--max-runs", type=int, default=100)
    stats.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="also stream the JSONL journal to FILE",
    )
    stats.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection (see 'run --fault-plan')",
    )
    stats.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent on-disk solver query cache shared across runs",
    )
    stats.add_argument(
        "--follow",
        action="store_true",
        help="campaign directory only: keep tailing shards and redrawing",
    )
    _add_follow_flags(stats)
    _add_export_flags(stats)
    stats.set_defaults(fn=cmd_stats)

    top = sub.add_parser(
        "top",
        help="live campaign telemetry view (alias for stats --follow DIR)",
    )
    top.add_argument(
        "campaign_dir",
        help="campaign checkpoint/telemetry directory to tail",
    )
    _add_follow_flags(top)
    _add_export_flags(top)
    top.set_defaults(fn=cmd_top)
