"""``repro stats`` — directed search with a full observability report."""

from __future__ import annotations

from .. import api
from ..faults import use_fault_plan
from ..search import SearchConfig
from ..symbolic import ConcretizationMode
from . import common

__all__ = ["register", "cmd_stats"]


def cmd_stats(args) -> int:
    """Run a search with full observability and render the stats report."""
    from ..solver.cache import use_cache

    program = common.load_program(args.program)
    entry = common.default_entry(program, args.entry)
    seed = common.seed_for(program, entry, common.parse_seed(args.seed))
    cache = common.query_cache(args) if getattr(args, "cache_dir", None) else None
    with common.CliObservability(args, force=True) as cli_obs, use_fault_plan(
        common.fault_plan(args)
    ):
        with use_cache(cache) if cache is not None else common.null_context():
            result = api.generate_tests(
                program,
                entry=entry,
                strategy=args.mode,
                natives=common.natives(),
                seed=seed,
                obs=cli_obs.obs,
                config=SearchConfig.from_options(max_runs=args.max_runs),
            )
    print(f"[{args.mode}] {result.summary()}")
    common.print_resilience(result)
    print(
        f"  wall time: {result.time_total:.3f}s "
        f"(executing {result.time_executing:.3f}s, "
        f"generating {result.time_generating:.3f}s)"
    )
    if cache is not None:
        common.print_cache(cache)
    if cli_obs.journal is not None:
        print(
            f"  trace: {cli_obs.journal.events_written} events written "
            f"to {args.trace}"
        )
    common.print_profile_tables(cli_obs.obs, cli_obs.registry)
    return 0


def register(sub) -> None:
    stats = sub.add_parser(
        "stats", help="directed search with a full observability report"
    )
    stats.add_argument("program")
    stats.add_argument("--entry", default=None)
    stats.add_argument("--seed", default="")
    stats.add_argument(
        "--mode",
        default="higher_order",
        choices=[m.value for m in ConcretizationMode],
    )
    stats.add_argument("--max-runs", type=int, default=100)
    stats.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="also stream the JSONL journal to FILE",
    )
    stats.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection (see 'run --fault-plan')",
    )
    stats.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent on-disk solver query cache shared across runs",
    )
    stats.set_defaults(fn=cmd_stats)
