"""``repro store`` — inspect and maintain a shared content-addressed store.

Four verbs over one ``--store-dir``, all safe to run while campaigns
are writing (the store's atomic-publish discipline means maintenance
never sees torn entries):

- ``stats``   — per-namespace entries/bytes, lifetime hit/miss/store/evict
  counts, hit rates, and per-tenant access accounting;
- ``gc``      — evict least-recently-used entries down to ``--max-bytes``
  (answer-neutral: evicted content recomputes byte-identically);
- ``verify``  — parse every entry, quarantining any that are corrupt;
- ``export``  — copy one namespace's entries into a plain directory
  (e.g. to ship a corpus to another machine's store).
"""

from __future__ import annotations

from ..errors import ReproError

__all__ = ["register", "cmd_store"]


def _print_stats(stats) -> None:
    print(f"[store] {stats['root']}")
    print(f"  total: {stats['total_bytes']} bytes")
    for ns in sorted(stats["namespaces"]):
        info = stats["namespaces"][ns]
        line = f"  {ns}: {info['entries']} entries, {info['bytes']} bytes"
        hits = stats["hits"].get(ns, 0)
        misses = stats["misses"].get(ns, 0)
        stores = stats["stores"].get(ns, 0)
        evictions = stats["evictions"].get(ns, 0)
        if hits or misses or stores or evictions:
            line += (
                f"; {hits} hits / {misses} misses / "
                f"{stores} stores / {evictions} evictions"
            )
            rate = stats["hit_rates"].get(ns)
            if rate is not None:
                line += f" (hit rate {rate:.1%})"
        print(line)
    tenants = stats.get("tenants") or {}
    for tenant in sorted(tenants):
        print(f"  tenant {tenant}: {tenants[tenant]} accesses")


def cmd_store(args) -> int:
    """Dispatch one ``repro store`` verb against ``--store-dir``."""
    import json as jsonlib

    from ..store import ContentStore

    store = ContentStore(args.store_dir)
    if args.verb == "stats":
        stats = store.stats()
        if args.json:
            print(jsonlib.dumps(stats, indent=2, sort_keys=True))
        else:
            _print_stats(stats)
        return 0
    if args.verb == "gc":
        if args.max_bytes is None:
            raise ReproError("store gc needs --max-bytes")
        evicted = store.gc(args.max_bytes)
        total = sum(evicted.values())
        detail = ", ".join(
            f"{ns}: {n}" for ns, n in sorted(evicted.items()) if n
        )
        print(
            f"[store] evicted {total} entries"
            + (f" ({detail})" if detail else "")
            + f"; now {store.stats()['total_bytes']} bytes"
        )
        return 0
    if args.verb == "verify":
        outcome = store.verify()
        print(
            f"[store] verified {outcome['checked']} entries, "
            f"quarantined {outcome['quarantined']}"
        )
        return 1 if outcome["quarantined"] else 0
    if args.verb == "export":
        if not args.namespace or not args.dest:
            raise ReproError("store export needs --namespace and --dest")
        count = store.export(args.namespace, args.dest)
        print(f"[store] exported {count} {args.namespace} entries to {args.dest}")
        return 0
    raise ReproError(f"unknown store verb {args.verb!r}")


def register(sub) -> None:
    store = sub.add_parser(
        "store",
        help=(
            "inspect and maintain a shared content-addressed store "
            "(solver cache + corpora + crash buckets)"
        ),
    )
    store.add_argument(
        "verb",
        choices=["stats", "gc", "verify", "export"],
        help="stats | gc | verify | export",
    )
    store.add_argument(
        "--store-dir",
        required=True,
        metavar="DIR",
        help="the store's root directory",
    )
    store.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="gc: evict least-recently-used entries down to this budget",
    )
    store.add_argument(
        "--namespace",
        default=None,
        choices=["solver", "corpus", "crashes"],
        help="export: which namespace to copy out",
    )
    store.add_argument(
        "--dest",
        default=None,
        metavar="DIR",
        help="export: destination directory",
    )
    store.add_argument(
        "--json",
        action="store_true",
        help="stats: print the full stats payload as JSON",
    )
    store.set_defaults(fn=cmd_store)
