"""``repro modes`` — compare all four engines on one program."""

from __future__ import annotations

from ..search import DirectedSearch, SearchConfig
from ..symbolic import ConcretizationMode
from . import common

__all__ = ["register", "cmd_modes"]


def cmd_modes(args) -> int:
    program = common.load_program(args.program)
    entry = common.default_entry(program, args.entry)
    seed = common.seed_for(program, entry, common.parse_seed(args.seed))
    for mode in ConcretizationMode:
        search = DirectedSearch.for_mode(
            program, entry, common.natives(), mode,
            SearchConfig.from_options(max_runs=args.max_runs),
        )
        result = search.run(dict(seed))
        print(f"{mode.value:14s} {result.summary()}")
        for error in result.errors:
            print(f"    {error}")
    return 0


def register(sub) -> None:
    modes = sub.add_parser("modes", help="compare all four engines")
    modes.add_argument("program")
    modes.add_argument("--entry", default=None)
    modes.add_argument("--seed", default="")
    modes.add_argument("--max-runs", type=int, default=100)
    modes.set_defaults(fn=cmd_modes)
