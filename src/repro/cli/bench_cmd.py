"""``repro bench`` — timed search with perf counters and a suite digest."""

from __future__ import annotations

import os

from .. import api
from ..faults import use_fault_plan
from ..obs import MetricsRegistry, Observability, Tracer
from ..search import SearchConfig
from ..search.scheduler import scheduler_names
from ..symbolic import ConcretizationMode
from . import common

__all__ = ["register", "cmd_bench"]


def cmd_bench(args) -> int:
    """Timed search with perf counters and the deterministic suite digest."""
    import json as jsonlib

    from ..search.report import suite_digest
    from ..solver.cache import use_cache

    program = common.load_program(args.program)
    entry = common.default_entry(program, args.entry)
    seed = common.seed_for(program, entry, common.parse_seed(args.seed))
    cache = common.query_cache(args, enabled=not args.no_cache)
    registry = MetricsRegistry()
    obs = Observability(tracer=Tracer(), metrics=registry)
    with use_cache(cache), use_fault_plan(common.fault_plan(args)):
        result = api.generate_tests(
            program,
            entry=entry,
            strategy=args.mode,
            natives=common.natives(),
            seed=seed,
            obs=obs,
            config=SearchConfig.from_options(
                max_runs=args.max_runs,
                jobs=args.jobs,
                exec_backend=args.exec_backend,
                **common.scheduler_option(args),
            ),
        )

    snapshot = registry.snapshot()
    counters = snapshot["counters"]
    histograms = snapshot["histograms"]
    disk = cache.disk if cache is not None else None
    payload = {
        "program": os.path.basename(args.program),
        "mode": args.mode,
        "jobs": args.jobs,
        "exec_backend": args.exec_backend,
        "cache": not args.no_cache,
        "cache_dir": getattr(args, "cache_dir", None),
        "disk_hits": disk.hits if disk is not None else 0,
        "disk_misses": disk.misses if disk is not None else 0,
        "disk_stores": disk.stores if disk is not None else 0,
        "runs": result.runs,
        "paths": result.distinct_paths,
        "errors": len(result.errors),
        "divergences": result.divergences,
        "coverage": round(result.coverage.ratio(), 4) if result.coverage else None,
        "solver_calls": result.solver_calls,
        "wall_seconds": round(result.time_total, 6),
        "generate_seconds": round(result.time_generating, 6),
        "execute_seconds": round(result.time_executing, 6),
        "smt_checks": counters.get("smt.checks", 0),
        "smt_check_seconds": round(
            histograms.get("smt.check_seconds", {}).get("total", 0.0), 6
        ),
        "cache_hits": cache.hits if cache is not None else 0,
        "cache_misses": cache.misses if cache is not None else 0,
        "cache_hit_rate": round(cache.hit_rate, 4) if cache is not None else 0.0,
        "session_pushes": counters.get("solver.session.push", 0),
        "session_pops": counters.get("solver.session.pop", 0),
        "suite_digest": suite_digest(result),
    }
    print(f"[{args.mode}] {result.summary()}")
    print(
        f"  wall={payload['wall_seconds']:.3f}s "
        f"solver={payload['smt_check_seconds']:.3f}s "
        f"({payload['smt_checks']} checks) "
        f"execute={payload['execute_seconds']:.3f}s"
    )
    print(
        f"  cache: {payload['cache_hits']} hits / "
        f"{payload['cache_misses']} misses "
        f"(rate {payload['cache_hit_rate']:.1%}); "
        f"session: {payload['session_pushes']} pushes / "
        f"{payload['session_pops']} pops"
    )
    if disk is not None:
        print(
            f"  disk cache: {disk.hits} hits / {disk.misses} misses / "
            f"{disk.stores} stores ({getattr(args, 'cache_dir', None)})"
        )
    print(f"  suite digest: {payload['suite_digest']}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            jsonlib.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  bench payload written to {args.json}")
    return 0


def register(sub) -> None:
    bench = sub.add_parser(
        "bench", help="timed search with perf counters and a suite digest"
    )
    bench.add_argument("program")
    bench.add_argument("--entry", default=None)
    bench.add_argument("--seed", default="")
    bench.add_argument(
        "--mode",
        default="higher_order",
        choices=[m.value for m in ConcretizationMode],
    )
    bench.add_argument("--max-runs", type=int, default=100)
    bench.add_argument(
        "--scheduler",
        default="dfs",
        choices=list(scheduler_names()),
        help="frontier scheduler (see 'run --scheduler')",
    )
    bench.add_argument(
        "--frontier",
        default=None,
        choices=["fifo", "coverage"],
        help="deprecated alias for --scheduler (fifo=dfs, coverage=generational)",
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker threads planning branch flips (same suite at any value)",
    )
    bench.add_argument(
        "--exec-backend",
        default="bytecode",
        choices=["tree", "bytecode"],
        help="execution core (see 'run --exec-backend')",
    )
    bench.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the normalized query cache (cold-solver baseline)",
    )
    bench.add_argument(
        "--json", default=None, metavar="FILE", help="write the bench payload as JSON"
    )
    bench.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection (see 'run --fault-plan')",
    )
    bench.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent on-disk solver query cache shared across runs",
    )
    bench.set_defaults(fn=cmd_bench)
