"""``repro fuzz`` — blackbox random fuzzing baseline."""

from __future__ import annotations

from ..baselines import RandomFuzzer
from . import common

__all__ = ["register", "cmd_fuzz"]


def cmd_fuzz(args) -> int:
    program = common.load_program(args.program)
    entry = common.default_entry(program, args.entry)
    fuzzer = RandomFuzzer(
        program, entry, common.natives(),
        default_range=common.parse_range(args.range),
        seed=args.rng_seed,
    )
    result = fuzzer.run(max_runs=args.runs)
    print(f"[random] {result.summary()}")
    for error in result.errors[:10]:
        print(f"  {error}")
    return 0


def register(sub) -> None:
    fuzz = sub.add_parser("fuzz", help="blackbox random fuzzing baseline")
    fuzz.add_argument("program")
    fuzz.add_argument("--entry", default=None)
    fuzz.add_argument("--runs", type=int, default=500)
    fuzz.add_argument("--range", default="-1000:1000", help="lo:hi input range")
    fuzz.add_argument("--rng-seed", type=int, default=0)
    fuzz.set_defaults(fn=cmd_fuzz)
