"""``repro campaign`` — batch engine across worker processes."""

from __future__ import annotations

from .. import api
from ..interrupt import trap_signals
from ..search.scheduler import scheduler_names
from . import common

__all__ = ["register", "cmd_campaign"]


def cmd_campaign(args) -> int:
    """Batch engine: run a campaign of search jobs across worker processes."""
    import json as jsonlib

    def _progress(job) -> None:
        if not args.quiet:
            print(f"  [{job.key}] {job.summary()}")

    telemetry = args.telemetry
    if telemetry is None and args.follow_telemetry:
        telemetry = args.checkpoint
    # SIGINT/SIGTERM request a graceful shutdown: the supervisor drains
    # in-flight jobs, the checkpoint keeps what finished, and the exit-3
    # handler prints the resume hint (a second signal aborts hard)
    with trap_signals():
        client = api.Client(
            workers=args.workers,
            cache_dir=args.cache_dir,
            telemetry=telemetry,
            fault_plan=args.fault_plan or "",
            job_deadline=args.job_deadline,
            max_attempts=args.max_attempts,
            stall_timeout=args.stall_timeout,
            store_dir=args.store_dir,
            store_max_bytes=args.store_max_bytes,
            seed_from_store=args.seed_from_store,
        )
        handle = client.submit(
            args.spec,
            checkpoint=args.checkpoint,
            scheduler=args.scheduler,
            jobs=args.jobs,
            exec_backend=args.exec_backend,
            progress=_progress,
        )
        report = handle.wait()
    print(f"[campaign] {report.summary()}")
    print(f"  wall time: {report.seconds:.3f}s (workers={args.workers})")
    cache = report.cache_totals()
    if cache:
        print(
            f"  cache: {cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses; "
            f"disk: {cache.get('disk_hits', 0)} hits / "
            f"{cache.get('disk_misses', 0)} misses / "
            f"{cache.get('disk_stores', 0)} stores / "
            f"{cache.get('disk_skipped', 0)} corrupt-skips"
        )
        disk = report.disk_cache_stats()
        if disk.get("hit_rate") is not None:
            print(f"  disk-cache hit rate: {disk['hit_rate']:.1%}")
    if args.store_dir:
        from ..store import ContentStore

        stats = ContentStore(args.store_dir).stats()
        spaces = ", ".join(
            f"{ns}: {info['entries']} entries/{info['bytes']}B"
            for ns, info in sorted(stats["namespaces"].items())
            if info["entries"]
        )
        print(f"  store: {stats['total_bytes']}B ({spaces or 'empty'})")
    if report.telemetry_dir:
        print(
            f"  telemetry: {report.journal_events} events merged into "
            f"{report.telemetry_dir}/campaign.jsonl "
            f"(tail live with: repro top {report.telemetry_dir})"
        )
    if report.crash_buckets:
        for bucket, count in sorted(report.crash_buckets.items()):
            print(f"  crash bucket [{bucket}] x{count}")
    if report.retried_jobs or report.pool_rebuilds or report.stalled_jobs:
        print(
            f"  supervisor: {report.retried_jobs} retries, "
            f"{report.stalled_jobs} stalls, "
            f"{report.pool_rebuilds} pool rebuilds"
        )
    for job in report.failed_jobs:
        label = "QUARANTINED" if job.quarantined else "FAILED"
        print(f"  {label} [{job.key}]: {job.error}")
    print(f"  campaign digest: {report.campaign_digest}")
    if args.corpus:
        merged = report.merged_corpus()
        with open(args.corpus, "w", encoding="utf-8") as handle:
            jsonlib.dump(merged, handle, indent=2)
        print(f"  corpus: {len(merged)} tests saved to {args.corpus}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            jsonlib.dump(report.to_payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  campaign payload written to {args.json}")
    return 1 if (args.expect_errors and report.total_errors == 0) else 0


def register(sub) -> None:
    campaign = sub.add_parser(
        "campaign",
        help=(
            "run a batch campaign of search jobs (programs x strategies "
            "x schedulers) across worker processes"
        ),
    )
    campaign.add_argument(
        "spec",
        help=(
            "campaign spec file (.toml or .json; see docs/API.md), or "
            "'paper' for the built-in paper-example suite"
        ),
    )
    campaign.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes running jobs (campaign digest is identical "
            "at any value; default 1 = in-process)"
        ),
    )
    campaign.add_argument(
        "--scheduler",
        default=None,
        choices=list(scheduler_names()),
        help=(
            "override the spec's scheduler list with one frontier "
            "scheduler for every job"
        ),
    )
    campaign.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "per-search speculative planning threads (suite digests are "
            "identical at any value)"
        ),
    )
    campaign.add_argument(
        "--exec-backend",
        default=None,
        choices=["tree", "bytecode"],
        help=(
            "override the execution core for every job (default: the "
            "spec's config, else bytecode); digests are identical"
        ),
    )
    common.add_cache_dir_flag(campaign)
    common.add_store_flags(campaign)
    campaign.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help=(
            "journal finished jobs into DIR; a rerun pointed at the same "
            "directory skips them"
        ),
    )
    common.add_telemetry_flag(campaign)
    campaign.add_argument(
        "--follow-telemetry",
        action="store_true",
        help=(
            "shorthand: ship telemetry into the --checkpoint directory so "
            "'repro top <checkpoint-dir>' can watch this campaign live"
        ),
    )
    common.add_supervision_flags(campaign)
    common.add_fault_plan_flag(
        campaign,
        extra=(
            "'worker-proc' kills a job's worker process, 'hang' wedges a "
            "job until reclaimed, 'pool' breaks the worker pool"
        ),
    )
    campaign.add_argument(
        "--corpus",
        default=None,
        metavar="FILE",
        help="save the merged campaign corpus (tests tagged by job) to FILE",
    )
    campaign.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the full campaign report as JSON",
    )
    campaign.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-job progress lines",
    )
    campaign.add_argument(
        "--expect-errors",
        action="store_true",
        help="exit non-zero when the campaign finds no errors (for CI)",
    )
    campaign.set_defaults(fn=cmd_campaign)
