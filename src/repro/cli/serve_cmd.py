"""``repro serve`` and its client verbs: ``submit``, ``status``,
``results``, ``cancel``.

The service is filesystem-first: every verb here works against the same
``--state-dir``, and only ``serve`` needs to be *running* — ``submit``
drops a durable submission the server picks up on its next lease,
``status``/``results`` read what is on disk (even after the server has
exited), and ``cancel`` drops a cooperative cancellation marker.
"""

from __future__ import annotations

from typing import Dict

from ..errors import ReproError
from ..interrupt import trap_signals
from ..search.scheduler import scheduler_names
from . import common

__all__ = [
    "register",
    "cmd_serve",
    "cmd_submit",
    "cmd_status",
    "cmd_results",
    "cmd_cancel",
]


def _parse_quotas(specs) -> "tuple[int, Dict[str, int]]":
    """Parse repeated ``--tenant-quota`` values.

    ``N`` sets the default quota for every tenant; ``tenant=N`` overrides
    one tenant.  0 means unlimited.
    """
    default = 0
    quotas: Dict[str, int] = {}
    for spec in specs or ():
        name, sep, value = spec.partition("=")
        try:
            if sep:
                quotas[name.strip()] = int(value)
            else:
                default = int(name)
        except ValueError:
            raise ReproError(
                f"bad --tenant-quota {spec!r} (want N or tenant=N)"
            )
    return default, quotas


def cmd_serve(args) -> int:
    """Run the campaign service until idle (--idle-exit) or signalled."""
    from ..service import CampaignService

    default_quota, quotas = _parse_quotas(args.tenant_quota)

    def _progress(job) -> None:
        if not args.quiet:
            print(f"  [{job.key}] {job.summary()}")

    service = CampaignService(
        args.state_dir,
        workers=args.workers,
        cache_dir=args.cache_dir,
        fault_plan=args.fault_plan or "",
        job_deadline=args.job_deadline,
        max_attempts=args.max_attempts,
        stall_timeout=args.stall_timeout,
        default_quota=default_quota,
        quotas=quotas,
        poll_interval=args.poll_interval,
        idle_exit=args.idle_exit,
        progress=_progress,
        log=None if args.quiet else print,
        store_dir=args.store_dir,
        store_max_bytes=args.store_max_bytes,
        seed_from_store=args.seed_from_store,
    )
    print(
        f"[serve] state dir {service.state.state_dir} "
        f"(workers={args.workers}"
        + (f", quota={default_quota}" if default_quota else "")
        + (", idle-exit" if args.idle_exit else "")
        + ")"
    )
    # SIGINT/SIGTERM request a graceful shutdown: in-flight jobs drain,
    # unstarted leases go back to their campaigns, and the exit-3
    # handler prints the `repro serve` resume hint
    with trap_signals():
        settled = service.serve()
    print(f"[serve] idle: {settled} jobs settled; exiting")
    return 0


def cmd_submit(args) -> int:
    """Queue one campaign submission; prints its ticket and returns."""
    from ..service import ServiceClient

    client = ServiceClient(args.state_dir)
    handle = client.submit(
        args.spec,
        priority=args.priority,
        tenant=args.tenant,
        scheduler=args.scheduler,
        jobs=args.jobs,
        exec_backend=args.exec_backend,
        job_deadline=args.job_deadline,
    )
    record = handle.record()
    print(f"[submit] ticket {handle.ticket}")
    print(
        f"  tenant={record.tenant} priority={record.priority} "
        f"status={record.status}"
    )
    if args.wait:
        report = handle.wait(timeout=args.timeout or None)
        print(f"[campaign] {report.summary()}")
        print(f"  campaign digest: {report.campaign_digest}")
    return 0


def cmd_status(args) -> int:
    """One line per submission in the state dir (or one ticket's detail)."""
    from ..service import ServiceClient

    client = ServiceClient(args.state_dir)
    if args.ticket:
        handle = client.handle(args.ticket)
        record = handle.record()
        print(f"ticket:   {record.ticket}")
        print(f"status:   {record.status}")
        print(f"tenant:   {record.tenant}")
        print(f"priority: {record.priority}")
        if record.error:
            print(f"error:    {record.error}")
        return 0
    records = client.submissions()
    if not records:
        print(f"(no submissions in {client.state.state_dir})")
        return 0
    for record in records:
        line = (
            f"{record.ticket[:12]}  {record.status:<9} "
            f"tenant={record.tenant} priority={record.priority}"
        )
        if record.error:
            line += f"  ({record.error})"
        print(line)
    return 0


def cmd_results(args) -> int:
    """Fetch a finished campaign's report by ticket."""
    import json as jsonlib

    from ..service import ServiceClient

    client = ServiceClient(args.state_dir)
    handle = client.handle(args.ticket)
    report = handle.result()
    print(f"[campaign] {report.summary()}")
    print(f"  status: {handle.status()}")
    print(f"  campaign digest: {report.campaign_digest}")
    for job in report.failed_jobs:
        label = "QUARANTINED" if job.quarantined else "FAILED"
        print(f"  {label} [{job.key}]: {job.error}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            jsonlib.dump(report.to_payload(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"  campaign payload written to {args.json}")
    return 0


def cmd_cancel(args) -> int:
    """Request cooperative cancellation of a queued/running submission."""
    from ..service import ServiceClient

    client = ServiceClient(args.state_dir)
    handle = client.handle(args.ticket)
    if handle.cancel():
        print(f"[cancel] requested for {handle.ticket[:12]}")
    else:
        print(
            f"[cancel] {handle.ticket[:12]} already terminal "
            f"({handle.status()}); nothing to do"
        )
    return 0


def _add_state_dir(parser) -> None:
    parser.add_argument(
        "--state-dir",
        required=True,
        metavar="DIR",
        help="the service state directory (queue + campaigns)",
    )


def register(sub) -> None:
    serve = sub.add_parser(
        "serve",
        help=(
            "run the campaign service: lease jobs from every queued "
            "campaign onto one shared worker fleet"
        ),
    )
    _add_state_dir(serve)
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes in the shared fleet (campaign digests are "
            "identical at any value; default 1 = in-process)"
        ),
    )
    serve.add_argument(
        "--idle-exit",
        action="store_true",
        help="exit once every queued campaign has finished (default: keep serving)",
    )
    serve.add_argument(
        "--tenant-quota",
        action="append",
        default=None,
        metavar="[TENANT=]N",
        help=(
            "max jobs a tenant may have leased at once: N for every "
            "tenant, tenant=N for one (repeatable; 0 = unlimited)"
        ),
    )
    serve.add_argument(
        "--poll-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="scheduler/watchdog wait quantum (default 0.2)",
    )
    serve.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress lines"
    )
    common.add_cache_dir_flag(serve)
    common.add_store_flags(serve)
    common.add_supervision_flags(serve)
    common.add_fault_plan_flag(
        serve,
        extra=(
            "'service' interrupts the scheduler mid-lease (restart "
            "recovery drill)"
        ),
    )
    serve.set_defaults(fn=cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="queue a campaign submission for a running (or future) server",
    )
    _add_state_dir(submit)
    submit.add_argument(
        "spec",
        help=(
            "campaign spec file (.toml or .json; see docs/API.md), or "
            "'paper' for the built-in paper-example suite"
        ),
    )
    submit.add_argument(
        "--priority",
        type=int,
        default=0,
        help=(
            "higher wins the next free fleet slot (preemption is "
            "job-granular: running jobs always finish)"
        ),
    )
    submit.add_argument(
        "--tenant",
        default="default",
        help="tenant to bill against (fair-share and quota unit)",
    )
    submit.add_argument(
        "--scheduler",
        default=None,
        choices=list(scheduler_names()),
        help="override the spec's scheduler list for every job",
    )
    submit.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="per-search speculative planning threads (digest-neutral)",
    )
    submit.add_argument(
        "--exec-backend",
        default=None,
        choices=["tree", "bytecode"],
        help="override the execution core for every job (digest-neutral)",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="block until the campaign finishes and print its report",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="give up on --wait after this long (0 = wait forever)",
    )
    common.add_supervision_flags(submit, retry_flags=False)
    submit.set_defaults(fn=cmd_submit)

    status = sub.add_parser(
        "status", help="list submissions in a service state dir"
    )
    _add_state_dir(status)
    status.add_argument(
        "ticket",
        nargs="?",
        default=None,
        help="show one submission in detail (ticket prefixes allowed)",
    )
    status.set_defaults(fn=cmd_status)

    results = sub.add_parser(
        "results", help="fetch a finished campaign's report by ticket"
    )
    _add_state_dir(results)
    results.add_argument(
        "ticket", help="the submission ticket (prefixes allowed)"
    )
    results.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the full campaign report as JSON",
    )
    results.set_defaults(fn=cmd_results)

    cancel = sub.add_parser(
        "cancel", help="request cooperative cancellation of a submission"
    )
    _add_state_dir(cancel)
    cancel.add_argument(
        "ticket", help="the submission ticket (prefixes allowed)"
    )
    cancel.set_defaults(fn=cmd_cancel)
