"""Option helpers shared by every CLI subcommand.

Nothing here parses arguments — these are the bits that turn parsed
``argparse`` namespaces into library objects (programs, seeds, fault
plans, caches, observability bundles) plus the shared report-printing
helpers.  Each ``*_cmd`` module imports what it needs; the CLI stays a
thin wrapper over :mod:`repro.api`.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..apps.hashes import standard_registry
from ..errors import ReproError
from ..faults import FaultPlan, NULL_PLAN
from ..lang import NativeRegistry, parse_program
from ..obs import (
    MetricsRegistry,
    Observability,
    RunJournal,
    Tracer,
    set_default_registry,
)

__all__ = [
    "parse_seed",
    "parse_range",
    "load_program",
    "natives",
    "default_entry",
    "seed_for",
    "scheduler_option",
    "CliObservability",
    "null_context",
    "print_profile_tables",
    "fault_plan",
    "query_cache",
    "print_cache",
    "print_resilience",
    "add_cache_dir_flag",
    "add_fault_plan_flag",
    "add_store_flags",
    "add_supervision_flags",
    "add_telemetry_flag",
    "open_store",
    "persist_to_store",
]


# -- shared flag groups ------------------------------------------------------
#
# Every command that executes searches shares the same knobs for caching,
# fault injection, supervision, and telemetry.  Defining them once keeps
# the flag names, types, and help text in lockstep across ``repro run``,
# ``repro campaign``, and ``repro serve``/``submit`` — a flag learned on
# one subcommand means the same thing on the others.


def add_cache_dir_flag(parser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "persistent on-disk solver query cache shared by all workers "
            "and future runs"
        ),
    )


def add_store_flags(parser, seeding: bool = True) -> None:
    """The shared content-addressed store group (see docs/STORAGE.md).

    ``--store-dir`` persists corpora and crash buckets (and hosts the
    solver cache when ``--cache-dir`` is not given); ``--store-max-bytes``
    gc's it back under budget after the run; ``--seed-from-store`` seeds
    new searches from prior corpora (campaign-style commands only).
    """
    group = parser.add_argument_group("content store")
    group.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help=(
            "shared content-addressed store: persists generated corpora "
            "and crash buckets, and doubles as the solver cache when "
            "--cache-dir is not given"
        ),
    )
    group.add_argument(
        "--store-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help=(
            "evict least-recently-used store entries down to this budget "
            "after the run (answer-neutral: evicted entries recompute to "
            "byte-identical content)"
        ),
    )
    if not seeding:
        return
    group.add_argument(
        "--seed-from-store",
        action="store_true",
        help=(
            "seed each search from the store's prior corpora for the same "
            "program source and entry point (deterministic given the store "
            "state; off by default, which reproduces classic digests)"
        ),
    )


def add_fault_plan_flag(parser, extra: str = "") -> None:
    from ..faults import SITES

    text = (
        "deterministic fault injection, e.g. "
        "'solver:rate=0.2,seed=7;interp:at=3;kill:at=25' "
        f"(sites: {', '.join(SITES)})"
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help=text + (f"; {extra}" if extra else ""),
    )


def add_supervision_flags(
    parser,
    deadline_default: Optional[float] = None,
    retry_flags: bool = True,
) -> None:
    """The supervision policy group: deadline, and (for campaign-style
    commands) the retry/watchdog knobs.

    ``repro run`` supervises a single search, so it only takes the
    deadline (``retry_flags=False``); campaign-style commands
    (``campaign``, ``serve``) add ``--max-attempts``/``--stall-timeout``.
    """
    group = parser.add_argument_group("supervision")
    group.add_argument(
        "--job-deadline",
        type=float,
        default=deadline_default,
        metavar="SECONDS",
        help=(
            "per-job wall-clock deadline, enforced cooperatively inside "
            "the search and defensively by the parent; a blown deadline "
            "salvages the partial suite"
            + (" and retries the job" if retry_flags else "; exits 3")
        ),
    )
    if not retry_flags:
        return
    group.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        metavar="N",
        help=(
            "attempts per job before quarantine (default 2; retries are "
            "deterministic and answer-preserving)"
        ),
    )
    group.add_argument(
        "--stall-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "heartbeat watchdog: declare a worker stalled after this "
            "much telemetry silence and reschedule its job (allow for "
            "shard buffering when choosing it)"
        ),
    )


def add_telemetry_flag(parser) -> None:
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="DIR",
        help=(
            "ship per-job journal shards into DIR and merge them into "
            "DIR/campaign.jsonl (answer-preserving; tail with 'repro top')"
        ),
    )


def open_store(args, program_path: str, entry: str):
    """Resolve the ``--store-dir`` flags for a single-program command.

    Returns ``(store, source_sha, seed_corpus)``: the opened
    :class:`~repro.store.ContentStore` (or None without ``--store-dir``),
    the program's source digest, and the stored seed vectors for this
    program+entry when ``--seed-from-store`` was given (else ``()``).
    """
    store_dir = getattr(args, "store_dir", None)
    if not store_dir:
        return None, "", ()
    from ..store import (
        CORPUS_ENTRY_FORMAT,
        ContentStore,
        corpus_group,
        source_sha,
    )

    with open(program_path, "r", encoding="utf-8") as handle:
        src_sha = source_sha(handle.read())
    store = ContentStore(store_dir)
    seeds = ()
    if getattr(args, "seed_from_store", False):
        stored = store.load_group(
            "corpus",
            corpus_group(src_sha, entry),
            expected_format=CORPUS_ENTRY_FORMAT,
        )
        seeds = tuple(
            {str(k): int(v) for k, v in dict(payload["inputs"]).items()}
            for _digest, payload in stored
            if isinstance(payload.get("inputs"), dict)
        )
    return store, src_sha, seeds


def persist_to_store(store, src_sha: str, entry: str, result) -> None:
    """Record a finished search's corpus and crash buckets in the store.

    The CLI twin of the engine's per-job persistence: same namespaces,
    same grouping, same keys — a ``repro run`` and a campaign job over
    the same program land on the same entries.
    """
    import os as _os

    from ..search.corpus import TestCorpus
    from ..store import (
        CORPUS_ENTRY_FORMAT,
        CRASH_RECORD_FORMAT,
        corpus_group,
        crash_group,
        input_digest,
        source_sha,
    )

    corpus = TestCorpus()
    corpus.add_from_search(result)
    group = corpus_group(src_sha, entry)
    for test in corpus:
        inputs = test.input_dict()
        path = store.group_path("corpus", group, input_digest(inputs))
        if _os.path.exists(path):
            continue
        store.save(
            "corpus",
            path,
            {
                "format": CORPUS_ENTRY_FORMAT,
                "source_sha": src_sha,
                "entry": entry,
                "inputs": {str(k): int(v) for k, v in inputs.items()},
                "returned": test.returned,
                "error": test.error,
                "error_message": test.error_message,
            },
        )
    group = crash_group(src_sha)
    for crash in result.crashes:
        bucket = str(crash.bucket)
        path = store.group_path("crashes", group, source_sha(bucket))
        if _os.path.exists(path):
            continue
        store.save(
            "crashes",
            path,
            {
                "format": CRASH_RECORD_FORMAT,
                "source_sha": src_sha,
                "entry": entry,
                "bucket": bucket,
                "message": str(crash.message),
                "count": int(crash.count),
            },
        )


def parse_seed(text: str) -> Dict[str, int]:
    """Parse ``x=1,y=-2`` into an input dict."""
    out: Dict[str, int] = {}
    if not text:
        return out
    for piece in text.split(","):
        if "=" not in piece:
            raise ReproError(f"bad seed assignment {piece!r} (want name=int)")
        name, _, value = piece.partition("=")
        out[name.strip()] = int(value.strip())
    return out


def parse_range(text: str):
    lo, _, hi = text.partition(":")
    return int(lo), int(hi)


def load_program(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return parse_program(source)


def natives() -> NativeRegistry:
    return standard_registry(width=4)


def default_entry(program, requested: Optional[str]) -> str:
    if requested:
        return requested
    if "main" in program.functions:
        return "main"
    return next(iter(program.functions))


def seed_for(program, entry: str, seed: Dict[str, int]) -> Dict[str, int]:
    params = program.function(entry).params
    return {p: seed.get(p, 0) for p in params}


def scheduler_option(args) -> Dict[str, object]:
    """The frontier-scheduler option the flags ask for.

    ``--frontier`` is the deprecated spelling; when given it is passed
    through as the ``frontier`` alias so SearchConfig.from_options owns
    both the deprecation warning and the fifo->dfs / coverage->
    generational value mapping.  Otherwise ``--scheduler`` wins.
    """
    frontier = getattr(args, "frontier", None)
    if frontier:
        return {"frontier": frontier}
    return {"scheduler": getattr(args, "scheduler", "dfs")}


class CliObservability:
    """The journal/registry/obs bundle requested by the CLI flags.

    When collection is on, a fresh :class:`MetricsRegistry` is installed
    as the process default (so the solver layers record into it) for the
    lifetime of the ``with`` block; the previous default is restored and
    the journal closed on exit.
    """

    def __init__(self, args, force: bool = False) -> None:
        trace = getattr(args, "trace", None)
        profile = force or getattr(args, "profile", False)
        self.journal = RunJournal(trace) if trace else None
        self.registry: Optional[MetricsRegistry] = None
        self.obs: Optional[Observability] = None
        self._old_registry: Optional[MetricsRegistry] = None
        if profile or self.journal is not None:
            self.registry = MetricsRegistry()
            self.obs = Observability(
                tracer=Tracer(journal=self.journal),
                metrics=self.registry,
                journal=self.journal,
            )

    def __enter__(self) -> "CliObservability":
        if self.registry is not None:
            self._old_registry = set_default_registry(self.registry)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.registry is not None:
            set_default_registry(self._old_registry)
        if self.journal is not None:
            self.journal.close()


def null_context():
    from contextlib import nullcontext

    return nullcontext()


def print_profile_tables(obs, registry) -> None:
    print()
    print("== span profile ==")
    print(obs.tracer.render_table())
    print()
    print("== metrics ==")
    print(registry.render_table())


def fault_plan(args):
    spec = getattr(args, "fault_plan", None)
    return FaultPlan.parse(spec) if spec else NULL_PLAN


def query_cache(args, enabled: bool = True):
    """The query cache the flags ask for (disk-backed with --cache-dir).

    ``--store-dir`` doubles as the cache directory when ``--cache-dir``
    is not given: the store's ``solver/`` namespace *is* the disk cache.
    """
    from ..solver.cache import QueryCache

    if not enabled:
        return None
    cache_dir = getattr(args, "cache_dir", None) or getattr(
        args, "store_dir", None
    )
    if cache_dir:
        from ..solver.diskcache import DiskCache

        return QueryCache(disk=DiskCache(cache_dir))
    return QueryCache()


def print_cache(cache) -> None:
    if cache is None:
        return
    line = (
        f"  cache: {cache.hits} hits / {cache.misses} misses "
        f"(rate {cache.hit_rate:.1%})"
    )
    disk = cache.disk
    if disk is not None:
        line += (
            f"; disk: {disk.hits} hits / {disk.misses} misses / "
            f"{disk.stores} stores"
        )
    print(line)


def print_resilience(result) -> None:
    """Resilience summary lines: crash buckets, ladder downgrades."""
    for crash in result.crashes:
        print(f"  {crash}")
    rungs = dict(result.downgrades)
    if rungs or result.deferred_flips or result.abandoned_flips:
        parts = [f"{rung}={n}" for rung, n in sorted(rungs.items())]
        parts.append(f"deferred={result.deferred_flips}")
        parts.append(f"abandoned={result.abandoned_flips}")
        print(f"  ladder: {' '.join(parts)}")
    if result.replayed_decisions:
        print(f"  resumed: {result.replayed_decisions} decisions replayed")
