"""Option helpers shared by every CLI subcommand.

Nothing here parses arguments — these are the bits that turn parsed
``argparse`` namespaces into library objects (programs, seeds, fault
plans, caches, observability bundles) plus the shared report-printing
helpers.  Each ``*_cmd`` module imports what it needs; the CLI stays a
thin wrapper over :mod:`repro.api`.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..apps.hashes import standard_registry
from ..errors import ReproError
from ..faults import FaultPlan, NULL_PLAN
from ..lang import NativeRegistry, parse_program
from ..obs import (
    MetricsRegistry,
    Observability,
    RunJournal,
    Tracer,
    set_default_registry,
)

__all__ = [
    "parse_seed",
    "parse_range",
    "load_program",
    "natives",
    "default_entry",
    "seed_for",
    "scheduler_option",
    "CliObservability",
    "null_context",
    "print_profile_tables",
    "fault_plan",
    "query_cache",
    "print_cache",
    "print_resilience",
]


def parse_seed(text: str) -> Dict[str, int]:
    """Parse ``x=1,y=-2`` into an input dict."""
    out: Dict[str, int] = {}
    if not text:
        return out
    for piece in text.split(","):
        if "=" not in piece:
            raise ReproError(f"bad seed assignment {piece!r} (want name=int)")
        name, _, value = piece.partition("=")
        out[name.strip()] = int(value.strip())
    return out


def parse_range(text: str):
    lo, _, hi = text.partition(":")
    return int(lo), int(hi)


def load_program(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return parse_program(source)


def natives() -> NativeRegistry:
    return standard_registry(width=4)


def default_entry(program, requested: Optional[str]) -> str:
    if requested:
        return requested
    if "main" in program.functions:
        return "main"
    return next(iter(program.functions))


def seed_for(program, entry: str, seed: Dict[str, int]) -> Dict[str, int]:
    params = program.function(entry).params
    return {p: seed.get(p, 0) for p in params}


def scheduler_option(args) -> Dict[str, object]:
    """The frontier-scheduler option the flags ask for.

    ``--frontier`` is the deprecated spelling; when given it is passed
    through as the ``frontier`` alias so SearchConfig.from_options owns
    both the deprecation warning and the fifo->dfs / coverage->
    generational value mapping.  Otherwise ``--scheduler`` wins.
    """
    frontier = getattr(args, "frontier", None)
    if frontier:
        return {"frontier": frontier}
    return {"scheduler": getattr(args, "scheduler", "dfs")}


class CliObservability:
    """The journal/registry/obs bundle requested by the CLI flags.

    When collection is on, a fresh :class:`MetricsRegistry` is installed
    as the process default (so the solver layers record into it) for the
    lifetime of the ``with`` block; the previous default is restored and
    the journal closed on exit.
    """

    def __init__(self, args, force: bool = False) -> None:
        trace = getattr(args, "trace", None)
        profile = force or getattr(args, "profile", False)
        self.journal = RunJournal(trace) if trace else None
        self.registry: Optional[MetricsRegistry] = None
        self.obs: Optional[Observability] = None
        self._old_registry: Optional[MetricsRegistry] = None
        if profile or self.journal is not None:
            self.registry = MetricsRegistry()
            self.obs = Observability(
                tracer=Tracer(journal=self.journal),
                metrics=self.registry,
                journal=self.journal,
            )

    def __enter__(self) -> "CliObservability":
        if self.registry is not None:
            self._old_registry = set_default_registry(self.registry)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.registry is not None:
            set_default_registry(self._old_registry)
        if self.journal is not None:
            self.journal.close()


def null_context():
    from contextlib import nullcontext

    return nullcontext()


def print_profile_tables(obs, registry) -> None:
    print()
    print("== span profile ==")
    print(obs.tracer.render_table())
    print()
    print("== metrics ==")
    print(registry.render_table())


def fault_plan(args):
    spec = getattr(args, "fault_plan", None)
    return FaultPlan.parse(spec) if spec else NULL_PLAN


def query_cache(args, enabled: bool = True):
    """The query cache the flags ask for (disk-backed with --cache-dir)."""
    from ..solver.cache import QueryCache

    if not enabled:
        return None
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir:
        from ..solver.diskcache import DiskCache

        return QueryCache(disk=DiskCache(cache_dir))
    return QueryCache()


def print_cache(cache) -> None:
    if cache is None:
        return
    line = (
        f"  cache: {cache.hits} hits / {cache.misses} misses "
        f"(rate {cache.hit_rate:.1%})"
    )
    disk = cache.disk
    if disk is not None:
        line += (
            f"; disk: {disk.hits} hits / {disk.misses} misses / "
            f"{disk.stores} stores"
        )
    print(line)


def print_resilience(result) -> None:
    """Resilience summary lines: crash buckets, ladder downgrades."""
    for crash in result.crashes:
        print(f"  {crash}")
    rungs = dict(result.downgrades)
    if rungs or result.deferred_flips or result.abandoned_flips:
        parts = [f"{rung}={n}" for rung, n in sorted(rungs.items())]
        parts.append(f"deferred={result.deferred_flips}")
        parts.append(f"abandoned={result.abandoned_flips}")
        print(f"  ladder: {' '.join(parts)}")
    if result.replayed_decisions:
        print(f"  resumed: {result.replayed_decisions} decisions replayed")
