"""Parser assembly and entry point for ``python -m repro``.

Each subcommand module contributes a ``register(sub)`` hook that adds
its own subparser; this module only owns the top-level parser, the
registration order (which is the ``--help`` order), and the shared
error-to-exit-code mapping.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..errors import ReproError, SearchInterrupted
from . import (
    bench_cmd,
    campaign_cmd,
    fuzz_cmd,
    modes_cmd,
    replay_cmd,
    run_cmd,
    serve_cmd,
    stats_cmd,
    store_cmd,
)

__all__ = ["build_parser", "main"]

#: subcommand modules in --help order
_COMMANDS = (
    run_cmd,
    stats_cmd,
    bench_cmd,
    campaign_cmd,
    serve_cmd,
    store_cmd,
    fuzz_cmd,
    modes_cmd,
    replay_cmd,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Higher-order test generation for MiniC programs "
            "(reproduction of Godefroid, PLDI 2011)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for module in _COMMANDS:
        module.register(sub)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except SearchInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        if exc.resume_hint:
            print(f"resume with: {exc.resume_hint}", file=sys.stderr)
        elif exc.checkpoint_dir:
            print(
                f"resume with: repro run ... --resume {exc.checkpoint_dir}",
                file=sys.stderr,
            )
        return 3
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
