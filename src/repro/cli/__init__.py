"""Command-line interface: test a MiniC program from the shell.

Every subcommand is a thin wrapper over the :mod:`repro.api` facade
(:func:`repro.api.generate_tests`, :func:`repro.api.run_campaign`,
:func:`repro.api.replay`), so library and shell users hit identical code
paths.  One module per subcommand:

- :mod:`repro.cli.run_cmd` — directed search with one engine;
- :mod:`repro.cli.stats_cmd` — search with a full observability report;
- :mod:`repro.cli.bench_cmd` — timed search with perf counters + digest;
- :mod:`repro.cli.campaign_cmd` — batch engine across worker processes;
- :mod:`repro.cli.fuzz_cmd` — blackbox random fuzzing baseline;
- :mod:`repro.cli.modes_cmd` — compare all four engines;
- :mod:`repro.cli.replay_cmd` — replay a saved test corpus;

with shared option helpers in :mod:`repro.cli.common` and the parser
assembly in :mod:`repro.cli.main`.

Usage::

    python -m repro run program.minic --entry main --seed x=1,y=2
    python -m repro run program.minic --mode unsound --max-runs 50
    python -m repro run program.minic --trace events.jsonl --profile
    python -m repro run program.minic --jobs 4            # speculative planning
    python -m repro run program.minic --scheduler coverage  # guided frontier
    python -m repro run program.minic --checkpoint ck/    # interrupt-safe search
    python -m repro run program.minic --resume ck/        # continue after a kill
    python -m repro run program.minic --fault-plan 'solver:rate=0.2,seed=7'
    python -m repro fuzz program.minic --runs 500 --range -100:100
    python -m repro modes program.minic --seed x=1,y=2   # compare engines
    python -m repro stats program.minic --seed x=1,y=2   # observability report
    python -m repro bench program.minic --jobs 2          # perf + suite digest
    python -m repro campaign paper --workers 4            # batch engine
    python -m repro campaign paper --scheduler generational --jobs 2
    python -m repro campaign suite.toml --cache-dir .repro-cache

Observability flags (``run`` and ``stats``):

- ``--trace FILE`` streams a JSONL journal of session events
  (``test_generated``, ``branch_flipped``, ``solver_query``,
  ``sample_recorded``, ``divergence_detected``, …; schema in
  docs/OBSERVABILITY.md) to ``FILE``;
- ``--profile`` prints the span profile (where wall time went) and the
  metrics registry (solver query counts, conflicts, concretizations)
  after the search;
- ``stats`` is ``run`` with both always on, rendered as one report.

Native (unknown) functions available to CLI-tested programs are the hash
zoo of :mod:`repro.apps.hashes` (``hash``, ``djb2``, ``fnv1a``, ``sdbm``,
``crc32``, ``flex_hash``, ``cipher``) — the same functions the paper's
experiments use.
"""

from __future__ import annotations

from .main import build_parser, main

__all__ = ["main", "build_parser"]


def __getattr__(name: str):
    # suite_digest lived here through PR 3; it is library functionality
    # and moved to repro.search.report with the facade work
    if name == "suite_digest":
        import warnings

        from ..search.report import suite_digest

        warnings.warn(
            "repro.cli.suite_digest moved to repro.search.report.suite_digest "
            "(also exported as repro.api.suite_digest); the repro.cli alias "
            "will be removed",
            DeprecationWarning,
            stacklevel=2,
        )
        return suite_digest
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
