"""``repro replay`` — replay a saved test corpus and report drift."""

from __future__ import annotations

from .. import api
from . import common

__all__ = ["register", "cmd_replay"]


def cmd_replay(args) -> int:
    report = api.replay(
        args.corpus,
        common.load_program(args.program),
        entry=args.entry,
        natives=common.natives(),
    )
    print(f"[replay] {report.summary()}")
    for entry_obj, returned, error in report.mismatches[:10]:
        print(
            f"  drift: inputs {entry_obj.input_dict()} now -> "
            f"returned={returned} error={error}"
        )
    return 0 if report.all_match else 1


def register(sub) -> None:
    replay = sub.add_parser("replay", help="replay a saved test corpus")
    replay.add_argument("program")
    replay.add_argument("corpus", help="corpus JSON file")
    replay.add_argument("--entry", default=None)
    replay.set_defaults(fn=cmd_replay)
