"""Directed search (systematic dynamic test generation) over MiniC."""

from .backends import (
    ExistentialBackend,
    GeneratedTest,
    GenerationRequest,
    QuantifierFreeBackend,
    TestGenBackend,
)
from .checkpoint import CheckpointWriter, ReplayCursor
from .coverage import BranchCoverage
from .corpus import CorpusEntry, ReplayReport, TestCorpus
from .directed import (
    CrashReport,
    DirectedSearch,
    ErrorReport,
    ExecutionRecord,
    SearchConfig,
    SearchResult,
)
from .kernel import SearchKernel, SearchState
from .minimize import MinimizationResult, minimize_error_inputs
from .parallel import FrontierExpander
from .report import render_report, suite_digest
from .scheduler import (
    CoverageScheduler,
    DfsScheduler,
    FrontierItem,
    FrontierScheduler,
    GenerationalScheduler,
    SCHEDULERS,
    make_scheduler,
    scheduler_names,
)

__all__ = [
    "CheckpointWriter",
    "ReplayCursor",
    "CrashReport",
    "FrontierExpander",
    "FrontierItem",
    "FrontierScheduler",
    "DfsScheduler",
    "GenerationalScheduler",
    "CoverageScheduler",
    "SCHEDULERS",
    "make_scheduler",
    "scheduler_names",
    "SearchKernel",
    "SearchState",
    "CorpusEntry",
    "ReplayReport",
    "TestCorpus",
    "MinimizationResult",
    "minimize_error_inputs",
    "ExistentialBackend",
    "GeneratedTest",
    "GenerationRequest",
    "QuantifierFreeBackend",
    "TestGenBackend",
    "BranchCoverage",
    "DirectedSearch",
    "ErrorReport",
    "ExecutionRecord",
    "SearchConfig",
    "SearchResult",
    "render_report",
    "suite_digest",
]
