"""Directed search (systematic dynamic test generation) over MiniC."""

from .backends import (
    ExistentialBackend,
    GeneratedTest,
    GenerationRequest,
    QuantifierFreeBackend,
    TestGenBackend,
)
from .checkpoint import CheckpointWriter, ReplayCursor
from .coverage import BranchCoverage
from .corpus import CorpusEntry, ReplayReport, TestCorpus
from .directed import (
    CrashReport,
    DirectedSearch,
    ErrorReport,
    ExecutionRecord,
    SearchConfig,
    SearchResult,
)
from .minimize import MinimizationResult, minimize_error_inputs
from .parallel import FrontierExpander
from .report import render_report, suite_digest

__all__ = [
    "CheckpointWriter",
    "ReplayCursor",
    "CrashReport",
    "FrontierExpander",
    "CorpusEntry",
    "ReplayReport",
    "TestCorpus",
    "MinimizationResult",
    "minimize_error_inputs",
    "ExistentialBackend",
    "GeneratedTest",
    "GenerationRequest",
    "QuantifierFreeBackend",
    "TestGenBackend",
    "BranchCoverage",
    "DirectedSearch",
    "ErrorReport",
    "ExecutionRecord",
    "SearchConfig",
    "SearchResult",
    "render_report",
    "suite_digest",
]
