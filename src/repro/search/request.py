"""Shared datatypes between the directed search and test-gen backends.

Kept dependency-free so both :mod:`repro.search.backends` and
:mod:`repro.core.hotg` can import them without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol

from ..solver.terms import Term
from ..symbolic.concolic import PathCondition

__all__ = ["GenerationRequest", "GeneratedTest", "TestGenBackend"]


@dataclass
class GenerationRequest:
    """Everything a backend needs to derive a new test."""

    conditions: List[PathCondition]
    index: int
    input_vars: Dict[str, Term]
    #: previous run's concrete inputs — reused for unconstrained variables
    defaults: Dict[str, int]


@dataclass
class GeneratedTest:
    """A concrete input vector proposed by a backend."""

    inputs: Dict[str, int]
    #: number of intermediate program runs spent (multi-step generation)
    intermediate_runs: int = 0
    note: str = ""


class TestGenBackend(Protocol):
    """Protocol implemented by all test-generation backends."""

    def generate(self, request: GenerationRequest) -> Optional[GeneratedTest]:
        """Return inputs driving execution down the flipped branch, or None."""
        ...
