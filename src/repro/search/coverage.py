"""Branch coverage bookkeeping for testing sessions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..lang.ast import Program

__all__ = ["BranchCoverage"]


@dataclass
class BranchCoverage:
    """Tracks which (branch_id, polarity) pairs executions have covered.

    A branch site contributes two coverable outcomes (taken / not taken);
    :meth:`ratio` reports covered outcomes over all outcomes of all sites.
    """

    program: Program
    covered: Set[Tuple[int, bool]] = field(default_factory=set)
    #: history of (run index, total covered) for plots
    history: List[Tuple[int, int]] = field(default_factory=list)
    _runs_seen: int = 0

    def record(self, covered: Set[Tuple[int, bool]]) -> int:
        """Merge one run's coverage; returns how many outcomes were new."""
        before = len(self.covered)
        self.covered |= covered
        self._runs_seen += 1
        self.history.append((self._runs_seen, len(self.covered)))
        return len(self.covered) - before

    @property
    def total_outcomes(self) -> int:
        return 2 * len(self.program.branch_sites())

    def ratio(self) -> float:
        total = self.total_outcomes
        return len(self.covered) / total if total else 1.0

    def missing(self) -> List[Tuple[int, bool]]:
        """Branch outcomes not yet exercised."""
        out = []
        for branch_id, _line in self.program.branch_sites():
            for polarity in (True, False):
                if (branch_id, polarity) not in self.covered:
                    out.append((branch_id, polarity))
        return out

    def is_covered(self, branch_id: int, polarity: bool) -> bool:
        return (branch_id, polarity) in self.covered

    def report(self) -> str:
        lines = [
            f"branch coverage: {len(self.covered)}/{self.total_outcomes} "
            f"({self.ratio():.0%})"
        ]
        by_id = {bid: line for bid, line in self.program.branch_sites()}
        for branch_id, polarity in self.missing():
            side = "then" if polarity else "else"
            lines.append(
                f"  missing: branch {branch_id} ({side}) at line "
                f"{by_id.get(branch_id, '?')}"
            )
        return "\n".join(lines)
