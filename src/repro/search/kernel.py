"""The staged search kernel behind :class:`~repro.search.directed.DirectedSearch`.

One iteration of the directed search is a five-stage pipeline:

1. **execute** — run the program concolically on an input vector
   (:meth:`SearchKernel.execute`; crash containment lives here);
2. **derive flips** — the run's candidate branch flips, a pure function
   of its recorded path constraint (:meth:`SearchKernel.derive_flips`);
3. **schedule** — ask the session's :class:`~repro.search.scheduler.FrontierScheduler`
   which pending run to expand and in which flip order
   (:meth:`SearchKernel.schedule`; the ``scheduler`` fault site and the
   per-scheduler metrics live here);
4. **solve** — produce inputs for one flip, via the checkpoint replay
   log or the solver degradation ladder (:meth:`SearchKernel.solve_flip`);
5. **reconstitute** — execute the generated inputs, fold the child into
   the search state, and push it back onto the scheduler
   (:meth:`SearchKernel.reconstitute`).

All mutable loop state lives in one explicit, serializable
:class:`SearchState` — the scheduler queue, the path/input dedupe sets,
and the deferred-flip retry queue — whose :meth:`SearchState.to_payload`
snapshot is written into every checkpoint's advisory ``state.json``.

Stage boundaries are refactoring seams, not behaviour changes: under the
``dfs`` scheduler the kernel reproduces the pre-kernel monolith's suite
byte-for-byte (CI gates the paper-suite digest on it), and the
determinism contracts of the parallel expander (any ``--jobs``), the
checkpoint replay (kill → resume), and the degradation ladder all hold
for every scheduler (docs/SEARCH.md spells out the contract).

Every stage is also a **profiling span**: the kernel opens a tracer span
per stage (labels ``execute``, ``derive``, ``schedule``, ``generate``,
``reconstitute`` — see :data:`repro.obs.export.KERNEL_STAGES`) and, when
metrics are live, records per-stage duration histograms
(``kernel.stage.<stage>_seconds``) with per-scheduler attribution
(``kernel.stage.<stage>_seconds.<scheduler>`` for the scheduler-policy
stages) plus live query-cache hit-rate gauges (``kernel.cache.*``).
With an enabled journal each run additionally emits a ``run_executed``
event carrying cumulative coverage and cache counters — the signal the
campaign live view (``repro stats --follow``) renders.  All of it is
answer-preserving: profiling reads clocks and counters, never search
state.
"""

from __future__ import annotations

import dataclasses
import re
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import (
    DeadlineExceeded,
    ReproError,
    ResourceLimitError,
    RunBudgetExhausted,
    SearchInterrupted,
)
from ..faults import consume_hang_request, current_fault_plan, set_fault_plan
from ..interrupt import check_interrupt
from ..obs import Observability
from ..solver.budget import DEFAULT_BUDGET, DEGRADED_BUDGET, use_budget
from ..solver.terms import Term, TermManager
from ..symbolic.concolic import ConcolicResult, PathCondition
from ..core.post import negatable_indices
from ..core.samples import SampleStore
from .backends import (
    GeneratedTest,
    GenerationRequest,
    QuantifierFreeBackend,
    TestGenBackend,
)
from .checkpoint import CheckpointWriter, ReplayCursor
from .directed import CrashReport, ErrorReport, ExecutionRecord, SearchResult
from .parallel import FrontierExpander, PlannedRecord
from .scheduler import FrontierItem, FrontierScheduler

__all__ = ["SearchKernel", "SearchState"]

#: sentinel: the flip was queued for the end-of-search retry phase
_DEFERRED = object()
#: sentinel: the run budget is gone; end the search gracefully
_STOP = object()


def _app_subterms(term: Term) -> List[Term]:
    """Every distinct UF application occurring in ``term`` (outermost too)."""
    out: List[Term] = []
    seen: Set[Term] = set()
    stack = [term]
    while stack:
        t = stack.pop()
        if t in seen:
            continue
        seen.add(t)
        if t.is_app:
            out.append(t)
        stack.extend(t.args)
    return out


def _var_names(term: Term) -> Set[str]:
    """Names of the variables occurring in ``term``."""
    names: Set[str] = set()
    stack = [term]
    while stack:
        t = stack.pop()
        if t.is_var and t.name:
            names.add(t.name)
        stack.extend(t.args)
    return names


@dataclass
class SearchState:
    """The kernel's explicit mutable state, serializable as one snapshot.

    Everything the expansion loop reads or writes between stages lives
    here: the scheduler (owning the pending frontier), the dedupe sets,
    the deferred-flip queue, and the stop flag.  :meth:`to_payload`
    renders a deterministic JSON-able snapshot for the checkpoint's
    advisory ``state.json`` — replay rebuilds the same state from the
    decision log, so the snapshot is for inspection, not correctness.
    """

    scheduler: FrontierScheduler
    #: path keys of every distinct execution path seen
    seen_paths: Set[Tuple[Tuple[int, bool], ...]] = field(default_factory=set)
    #: every input vector executed (seed, children, probes)
    seen_inputs: Set[Tuple[Tuple[str, int], ...]] = field(default_factory=set)
    #: flips queued for the end-of-search escalated retry
    deferred: List[Tuple[ExecutionRecord, int, GenerationRequest]] = field(
        default_factory=list
    )
    #: the run budget is exhausted; the expansion loop must end
    stop: bool = False

    def to_payload(self) -> Dict[str, object]:
        """Deterministic JSON-able snapshot of the whole search state."""
        return {
            "scheduler": self.scheduler.state(),
            "seen_paths": [
                [[bid, taken] for bid, taken in key]
                for key in sorted(self.seen_paths)
            ],
            "seen_inputs": [
                [[name, value] for name, value in key]
                for key in sorted(self.seen_inputs)
            ],
            "deferred": [
                [record.index, flip] for record, flip, _ in self.deferred
            ],
            "stop": self.stop,
        }


class SearchKernel:
    """One search session's staged expansion loop.

    Built by :meth:`DirectedSearch.run` per session; owns the
    :class:`SearchState` and drives the execute → derive → schedule →
    solve → reconstitute pipeline until the scheduler drains, the run
    budget is gone, or ``stop_on_first_error`` fires.
    """

    def __init__(
        self,
        *,
        engine,
        entry: str,
        backend: TestGenBackend,
        store: SampleStore,
        config,
        obs: Observability,
        result: SearchResult,
        scheduler: FrontierScheduler,
        ckpt: Optional[CheckpointWriter] = None,
        replay: Optional[ReplayCursor] = None,
    ) -> None:
        self.engine = engine
        self.entry = entry
        self.backend = backend
        self.store = store
        self.config = config
        self.obs = obs
        self.result = result
        self.state = SearchState(scheduler=scheduler)
        self._ckpt = ckpt
        self._replay = replay
        self._suspended_plan = None
        self._probe_log: List[Dict[str, int]] = []
        #: monotonic instant the session's wall-clock budget runs out
        #: (None = no deadline); armed by :meth:`search`
        self._deadline: Optional[float] = None

    # -- stage profiling ---------------------------------------------------

    #: stages whose cost depends on the scheduler policy; their histograms
    #: get an extra per-scheduler series for attribution
    _SCHEDULER_STAGES = frozenset({"schedule", "generate"})

    def _observe_stage(self, stage: str, seconds: float) -> None:
        """Record one stage duration into the per-stage histograms."""
        metrics = self.obs.metrics
        if not metrics.enabled:
            return
        metrics.histogram(f"kernel.stage.{stage}_seconds").observe(seconds)
        if stage in self._SCHEDULER_STAGES:
            metrics.histogram(
                f"kernel.stage.{stage}_seconds.{self.state.scheduler.name}"
            ).observe(seconds)

    def _cache_counters(self) -> Dict[str, int]:
        """Cumulative query-cache counters of the session's cache (if any)."""
        from ..solver.cache import default_cache

        cache = default_cache()
        if cache is None:
            return {}
        counters = {"hits": cache.hits, "misses": cache.misses}
        disk = cache.disk
        if disk is not None:
            counters.update(
                disk_hits=disk.hits,
                disk_misses=disk.misses,
                disk_stores=disk.stores,
                disk_skipped=disk.skipped,
            )
        return counters

    def _observe_cache(self) -> None:
        """Refresh the live cache hit-rate gauges."""
        metrics = self.obs.metrics
        if not metrics.enabled:
            return
        from ..solver.cache import default_cache

        cache = default_cache()
        if cache is None:
            return
        metrics.gauge("kernel.cache.hit_rate").set(round(cache.hit_rate, 4))
        disk = cache.disk
        if disk is not None:
            metrics.gauge("kernel.cache.disk_hit_rate").set(
                round(disk.hit_rate, 4)
            )

    # -- the expansion loop ------------------------------------------------

    def search(self, seed_inputs: Dict[str, int]) -> None:
        """Run the staged pipeline from the seed until the frontier drains."""
        result = self.result
        if self.config.job_deadline:
            self._deadline = time.monotonic() + self.config.job_deadline
        self._begin_replay()
        expander = FrontierExpander(
            self.backend,
            self.config.jobs,
            scheduler=self.state.scheduler.name,
        )
        try:
            self._expand(seed_inputs, expander)
        finally:
            self._end_replay()
            expander.shutdown()

    def _expand(
        self, seed_inputs: Dict[str, int], expander: FrontierExpander
    ) -> None:
        result = self.result
        state = self.state
        scheduler = state.scheduler
        first = self.execute(seed_inputs, parent=None, flipped=None)
        if first is None:
            # the seed input itself crashed the program under test; the
            # contained crash record is this session's whole story
            result.distinct_paths = 0
            return
        state.seen_paths.add(first.result.path_key)
        scheduler.push(first, 0, self.derive_flips(first, 0))
        self._execute_seed_corpus()

        while scheduler and not state.stop and result.runs < self.config.max_runs:
            # the solve stages between runs can be arbitrarily slow, so
            # the loop top is an interruption point of its own (the run
            # boundary inside execute() covers the common case)
            check_interrupt()
            self._check_deadline()
            if self.obs.metrics.enabled:
                self.obs.metrics.counter(
                    f"kernel.iterations.{scheduler.name}"
                ).inc()
            item = self.schedule()
            record, start = item.record, item.start
            flip_order = scheduler.order_flips(record, item.indices)
            conditions = record.result.path_conditions
            requests = [
                GenerationRequest(
                    conditions=list(conditions),
                    index=i,
                    input_vars=dict(record.result.input_vars),
                    defaults=dict(record.result.inputs),
                )
                for i in flip_order
            ]
            # replay skips all solving, so speculative planning would only
            # burn worker time (and fault-site counters) for nothing
            planned = expander.plan_record(requests, speculate=self._replay is None)
            for k, i in enumerate(flip_order):
                if result.runs >= self.config.max_runs:
                    break
                with self.obs.tracer.span("generate") as gen_span:
                    outcome = self.solve_flip(planned, k, requests[k], record, i)
                result.time_generating += gen_span.elapsed
                self._observe_stage("generate", gen_span.elapsed)
                self._observe_cache()
                if outcome is _STOP:
                    state.stop = True
                    break
                if outcome is _DEFERRED or outcome is None:
                    continue
                self.reconstitute(outcome, record, i, live=True)
                if result.errors and self.config.stop_on_first_error:
                    result.distinct_paths = len(state.seen_paths)
                    return
        self.drain_deferred()
        result.distinct_paths = len(state.seen_paths)

    def _execute_seed_corpus(self) -> None:
        """Execute the extra seed vectors (cross-campaign corpus seeding).

        Each vector runs like any other test — coverage, errors, crash
        containment, run budget all apply — and every *new* path it
        reaches joins the frontier with the full flip range, exactly as
        if the search had generated it.  Already-executed vectors are
        skipped, so replaying a seeded session (and seeding with the
        primary seed itself) stays deterministic.
        """
        result = self.result
        state = self.state
        for vector in self.config.seed_corpus:
            if result.runs >= self.config.max_runs or state.stop:
                break
            if (
                self.config.dedupe_inputs
                and self._input_key(vector) in state.seen_inputs
            ):
                continue
            record = self.execute(dict(vector), parent=None, flipped=None)
            if record is None:
                continue  # the seed crashed the program; contained
            record.note = record.note or "corpus seed"
            if self.obs.metrics.enabled:
                self.obs.metrics.counter("search.corpus_seeds").inc()
            if record.result.path_key not in state.seen_paths:
                state.seen_paths.add(record.result.path_key)
                state.scheduler.push(record, 0, self.derive_flips(record, 0))

    # -- stage 2: derive flips ---------------------------------------------

    def derive_flips(self, record: ExecutionRecord, start: int) -> List[int]:
        """Candidate flip positions of one run: negatable conditions at
        generational positions >= ``start``, under the per-run cap."""
        with self.obs.tracer.span("derive") as span:
            flips = [
                i
                for i in negatable_indices(record.result.path_conditions)
                if i >= start and i < self.config.max_conditions_per_run
            ]
        self._observe_stage("derive", span.elapsed)
        return flips

    # -- stage 3: schedule ---------------------------------------------------

    def schedule(self) -> FrontierItem:
        """Pop the next pending run from the scheduler (fault-containable).

        A scheduler that fails — the injected ``scheduler`` fault site, or
        a real policy bug — is contained by falling back to the oldest
        pending run (FIFO order), so one bad ranking never takes the
        session down.
        """
        with self.obs.tracer.span("schedule") as span:
            item = self._schedule()
        self._observe_stage("schedule", span.elapsed)
        return item

    def _schedule(self) -> FrontierItem:
        obs = self.obs
        scheduler = self.state.scheduler
        if obs.metrics.enabled:
            obs.metrics.gauge(
                f"search.scheduler.{scheduler.name}.queue_depth"
            ).set(len(scheduler))
        try:
            current_fault_plan().fire("scheduler")
            before = scheduler.promotions
            item = scheduler.select()
        except (SearchInterrupted, RunBudgetExhausted):
            raise
        except Exception as exc:  # noqa: BLE001 - contained policy failure
            if obs.metrics.enabled:
                obs.metrics.counter("search.scheduler.failures").inc()
            obs.emit(
                "scheduler_failure",
                scheduler=scheduler.name,
                error=type(exc).__name__,
                message=str(exc),
            )
            item = scheduler.select_oldest()
            before = scheduler.promotions
        if obs.metrics.enabled:
            obs.metrics.counter(
                f"search.scheduler.{scheduler.name}.selections"
            ).inc()
            if scheduler.promotions > before:
                obs.metrics.counter(
                    f"search.scheduler.{scheduler.name}.promotions"
                ).inc()
        return item

    # -- stage 4: solve (replay + degradation ladder) ------------------------

    def solve_flip(
        self,
        planned: PlannedRecord,
        k: int,
        request: GenerationRequest,
        record: ExecutionRecord,
        i: int,
    ):
        """Inputs for one flip, via the decision log (resume) or the ladder.

        Returns a :class:`GeneratedTest`, None (no test for this flip),
        ``_DEFERRED`` (queued for the escalated retry phase), or ``_STOP``
        (the run budget is exhausted; end the search gracefully).
        """
        result = self.result
        if self._replay is not None:
            entry = self._replay.take(record.index, i)
            if entry is not None:
                try:
                    return self._apply_replayed(entry, record, i, request)
                except RunBudgetExhausted:
                    return _STOP
            self._end_replay()
        result.solver_calls += 1
        self._probe_log = []
        try:
            generated, rung = self._run_ladder(planned, k, request, record, i)
        except RunBudgetExhausted:
            # a multi-step probe ran out of execution budget: the strategy
            # is over, but everything produced so far stands
            self.obs.emit("run_budget_exhausted", parent=record.index, flip=i)
            return _STOP
        self._log_decision(record.index, i, rung, generated, list(self._probe_log))
        if rung == "deferred":
            result.deferred_flips += 1
            self.state.deferred.append((record, i, request))
            if self.obs.metrics.enabled:
                self.obs.metrics.counter("search.flips_deferred").inc()
            self.obs.emit("flip_deferred", parent=record.index, flip=i)
            return _DEFERRED
        return generated

    def _run_ladder(
        self,
        planned: PlannedRecord,
        k: int,
        request: GenerationRequest,
        record: ExecutionRecord,
        i: int,
    ) -> Tuple[Optional[GeneratedTest], str]:
        """The solver degradation ladder for one flip.

        full-strength query → sound concretization → unsound concretization
        → defer.  Each rung only runs when the previous one *exhausted its
        budget* (``ResourceLimitError``); a rung that answers — with a test
        or with UNSAT — ends the ladder.
        """
        try:
            return planned.produce(k), "full"
        except RunBudgetExhausted:
            raise
        except ResourceLimitError:
            pass
        for rung, pin in (("sound", True), ("unsound", False)):
            self._count_downgrade(rung, record.index, i)
            try:
                with use_budget(DEGRADED_BUDGET):
                    generated = self._degraded_generate(request, pin=pin)
            except ResourceLimitError:
                continue
            if generated is not None:
                return generated, rung
            if not pin:
                # even the unconstrained concretization is UNSAT: the flip
                # is infeasible under every approximation we can afford
                return None, rung
            # sound UNSAT may be an artifact of the pins; retry without them
        return None, "deferred"

    def _count_downgrade(self, rung: str, parent: int, flip: int) -> None:
        result = self.result
        result.downgrades[rung] = result.downgrades.get(rung, 0) + 1
        if self.obs.metrics.enabled:
            self.obs.metrics.counter(f"search.downgrades.{rung}").inc()
        self.obs.emit("flip_downgraded", parent=parent, flip=flip, rung=rung)

    def _degraded_generate(
        self, request: GenerationRequest, pin: bool
    ) -> Optional[GeneratedTest]:
        """Concretized fallback for a flip whose full query blew its budget.

        Every UF application in the path constraint is replaced by its
        concrete value under the parent run's inputs and the recorded IOF
        sample table (the parent actually executed those applications, so
        recorded points are exact).  With ``pin=True`` the inputs feeding
        the applications are additionally pinned to their parent values —
        the same move the concolic SOUND mode makes — so the concrete
        values stay correct; without pins the query is cheaper but unsound
        (a generated test may diverge, which the search detects as usual).
        """
        from ..solver.evalmodel import evaluate
        from ..solver.smt import Model

        table: Dict = {}
        for (fn, args), value in self.store.as_table().items():
            table.setdefault(fn, {})[args] = value
        model = Model(ints=dict(request.defaults), functions=table)
        local = TermManager()
        cache: Dict[Term, Term] = {}
        pin_names: Set[str] = set()
        for pc in request.conditions:
            for app in _app_subterms(pc.term):
                if app not in cache:
                    cache[app] = local.mk_int(int(evaluate(app, model)))
                if pin:
                    for arg in app.args:
                        pin_names.update(_var_names(arg))
        conditions = [
            dataclasses.replace(pc, term=local.import_term(pc.term, cache))
            for pc in request.conditions
        ]
        input_vars = {
            name: local.import_term(var, cache)
            for name, var in request.input_vars.items()
        }
        index = request.index
        if pin:
            pins = [
                PathCondition(
                    term=local.mk_eq(
                        input_vars[name], local.mk_int(request.defaults[name])
                    ),
                    is_concretization=True,
                )
                for name in sorted(pin_names)
                if name in input_vars and name in request.defaults
            ]
            conditions = pins + conditions
            index += len(pins)
        degraded = GenerationRequest(
            conditions=conditions,
            index=index,
            input_vars=input_vars,
            defaults=dict(request.defaults),
        )
        solver = QuantifierFreeBackend(local, retain_defaults=True, use_session=False)
        generated = solver.generate(degraded)
        if generated is None:
            return None
        kind = "sound" if pin else "unsound"
        return GeneratedTest(
            inputs=generated.inputs,
            note=f"degraded ({kind} concretization)",
        )

    # -- checkpoint / resume -------------------------------------------------

    def _begin_replay(self) -> None:
        if self._replay is None:
            return
        # suppress fault injection while replaying: the replayed prefix
        # already consumed its share of the fault sequence in the original
        # process; the checkpointed counters are restored when going live
        self._suspended_plan = set_fault_plan(None)

    def _end_replay(self) -> None:
        if self._replay is None:
            return
        cursor = self._replay
        self._replay = None
        obs = self.obs
        if cursor.diverged:
            if obs.metrics.enabled:
                obs.metrics.counter("search.resume.divergence").inc()
            obs.emit(
                "resume_divergence",
                replayed=len(cursor.consumed),
                logged=len(cursor),
            )
        if obs.metrics.enabled:
            obs.metrics.counter("search.resume.replayed").inc(len(cursor.consumed))
        obs.emit(
            "search_resumed",
            directory=cursor.directory,
            replayed=len(cursor.consumed),
            diverged=cursor.diverged,
        )
        if self._suspended_plan is not None:
            plan = self._suspended_plan
            self._suspended_plan = None
            set_fault_plan(plan)
            if cursor.fault_state:
                # continue the interrupted fault sequence instead of
                # repeating it (a one-shot kill must not re-fire)
                plan.restore_state(cursor.fault_state)
        if self._ckpt is not None:
            self._ckpt.reset_decisions(cursor.consumed)

    def _apply_replayed(
        self,
        entry: Dict[str, object],
        record: ExecutionRecord,
        i: int,
        request: GenerationRequest,
    ):
        """Re-enact one logged decision without calling the solver."""
        result = self.result
        result.replayed_decisions += 1
        rung = str(entry.get("rung", "full"))
        for probe in entry.get("probes") or []:  # type: ignore[union-attr]
            self.probe({str(k): int(v) for k, v in dict(probe).items()})
        # reconstruct the ladder counters the live run would have recorded
        if rung in ("sound", "unsound", "deferred"):
            self._count_downgrade("sound", record.index, i)
        if rung in ("unsound", "deferred"):
            self._count_downgrade("unsound", record.index, i)
        if rung == "deferred":
            result.deferred_flips += 1
            self.state.deferred.append((record, i, request))
            if self.obs.metrics.enabled:
                self.obs.metrics.counter("search.flips_deferred").inc()
            return _DEFERRED
        if rung == "abandoned":
            result.abandoned_flips += 1
            return None
        produced = entry.get("produced")
        if produced is None:
            return None
        return GeneratedTest(
            inputs={str(k): int(v) for k, v in dict(produced).items()},  # type: ignore[arg-type]
            intermediate_runs=int(entry.get("intermediate_runs") or 0),  # type: ignore[arg-type]
            note=str(entry.get("note") or ""),
        )

    def _log_decision(
        self,
        parent: int,
        flip: int,
        rung: str,
        generated: Optional[GeneratedTest],
        probes: List[Dict[str, int]],
    ) -> None:
        if self._ckpt is None:
            return
        self._ckpt.append_decision(
            {
                "parent": parent,
                "flip": flip,
                "rung": rung,
                "produced": dict(generated.inputs) if generated is not None else None,
                "note": generated.note if generated is not None else "",
                "intermediate_runs": generated.intermediate_runs
                if generated is not None
                else 0,
                "probes": probes,
            }
        )

    def _maybe_checkpoint(self) -> None:
        if self._ckpt is None or self._replay is not None:
            return
        if self.result.runs % max(1, self.config.checkpoint_every) != 0:
            return
        self.flush_checkpoint()

    def flush_checkpoint(self) -> None:
        ckpt = self._ckpt
        if ckpt is None or not ckpt.enabled:
            return
        result = self.result
        frontier_rows = [
            {
                "record": item.record.index,
                "start": item.start,
                "inputs": dict(item.record.result.inputs),
            }
            for item in self.state.scheduler._items
        ]
        corpus = None
        try:
            from .corpus import TestCorpus  # deferred: corpus imports this package

            corpus = TestCorpus()
            corpus.add_from_search(result)
        except ReproError:  # pragma: no cover - snapshot is advisory
            corpus = None
        ckpt.flush_state(
            result.runs,
            self.store.samples(),
            current_fault_plan().state(),
            frontier_rows,
            corpus=corpus,
            search_state=self.state.to_payload(),
        )
        if ckpt.enabled:
            if self.obs.metrics.enabled:
                self.obs.metrics.counter("search.checkpoint.writes").inc()
            self.obs.emit(
                "checkpoint_written", runs=result.runs, directory=ckpt.directory
            )

    # -- deferred retry phase ------------------------------------------------

    def drain_deferred(self) -> None:
        """End-of-search retry of deferred flips with an escalated budget."""
        if not self.state.deferred:
            return
        result = self.result
        obs = self.obs
        escalated = DEFAULT_BUDGET.scaled(self.config.defer_scale)
        queue, self.state.deferred = self.state.deferred, []
        for record, i, request in queue:
            if result.runs >= self.config.max_runs:
                break
            if self._replay is not None:
                entry = self._replay.take(record.index, i)
                if entry is not None:
                    try:
                        generated = self._apply_replayed(entry, record, i, request)
                    except RunBudgetExhausted:
                        break
                    if generated is not None and generated is not _DEFERRED:
                        self.reconstitute(generated, record, i, live=False)
                    continue
                self._end_replay()
            result.solver_calls += 1
            self._probe_log = []
            obs.emit("flip_retried", parent=record.index, flip=i)
            try:
                with use_budget(escalated):
                    generated = self.backend.generate(request)
                rung = "escalated"
            except RunBudgetExhausted:
                break
            except ResourceLimitError:
                generated = None
                rung = "abandoned"
                result.abandoned_flips += 1
                if obs.metrics.enabled:
                    obs.metrics.counter("search.flips_abandoned").inc()
                obs.emit("flip_abandoned", parent=record.index, flip=i)
            self._log_decision(record.index, i, rung, generated, list(self._probe_log))
            if generated is not None:
                self.reconstitute(generated, record, i, live=False)

    # -- stage 5: reconstitute -----------------------------------------------

    @staticmethod
    def _input_key(inputs: Dict[str, int]) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted(inputs.items()))

    def reconstitute(
        self,
        generated: GeneratedTest,
        record: ExecutionRecord,
        i: int,
        live: bool,
    ) -> Optional[ExecutionRecord]:
        """Execute a generated test and fold it into the search state.

        ``live=False`` (the deferred retry phase) still records paths and
        errors but does not push the child back onto the scheduler.
        """
        with self.obs.tracer.span("reconstitute") as span:
            child = self._reconstitute(generated, record, i, live)
        self._observe_stage("reconstitute", span.elapsed)
        return child

    def _reconstitute(
        self,
        generated: GeneratedTest,
        record: ExecutionRecord,
        i: int,
        live: bool,
    ) -> Optional[ExecutionRecord]:
        result = self.result
        state = self.state
        obs = self.obs
        conditions = record.result.path_conditions
        obs.emit(
            "test_generated",
            inputs=dict(generated.inputs),
            parent=record.index,
            flip=i,
            intermediate_runs=generated.intermediate_runs,
            note=generated.note,
        )
        key = self._input_key(generated.inputs)
        if self.config.dedupe_inputs and key in state.seen_inputs:
            return None
        child = self.execute(
            generated.inputs, parent=record.index, flipped=i
        )
        if child is None:
            return None  # the child crashed; contained and bucketed
        child.intermediate_runs = generated.intermediate_runs
        child.note = generated.note
        child.diverged = self._diverged(record.result, i, child.result)
        obs.emit(
            "branch_flipped",
            parent=record.index,
            child=child.index,
            flip=i,
            branch_id=conditions[i].branch_id,
            line=conditions[i].line,
            diverged=child.diverged,
        )
        if child.diverged:
            result.divergences += 1
            obs.emit(
                "divergence_detected",
                run=child.index,
                parent=record.index,
                flip=i,
                inputs=dict(child.result.inputs),
            )
        if child.result.path_key not in state.seen_paths:
            state.seen_paths.add(child.result.path_key)
            if live:
                state.scheduler.push(
                    child, i + 1, self.derive_flips(child, i + 1)
                )
        return child

    # -- stage 1: execute ------------------------------------------------------

    def execute(
        self,
        inputs: Dict[str, int],
        parent: Optional[int],
        flipped: Optional[int],
    ) -> Optional[ExecutionRecord]:
        """Run one test; returns None when the run crashed (contained)."""
        result = self.result
        obs = self.obs
        current_fault_plan().fire("kill")
        check_interrupt()
        if consume_hang_request():
            self._hang()
        self._check_deadline()
        try:
            with obs.tracer.span("execute") as exec_span:
                run = self.engine.run(self.entry, inputs)
        except (SearchInterrupted, RunBudgetExhausted):
            raise
        except ReproError as exc:
            result.time_executing += exec_span.elapsed
            self._observe_stage("execute", exec_span.elapsed)
            self._contain_crash(exc, inputs, parent, flipped)
            return None
        result.time_executing += exec_span.elapsed
        self._observe_stage("execute", exec_span.elapsed)
        self.state.seen_inputs.add(self._input_key(inputs))
        new_samples = self.store.merge_from_run(run)
        record = ExecutionRecord(
            index=len(result.executions),
            result=run,
            parent=parent,
            flipped_index=flipped,
        )
        result.executions.append(record)
        result.runs += 1
        if result.coverage is not None:
            record.new_coverage = result.coverage.record(run.covered)
        if obs.journal.enabled:
            # the live-view heartbeat: cumulative coverage and cache
            # counters, one event per run (see repro stats --follow)
            obs.emit(
                "run_executed",
                run=record.index,
                parent=parent,
                flip=flipped,
                new_coverage=record.new_coverage,
                coverage=round(result.coverage.ratio(), 4)
                if result.coverage
                else None,
                cache=self._cache_counters(),
            )
        if new_samples and obs.journal.enabled:
            # the store appends in observation order: the last N are new
            for sample in self.store.samples()[-new_samples:]:
                obs.emit(
                    "sample_recorded",
                    run=record.index,
                    fn=sample.fn.name,
                    args=list(sample.args),
                    value=sample.value,
                )
        if run.error:
            result.errors.append(
                ErrorReport(
                    inputs=dict(inputs),
                    message=run.error_message,
                    line=run.error_line,
                    run_index=record.index,
                )
            )
            obs.emit(
                "error_found",
                run=record.index,
                inputs=dict(inputs),
                message=run.error_message,
                line=run.error_line,
            )
        self._maybe_checkpoint()
        return record

    # -- deadline and injected hangs ---------------------------------------

    def _check_deadline(self) -> None:
        """Raise :class:`DeadlineExceeded` once the wall-clock budget is gone."""
        if self._deadline is None or time.monotonic() < self._deadline:
            return
        self._deadline_expired()

    def _deadline_expired(self) -> None:
        obs = self.obs
        if obs.metrics.enabled:
            obs.metrics.counter("search.deadline_exceeded").inc()
        obs.emit(
            "deadline_exceeded",
            runs=self.result.runs,
            deadline=self.config.job_deadline,
        )
        raise DeadlineExceeded(
            f"job deadline of {self.config.job_deadline:g}s exceeded "
            f"after {self.result.runs} runs"
        )

    def _hang(self) -> None:
        """The injected ``hang`` fault: wedge at this run boundary.

        Simulates a worker stuck in an unbounded solver query: no
        progress, no heartbeats.  With a deadline armed the session
        reclaims itself (:class:`DeadlineExceeded` salvages the partial
        result); without one it wedges until an external stop request —
        in a campaign, the supervisor's watchdog — reclaims the worker.
        """
        obs = self.obs
        if obs.metrics.enabled:
            obs.metrics.counter("search.hangs_injected").inc()
        obs.emit("hang_injected", runs=self.result.runs)
        while True:
            self._check_deadline()
            check_interrupt()
            time.sleep(0.01)

    def _contain_crash(
        self,
        exc: ReproError,
        inputs: Dict[str, int],
        parent: Optional[int],
        flipped: Optional[int],
    ) -> None:
        """Record a crashing program under test as a bucketed crash outcome."""
        result = self.result
        obs = self.obs
        self.state.seen_inputs.add(self._input_key(inputs))
        run_index = result.runs
        result.runs += 1
        name = type(exc).__name__
        match = re.search(r"line (\d+)", str(exc))
        line = int(match.group(1)) if match else 0
        bucket = f"{name}@{line}"
        existing = next((c for c in result.crashes if c.bucket == bucket), None)
        if existing is not None:
            existing.count += 1
        else:
            result.crashes.append(
                CrashReport(
                    bucket=bucket,
                    error_type=name,
                    message=str(exc),
                    line=line,
                    inputs=dict(inputs),
                    run_index=run_index,
                )
            )
        if obs.metrics.enabled:
            obs.metrics.counter("search.crashes").inc()
        obs.emit(
            "crash_contained",
            run=run_index,
            bucket=bucket,
            error=name,
            line=line,
            message=str(exc),
            inputs=dict(inputs),
            parent=parent,
            flip=flipped,
        )
        self._maybe_checkpoint()

    # -- probes ------------------------------------------------------------------

    def probe(self, inputs: Dict[str, int]) -> None:
        """Execute an intermediate (multi-step) run, counting it.

        A probe vector that was already executed (as the seed, a generated
        test, or an earlier probe) is skipped outright: its samples are
        already merged into the store, so re-running it would burn run
        budget to learn nothing.  The multi-step driver then observes zero
        new samples and gives up, which is the correct verdict.

        Raises :class:`~repro.errors.RunBudgetExhausted` when the search's
        run budget is gone — the search catches it and ends the current
        strategy gracefully, preserving the partial result.
        """
        self._probe_log.append(dict(inputs))
        if (
            self.config.dedupe_inputs
            and self._input_key(inputs) in self.state.seen_inputs
        ):
            return
        if self.result.runs >= self.config.max_runs:
            raise RunBudgetExhausted("run budget exhausted during multi-step probe")
        record = self.execute(inputs, parent=None, flipped=None)
        if record is not None:
            record.note = "multi-step probe"

    # -- divergence check --------------------------------------------------------

    def _diverged(
        self, parent: ConcolicResult, flipped_index: int, child: ConcolicResult
    ) -> bool:
        """Did the child fail to follow the predicted path?

        Expected: the parent's branch trace up to the flipped condition's
        occurrence, with the outcome at that occurrence negated
        (paper §3.2's divergence check).
        """
        pos = parent.path_conditions[flipped_index].path_pos
        if pos < 0:
            return False  # flipped a non-branch condition; nothing to compare
        expected = list(parent.path[:pos])
        branch_id, taken = parent.path[pos]
        expected.append((branch_id, not taken))
        return child.path[: len(expected)] != expected
