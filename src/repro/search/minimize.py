"""Test-case minimization: shrink bug-triggering inputs for readability.

Generated error inputs often carry incidental values (solver artifacts,
leftovers from parent runs).  :func:`minimize_error_inputs` greedily
shrinks each input toward a target value (0 or a user-supplied baseline)
while the program keeps failing *with the same error*, using
per-variable binary search — the ddmin idea specialized to integer
vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..lang.ast import Program
from ..lang.interp import Interpreter
from ..lang.natives import NativeRegistry

__all__ = ["MinimizationResult", "minimize_error_inputs"]


@dataclass
class MinimizationResult:
    """Outcome of a minimization run."""

    inputs: Dict[str, int]
    original: Dict[str, int]
    runs_used: int
    #: variables whose values were changed by minimization
    changed: List[str] = field(default_factory=list)

    def distance_reduction(self) -> int:
        """Total |value - target| reduction achieved (absolute)."""
        before = sum(abs(v) for v in self.original.values())
        after = sum(abs(v) for v in self.inputs.values())
        return before - after


def minimize_error_inputs(
    program: Program,
    entry: str,
    inputs: Dict[str, int],
    natives: Optional[NativeRegistry] = None,
    targets: Optional[Dict[str, int]] = None,
    max_runs: int = 200,
    exec_backend: str = "bytecode",
) -> MinimizationResult:
    """Shrink ``inputs`` while preserving the error they trigger.

    ``targets`` gives per-variable shrink destinations (default 0).  The
    same error *message and line* must persist — minimization never trades
    one bug for another.  One executor is built (and the program
    compiled) once for the whole shrink loop.
    """
    interp = Interpreter(program, natives, backend=exec_backend)
    if exec_backend == "bytecode":
        from ..lang.bytecode import compile_program

        compile_program(program)  # compile once, not per trial run
    baseline = interp.run(entry, dict(inputs))
    if not baseline.error:
        raise ValueError("minimize_error_inputs requires error-triggering inputs")
    signature = (baseline.error_message, baseline.error_line)
    targets = dict(targets or {})
    runs = 0

    def still_fails(candidate: Dict[str, int]) -> bool:
        nonlocal runs
        if runs >= max_runs:
            return False
        runs += 1
        result = interp.run(entry, candidate)
        return result.error and (
            result.error_message, result.error_line
        ) == signature

    def per_variable_pass(current: Dict[str, int]) -> Dict[str, int]:
        """Shrink each variable independently by binary search."""
        for name in sorted(current):
            target = targets.get(name, 0)
            if current[name] == target:
                continue
            trial = dict(current)
            trial[name] = target
            if still_fails(trial):
                current = trial
                continue
            # invariant: the full distance works, distance `low_dist` fails
            direction = 1 if current[name] > target else -1
            best = current[name]
            low_dist, high_dist = 0, abs(current[name] - target)
            while low_dist + 1 < high_dist and runs < max_runs:
                mid = (low_dist + high_dist) // 2
                candidate_value = target + direction * mid
                trial = dict(current)
                trial[name] = candidate_value
                if still_fails(trial):
                    high_dist = mid
                    best = candidate_value
                else:
                    low_dist = mid
            current = dict(current)
            current[name] = best
        return current

    def uniform_shift_pass(current: Dict[str, int]) -> Dict[str, int]:
        """Shift all variables toward their targets by a common delta.

        Handles coupled variables (``y == x + 1``) that per-variable
        shrinking cannot move: a uniform translation preserves pairwise
        differences.
        """
        def shifted(base: Dict[str, int], delta: int) -> Dict[str, int]:
            out = {}
            for name, value in base.items():
                target = targets.get(name, 0)
                if value > target:
                    out[name] = max(target, value - delta)
                elif value < target:
                    out[name] = min(target, value + delta)
                else:
                    out[name] = value
            return out

        max_dist = max(
            (abs(v - targets.get(n, 0)) for n, v in current.items()),
            default=0,
        )
        delta = max_dist
        while delta > 0 and runs < max_runs:
            trial = shifted(current, delta)
            if trial != current and still_fails(trial):
                current = trial
            else:
                delta //= 2
        return current

    current = dict(inputs)
    for _ in range(3):  # alternate phases to a fixpoint
        before = dict(current)
        current = uniform_shift_pass(current)
        current = per_variable_pass(current)
        if current == before or runs >= max_runs:
            break

    changed = [n for n in sorted(inputs) if current[n] != inputs[n]]
    return MinimizationResult(
        inputs=current,
        original=dict(inputs),
        runs_used=runs,
        changed=changed,
    )
