"""Pluggable frontier scheduling for the staged search kernel.

The directed search is correct for *any* order of pending branch flips
(paper §2, Theorem 1 holds per flipped condition, not per schedule), so
the order is a policy choice.  This module isolates that choice behind
:class:`FrontierScheduler`: the kernel pushes executed runs onto the
scheduler, the scheduler decides which pending run to expand next
(:meth:`~FrontierScheduler.select`) and in which order to attempt that
run's candidate flips (:meth:`~FrontierScheduler.order_flips`).

Three schedulers ship:

``dfs``
    Bit-for-bit the classic expansion order: runs expand in creation
    order (children after their parent finishes, descending the negation
    tree in decision order), flips in decision order.  The suite digest
    under ``dfs`` is byte-identical to the pre-kernel search.
``generational``
    SAGE-style generational search: score whole runs by how many new
    branch outcomes they covered and expand *all* flips of the
    best-scoring pending run first (ties: oldest run first).
``coverage``
    Flip-level coverage guidance: prefer pending runs with the most
    candidate flips whose branch *targets* — the ``(branch_id, not
    taken)`` outcome a successful flip would exercise — are still
    uncovered per :class:`~repro.search.coverage.BranchCoverage`, and
    attempt uncovered-target flips before already-covered ones (ties
    broken deterministically by decision index).

Every scheduler is deterministic — selection is a pure function of the
pushed items and (for ``coverage``) the coverage set, both of which
evolve identically at any ``--jobs`` value — and serializable:
:meth:`~FrontierScheduler.state` snapshots the pending queue for the
checkpoint's advisory ``state.json``, and :meth:`~FrontierScheduler.restore`
rebuilds it.  Checkpoint *replay* does not need the snapshot (replaying
the decision log under the same scheduler reproduces the queue exactly);
the snapshot exists for inspection and post-mortems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (directed imports us)
    from .coverage import BranchCoverage
    from .directed import ExecutionRecord

__all__ = [
    "FrontierItem",
    "FrontierScheduler",
    "DfsScheduler",
    "GenerationalScheduler",
    "CoverageScheduler",
    "SCHEDULERS",
    "make_scheduler",
    "scheduler_names",
]


@dataclass
class FrontierItem:
    """One pending expansion: a run, its generational floor, its flips.

    ``start`` is the generational bound (children may only negate
    conditions at positions >= their creating index + 1); ``indices`` are
    the candidate flip positions, derived once when the run was pushed
    (they are a pure function of the run's recorded path constraint).
    ``seq`` is the push order — the tiebreak every scheduler falls back
    to, and the order :meth:`FrontierScheduler.select_oldest` recovers
    when a scheduler fault is contained.
    """

    record: "ExecutionRecord"
    start: int
    indices: Tuple[int, ...]
    seq: int


class FrontierScheduler:
    """Base frontier scheduler: an insertion-ordered queue with a policy.

    Subclasses override :meth:`_pick` (which pending item to expand next,
    as a position into the insertion-ordered queue) and optionally
    :meth:`order_flips` (the order to attempt one record's candidate
    flips).  Both must be deterministic functions of scheduler state —
    no wall clock, no RNG — so suites stay byte-identical across
    ``--jobs`` values and checkpoint resumes.
    """

    name = "base"

    def __init__(self, coverage: Optional["BranchCoverage"] = None) -> None:
        self.coverage = coverage
        self._items: List[FrontierItem] = []
        self._next_seq = 0
        #: times select() returned an item that was not the oldest pending
        self.promotions = 0
        #: total select() calls answered
        self.selections = 0

    # -- queue management --------------------------------------------------

    def push(
        self, record: "ExecutionRecord", start: int, indices: Sequence[int]
    ) -> FrontierItem:
        """Enqueue one executed run for later expansion."""
        item = FrontierItem(
            record=record,
            start=start,
            indices=tuple(indices),
            seq=self._next_seq,
        )
        self._next_seq += 1
        self._items.append(item)
        return item

    def select(self) -> FrontierItem:
        """Pop the next run to expand, per this scheduler's policy."""
        if not self._items:
            raise IndexError("select() on an empty frontier")
        pos = self._pick()
        item = self._items.pop(pos)
        self.selections += 1
        if pos != 0:
            self.promotions += 1
        return item

    def select_oldest(self) -> FrontierItem:
        """FIFO fallback: the containment path for a failing scheduler."""
        if not self._items:
            raise IndexError("select_oldest() on an empty frontier")
        self.selections += 1
        return self._items.pop(0)

    def _pick(self) -> int:
        """Position (into the insertion-ordered queue) of the next item."""
        raise NotImplementedError

    def order_flips(
        self, record: "ExecutionRecord", indices: Sequence[int]
    ) -> List[int]:
        """The order to attempt one record's candidate flips (default: as
        recorded, i.e. decision order)."""
        return list(indices)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    # -- serialization -----------------------------------------------------

    def state(self) -> Dict[str, object]:
        """JSON-able snapshot of the pending queue (advisory; replay
        rebuilds the queue from the decision log instead)."""
        return {
            "scheduler": self.name,
            "next_seq": self._next_seq,
            "promotions": self.promotions,
            "selections": self.selections,
            "queue": [
                {
                    "record": item.record.index,
                    "start": item.start,
                    "indices": list(item.indices),
                    "seq": item.seq,
                }
                for item in self._items
            ],
        }

    def restore(
        self,
        state: Dict[str, object],
        records: Dict[int, "ExecutionRecord"],
    ) -> None:
        """Rebuild the queue from a :meth:`state` snapshot.

        Entries whose record index is not in ``records`` (the caller's
        index -> live ExecutionRecord map) are dropped — the snapshot is
        advisory and a partial restore must not invent runs.
        """
        self._items = []
        for row in state.get("queue") or []:  # type: ignore[union-attr]
            entry = dict(row)
            index = int(entry.get("record", -1))
            if index not in records:
                continue
            self._items.append(
                FrontierItem(
                    record=records[index],
                    start=int(entry.get("start", 0)),
                    indices=tuple(
                        int(i) for i in (entry.get("indices") or [])
                    ),
                    seq=int(entry.get("seq", 0)),
                )
            )
        self._next_seq = int(state.get("next_seq") or len(self._items))
        self.promotions = int(state.get("promotions") or 0)
        self.selections = int(state.get("selections") or 0)


class DfsScheduler(FrontierScheduler):
    """The classic order: expand runs in creation order, flips in decision
    order — bit-for-bit the pre-kernel search (and its suite digest)."""

    name = "dfs"

    def _pick(self) -> int:
        return 0


class GenerationalScheduler(FrontierScheduler):
    """SAGE-style generational search: expand the pending run that covered
    the most new branch outcomes first; all of its flips run before the
    next run is considered.  Ties go to the oldest pending run."""

    name = "generational"

    def _pick(self) -> int:
        return max(
            range(len(self._items)),
            key=lambda i: (
                self._items[i].record.new_coverage,
                -self._items[i].record.index,
            ),
        )


class CoverageScheduler(FrontierScheduler):
    """Flip-level coverage guidance against the live coverage set.

    A candidate flip at decision index ``i`` targets the branch outcome
    ``(branch_id, not taken)`` of the condition it negates; the flip is
    *productive* while that outcome is uncovered.  Runs are selected by
    their number of productive pending flips (ties: oldest run), and a
    selected run's flips are attempted productive-first (ties: decision
    index).  Both rankings consult coverage at selection time only, so
    the order is a deterministic function of the search prefix.
    """

    name = "coverage"

    def _flip_uncovered(self, record: "ExecutionRecord", index: int) -> bool:
        conditions = record.result.path_conditions
        if index >= len(conditions):
            return False
        pc = conditions[index]
        if pc.branch_id < 0 or pc.path_pos < 0:
            return False  # non-branch condition: nothing to newly cover
        if self.coverage is None:
            return True
        return not self.coverage.is_covered(pc.branch_id, not pc.taken)

    def _productive_flips(self, item: FrontierItem) -> int:
        return sum(
            1 for i in item.indices if self._flip_uncovered(item.record, i)
        )

    def _pick(self) -> int:
        return max(
            range(len(self._items)),
            key=lambda i: (
                self._productive_flips(self._items[i]),
                -self._items[i].seq,
            ),
        )

    def order_flips(
        self, record: "ExecutionRecord", indices: Sequence[int]
    ) -> List[int]:
        return sorted(
            indices,
            key=lambda i: (0 if self._flip_uncovered(record, i) else 1, i),
        )


#: registered scheduler implementations, by config name
SCHEDULERS: Dict[str, type] = {
    DfsScheduler.name: DfsScheduler,
    GenerationalScheduler.name: GenerationalScheduler,
    CoverageScheduler.name: CoverageScheduler,
}


def scheduler_names() -> Tuple[str, ...]:
    """The allowed ``SearchConfig.scheduler`` values, sorted."""
    return tuple(sorted(SCHEDULERS))


def make_scheduler(
    name: str, coverage: Optional["BranchCoverage"] = None
) -> FrontierScheduler:
    """Instantiate the scheduler registered under ``name``."""
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise ReproError(
            f"unknown scheduler {name!r} "
            f"(allowed: {', '.join(scheduler_names())})"
        )
    return cls(coverage=coverage)
