"""Checkpoint/resume for the directed search.

A checkpoint directory makes an interrupted search continuable:

``meta.json``
    Session identity: entry point, concretization mode, backend name, seed
    input vector, the fault-plan spec (if any), and a format version.
``decisions.jsonl``
    **The source of truth for resume.**  One line per generation decision,
    in production order: which record/flip was attempted, which ladder rung
    answered it, the probe input vectors the multi-step driver ran, and the
    produced child inputs (or null).  Everything else a search does —
    executing programs, merging samples, updating coverage — is a
    deterministic function of these decisions plus the seed, so resuming is
    *replay*: re-execute the cheap, deterministic program runs and skip the
    expensive solver calls entirely.
``state.json``
    Advisory counters: runs so far, decisions logged, and the fault plan's
    per-site invocation counters (the search's only RNG-like state — rate
    rules are pure functions of those counters) so an injected fault
    sequence continues rather than repeats across a resume.
``samples.jsonl`` / ``frontier.jsonl`` / ``corpus.json``
    Advisory snapshots of the IOF sample table, the pending expansion
    frontier, and the test corpus — for inspection and post-mortems; replay
    rebuilds all three from the decision log.

Every write is guarded: an ``OSError`` (real or injected at the
``checkpoint`` fault site) disables the writer, counts
``search.checkpoint.errors``, and the search keeps going without
persistence — checkpointing must never take the session down.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, TextIO

from ..errors import ReproError
from ..faults import current_fault_plan

__all__ = ["CheckpointWriter", "ReplayCursor", "FORMAT_VERSION"]

FORMAT_VERSION = 1


def _emit_write_error(path: str, exc: OSError) -> None:
    """Count and journal a checkpoint write failure (once per writer)."""
    from ..obs.journal import current_journal
    from ..obs.metrics import default_registry

    registry = default_registry()
    if registry.enabled:
        registry.counter("search.checkpoint.errors").inc()
    current_journal().emit(
        "checkpoint_error", path=path, error=str(exc)
    )


class CheckpointWriter:
    """Persists search progress into a checkpoint directory.

    ``resume=True`` re-opens an existing directory's decision log in append
    mode (after the replayed prefix has been verified) instead of starting
    a fresh one.
    """

    def __init__(
        self,
        directory: str,
        meta: Optional[Dict[str, object]] = None,
        resume: bool = False,
    ) -> None:
        self.directory = directory
        self.enabled = True
        self.decisions_written = 0
        self._decisions: Optional[TextIO] = None
        try:
            current_fault_plan().fire("checkpoint")
            os.makedirs(directory, exist_ok=True)
            if not resume:
                if meta is not None:
                    self._write_json("meta.json", dict(meta, version=FORMAT_VERSION))
                self._decisions = open(
                    self._path("decisions.jsonl"), "w", encoding="utf-8"
                )
            # on resume the decision log is opened by reset_decisions()
            # once the replayed prefix is known
        except OSError as exc:
            self._disable(exc)

    # -- paths -------------------------------------------------------------

    def _path(self, name: str) -> str:
        return os.path.join(self.directory, name)

    # -- failure policy ----------------------------------------------------

    def _disable(self, exc: OSError) -> None:
        if self.enabled:
            self.enabled = False
            _emit_write_error(self.directory, exc)
        if self._decisions is not None:
            try:
                self._decisions.close()
            except OSError:
                pass
            self._decisions = None

    # -- decision log ------------------------------------------------------

    def append_decision(self, entry: Dict[str, object]) -> None:
        """Append one generation decision (flushed immediately)."""
        if not self.enabled or self._decisions is None:
            return
        try:
            current_fault_plan().fire("checkpoint")
            self._decisions.write(json.dumps(entry, default=str) + "\n")
            self._decisions.flush()
            self.decisions_written += 1
        except OSError as exc:
            self._disable(exc)

    def reset_decisions(self, consumed: Iterable[Dict[str, object]]) -> None:
        """Rewrite the decision log to exactly the replayed prefix.

        Called when a resume goes live: a full replay rewrites identical
        content; a replay that diverged truncates the stale tail so the
        log again matches what the search actually did.
        """
        if not self.enabled:
            return
        entries = list(consumed)
        try:
            current_fault_plan().fire("checkpoint")
            if self._decisions is not None:
                self._decisions.close()
            self._decisions = open(
                self._path("decisions.jsonl"), "w", encoding="utf-8"
            )
            for entry in entries:
                self._decisions.write(json.dumps(entry, default=str) + "\n")
            self._decisions.flush()
            self.decisions_written = len(entries)
        except OSError as exc:
            self._disable(exc)

    # -- periodic state ----------------------------------------------------

    def flush_state(
        self,
        runs: int,
        samples: Iterable[object],
        fault_state: Dict[str, object],
        frontier: Iterable[Dict[str, object]] = (),
        corpus: Optional[object] = None,
        search_state: Optional[Dict[str, object]] = None,
    ) -> None:
        """Write the advisory snapshots (state, samples, frontier, corpus).

        ``search_state`` is the kernel's full
        :meth:`~repro.search.kernel.SearchState.to_payload` snapshot —
        scheduler queue included — stored under the ``"search"`` key of
        ``state.json`` for inspection (replay rebuilds the live state from
        the decision log, not from this snapshot).
        """
        if not self.enabled:
            return
        try:
            current_fault_plan().fire("checkpoint")
            payload: Dict[str, object] = {
                "runs": runs,
                "decisions": self.decisions_written,
                "fault_state": fault_state,
            }
            if search_state is not None:
                payload["search"] = search_state
            self._write_json("state.json", payload)
            with open(self._path("samples.jsonl"), "w", encoding="utf-8") as fh:
                for sample in samples:
                    fh.write(
                        json.dumps(
                            {
                                "fn": sample.fn.name,  # type: ignore[attr-defined]
                                "args": list(sample.args),  # type: ignore[attr-defined]
                                "value": sample.value,  # type: ignore[attr-defined]
                            }
                        )
                        + "\n"
                    )
            with open(self._path("frontier.jsonl"), "w", encoding="utf-8") as fh:
                for row in frontier:
                    fh.write(json.dumps(row) + "\n")
            if corpus is not None:
                corpus.save(self._path("corpus.json"))  # type: ignore[attr-defined]
        except OSError as exc:
            self._disable(exc)

    def _write_json(self, name: str, payload: Dict[str, object]) -> None:
        tmp = self._path(name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, default=str)
            fh.write("\n")
        os.replace(tmp, self._path(name))

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._decisions is not None:
            try:
                self._decisions.close()
            except OSError:
                pass
            self._decisions = None


class ReplayCursor:
    """Sequential reader over a checkpoint's decision log.

    The resumed search asks :meth:`take` for the next decision each time it
    would otherwise call the solver; a match means the logged outcome is
    applied verbatim (probes re-executed, child re-executed) and the solver
    call is skipped.  A mismatch — the live expansion asked for a different
    (parent, flip) than the log recorded, which only happens if the program
    or the code changed under the checkpoint — ends the replay; the search
    goes live and the stale tail is discarded.
    """

    def __init__(
        self,
        directory: str,
        meta: Dict[str, object],
        decisions: List[Dict[str, object]],
        fault_state: Dict[str, object],
        runs: int,
    ) -> None:
        self.directory = directory
        self.meta = meta
        self.fault_state = fault_state
        self.checkpoint_runs = runs
        self._decisions = decisions
        self._pos = 0
        #: decisions actually matched by the live expansion order
        self.consumed: List[Dict[str, object]] = []
        #: True when the replay ended on a (parent, flip) mismatch
        self.diverged = False

    @classmethod
    def load(cls, directory: str) -> "ReplayCursor":
        meta_path = os.path.join(directory, "meta.json")
        try:
            with open(meta_path, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
        except (OSError, ValueError) as exc:
            raise ReproError(
                f"cannot resume from {directory!r}: {exc}"
            ) from exc
        decisions: List[Dict[str, object]] = []
        try:
            with open(
                os.path.join(directory, "decisions.jsonl"), "r", encoding="utf-8"
            ) as fh:
                for line in fh:
                    line = line.strip()
                    if line:
                        decisions.append(json.loads(line))
        except (OSError, ValueError):
            pass  # a missing/torn log means: replay nothing, start live
        fault_state: Dict[str, object] = {}
        runs = 0
        try:
            with open(
                os.path.join(directory, "state.json"), "r", encoding="utf-8"
            ) as fh:
                state = json.load(fh)
            fault_state = dict(state.get("fault_state") or {})
            runs = int(state.get("runs") or 0)
        except (OSError, ValueError):
            pass
        return cls(directory, meta, decisions, fault_state, runs)

    # -- consumption -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._decisions)

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._decisions)

    def take(self, parent: int, flip: int) -> Optional[Dict[str, object]]:
        """The logged decision for (parent, flip), or None.

        None either means the log is exhausted (clean handoff to live
        search) or the head does not match (divergence — ``diverged`` is
        set and the rest of the log is dropped).
        """
        if self.exhausted:
            return None
        head = self._decisions[self._pos]
        if int(head.get("parent", -1)) != parent or int(head.get("flip", -1)) != flip:
            self.diverged = True
            self._pos = len(self._decisions)
            return None
        self._pos += 1
        self.consumed.append(head)
        return head
