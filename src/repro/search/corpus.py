"""Test corpus management: persist, reload, and replay generated tests.

A testing session's value outlives the session: the generated input
vectors are a regression suite, and (per the paper's §7 learning idea)
their executions seed the sample store of future sessions.  A
:class:`TestCorpus` stores input vectors with their observed outcomes and
replays them against a program, reporting behavioural differences.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..lang.ast import Program
from ..lang.interp import Interpreter
from ..lang.natives import NativeRegistry
from .directed import SearchResult

__all__ = ["CorpusEntry", "TestCorpus", "ReplayReport"]


@dataclass(frozen=True)
class CorpusEntry:
    """One stored test: inputs plus the outcome observed when generated."""

    inputs: Tuple[Tuple[str, int], ...]
    returned: Optional[int]
    error: bool
    error_message: str = ""

    @classmethod
    def from_run(cls, inputs: Dict[str, int], returned, error, message=""):
        return cls(
            inputs=tuple(sorted(inputs.items())),
            returned=returned,
            error=error,
            error_message=message,
        )

    def input_dict(self) -> Dict[str, int]:
        return dict(self.inputs)


@dataclass
class ReplayReport:
    """Outcome of replaying a corpus against a program."""

    total: int = 0
    matching: int = 0
    #: entries whose outcome changed: (entry, new_returned, new_error)
    mismatches: List[Tuple[CorpusEntry, Optional[int], bool]] = field(
        default_factory=list
    )

    @property
    def all_match(self) -> bool:
        return self.matching == self.total

    def summary(self) -> str:
        return f"replayed {self.total}, matching {self.matching}, " \
               f"mismatching {len(self.mismatches)}"


class TestCorpus:
    """An ordered, deduplicated collection of test inputs with outcomes."""

    def __init__(self) -> None:
        self._entries: List[CorpusEntry] = []
        self._seen: set = set()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def add(self, entry: CorpusEntry) -> bool:
        """Add an entry; returns False if its inputs were already stored."""
        if entry.inputs in self._seen:
            return False
        self._seen.add(entry.inputs)
        self._entries.append(entry)
        return True

    def add_from_search(self, result: SearchResult) -> int:
        """Harvest every executed test of a search session."""
        added = 0
        for record in result.executions:
            run = record.result
            entry = CorpusEntry.from_run(
                run.inputs, run.returned, run.error, run.error_message
            )
            if self.add(entry):
                added += 1
        return added

    def error_entries(self) -> List[CorpusEntry]:
        """The stored bug-triggering tests."""
        return [e for e in self._entries if e.error]

    # -- persistence ------------------------------------------------------------

    def save(self, path: str) -> None:
        payload = [
            {
                "inputs": dict(e.inputs),
                "returned": e.returned,
                "error": e.error,
                "error_message": e.error_message,
            }
            for e in self._entries
        ]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)

    @classmethod
    def load(cls, path: str) -> "TestCorpus":
        corpus = cls()
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, list):
            raise ReproError(f"corpus file {path!r} is not a JSON list")
        for item in payload:
            corpus.add(
                CorpusEntry(
                    inputs=tuple(sorted(
                        (str(k), int(v)) for k, v in item["inputs"].items()
                    )),
                    returned=item.get("returned"),
                    error=bool(item.get("error", False)),
                    error_message=item.get("error_message", ""),
                )
            )
        return corpus

    # -- replay ------------------------------------------------------------------

    def replay(
        self,
        program: Program,
        entry_fn: str,
        natives: Optional[NativeRegistry] = None,
        exec_backend: str = "bytecode",
    ) -> ReplayReport:
        """Re-execute every stored test; report outcome drift.

        A mismatch means the program's behaviour changed since the corpus
        was recorded — a regression (or a fix) worth inspecting.  One
        executor is built (and the program compiled) once, outside the
        per-entry loop.
        """
        interp = Interpreter(program, natives, backend=exec_backend)
        if exec_backend == "bytecode":
            from ..lang.bytecode import compile_program

            compile_program(program)  # compile once, not per entry
        report = ReplayReport()
        for entry in self._entries:
            run = interp.run(entry_fn, entry.input_dict())
            report.total += 1
            if run.error == entry.error and run.returned == entry.returned:
                report.matching += 1
            else:
                report.mismatches.append((entry, run.returned, run.error))
        return report
