"""Markdown session reports for testing campaigns.

Renders a :class:`~repro.search.directed.SearchResult` (plus the sample
store and program metadata) into a self-contained markdown document:
summary, discovered errors with replay commands, branch coverage with
missing outcomes, the execution genealogy, and the learned IOF samples.
Wired into the CLI as ``--report out.md``.
"""

from __future__ import annotations

from typing import Optional

from ..core.samples import SampleStore
from ..lang.ast import Program
from .directed import SearchResult

__all__ = ["render_report"]


def render_report(
    result: SearchResult,
    program: Program,
    entry: str,
    mode: str = "",
    store: Optional[SampleStore] = None,
    title: str = "Testing session report",
) -> str:
    """Render a full markdown report of one search session."""
    lines = [f"# {title}", ""]
    lines.append(f"- entry function: `{entry}`")
    if mode:
        lines.append(f"- engine: `{mode}`")
    lines.append(f"- executions: {result.runs}")
    lines.append(f"- distinct paths: {result.distinct_paths}")
    lines.append(f"- solver calls: {result.solver_calls}")
    lines.append(f"- divergences: {result.divergences}")
    if result.time_total:
        lines.append(
            f"- wall time: {result.time_total:.2f}s "
            f"(executing {result.time_executing:.2f}s, "
            f"generating {result.time_generating:.2f}s)"
        )
    lines.append("")

    lines.append("## Errors")
    lines.append("")
    if not result.errors:
        lines.append("No errors found within the run budget.")
    else:
        for i, err in enumerate(result.errors):
            lines.append(f"### Error {i + 1}: {err.message}")
            lines.append("")
            lines.append(f"- line: {err.line}")
            lines.append(f"- found at run: #{err.run_index}")
            inputs = ",".join(f"{k}={v}" for k, v in sorted(err.inputs.items()))
            lines.append(f"- inputs: `{inputs}`")
            lines.append(
                f"- replay: `python -m repro run <program> --seed {inputs} "
                f"--max-runs 1`"
            )
            lines.append("")

    lines.append("## Branch coverage")
    lines.append("")
    if result.coverage is not None:
        cov = result.coverage
        lines.append(
            f"{len(cov.covered)}/{cov.total_outcomes} outcomes "
            f"({cov.ratio():.0%})"
        )
        missing = cov.missing()
        if missing:
            lines.append("")
            lines.append("Missing outcomes:")
            by_id = {bid: line for bid, line in program.branch_sites()}
            for branch_id, polarity in missing:
                side = "then" if polarity else "else"
                lines.append(
                    f"- branch {branch_id} ({side} side), "
                    f"line {by_id.get(branch_id, '?')}"
                )
        lines.append("")
        if cov.history:
            lines.append("Coverage growth (run, outcomes):")
            shown = cov.history[:: max(1, len(cov.history) // 12)]
            lines.append(
                ", ".join(f"({r}, {c})" for r, c in shown)
            )
        lines.append("")

    if store is not None and len(store) > 0:
        lines.append("## Learned function samples (IOF)")
        lines.append("")
        for sample in store.samples()[:40]:
            lines.append(f"- `{sample}`")
        if len(store) > 40:
            lines.append(f"- ... ({len(store) - 40} more)")
        lines.append("")

    lines.append("## Execution genealogy")
    lines.append("")
    lines.append("```")
    lines.append(result.tree_report(max_rows=60))
    lines.append("```")
    lines.append("")
    return "\n".join(lines)
