"""Parallel frontier expansion: speculative, deterministic branch-flip planning.

The directed search expands one execution record by asking the backend for
an input vector per negatable condition.  Planning those flips is pure —
the expensive solver work depends only on the record's path constraint and
a snapshot of the sample store — while *finishing* a flip (recording the
verdict, running probe tests, executing the child) mutates search state and
must stay serial.  This module splits the two:

- ``plan``: runs on a worker thread against a private :class:`TermManager`
  built by :meth:`~repro.solver.terms.TermManager.import_term`, so worker
  threads never touch the engine's shared manager.  Imported managers
  assign term ids deterministically (same structure → same ids), so a plan
  computed on a worker is bit-for-bit the plan a serial run would compute.
- ``finish``: applied by the search loop in flip order — (run index, branch
  index) — on the main thread.  Higher-order plans carry the sample-store
  length they were planned against; if the store grew in the meantime
  (probes, child executions), the plan is recomputed synchronously against
  the live store, which is exactly what a serial run would have used.

Consequently the generated test suite is byte-identical for every
``--jobs`` value: parallelism only changes *when* speculative work happens,
never which results are consumed.  (Metrics may differ — a stale
speculative plan costs an extra recorded solver query.)  Backends without a
registered planner fall back to inline ``generate()`` at consume time,
which is serial and therefore trivially deterministic too.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ResourceLimitError
from ..faults import current_fault_plan
from ..solver.terms import Term, TermManager
from ..solver.validity import Sample
from .backends import ExistentialBackend, QuantifierFreeBackend
from .request import GeneratedTest, GenerationRequest, TestGenBackend

__all__ = ["FrontierExpander", "PlannedRecord", "import_request"]


def import_request(
    request: GenerationRequest,
) -> Tuple[TermManager, GenerationRequest]:
    """Deep-copy ``request`` into a fresh :class:`TermManager`.

    Path-condition terms and input variables are imported (function symbols
    stay shared — they are immutable and identity-keyed everywhere), so the
    copy can be solved on a worker thread without synchronizing on the
    engine's manager, and term ids in the copy depend only on the request's
    structure.
    """
    local = TermManager()
    cache: Dict[Term, Term] = {}
    conditions = [
        dataclasses.replace(pc, term=local.import_term(pc.term, cache))
        for pc in request.conditions
    ]
    input_vars = {
        name: local.import_term(var, cache)
        for name, var in request.input_vars.items()
    }
    return local, GenerationRequest(
        conditions=conditions,
        index=request.index,
        input_vars=input_vars,
        defaults=dict(request.defaults),
    )


#: a plan function (pure, thread-safe) and its serial finisher
_Planner = Tuple[
    Callable[[GenerationRequest, List[Sample]], object],
    Callable[[GenerationRequest, object], Optional[GeneratedTest]],
]


def _satisfiability_planner(backend: TestGenBackend, factory) -> _Planner:
    """Planner for backends whose generate() is already pure: clone the
    backend onto the imported manager and run it to completion."""

    def plan(request: GenerationRequest, samples: List[Sample]) -> object:
        local_tm, local_request = import_request(request)
        worker = factory(local_tm)
        return worker.generate(local_request), worker.solver_calls

    def finish(request: GenerationRequest, planned: object) -> Optional[GeneratedTest]:
        test, calls = planned  # type: ignore[misc]
        backend.solver_calls += calls
        return test

    return plan, finish


def _higher_order_planner(backend) -> _Planner:
    from ..core.hotg import plan_validity  # deferred: core imports search

    def plan(request: GenerationRequest, samples: List[Sample]) -> object:
        local_tm, local_request = import_request(request)
        verdict = plan_validity(
            local_tm,
            local_request,
            samples,
            use_antecedent=backend.use_antecedent,
            max_candidates=backend.max_candidates,
        )
        return verdict, len(samples)

    def finish(request: GenerationRequest, planned: object) -> Optional[GeneratedTest]:
        verdict, store_len = planned  # type: ignore[misc]
        if store_len != len(backend.store):
            # the store grew since this plan was made (a probe or a child
            # execution recorded samples): recompute against the live store,
            # exactly as the serial search would have
            verdict, _ = plan(request, backend.store.samples())
        return backend.apply_plan(request, verdict)

    return plan, finish


def _planner_for(backend: TestGenBackend) -> Optional[_Planner]:
    """The (plan, finish) pair for backends with a known pure planning half.

    Matching is by exact type: a subclass may have overridden ``generate``
    with logic the planner would silently skip.
    """
    if type(backend) is QuantifierFreeBackend:
        retain = backend.retain_defaults
        return _satisfiability_planner(
            backend, lambda tm: QuantifierFreeBackend(tm, retain_defaults=retain, use_session=False)
        )
    if type(backend) is ExistentialBackend:
        return _satisfiability_planner(
            backend, lambda tm: ExistentialBackend(tm, use_session=False)
        )
    try:
        from ..core.hotg import HigherOrderBackend  # deferred: core imports search
    except ImportError:  # pragma: no cover - core is always present
        return None
    if type(backend) is HigherOrderBackend:
        return _higher_order_planner(backend)
    return None


class PlannedRecord:
    """The flips of one execution record, planned (or to be planned).

    ``produce(k)`` returns the generated test for the record's k-th
    candidate flip, in any order the caller likes — though the search
    consumes them strictly in flip order to keep finishing deterministic.
    """

    def __init__(
        self,
        expander: "FrontierExpander",
        requests: Sequence[GenerationRequest],
        futures: Optional[List["Future[object]"]],
    ) -> None:
        self._expander = expander
        self._requests = list(requests)
        self._futures = futures

    def __len__(self) -> int:
        return len(self._requests)

    def produce(self, k: int) -> Optional[GeneratedTest]:
        future = self._futures[k] if self._futures is not None else None
        return self._expander._produce(self._requests[k], future)


class FrontierExpander:
    """Dispatches flip planning to a bounded worker pool.

    With ``jobs == 1`` (or an unrecognized backend) nothing is speculated:
    plans are computed lazily on the main thread when consumed, which is
    byte-for-byte the serial search.  With ``jobs > 1`` every flip of a
    record is submitted to the pool up front and results are merged in flip
    order by the search loop.
    """

    def __init__(
        self, backend: TestGenBackend, jobs: int = 1, scheduler: str = ""
    ) -> None:
        self.backend = backend
        self.jobs = max(1, int(jobs))
        #: name of the frontier scheduler driving this expander; requests
        #: arrive already in the scheduler's flip order, and the name tags
        #: worker-failure journal events for post-mortems
        self.scheduler = scheduler
        self._planner = _planner_for(backend)
        self._pool: Optional[ThreadPoolExecutor] = None
        if self.jobs > 1 and self._planner is not None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.jobs, thread_name_prefix="repro-flip"
            )

    def plan_record(
        self, requests: Sequence[GenerationRequest], speculate: bool = True
    ) -> PlannedRecord:
        """Plan every candidate flip of one record (speculatively if pooled).

        ``speculate=False`` skips the worker pool for this record: plans are
        computed lazily on the main thread at consume time (the checkpoint
        replay uses this — replayed flips never consult the solver at all).
        """
        futures: Optional[List["Future[object]"]] = None
        if (
            speculate
            and self._pool is not None
            and self._planner is not None
            and requests
        ):
            plan, _ = self._planner
            snapshot = self._samples()
            futures = [
                self._pool.submit(self._speculate, plan, r, snapshot)
                for r in requests
            ]
        return PlannedRecord(self, requests, futures)

    @staticmethod
    def _speculate(plan, request: GenerationRequest, samples: List[Sample]) -> object:
        """One worker-thread planning task (with its fault-injection site)."""
        current_fault_plan().fire("worker")
        from time import perf_counter

        from ..obs.metrics import default_registry

        started = perf_counter()
        planned = plan(request, samples)
        registry = default_registry()
        if registry.enabled:
            registry.histogram("kernel.speculate_seconds").observe(
                perf_counter() - started
            )
        return planned

    def _produce(
        self, request: GenerationRequest, future: Optional["Future[object]"]
    ) -> Optional[GeneratedTest]:
        if self._planner is None:
            return self.backend.generate(request)
        plan, finish = self._planner
        if future is not None:
            try:
                planned = future.result()
            except ResourceLimitError:
                # a budget exhausted on a worker is a property of the query,
                # not of the worker: surface it to the degradation ladder
                raise
            except Exception as exc:
                # the speculative worker died (crash, injected fault): the
                # plan is pure, so recomputing it serially yields exactly
                # the result the worker would have produced
                from ..obs.journal import current_journal
                from ..obs.metrics import default_registry

                registry = default_registry()
                if registry.enabled:
                    registry.counter("search.parallel.worker_failures").inc()
                current_journal().emit(
                    "worker_failure",
                    flip=request.index,
                    scheduler=self.scheduler,
                    error=type(exc).__name__,
                    message=str(exc),
                )
                planned = plan(request, self._samples())
        else:
            planned = plan(request, self._samples())
        return finish(request, planned)

    def _samples(self) -> List[Sample]:
        store = getattr(self.backend, "store", None)
        return store.samples() if store is not None else []

    def shutdown(self) -> None:
        """Discard pending speculation (consumed results are unaffected)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
