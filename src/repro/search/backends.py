"""Test-generation backends: turn an alternate path constraint into inputs.

The directed search (:mod:`repro.search.directed`) is agnostic to *how* a
new input vector is derived from a path constraint; a backend encapsulates
that step.  Three backends reproduce the paper's three worlds:

- :class:`QuantifierFreeBackend` — the DART way: satisfiability of the
  quantifier-free ``ALT(pc)`` (used with the concretization modes, whose
  constraints are UF-free).
- :class:`ExistentialBackend` — models *static test generation* (paper §1
  and §4.2): everything, including unknown functions, is existentially
  quantified, so the solver may "invent" function behaviour and produce
  unusable tests.  Divergence statistics then quantify the §1 claim.
- ``HigherOrderBackend`` (in :mod:`repro.core.hotg`) — the paper's
  contribution: validity proofs over universally quantified UFs.
"""

from __future__ import annotations

from typing import List, Optional

from ..solver.session import PrefixSession
from ..solver.smt import Solver
from ..solver.terms import Term, TermManager
from ..core.post import alternate_constraint
from .request import GeneratedTest, GenerationRequest, TestGenBackend


def _alternate_prefix(tm: TermManager, request: GenerationRequest) -> List[Term]:
    """``ALT(pc)`` as a list of conjuncts, for assertion-stack reuse.

    Sibling flips of one path share every conjunct up to the flip point, so
    a :class:`~repro.solver.session.PrefixSession` asserts the common part
    once and only re-encodes the tail that actually changed.
    """
    if request.conditions[request.index].is_concretization:
        raise ValueError("cannot negate a concretization constraint")
    prefix = [pc.term for pc in request.conditions[: request.index]]
    prefix.append(tm.mk_not(request.conditions[request.index].term))
    return prefix

__all__ = [
    "GenerationRequest",
    "GeneratedTest",
    "TestGenBackend",
    "QuantifierFreeBackend",
    "ExistentialBackend",
]


class QuantifierFreeBackend:
    """Classic DART test generation: solve the quantifier-free ``ALT(pc)``.

    Constraints produced by the concretization modes contain no UF symbols,
    so a plain satisfiability check suffices.  Unconstrained inputs keep
    their previous concrete values (paper §2: inputs are *variants* of the
    previous vector).
    """

    name = "quantifier-free"

    def __init__(
        self,
        manager: TermManager,
        retain_defaults: bool = True,
        use_session: bool = True,
    ) -> None:
        self.tm = manager
        self.solver_calls = 0
        #: first try a model that keeps every input at its previous value
        #: except where the alternate constraint forces otherwise — tests
        #: stay "variants of the previous inputs" (paper §2)
        self.retain_defaults = retain_defaults
        #: one incremental session for the whole search: the alternate
        #: constraint is asserted once per flip and every retention pin is
        #: solved as an assumption delta, while sibling flips reuse the
        #: shared path-constraint prefix already on the assertion stack
        self._session: Optional[PrefixSession] = (
            PrefixSession(manager) if use_session else None
        )

    #: cap on extra solver calls spent retaining defaults per generation
    MAX_RETENTION_CALLS = 8

    def generate(self, request: GenerationRequest) -> Optional[GeneratedTest]:
        if self._session is not None:
            prefix = _alternate_prefix(self.tm, request)
            check = lambda *extra: self._session.solve(prefix, *extra)
        else:
            solver = Solver(self.tm)
            solver.add(alternate_constraint(self.tm, request.conditions, request.index))
            check = solver.check
        self.solver_calls += 1
        result = check()
        if not result.sat or result.model is None:
            return None

        if self.retain_defaults:
            # greedily pin inputs back to their previous values where the
            # constraint allows it, so the generated test differs from its
            # parent only where the flipped branch demands
            kept: list = []
            calls = 0
            for name, var in sorted(request.input_vars.items()):
                if name not in request.defaults:
                    continue
                default = request.defaults[name]
                if result.model.ints.get(name, default) == default:
                    continue  # already at the old value
                if calls >= self.MAX_RETENTION_CALLS:
                    break
                pin = self.tm.mk_eq(var, self.tm.mk_int(default))
                calls += 1
                self.solver_calls += 1
                attempt = check(*(kept + [pin]))
                if attempt.sat and attempt.model is not None:
                    kept.append(pin)
                    result = attempt
        return self._to_test(result, request)

    def _to_test(self, result, request: GenerationRequest) -> GeneratedTest:
        inputs = {}
        for name in request.input_vars:
            if name in result.model.ints:
                inputs[name] = result.model.ints[name]
            else:
                inputs[name] = request.defaults.get(name, 0)
        return GeneratedTest(inputs=inputs, note="satisfiability")


class ExistentialBackend:
    """Static test generation: satisfiability with *existential* UFs.

    This is the paper's §4.2 foil: "checking the satisfiability of the
    formula x = h(y) (where h, x and y are thus all implicitly quantified
    existentially) may return satisfying assignments that are unusable for
    test generation since the existential quantifier over h allows the
    constraint solver to invent some specific arbitrary function h".

    Our :class:`~repro.solver.smt.Solver` Ackermannizes UF applications, so
    it implements exactly that existential semantics.  The divergence rate
    of tests generated this way measures how unusable they are.
    """

    name = "existential (static)"

    def __init__(self, manager: TermManager, use_session: bool = True) -> None:
        self.tm = manager
        self.solver_calls = 0
        self._session: Optional[PrefixSession] = (
            PrefixSession(manager) if use_session else None
        )

    def generate(self, request: GenerationRequest) -> Optional[GeneratedTest]:
        self.solver_calls += 1
        if self._session is not None:
            result = self._session.solve(_alternate_prefix(self.tm, request))
        else:
            solver = Solver(self.tm)
            solver.add(alternate_constraint(self.tm, request.conditions, request.index))
            result = solver.check()
        if not result.sat or result.model is None:
            return None
        inputs = {}
        for name in request.input_vars:
            if name in result.model.ints:
                inputs[name] = result.model.ints[name]
            else:
                inputs[name] = request.defaults.get(name, 0)
        return GeneratedTest(inputs=inputs, note="existential satisfiability")
