"""Test-generation backends: turn an alternate path constraint into inputs.

The directed search (:mod:`repro.search.directed`) is agnostic to *how* a
new input vector is derived from a path constraint; a backend encapsulates
that step.  Three backends reproduce the paper's three worlds:

- :class:`QuantifierFreeBackend` — the DART way: satisfiability of the
  quantifier-free ``ALT(pc)`` (used with the concretization modes, whose
  constraints are UF-free).
- :class:`ExistentialBackend` — models *static test generation* (paper §1
  and §4.2): everything, including unknown functions, is existentially
  quantified, so the solver may "invent" function behaviour and produce
  unusable tests.  Divergence statistics then quantify the §1 claim.
- ``HigherOrderBackend`` (in :mod:`repro.core.hotg`) — the paper's
  contribution: validity proofs over universally quantified UFs.
"""

from __future__ import annotations

from typing import Optional

from ..solver.smt import Solver
from ..solver.terms import TermManager
from ..core.post import alternate_constraint
from .request import GeneratedTest, GenerationRequest, TestGenBackend

__all__ = [
    "GenerationRequest",
    "GeneratedTest",
    "TestGenBackend",
    "QuantifierFreeBackend",
    "ExistentialBackend",
]


class QuantifierFreeBackend:
    """Classic DART test generation: solve the quantifier-free ``ALT(pc)``.

    Constraints produced by the concretization modes contain no UF symbols,
    so a plain satisfiability check suffices.  Unconstrained inputs keep
    their previous concrete values (paper §2: inputs are *variants* of the
    previous vector).
    """

    name = "quantifier-free"

    def __init__(self, manager: TermManager, retain_defaults: bool = True) -> None:
        self.tm = manager
        self.solver_calls = 0
        #: first try a model that keeps every input at its previous value
        #: except where the alternate constraint forces otherwise — tests
        #: stay "variants of the previous inputs" (paper §2)
        self.retain_defaults = retain_defaults

    #: cap on extra solver calls spent retaining defaults per generation
    MAX_RETENTION_CALLS = 8

    def generate(self, request: GenerationRequest) -> Optional[GeneratedTest]:
        alt = alternate_constraint(self.tm, request.conditions, request.index)
        solver = Solver(self.tm)
        solver.add(alt)
        self.solver_calls += 1
        result = solver.check()
        if not result.sat or result.model is None:
            return None

        if self.retain_defaults:
            # greedily pin inputs back to their previous values where the
            # constraint allows it, so the generated test differs from its
            # parent only where the flipped branch demands
            kept: list = []
            calls = 0
            for name, var in sorted(request.input_vars.items()):
                if name not in request.defaults:
                    continue
                default = request.defaults[name]
                if result.model.ints.get(name, default) == default:
                    continue  # already at the old value
                if calls >= self.MAX_RETENTION_CALLS:
                    break
                pin = self.tm.mk_eq(var, self.tm.mk_int(default))
                calls += 1
                self.solver_calls += 1
                attempt = solver.check(*(kept + [pin]))
                if attempt.sat and attempt.model is not None:
                    kept.append(pin)
                    result = attempt
        return self._to_test(result, request)

    def _to_test(self, result, request: GenerationRequest) -> GeneratedTest:
        inputs = {}
        for name in request.input_vars:
            if name in result.model.ints:
                inputs[name] = result.model.ints[name]
            else:
                inputs[name] = request.defaults.get(name, 0)
        return GeneratedTest(inputs=inputs, note="satisfiability")


class ExistentialBackend:
    """Static test generation: satisfiability with *existential* UFs.

    This is the paper's §4.2 foil: "checking the satisfiability of the
    formula x = h(y) (where h, x and y are thus all implicitly quantified
    existentially) may return satisfying assignments that are unusable for
    test generation since the existential quantifier over h allows the
    constraint solver to invent some specific arbitrary function h".

    Our :class:`~repro.solver.smt.Solver` Ackermannizes UF applications, so
    it implements exactly that existential semantics.  The divergence rate
    of tests generated this way measures how unusable they are.
    """

    name = "existential (static)"

    def __init__(self, manager: TermManager) -> None:
        self.tm = manager
        self.solver_calls = 0

    def generate(self, request: GenerationRequest) -> Optional[GeneratedTest]:
        alt = alternate_constraint(self.tm, request.conditions, request.index)
        solver = Solver(self.tm)
        solver.add(alt)
        self.solver_calls += 1
        result = solver.check()
        if not result.sat or result.model is None:
            return None
        inputs = {}
        for name in request.input_vars:
            if name in result.model.ints:
                inputs[name] = result.model.ints[name]
            else:
                inputs[name] = request.defaults.get(name, 0)
        return GeneratedTest(inputs=inputs, note="existential satisfiability")
