"""Systematic dynamic test generation: the directed search (paper §2).

:class:`DirectedSearch` implements the DART/SAGE-style loop: run the
program concolically, pick a recorded condition, ask a backend for inputs
that flip it, run again, repeat — tracking coverage, found errors, and
*divergences* (runs that failed to follow the path their constraint
predicted, the tell-tale of unsound path constraints, §3.2).

The expansion order is generational (each child may only negate conditions
at positions ≥ its creating index + 1 in its own constraint), which
guarantees progress and mirrors the search used by the whitebox fuzzing
work the paper builds on.

Production hardening (docs/ROBUSTNESS.md) rides on top of the classic
loop without changing the generated suite on the happy path:

- **Crash containment** — a program under test that crashes the
  interpreter (step-budget blowup, array misuse, division by zero) becomes
  a recorded :class:`CrashReport`, deduplicated by ``error class @ line``
  bucket, instead of aborting the search.
- **Degradation ladder** — a solver query that exhausts its
  :class:`~repro.solver.budget.SolverBudget` is retried down a ladder of
  cheaper approximations (sound concretization → unsound concretization →
  defer to an end-of-search retry with an escalated budget → abandon).
- **Checkpoint/resume** — generation decisions are journaled to a
  checkpoint directory; resuming replays the log (re-executing the cheap,
  deterministic program runs and skipping all solving) and produces the
  same suite an uninterrupted search would have.
"""

from __future__ import annotations

import dataclasses
import os
import re
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import (
    ReproError,
    ResourceLimitError,
    RunBudgetExhausted,
    SearchInterrupted,
)
from ..faults import current_fault_plan, set_fault_plan
from ..lang.ast import Program
from ..lang.natives import NativeRegistry
from ..obs import Observability
from ..obs.journal import set_current_journal
from ..obs.metrics import set_default_registry
from ..solver.budget import DEFAULT_BUDGET, DEGRADED_BUDGET, use_budget
from ..solver.terms import Term, TermManager
from ..symbolic.concolic import (
    ConcolicEngine,
    ConcolicResult,
    ConcretizationMode,
    PathCondition,
)
from ..core.post import negatable_indices
from ..core.samples import SampleStore
from .backends import (
    GeneratedTest,
    GenerationRequest,
    QuantifierFreeBackend,
    TestGenBackend,
)
from .checkpoint import CheckpointWriter, ReplayCursor
from .coverage import BranchCoverage
from .parallel import FrontierExpander, PlannedRecord

__all__ = [
    "SearchConfig",
    "CrashReport",
    "ErrorReport",
    "ExecutionRecord",
    "SearchResult",
    "DirectedSearch",
]

#: sentinel: the flip was queued for the end-of-search retry phase
_DEFERRED = object()
#: sentinel: the run budget is gone; end the search gracefully
_STOP = object()


@dataclass
class SearchConfig:
    """Tunables of the directed search."""

    #: maximum program executions (including probes and divergent runs)
    max_runs: int = 200
    #: stop as soon as the first error is found
    stop_on_first_error: bool = False
    #: per-strategy budget of intermediate multi-step runs
    max_multistep_probes: int = 4
    #: skip generating an input vector that was already executed
    dedupe_inputs: bool = True
    #: give up expanding a single run beyond this many conditions
    max_conditions_per_run: int = 64
    #: frontier scheduling: "fifo" (classic generational order) or
    #: "coverage" (expand runs that discovered new branch outcomes first,
    #: the heuristic whitebox fuzzers use to steer large searches)
    frontier: str = "fifo"
    #: worker threads planning branch flips speculatively; the generated
    #: suite is identical for every value (see :mod:`repro.search.parallel`)
    jobs: int = 1
    #: directory to persist checkpoints into (None disables checkpointing)
    checkpoint_dir: Optional[str] = None
    #: flush the advisory checkpoint snapshots every N runs (the decision
    #: log itself is appended and flushed per decision)
    checkpoint_every: int = 20
    #: checkpoint directory to resume from (replays its decision log)
    resume_from: Optional[str] = None
    #: budget multiplier for the end-of-search retry of deferred flips
    defer_scale: float = 4.0

    #: legacy keyword spellings accepted (once, with a warning) by
    #: :meth:`from_options` — kept so pre-facade call sites don't break
    _OPTION_ALIASES = {
        "stop_on_error": "stop_on_first_error",
        "threads": "jobs",
        "frontier_policy": "frontier",
        "checkpoint": "checkpoint_dir",
        "resume": "resume_from",
    }

    @classmethod
    def from_options(cls, **options: object) -> "SearchConfig":
        """Build a validated config from keyword options.

        This is the one supported constructor for callers outside the
        package (the :mod:`repro.api` facade, the CLI, and the benchmark
        drivers all go through it): unknown keys raise :class:`TypeError`
        instead of being silently dropped, values are range-checked, and
        the legacy keyword aliases that drifted into ad-hoc call sites
        (``stop_on_error``, ``threads``, ``frontier_policy``,
        ``checkpoint``, ``resume``) keep working behind a one-shot
        :class:`DeprecationWarning`.
        """
        import warnings

        known = {f.name for f in dataclasses.fields(cls) if not f.name.startswith("_")}
        resolved: Dict[str, object] = {}
        for key, value in options.items():
            canonical = cls._OPTION_ALIASES.get(key, key)
            if canonical != key:
                if key not in _WARNED_ALIASES:
                    _WARNED_ALIASES.add(key)
                    warnings.warn(
                        f"SearchConfig option {key!r} is deprecated; "
                        f"use {canonical!r}",
                        DeprecationWarning,
                        stacklevel=2,
                    )
            if canonical not in known:
                raise TypeError(
                    f"unknown SearchConfig option {key!r} "
                    f"(known: {', '.join(sorted(known))})"
                )
            if canonical in resolved:
                raise TypeError(
                    f"SearchConfig option {canonical!r} given twice "
                    f"(alias collision)"
                )
            resolved[canonical] = value
        config = cls(**resolved)  # type: ignore[arg-type]
        config.validate()
        return config

    def validate(self) -> "SearchConfig":
        """Range-check the tunables; returns self for chaining."""
        if self.max_runs < 1:
            raise ReproError(f"max_runs must be >= 1 (got {self.max_runs})")
        if self.jobs < 1:
            raise ReproError(f"jobs must be >= 1 (got {self.jobs})")
        if self.frontier not in ("fifo", "coverage"):
            raise ReproError(
                f"frontier must be 'fifo' or 'coverage' (got {self.frontier!r})"
            )
        if self.checkpoint_every < 1:
            raise ReproError(
                f"checkpoint_every must be >= 1 (got {self.checkpoint_every})"
            )
        if self.max_conditions_per_run < 1:
            raise ReproError(
                "max_conditions_per_run must be >= 1 "
                f"(got {self.max_conditions_per_run})"
            )
        if self.max_multistep_probes < 0:
            raise ReproError(
                f"max_multistep_probes must be >= 0 (got {self.max_multistep_probes})"
            )
        if self.defer_scale <= 0:
            raise ReproError(f"defer_scale must be > 0 (got {self.defer_scale})")
        return self


#: aliases already warned about this process (one warning per spelling)
_WARNED_ALIASES: Set[str] = set()


@dataclass
class ErrorReport:
    """One discovered error (``error()`` statement or failed assert)."""

    inputs: Dict[str, int]
    message: str
    line: int
    run_index: int

    def __str__(self) -> str:
        return (
            f"error at line {self.line}: {self.message!r} with inputs "
            f"{self.inputs} (run #{self.run_index})"
        )


@dataclass
class CrashReport:
    """A contained crash of the program under test (not a found error).

    ``error()`` statements and failed asserts are *findings* the search
    exists to produce (:class:`ErrorReport`); a crash is the interpreter
    itself giving up on a generated input — step-budget blowup, array
    misuse.  (Division by zero is a *modeled* runtime error — the engine
    turns it into a finding, not a crash.)  Crashes are triaged by
    ``bucket``
    (exception class @ MiniC line) so repeated instances of one defect
    collapse into a single record with a count.
    """

    bucket: str
    error_type: str
    message: str
    line: int
    #: the first input vector that hit this bucket
    inputs: Dict[str, int]
    #: run number of the first instance
    run_index: int
    count: int = 1

    def __str__(self) -> str:
        return (
            f"crash [{self.bucket}] x{self.count}: {self.message!r} "
            f"first with inputs {self.inputs} (run #{self.run_index})"
        )


@dataclass
class ExecutionRecord:
    """Bookkeeping for one executed test."""

    index: int
    result: ConcolicResult
    parent: Optional[int] = None
    flipped_index: Optional[int] = None
    diverged: bool = False
    intermediate_runs: int = 0
    #: branch outcomes this run covered for the first time
    new_coverage: int = 0
    note: str = ""


@dataclass
class SearchResult:
    """Everything a search session produced."""

    executions: List[ExecutionRecord] = field(default_factory=list)
    errors: List[ErrorReport] = field(default_factory=list)
    #: contained crashes of the program under test, deduplicated by bucket
    crashes: List[CrashReport] = field(default_factory=list)
    coverage: Optional[BranchCoverage] = None
    divergences: int = 0
    solver_calls: int = 0
    runs: int = 0
    distinct_paths: int = 0
    #: degradation-ladder downgrades per rung ("sound"/"unsound")
    downgrades: Dict[str, int] = field(default_factory=dict)
    #: flips pushed to the end-of-search escalated retry phase
    deferred_flips: int = 0
    #: deferred flips that failed even the escalated retry
    abandoned_flips: int = 0
    #: decisions replayed from a checkpoint instead of re-solved
    replayed_decisions: int = 0
    #: the session ended on a :class:`~repro.errors.SearchInterrupted`
    interrupted: bool = False
    #: wall-clock seconds spent in program execution vs test generation
    time_total: float = 0.0
    time_executing: float = 0.0
    time_generating: float = 0.0

    @property
    def found_error(self) -> bool:
        return bool(self.errors)

    def summary(self) -> str:
        cov = f"{self.coverage.ratio():.0%}" if self.coverage else "n/a"
        extra = ""
        if self.crashes:
            extra += f" crashes={len(self.crashes)}"
        if self.downgrades:
            extra += f" downgrades={sum(self.downgrades.values())}"
        if self.interrupted:
            extra += " interrupted"
        return (
            f"runs={self.runs} paths={self.distinct_paths} "
            f"errors={len(self.errors)} divergences={self.divergences} "
            f"coverage={cov}" + extra
        )

    def tree_report(self, max_rows: int = 50) -> str:
        """Human-readable genealogy of the executed tests.

        One row per execution: index, parent run and flipped condition,
        inputs, and what the run achieved (new coverage, error, probe,
        divergence).
        """
        lines = ["idx  parent  flip  inputs"]
        for record in self.executions[:max_rows]:
            parent = "-" if record.parent is None else str(record.parent)
            flip = "-" if record.flipped_index is None else str(record.flipped_index)
            badges = []
            if record.result.error:
                badges.append(f"ERROR({record.result.error_message})")
            if record.diverged:
                badges.append("DIVERGED")
            if record.new_coverage:
                badges.append(f"+{record.new_coverage}cov")
            if record.note:
                badges.append(record.note)
            badge = ("  " + " ".join(badges)) if badges else ""
            lines.append(
                f"{record.index:<4} {parent:>6}  {flip:>4}  "
                f"{record.result.inputs}{badge}"
            )
        if len(self.executions) > max_rows:
            lines.append(f"... ({len(self.executions) - max_rows} more)")
        for crash in self.crashes:
            lines.append(str(crash))
        return "\n".join(lines)


def _app_subterms(term: Term) -> List[Term]:
    """Every distinct UF application occurring in ``term`` (outermost too)."""
    out: List[Term] = []
    seen: Set[Term] = set()
    stack = [term]
    while stack:
        t = stack.pop()
        if t in seen:
            continue
        seen.add(t)
        if t.is_app:
            out.append(t)
        stack.extend(t.args)
    return out


def _var_names(term: Term) -> Set[str]:
    """Names of the variables occurring in ``term``."""
    names: Set[str] = set()
    stack = [term]
    while stack:
        t = stack.pop()
        if t.is_var and t.name:
            names.add(t.name)
        stack.extend(t.args)
    return names


class DirectedSearch:
    """DART-style directed search over a MiniC program.

    Usage::

        tm = TermManager()
        engine = ConcolicEngine(prog, natives, ConcretizationMode.HIGHER_ORDER, tm)
        store = SampleStore()
        backend = HigherOrderBackend(tm, store)
        search = DirectedSearch(engine, "foo", backend, store)
        result = search.run({"x": 33, "y": 42})

    The convenience constructor :meth:`for_mode` wires the standard
    backend for each concretization mode.
    """

    def __init__(
        self,
        engine: ConcolicEngine,
        entry: str,
        backend: TestGenBackend,
        store: Optional[SampleStore] = None,
        config: Optional[SearchConfig] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.engine = engine
        self.entry = entry
        self.backend = backend
        self.store = store if store is not None else SampleStore()
        self.config = config if config is not None else SearchConfig()
        #: tracer/metrics/journal bundle; the default is effectively free
        #: (real tracer for the time_* fields, no-op metrics and journal)
        self.obs = obs if obs is not None else Observability()
        #: every input vector this search has executed (seed, children,
        #: probes) — the single dedupe source of truth
        self._seen_inputs: Set[Tuple[Tuple[str, int], ...]] = set()
        self._probe_log: List[Dict[str, int]] = []
        self._deferred: List[Tuple[ExecutionRecord, int, GenerationRequest]] = []
        self._frontier: Optional[deque] = None
        self._ckpt: Optional[CheckpointWriter] = None
        self._replay: Optional[ReplayCursor] = None
        self._suspended_plan = None
        # late-bind the probe runner for multi-step backends
        if getattr(backend, "probe_runner", "absent") is None:
            backend.probe_runner = self._probe_runner  # type: ignore[attr-defined]

    # -- construction helpers -----------------------------------------------------

    @classmethod
    def for_mode(
        cls,
        program: Program,
        entry: str,
        natives: NativeRegistry,
        mode: ConcretizationMode,
        config: Optional[SearchConfig] = None,
        manager: Optional[TermManager] = None,
        store: Optional[SampleStore] = None,
        use_antecedent: bool = True,
        obs: Optional[Observability] = None,
    ) -> "DirectedSearch":
        """Build a search with the standard backend for ``mode``."""
        from ..core.hotg import HigherOrderBackend

        tm = manager if manager is not None else TermManager()
        engine = ConcolicEngine(program, natives, mode, tm)
        store = store if store is not None else SampleStore()
        if mode is ConcretizationMode.HIGHER_ORDER:
            backend: TestGenBackend = HigherOrderBackend(
                tm,
                store,
                probe_runner=None,  # wired by __init__
                use_antecedent=use_antecedent,
                max_steps=(config or SearchConfig()).max_multistep_probes,
            )
        else:
            backend = QuantifierFreeBackend(tm)
        return cls(engine, entry, backend, store, config, obs)

    # -- the search loop ------------------------------------------------------------

    def run(self, seed_inputs: Dict[str, int]) -> SearchResult:
        """Run the directed search from a seed input vector.

        Raises :class:`~repro.errors.SearchInterrupted` when the session is
        killed mid-search (injected or external); the partial result is
        attached to the exception as ``partial_result`` and — when
        checkpointing is on — the checkpoint is flushed first so
        ``SearchConfig.resume_from`` can continue the session.
        """
        obs = self.obs
        result = SearchResult(coverage=BranchCoverage(self.engine.program))
        self._result = result
        self._deferred = []
        self._probe_log = []
        self._frontier = None
        self._replay = None
        self._suspended_plan = None
        self._ckpt = None
        if self.config.resume_from:
            self._replay = ReplayCursor.load(self.config.resume_from)
        if self.config.checkpoint_dir:
            resume_here = bool(
                self.config.resume_from
                and os.path.abspath(self.config.resume_from)
                == os.path.abspath(self.config.checkpoint_dir)
            )
            self._ckpt = CheckpointWriter(
                self.config.checkpoint_dir,
                meta={
                    "entry": self.entry,
                    "mode": self.engine.mode.value,
                    "backend": getattr(
                        self.backend, "name", type(self.backend).__name__
                    ),
                    "seed": dict(seed_inputs),
                    "fault_plan": current_fault_plan().spec(),
                    "max_runs": self.config.max_runs,
                },
                resume=resume_here,
            )
        obs.emit(
            "search_started",
            entry=self.entry,
            seed=dict(seed_inputs),
            mode=self.engine.mode.value,
            backend=getattr(self.backend, "name", type(self.backend).__name__),
            max_runs=self.config.max_runs,
            resumed=bool(self.config.resume_from),
        )
        # deep layers (SMT checks, validity verdicts) emit to the current
        # journal and record into the default registry for the duration of
        # the session
        previous_journal = set_current_journal(obs.journal)
        previous_registry = None
        if obs.metrics.enabled:
            previous_registry = set_default_registry(obs.metrics)
        interrupted: Optional[SearchInterrupted] = None
        try:
            with obs.tracer.span("search") as root:
                try:
                    self._search_loop(seed_inputs, result)
                except SearchInterrupted as exc:
                    interrupted = exc
                    result.interrupted = True
        finally:
            # flush the final checkpoint while the session's journal and
            # registry are still installed, then restore the ambient slots
            if self._ckpt is not None:
                self._flush_checkpoint(result)
                self._ckpt.close()
            set_current_journal(previous_journal)
            if obs.metrics.enabled:
                set_default_registry(previous_registry)
        result.time_total = root.elapsed
        metrics = obs.metrics
        if metrics.enabled:
            metrics.counter("search.sessions").inc()
            metrics.counter("search.runs").inc(result.runs)
            metrics.counter("search.solver_calls").inc(result.solver_calls)
            metrics.counter("search.divergences").inc(result.divergences)
            metrics.counter("search.errors").inc(len(result.errors))
            metrics.histogram("search.session_seconds").observe(result.time_total)
        obs.emit(
            "search_finished",
            runs=result.runs,
            paths=result.distinct_paths,
            errors=len(result.errors),
            crashes=len(result.crashes),
            divergences=result.divergences,
            solver_calls=result.solver_calls,
            downgrades=dict(result.downgrades),
            deferred=result.deferred_flips,
            abandoned=result.abandoned_flips,
            interrupted=result.interrupted,
            coverage=round(result.coverage.ratio(), 4)
            if result.coverage
            else None,
            seconds=round(result.time_total, 6),
        )
        if interrupted is not None:
            interrupted.checkpoint_dir = self.config.checkpoint_dir
            interrupted.partial_result = result  # type: ignore[attr-defined]
            raise interrupted
        return result

    def _search_loop(self, seed_inputs: Dict[str, int], result: SearchResult) -> None:
        """The generational expansion loop (timed under the "search" span)."""
        seen_paths: Set[Tuple[Tuple[int, bool], ...]] = set()
        self._seen_inputs = set()
        self._begin_replay()
        expander = FrontierExpander(self.backend, self.config.jobs)
        try:
            self._expand(seed_inputs, result, seen_paths, expander)
        finally:
            self._end_replay(result)
            expander.shutdown()

    def _expand(
        self,
        seed_inputs: Dict[str, int],
        result: SearchResult,
        seen_paths: Set[Tuple[Tuple[int, bool], ...]],
        expander: FrontierExpander,
    ) -> None:
        first = self._execute(seed_inputs, result, parent=None, flipped=None)
        if first is None:
            # the seed input itself crashed the program under test; the
            # contained crash record is this session's whole story
            result.distinct_paths = 0
            return
        seen_paths.add(first.result.path_key)
        frontier: deque = deque([(first, 0)])
        self._frontier = frontier
        stop = False

        while frontier and not stop and result.runs < self.config.max_runs:
            if self.config.frontier == "coverage":
                # expand the pending run with the most newly covered
                # branch outcomes first (ties: oldest first)
                best = max(
                    range(len(frontier)),
                    key=lambda i: (
                        frontier[i][0].new_coverage,
                        -frontier[i][0].index,
                    ),
                )
                record, start = frontier[best]
                del frontier[best]
            else:
                record, start = frontier.popleft()
            conditions = record.result.path_conditions
            indices = [
                i
                for i in negatable_indices(conditions)
                if i >= start and i < self.config.max_conditions_per_run
            ]
            requests = [
                GenerationRequest(
                    conditions=list(conditions),
                    index=i,
                    input_vars=dict(record.result.input_vars),
                    defaults=dict(record.result.inputs),
                )
                for i in indices
            ]
            # replay skips all solving, so speculative planning would only
            # burn worker time (and fault-site counters) for nothing
            planned = expander.plan_record(requests, speculate=self._replay is None)
            for k, i in enumerate(indices):
                if result.runs >= self.config.max_runs:
                    break
                with self.obs.tracer.span("generate") as gen_span:
                    outcome = self._generate_flip(
                        planned, k, requests[k], record, i, result
                    )
                result.time_generating += gen_span.elapsed
                if outcome is _STOP:
                    stop = True
                    break
                if outcome is _DEFERRED or outcome is None:
                    continue
                self._consume_generated(outcome, record, i, result, seen_paths, frontier)
                if result.errors and self.config.stop_on_first_error:
                    result.distinct_paths = len(seen_paths)
                    return
        self._drain_deferred(result, seen_paths)
        result.distinct_paths = len(seen_paths)

    # -- flip generation: replay + degradation ladder -------------------------------

    def _generate_flip(
        self,
        planned: PlannedRecord,
        k: int,
        request: GenerationRequest,
        record: ExecutionRecord,
        i: int,
        result: SearchResult,
    ):
        """Inputs for one flip, via the decision log (resume) or the ladder.

        Returns a :class:`GeneratedTest`, None (no test for this flip),
        ``_DEFERRED`` (queued for the escalated retry phase), or ``_STOP``
        (the run budget is exhausted; end the search gracefully).
        """
        if self._replay is not None:
            entry = self._replay.take(record.index, i)
            if entry is not None:
                try:
                    return self._apply_replayed(entry, record, i, request, result)
                except RunBudgetExhausted:
                    return _STOP
            self._end_replay(result)
        result.solver_calls += 1
        self._probe_log = []
        try:
            generated, rung = self._run_ladder(planned, k, request, record, i, result)
        except RunBudgetExhausted:
            # a multi-step probe ran out of execution budget: the strategy
            # is over, but everything produced so far stands
            self.obs.emit("run_budget_exhausted", parent=record.index, flip=i)
            return _STOP
        self._log_decision(record.index, i, rung, generated, list(self._probe_log))
        if rung == "deferred":
            result.deferred_flips += 1
            self._deferred.append((record, i, request))
            if self.obs.metrics.enabled:
                self.obs.metrics.counter("search.flips_deferred").inc()
            self.obs.emit("flip_deferred", parent=record.index, flip=i)
            return _DEFERRED
        return generated

    def _run_ladder(
        self,
        planned: PlannedRecord,
        k: int,
        request: GenerationRequest,
        record: ExecutionRecord,
        i: int,
        result: SearchResult,
    ) -> Tuple[Optional[GeneratedTest], str]:
        """The solver degradation ladder for one flip.

        full-strength query → sound concretization → unsound concretization
        → defer.  Each rung only runs when the previous one *exhausted its
        budget* (``ResourceLimitError``); a rung that answers — with a test
        or with UNSAT — ends the ladder.
        """
        try:
            return planned.produce(k), "full"
        except RunBudgetExhausted:
            raise
        except ResourceLimitError:
            pass
        for rung, pin in (("sound", True), ("unsound", False)):
            self._count_downgrade(rung, record.index, i, result)
            try:
                with use_budget(DEGRADED_BUDGET):
                    generated = self._degraded_generate(request, pin=pin)
            except ResourceLimitError:
                continue
            if generated is not None:
                return generated, rung
            if not pin:
                # even the unconstrained concretization is UNSAT: the flip
                # is infeasible under every approximation we can afford
                return None, rung
            # sound UNSAT may be an artifact of the pins; retry without them
        return None, "deferred"

    def _count_downgrade(
        self, rung: str, parent: int, flip: int, result: SearchResult
    ) -> None:
        result.downgrades[rung] = result.downgrades.get(rung, 0) + 1
        if self.obs.metrics.enabled:
            self.obs.metrics.counter(f"search.downgrades.{rung}").inc()
        self.obs.emit("flip_downgraded", parent=parent, flip=flip, rung=rung)

    def _degraded_generate(
        self, request: GenerationRequest, pin: bool
    ) -> Optional[GeneratedTest]:
        """Concretized fallback for a flip whose full query blew its budget.

        Every UF application in the path constraint is replaced by its
        concrete value under the parent run's inputs and the recorded IOF
        sample table (the parent actually executed those applications, so
        recorded points are exact).  With ``pin=True`` the inputs feeding
        the applications are additionally pinned to their parent values —
        the same move the concolic SOUND mode makes — so the concrete
        values stay correct; without pins the query is cheaper but unsound
        (a generated test may diverge, which the search detects as usual).
        """
        from ..solver.evalmodel import evaluate
        from ..solver.smt import Model

        table: Dict = {}
        for (fn, args), value in self.store.as_table().items():
            table.setdefault(fn, {})[args] = value
        model = Model(ints=dict(request.defaults), functions=table)
        local = TermManager()
        cache: Dict[Term, Term] = {}
        pin_names: Set[str] = set()
        for pc in request.conditions:
            for app in _app_subterms(pc.term):
                if app not in cache:
                    cache[app] = local.mk_int(int(evaluate(app, model)))
                if pin:
                    for arg in app.args:
                        pin_names.update(_var_names(arg))
        conditions = [
            dataclasses.replace(pc, term=local.import_term(pc.term, cache))
            for pc in request.conditions
        ]
        input_vars = {
            name: local.import_term(var, cache)
            for name, var in request.input_vars.items()
        }
        index = request.index
        if pin:
            pins = [
                PathCondition(
                    term=local.mk_eq(
                        input_vars[name], local.mk_int(request.defaults[name])
                    ),
                    is_concretization=True,
                )
                for name in sorted(pin_names)
                if name in input_vars and name in request.defaults
            ]
            conditions = pins + conditions
            index += len(pins)
        degraded = GenerationRequest(
            conditions=conditions,
            index=index,
            input_vars=input_vars,
            defaults=dict(request.defaults),
        )
        solver = QuantifierFreeBackend(local, retain_defaults=True, use_session=False)
        generated = solver.generate(degraded)
        if generated is None:
            return None
        kind = "sound" if pin else "unsound"
        return GeneratedTest(
            inputs=generated.inputs,
            note=f"degraded ({kind} concretization)",
        )

    # -- checkpoint / resume ---------------------------------------------------------

    def _begin_replay(self) -> None:
        if self._replay is None:
            return
        # suppress fault injection while replaying: the replayed prefix
        # already consumed its share of the fault sequence in the original
        # process; the checkpointed counters are restored when going live
        self._suspended_plan = set_fault_plan(None)

    def _end_replay(self, result: SearchResult) -> None:
        if self._replay is None:
            return
        cursor = self._replay
        self._replay = None
        obs = self.obs
        if cursor.diverged:
            if obs.metrics.enabled:
                obs.metrics.counter("search.resume.divergence").inc()
            obs.emit(
                "resume_divergence",
                replayed=len(cursor.consumed),
                logged=len(cursor),
            )
        if obs.metrics.enabled:
            obs.metrics.counter("search.resume.replayed").inc(len(cursor.consumed))
        obs.emit(
            "search_resumed",
            directory=cursor.directory,
            replayed=len(cursor.consumed),
            diverged=cursor.diverged,
        )
        if self._suspended_plan is not None:
            plan = self._suspended_plan
            self._suspended_plan = None
            set_fault_plan(plan)
            if cursor.fault_state:
                # continue the interrupted fault sequence instead of
                # repeating it (a one-shot kill must not re-fire)
                plan.restore_state(cursor.fault_state)
        if self._ckpt is not None:
            self._ckpt.reset_decisions(cursor.consumed)

    def _apply_replayed(
        self,
        entry: Dict[str, object],
        record: ExecutionRecord,
        i: int,
        request: GenerationRequest,
        result: SearchResult,
    ):
        """Re-enact one logged decision without calling the solver."""
        result.replayed_decisions += 1
        rung = str(entry.get("rung", "full"))
        for probe in entry.get("probes") or []:  # type: ignore[union-attr]
            self._probe_runner({str(k): int(v) for k, v in dict(probe).items()})
        # reconstruct the ladder counters the live run would have recorded
        if rung in ("sound", "unsound", "deferred"):
            self._count_downgrade("sound", record.index, i, result)
        if rung in ("unsound", "deferred"):
            self._count_downgrade("unsound", record.index, i, result)
        if rung == "deferred":
            result.deferred_flips += 1
            self._deferred.append((record, i, request))
            if self.obs.metrics.enabled:
                self.obs.metrics.counter("search.flips_deferred").inc()
            return _DEFERRED
        if rung == "abandoned":
            result.abandoned_flips += 1
            return None
        produced = entry.get("produced")
        if produced is None:
            return None
        return GeneratedTest(
            inputs={str(k): int(v) for k, v in dict(produced).items()},  # type: ignore[arg-type]
            intermediate_runs=int(entry.get("intermediate_runs") or 0),  # type: ignore[arg-type]
            note=str(entry.get("note") or ""),
        )

    def _log_decision(
        self,
        parent: int,
        flip: int,
        rung: str,
        generated: Optional[GeneratedTest],
        probes: List[Dict[str, int]],
    ) -> None:
        if self._ckpt is None:
            return
        self._ckpt.append_decision(
            {
                "parent": parent,
                "flip": flip,
                "rung": rung,
                "produced": dict(generated.inputs) if generated is not None else None,
                "note": generated.note if generated is not None else "",
                "intermediate_runs": generated.intermediate_runs
                if generated is not None
                else 0,
                "probes": probes,
            }
        )

    def _maybe_checkpoint(self, result: SearchResult) -> None:
        if self._ckpt is None or self._replay is not None:
            return
        if result.runs % max(1, self.config.checkpoint_every) != 0:
            return
        self._flush_checkpoint(result)

    def _flush_checkpoint(self, result: SearchResult) -> None:
        ckpt = self._ckpt
        if ckpt is None or not ckpt.enabled:
            return
        frontier_rows = [
            {"record": rec.index, "start": start, "inputs": dict(rec.result.inputs)}
            for rec, start in (self._frontier or ())
        ]
        corpus = None
        try:
            from .corpus import TestCorpus  # deferred: corpus imports this module

            corpus = TestCorpus()
            corpus.add_from_search(result)
        except ReproError:  # pragma: no cover - snapshot is advisory
            corpus = None
        ckpt.flush_state(
            result.runs,
            self.store.samples(),
            current_fault_plan().state(),
            frontier_rows,
            corpus=corpus,
        )
        if ckpt.enabled:
            if self.obs.metrics.enabled:
                self.obs.metrics.counter("search.checkpoint.writes").inc()
            self.obs.emit(
                "checkpoint_written", runs=result.runs, directory=ckpt.directory
            )

    # -- deferred retry phase --------------------------------------------------------

    def _drain_deferred(
        self,
        result: SearchResult,
        seen_paths: Set[Tuple[Tuple[int, bool], ...]],
    ) -> None:
        """End-of-search retry of deferred flips with an escalated budget."""
        if not self._deferred:
            return
        obs = self.obs
        escalated = DEFAULT_BUDGET.scaled(self.config.defer_scale)
        queue, self._deferred = self._deferred, []
        for record, i, request in queue:
            if result.runs >= self.config.max_runs:
                break
            if self._replay is not None:
                entry = self._replay.take(record.index, i)
                if entry is not None:
                    try:
                        generated = self._apply_replayed(
                            entry, record, i, request, result
                        )
                    except RunBudgetExhausted:
                        break
                    if generated is not None and generated is not _DEFERRED:
                        self._consume_generated(
                            generated, record, i, result, seen_paths, None
                        )
                    continue
                self._end_replay(result)
            result.solver_calls += 1
            self._probe_log = []
            obs.emit("flip_retried", parent=record.index, flip=i)
            try:
                with use_budget(escalated):
                    generated = self.backend.generate(request)
                rung = "escalated"
            except RunBudgetExhausted:
                break
            except ResourceLimitError:
                generated = None
                rung = "abandoned"
                result.abandoned_flips += 1
                if obs.metrics.enabled:
                    obs.metrics.counter("search.flips_abandoned").inc()
                obs.emit("flip_abandoned", parent=record.index, flip=i)
            self._log_decision(record.index, i, rung, generated, list(self._probe_log))
            if generated is not None:
                self._consume_generated(generated, record, i, result, seen_paths, None)

    # -- helpers -----------------------------------------------------------------------

    @staticmethod
    def _input_key(inputs: Dict[str, int]) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted(inputs.items()))

    def _consume_generated(
        self,
        generated: GeneratedTest,
        record: ExecutionRecord,
        i: int,
        result: SearchResult,
        seen_paths: Set[Tuple[Tuple[int, bool], ...]],
        frontier: Optional[deque],
    ) -> Optional[ExecutionRecord]:
        """Execute a generated test and fold it into the search state.

        ``frontier=None`` (the deferred retry phase) still records paths
        and errors but does not expand the child further.
        """
        obs = self.obs
        conditions = record.result.path_conditions
        obs.emit(
            "test_generated",
            inputs=dict(generated.inputs),
            parent=record.index,
            flip=i,
            intermediate_runs=generated.intermediate_runs,
            note=generated.note,
        )
        key = self._input_key(generated.inputs)
        if self.config.dedupe_inputs and key in self._seen_inputs:
            return None
        child = self._execute(
            generated.inputs, result, parent=record.index, flipped=i
        )
        if child is None:
            return None  # the child crashed; contained and bucketed
        child.intermediate_runs = generated.intermediate_runs
        child.note = generated.note
        child.diverged = self._diverged(record.result, i, child.result)
        obs.emit(
            "branch_flipped",
            parent=record.index,
            child=child.index,
            flip=i,
            branch_id=conditions[i].branch_id,
            line=conditions[i].line,
            diverged=child.diverged,
        )
        if child.diverged:
            result.divergences += 1
            obs.emit(
                "divergence_detected",
                run=child.index,
                parent=record.index,
                flip=i,
                inputs=dict(child.result.inputs),
            )
        if child.result.path_key not in seen_paths:
            seen_paths.add(child.result.path_key)
            if frontier is not None:
                frontier.append((child, i + 1))
        return child

    def _execute(
        self,
        inputs: Dict[str, int],
        result: SearchResult,
        parent: Optional[int],
        flipped: Optional[int],
    ) -> Optional[ExecutionRecord]:
        """Run one test; returns None when the run crashed (contained)."""
        obs = self.obs
        current_fault_plan().fire("kill")
        try:
            with obs.tracer.span("execute") as exec_span:
                run = self.engine.run(self.entry, inputs)
        except (SearchInterrupted, RunBudgetExhausted):
            raise
        except ReproError as exc:
            result.time_executing += exec_span.elapsed
            self._contain_crash(exc, inputs, result, parent, flipped)
            return None
        result.time_executing += exec_span.elapsed
        self._seen_inputs.add(self._input_key(inputs))
        new_samples = self.store.merge_from_run(run)
        record = ExecutionRecord(
            index=len(result.executions),
            result=run,
            parent=parent,
            flipped_index=flipped,
        )
        result.executions.append(record)
        result.runs += 1
        if result.coverage is not None:
            record.new_coverage = result.coverage.record(run.covered)
        if new_samples and obs.journal.enabled:
            # the store appends in observation order: the last N are new
            for sample in self.store.samples()[-new_samples:]:
                obs.emit(
                    "sample_recorded",
                    run=record.index,
                    fn=sample.fn.name,
                    args=list(sample.args),
                    value=sample.value,
                )
        if run.error:
            result.errors.append(
                ErrorReport(
                    inputs=dict(inputs),
                    message=run.error_message,
                    line=run.error_line,
                    run_index=record.index,
                )
            )
            obs.emit(
                "error_found",
                run=record.index,
                inputs=dict(inputs),
                message=run.error_message,
                line=run.error_line,
            )
        self._maybe_checkpoint(result)
        return record

    def _contain_crash(
        self,
        exc: ReproError,
        inputs: Dict[str, int],
        result: SearchResult,
        parent: Optional[int],
        flipped: Optional[int],
    ) -> None:
        """Record a crashing program under test as a bucketed crash outcome."""
        obs = self.obs
        self._seen_inputs.add(self._input_key(inputs))
        run_index = result.runs
        result.runs += 1
        name = type(exc).__name__
        match = re.search(r"line (\d+)", str(exc))
        line = int(match.group(1)) if match else 0
        bucket = f"{name}@{line}"
        existing = next((c for c in result.crashes if c.bucket == bucket), None)
        if existing is not None:
            existing.count += 1
        else:
            result.crashes.append(
                CrashReport(
                    bucket=bucket,
                    error_type=name,
                    message=str(exc),
                    line=line,
                    inputs=dict(inputs),
                    run_index=run_index,
                )
            )
        if obs.metrics.enabled:
            obs.metrics.counter("search.crashes").inc()
        obs.emit(
            "crash_contained",
            run=run_index,
            bucket=bucket,
            error=name,
            line=line,
            message=str(exc),
            inputs=dict(inputs),
            parent=parent,
            flip=flipped,
        )
        self._maybe_checkpoint(result)

    def _probe_runner(self, inputs: Dict[str, int]) -> None:
        """Execute an intermediate (multi-step) run, counting it.

        A probe vector that was already executed (as the seed, a generated
        test, or an earlier probe) is skipped outright: its samples are
        already merged into the store, so re-running it would burn run
        budget to learn nothing.  The multi-step driver then observes zero
        new samples and gives up, which is the correct verdict.

        Raises :class:`~repro.errors.RunBudgetExhausted` when the search's
        run budget is gone — the search catches it and ends the current
        strategy gracefully, preserving the partial result.
        """
        self._probe_log.append(dict(inputs))
        if self.config.dedupe_inputs and self._input_key(inputs) in self._seen_inputs:
            return
        if self._result.runs >= self.config.max_runs:
            raise RunBudgetExhausted("run budget exhausted during multi-step probe")
        record = self._execute(inputs, self._result, parent=None, flipped=None)
        if record is not None:
            record.note = "multi-step probe"

    def _diverged(
        self, parent: ConcolicResult, flipped_index: int, child: ConcolicResult
    ) -> bool:
        """Did the child fail to follow the predicted path?

        Expected: the parent's branch trace up to the flipped condition's
        occurrence, with the outcome at that occurrence negated
        (paper §3.2's divergence check).
        """
        pos = parent.path_conditions[flipped_index].path_pos
        if pos < 0:
            return False  # flipped a non-branch condition; nothing to compare
        expected = list(parent.path[:pos])
        branch_id, taken = parent.path[pos]
        expected.append((branch_id, not taken))
        return child.path[: len(expected)] != expected
