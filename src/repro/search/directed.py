"""Systematic dynamic test generation: the directed search (paper §2).

:class:`DirectedSearch` implements the DART/SAGE-style loop: run the
program concolically, pick a recorded condition, ask a backend for inputs
that flip it, run again, repeat — tracking coverage, found errors, and
*divergences* (runs that failed to follow the path their constraint
predicted, the tell-tale of unsound path constraints, §3.2).

The expansion order is generational (each child may only negate conditions
at positions ≥ its creating index + 1 in its own constraint), which
guarantees progress and mirrors the search used by the whitebox fuzzing
work the paper builds on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ReproError, ResourceLimitError
from ..lang.ast import Program
from ..lang.natives import NativeRegistry
from ..obs import Observability
from ..obs.journal import set_current_journal
from ..obs.metrics import set_default_registry
from ..solver.terms import TermManager
from ..symbolic.concolic import (
    ConcolicEngine,
    ConcolicResult,
    ConcretizationMode,
    PathCondition,
)
from ..core.post import negatable_indices
from ..core.samples import SampleStore
from .backends import GeneratedTest, GenerationRequest, TestGenBackend
from .coverage import BranchCoverage
from .parallel import FrontierExpander

__all__ = [
    "SearchConfig",
    "ErrorReport",
    "ExecutionRecord",
    "SearchResult",
    "DirectedSearch",
]


@dataclass
class SearchConfig:
    """Tunables of the directed search."""

    #: maximum program executions (including probes and divergent runs)
    max_runs: int = 200
    #: stop as soon as the first error is found
    stop_on_first_error: bool = False
    #: per-strategy budget of intermediate multi-step runs
    max_multistep_probes: int = 4
    #: skip generating an input vector that was already executed
    dedupe_inputs: bool = True
    #: give up expanding a single run beyond this many conditions
    max_conditions_per_run: int = 64
    #: frontier scheduling: "fifo" (classic generational order) or
    #: "coverage" (expand runs that discovered new branch outcomes first,
    #: the heuristic whitebox fuzzers use to steer large searches)
    frontier: str = "fifo"
    #: worker threads planning branch flips speculatively; the generated
    #: suite is identical for every value (see :mod:`repro.search.parallel`)
    jobs: int = 1


@dataclass
class ErrorReport:
    """One discovered error (``error()`` statement or failed assert)."""

    inputs: Dict[str, int]
    message: str
    line: int
    run_index: int

    def __str__(self) -> str:
        return (
            f"error at line {self.line}: {self.message!r} with inputs "
            f"{self.inputs} (run #{self.run_index})"
        )


@dataclass
class ExecutionRecord:
    """Bookkeeping for one executed test."""

    index: int
    result: ConcolicResult
    parent: Optional[int] = None
    flipped_index: Optional[int] = None
    diverged: bool = False
    intermediate_runs: int = 0
    #: branch outcomes this run covered for the first time
    new_coverage: int = 0
    note: str = ""


@dataclass
class SearchResult:
    """Everything a search session produced."""

    executions: List[ExecutionRecord] = field(default_factory=list)
    errors: List[ErrorReport] = field(default_factory=list)
    coverage: Optional[BranchCoverage] = None
    divergences: int = 0
    solver_calls: int = 0
    runs: int = 0
    distinct_paths: int = 0
    #: wall-clock seconds spent in program execution vs test generation
    time_total: float = 0.0
    time_executing: float = 0.0
    time_generating: float = 0.0

    @property
    def found_error(self) -> bool:
        return bool(self.errors)

    def summary(self) -> str:
        cov = f"{self.coverage.ratio():.0%}" if self.coverage else "n/a"
        return (
            f"runs={self.runs} paths={self.distinct_paths} "
            f"errors={len(self.errors)} divergences={self.divergences} "
            f"coverage={cov}"
        )

    def tree_report(self, max_rows: int = 50) -> str:
        """Human-readable genealogy of the executed tests.

        One row per execution: index, parent run and flipped condition,
        inputs, and what the run achieved (new coverage, error, probe,
        divergence).
        """
        lines = ["idx  parent  flip  inputs"]
        for record in self.executions[:max_rows]:
            parent = "-" if record.parent is None else str(record.parent)
            flip = "-" if record.flipped_index is None else str(record.flipped_index)
            badges = []
            if record.result.error:
                badges.append(f"ERROR({record.result.error_message})")
            if record.diverged:
                badges.append("DIVERGED")
            if record.new_coverage:
                badges.append(f"+{record.new_coverage}cov")
            if record.note:
                badges.append(record.note)
            badge = ("  " + " ".join(badges)) if badges else ""
            lines.append(
                f"{record.index:<4} {parent:>6}  {flip:>4}  "
                f"{record.result.inputs}{badge}"
            )
        if len(self.executions) > max_rows:
            lines.append(f"... ({len(self.executions) - max_rows} more)")
        return "\n".join(lines)


class DirectedSearch:
    """DART-style directed search over a MiniC program.

    Usage::

        tm = TermManager()
        engine = ConcolicEngine(prog, natives, ConcretizationMode.HIGHER_ORDER, tm)
        store = SampleStore()
        backend = HigherOrderBackend(tm, store)
        search = DirectedSearch(engine, "foo", backend, store)
        result = search.run({"x": 33, "y": 42})

    The convenience constructor :meth:`for_mode` wires the standard
    backend for each concretization mode.
    """

    def __init__(
        self,
        engine: ConcolicEngine,
        entry: str,
        backend: TestGenBackend,
        store: Optional[SampleStore] = None,
        config: Optional[SearchConfig] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.engine = engine
        self.entry = entry
        self.backend = backend
        self.store = store if store is not None else SampleStore()
        self.config = config if config is not None else SearchConfig()
        #: tracer/metrics/journal bundle; the default is effectively free
        #: (real tracer for the time_* fields, no-op metrics and journal)
        self.obs = obs if obs is not None else Observability()
        #: every input vector this search has executed (seed, children,
        #: probes) — the single dedupe source of truth
        self._seen_inputs: Set[Tuple[Tuple[str, int], ...]] = set()
        # late-bind the probe runner for multi-step backends
        if getattr(backend, "probe_runner", "absent") is None:
            backend.probe_runner = self._probe_runner  # type: ignore[attr-defined]

    # -- construction helpers -----------------------------------------------------

    @classmethod
    def for_mode(
        cls,
        program: Program,
        entry: str,
        natives: NativeRegistry,
        mode: ConcretizationMode,
        config: Optional[SearchConfig] = None,
        manager: Optional[TermManager] = None,
        store: Optional[SampleStore] = None,
        use_antecedent: bool = True,
        obs: Optional[Observability] = None,
    ) -> "DirectedSearch":
        """Build a search with the standard backend for ``mode``."""
        from ..core.hotg import HigherOrderBackend
        from .backends import QuantifierFreeBackend

        tm = manager if manager is not None else TermManager()
        engine = ConcolicEngine(program, natives, mode, tm)
        store = store if store is not None else SampleStore()
        if mode is ConcretizationMode.HIGHER_ORDER:
            backend: TestGenBackend = HigherOrderBackend(
                tm,
                store,
                probe_runner=None,  # wired by __init__
                use_antecedent=use_antecedent,
                max_steps=(config or SearchConfig()).max_multistep_probes,
            )
        else:
            backend = QuantifierFreeBackend(tm)
        return cls(engine, entry, backend, store, config, obs)

    # -- the search loop ------------------------------------------------------------

    def run(self, seed_inputs: Dict[str, int]) -> SearchResult:
        """Run the directed search from a seed input vector."""
        obs = self.obs
        result = SearchResult(coverage=BranchCoverage(self.engine.program))
        self._result = result
        obs.emit(
            "search_started",
            entry=self.entry,
            seed=dict(seed_inputs),
            mode=self.engine.mode.value,
            backend=getattr(self.backend, "name", type(self.backend).__name__),
            max_runs=self.config.max_runs,
        )
        # deep layers (SMT checks, validity verdicts) emit to the current
        # journal and record into the default registry for the duration of
        # the session
        previous_journal = set_current_journal(obs.journal)
        previous_registry = None
        if obs.metrics.enabled:
            previous_registry = set_default_registry(obs.metrics)
        try:
            with obs.tracer.span("search") as root:
                self._search_loop(seed_inputs, result)
        finally:
            set_current_journal(previous_journal)
            if obs.metrics.enabled:
                set_default_registry(previous_registry)
        result.time_total = root.elapsed
        metrics = obs.metrics
        if metrics.enabled:
            metrics.counter("search.sessions").inc()
            metrics.counter("search.runs").inc(result.runs)
            metrics.counter("search.solver_calls").inc(result.solver_calls)
            metrics.counter("search.divergences").inc(result.divergences)
            metrics.counter("search.errors").inc(len(result.errors))
            metrics.histogram("search.session_seconds").observe(result.time_total)
        obs.emit(
            "search_finished",
            runs=result.runs,
            paths=result.distinct_paths,
            errors=len(result.errors),
            divergences=result.divergences,
            solver_calls=result.solver_calls,
            coverage=round(result.coverage.ratio(), 4)
            if result.coverage
            else None,
            seconds=round(result.time_total, 6),
        )
        return result

    def _search_loop(self, seed_inputs: Dict[str, int], result: SearchResult) -> None:
        """The generational expansion loop (timed under the "search" span)."""
        obs = self.obs
        seen_paths: Set[Tuple[Tuple[int, bool], ...]] = set()
        self._seen_inputs = set()
        expander = FrontierExpander(self.backend, self.config.jobs)
        try:
            self._expand(seed_inputs, result, seen_paths, expander)
        finally:
            expander.shutdown()

    def _expand(
        self,
        seed_inputs: Dict[str, int],
        result: SearchResult,
        seen_paths: Set[Tuple[Tuple[int, bool], ...]],
        expander: FrontierExpander,
    ) -> None:
        obs = self.obs
        first = self._execute(seed_inputs, result, parent=None, flipped=None)
        seen_paths.add(first.result.path_key)
        frontier: deque = deque([(first, 0)])

        while frontier and result.runs < self.config.max_runs:
            if self.config.frontier == "coverage":
                # expand the pending run with the most newly covered
                # branch outcomes first (ties: oldest first)
                best = max(
                    range(len(frontier)),
                    key=lambda i: (
                        frontier[i][0].new_coverage,
                        -frontier[i][0].index,
                    ),
                )
                record, start = frontier[best]
                del frontier[best]
            else:
                record, start = frontier.popleft()
            conditions = record.result.path_conditions
            indices = [
                i
                for i in negatable_indices(conditions)
                if i >= start and i < self.config.max_conditions_per_run
            ]
            requests = [
                GenerationRequest(
                    conditions=list(conditions),
                    index=i,
                    input_vars=dict(record.result.input_vars),
                    defaults=dict(record.result.inputs),
                )
                for i in indices
            ]
            planned = expander.plan_record(requests)
            for k, i in enumerate(indices):
                if result.runs >= self.config.max_runs:
                    break
                with obs.tracer.span("generate") as gen_span:
                    generated = planned.produce(k)
                result.time_generating += gen_span.elapsed
                result.solver_calls += 1
                if generated is None:
                    continue
                obs.emit(
                    "test_generated",
                    inputs=dict(generated.inputs),
                    parent=record.index,
                    flip=i,
                    intermediate_runs=generated.intermediate_runs,
                    note=generated.note,
                )
                key = self._input_key(generated.inputs)
                if self.config.dedupe_inputs and key in self._seen_inputs:
                    continue
                child = self._execute(
                    generated.inputs, result, parent=record.index, flipped=i
                )
                child.intermediate_runs = generated.intermediate_runs
                child.note = generated.note
                child.diverged = self._diverged(record.result, i, child.result)
                obs.emit(
                    "branch_flipped",
                    parent=record.index,
                    child=child.index,
                    flip=i,
                    branch_id=conditions[i].branch_id,
                    line=conditions[i].line,
                    diverged=child.diverged,
                )
                if child.diverged:
                    result.divergences += 1
                    obs.emit(
                        "divergence_detected",
                        run=child.index,
                        parent=record.index,
                        flip=i,
                        inputs=dict(child.result.inputs),
                    )
                if child.result.path_key not in seen_paths:
                    seen_paths.add(child.result.path_key)
                    frontier.append((child, i + 1))
                if result.errors and self.config.stop_on_first_error:
                    result.distinct_paths = len(seen_paths)
                    return
        result.distinct_paths = len(seen_paths)

    # -- helpers -----------------------------------------------------------------------

    @staticmethod
    def _input_key(inputs: Dict[str, int]) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted(inputs.items()))

    def _execute(
        self,
        inputs: Dict[str, int],
        result: SearchResult,
        parent: Optional[int],
        flipped: Optional[int],
    ) -> ExecutionRecord:
        obs = self.obs
        with obs.tracer.span("execute") as exec_span:
            run = self.engine.run(self.entry, inputs)
        result.time_executing += exec_span.elapsed
        self._seen_inputs.add(self._input_key(inputs))
        new_samples = self.store.merge_from_run(run)
        record = ExecutionRecord(
            index=len(result.executions),
            result=run,
            parent=parent,
            flipped_index=flipped,
        )
        result.executions.append(record)
        result.runs += 1
        if result.coverage is not None:
            record.new_coverage = result.coverage.record(run.covered)
        if new_samples and obs.journal.enabled:
            # the store appends in observation order: the last N are new
            for sample in self.store.samples()[-new_samples:]:
                obs.emit(
                    "sample_recorded",
                    run=record.index,
                    fn=sample.fn.name,
                    args=list(sample.args),
                    value=sample.value,
                )
        if run.error:
            result.errors.append(
                ErrorReport(
                    inputs=dict(inputs),
                    message=run.error_message,
                    line=run.error_line,
                    run_index=record.index,
                )
            )
            obs.emit(
                "error_found",
                run=record.index,
                inputs=dict(inputs),
                message=run.error_message,
                line=run.error_line,
            )
        return record

    def _probe_runner(self, inputs: Dict[str, int]) -> None:
        """Execute an intermediate (multi-step) run, counting it.

        A probe vector that was already executed (as the seed, a generated
        test, or an earlier probe) is skipped outright: its samples are
        already merged into the store, so re-running it would burn run
        budget to learn nothing.  The multi-step driver then observes zero
        new samples and gives up, which is the correct verdict.
        """
        if self.config.dedupe_inputs and self._input_key(inputs) in self._seen_inputs:
            return
        if self._result.runs >= self.config.max_runs:
            raise ResourceLimitError("run budget exhausted during multi-step probe")
        record = self._execute(inputs, self._result, parent=None, flipped=None)
        record.note = "multi-step probe"

    def _diverged(
        self, parent: ConcolicResult, flipped_index: int, child: ConcolicResult
    ) -> bool:
        """Did the child fail to follow the predicted path?

        Expected: the parent's branch trace up to the flipped condition's
        occurrence, with the outcome at that occurrence negated
        (paper §3.2's divergence check).
        """
        pos = parent.path_conditions[flipped_index].path_pos
        if pos < 0:
            return False  # flipped a non-branch condition; nothing to compare
        expected = list(parent.path[:pos])
        branch_id, taken = parent.path[pos]
        expected.append((branch_id, not taken))
        return child.path[: len(expected)] != expected
