"""Systematic dynamic test generation: the directed search (paper §2).

:class:`DirectedSearch` implements the DART/SAGE-style loop: run the
program concolically, pick a recorded condition, ask a backend for inputs
that flip it, run again, repeat — tracking coverage, found errors, and
*divergences* (runs that failed to follow the path their constraint
predicted, the tell-tale of unsound path constraints, §3.2).

The loop itself lives in the staged kernel
(:class:`~repro.search.kernel.SearchKernel`: execute → derive flips →
schedule → solve → reconstitute, around an explicit
:class:`~repro.search.kernel.SearchState`); which pending run expands
next is a pluggable policy (:mod:`repro.search.scheduler` — ``dfs``,
``generational``, ``coverage``).  This module keeps the public surface:
the config, the report dataclasses, and the :class:`DirectedSearch`
session harness that owns observability installation, checkpoint
lifecycle, and resume.

Production hardening (docs/ROBUSTNESS.md) rides on top of the classic
loop without changing the generated suite on the happy path:

- **Crash containment** — a program under test that crashes the
  interpreter (step-budget blowup, array misuse, division by zero) becomes
  a recorded :class:`CrashReport`, deduplicated by ``error class @ line``
  bucket, instead of aborting the search.
- **Degradation ladder** — a solver query that exhausts its
  :class:`~repro.solver.budget.SolverBudget` is retried down a ladder of
  cheaper approximations (sound concretization → unsound concretization →
  defer to an end-of-search retry with an escalated budget → abandon).
- **Checkpoint/resume** — generation decisions are journaled to a
  checkpoint directory; resuming replays the log (re-executing the cheap,
  deterministic program runs and skipping all solving) and produces the
  same suite an uninterrupted search would have, under the same scheduler
  (the checkpoint records which; resume adopts it).
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import ReproError, SearchInterrupted
from ..faults import current_fault_plan
from ..lang.ast import Program
from ..lang.natives import NativeRegistry
from ..obs import Observability
from ..obs.journal import set_current_journal
from ..obs.metrics import set_default_registry
from ..solver.terms import TermManager
from ..symbolic.concolic import ConcolicEngine, ConcolicResult, ConcretizationMode
from ..core.samples import SampleStore
from .backends import QuantifierFreeBackend, TestGenBackend
from .checkpoint import CheckpointWriter, ReplayCursor
from .coverage import BranchCoverage
from .scheduler import SCHEDULERS, make_scheduler, scheduler_names

__all__ = [
    "SearchConfig",
    "CrashReport",
    "ErrorReport",
    "ExecutionRecord",
    "SearchResult",
    "DirectedSearch",
]


@dataclass
class SearchConfig:
    """Tunables of the directed search."""

    #: maximum program executions (including probes and divergent runs)
    max_runs: int = 200
    #: stop as soon as the first error is found
    stop_on_first_error: bool = False
    #: per-strategy budget of intermediate multi-step runs
    max_multistep_probes: int = 4
    #: skip generating an input vector that was already executed
    dedupe_inputs: bool = True
    #: give up expanding a single run beyond this many conditions
    max_conditions_per_run: int = 64
    #: frontier scheduler (see :mod:`repro.search.scheduler`): "dfs"
    #: (classic generational order, the reproducibility baseline),
    #: "generational" (SAGE-style: expand the run that covered the most
    #: new branch outcomes first), or "coverage" (prefer flips whose
    #: branch targets are still uncovered)
    scheduler: str = "dfs"
    #: worker threads planning branch flips speculatively; the generated
    #: suite is identical for every value (see :mod:`repro.search.parallel`)
    jobs: int = 1
    #: directory to persist checkpoints into (None disables checkpointing)
    checkpoint_dir: Optional[str] = None
    #: flush the advisory checkpoint snapshots every N runs (the decision
    #: log itself is appended and flushed per decision)
    checkpoint_every: int = 20
    #: checkpoint directory to resume from (replays its decision log)
    resume_from: Optional[str] = None
    #: budget multiplier for the end-of-search retry of deferred flips
    defer_scale: float = 4.0
    #: wall-clock budget (seconds) for one search session; 0 disables.
    #: Enforced cooperatively at the kernel's run boundaries: on expiry
    #: the session raises :class:`~repro.errors.DeadlineExceeded` (a
    #: :class:`~repro.errors.SearchInterrupted`), so the partial suite is
    #: salvaged and — under a campaign supervisor — the job is retried
    job_deadline: float = 0.0
    #: execution core: "bytecode" compiles the program once and runs both
    #: the concrete and symbolic sides off a flat instruction stream
    #: (:mod:`repro.lang.bytecode`); "tree" keeps the recursive AST walk
    #: as the differential reference.  Suites and digests are byte-
    #: identical between the two (CI-gated).
    exec_backend: str = "bytecode"
    #: extra seed input vectors executed right after the primary seed,
    #: before any flipping (cross-campaign corpus seeding: the engine
    #: fills this from the shared store's ``corpus/`` namespace when
    #: ``--seed-from-store`` is on).  Order matters and is preserved;
    #: duplicates of already-executed vectors are skipped.  Empty (the
    #: default) reproduces the classic single-seed search exactly.
    seed_corpus: Tuple[Dict[str, int], ...] = ()

    #: legacy keyword spellings accepted (once, with a warning) by
    #: :meth:`from_options` — kept so pre-facade call sites don't break
    _OPTION_ALIASES = {
        "stop_on_error": "stop_on_first_error",
        "threads": "jobs",
        "frontier": "scheduler",
        "frontier_policy": "scheduler",
        "checkpoint": "checkpoint_dir",
        "resume": "resume_from",
    }

    #: legacy *values* of the frontier/frontier_policy aliases, mapped onto
    #: the scheduler that reproduces their behaviour exactly
    _SCHEDULER_VALUE_ALIASES = {
        "fifo": "dfs",
        "coverage": "generational",
    }

    @classmethod
    def from_options(cls, **options: object) -> "SearchConfig":
        """Build a validated config from keyword options.

        This is the one supported constructor for callers outside the
        package (the :mod:`repro.api` facade, the CLI, and the benchmark
        drivers all go through it): unknown keys raise :class:`TypeError`
        instead of being silently dropped, values are range-checked, and
        the legacy keyword aliases that drifted into ad-hoc call sites
        (``stop_on_error``, ``threads``, ``frontier``, ``frontier_policy``,
        ``checkpoint``, ``resume``) keep working behind a one-shot
        :class:`DeprecationWarning`.  The old ``frontier`` *values* map
        onto the scheduler with identical behaviour: ``fifo`` → ``dfs``,
        ``coverage`` → ``generational``.
        """
        import warnings

        known = {f.name for f in dataclasses.fields(cls) if not f.name.startswith("_")}
        resolved: Dict[str, object] = {}
        for key, value in options.items():
            canonical = cls._OPTION_ALIASES.get(key, key)
            if canonical != key:
                if key not in _WARNED_ALIASES:
                    _WARNED_ALIASES.add(key)
                    warnings.warn(
                        f"SearchConfig option {key!r} is deprecated; "
                        f"use {canonical!r}",
                        DeprecationWarning,
                        stacklevel=2,
                    )
                if key in ("frontier", "frontier_policy"):
                    value = cls._SCHEDULER_VALUE_ALIASES.get(str(value), value)
            if canonical not in known:
                raise TypeError(
                    f"unknown SearchConfig option {key!r} "
                    f"(known: {', '.join(sorted(known))})"
                )
            if canonical in resolved:
                raise TypeError(
                    f"SearchConfig option {canonical!r} given twice "
                    f"(alias collision)"
                )
            resolved[canonical] = value
        config = cls(**resolved)  # type: ignore[arg-type]
        config.validate()
        return config

    def validate(self) -> "SearchConfig":
        """Range-check the tunables; returns self for chaining."""
        if self.max_runs < 1:
            raise ReproError(f"max_runs must be >= 1 (got {self.max_runs})")
        if self.jobs < 1:
            raise ReproError(f"jobs must be >= 1 (got {self.jobs})")
        if self.scheduler not in SCHEDULERS:
            raise ReproError(
                f"unknown scheduler {self.scheduler!r} "
                f"(allowed: {', '.join(scheduler_names())})"
            )
        if self.checkpoint_every < 1:
            raise ReproError(
                f"checkpoint_every must be >= 1 (got {self.checkpoint_every})"
            )
        if self.max_conditions_per_run < 1:
            raise ReproError(
                "max_conditions_per_run must be >= 1 "
                f"(got {self.max_conditions_per_run})"
            )
        if self.max_multistep_probes < 0:
            raise ReproError(
                f"max_multistep_probes must be >= 0 (got {self.max_multistep_probes})"
            )
        if self.defer_scale <= 0:
            raise ReproError(f"defer_scale must be > 0 (got {self.defer_scale})")
        if self.job_deadline < 0:
            raise ReproError(
                f"job_deadline must be >= 0 (got {self.job_deadline})"
            )
        if self.exec_backend not in ("tree", "bytecode"):
            raise ReproError(
                f"unknown exec_backend {self.exec_backend!r} "
                "(allowed: tree, bytecode)"
            )
        try:
            self.seed_corpus = tuple(
                {str(k): int(v) for k, v in dict(vector).items()}
                for vector in self.seed_corpus
            )
        except (TypeError, ValueError):
            raise ReproError(
                "seed_corpus must be a sequence of {param: int} vectors "
                f"(got {self.seed_corpus!r})"
            )
        return self


#: aliases already warned about this process (one warning per spelling)
_WARNED_ALIASES: Set[str] = set()


@dataclass
class ErrorReport:
    """One discovered error (``error()`` statement or failed assert)."""

    inputs: Dict[str, int]
    message: str
    line: int
    run_index: int

    def __str__(self) -> str:
        return (
            f"error at line {self.line}: {self.message!r} with inputs "
            f"{self.inputs} (run #{self.run_index})"
        )


@dataclass
class CrashReport:
    """A contained crash of the program under test (not a found error).

    ``error()`` statements and failed asserts are *findings* the search
    exists to produce (:class:`ErrorReport`); a crash is the interpreter
    itself giving up on a generated input — step-budget blowup, array
    misuse.  (Division by zero is a *modeled* runtime error — the engine
    turns it into a finding, not a crash.)  Crashes are triaged by
    ``bucket``
    (exception class @ MiniC line) so repeated instances of one defect
    collapse into a single record with a count.
    """

    bucket: str
    error_type: str
    message: str
    line: int
    #: the first input vector that hit this bucket
    inputs: Dict[str, int]
    #: run number of the first instance
    run_index: int
    count: int = 1

    def __str__(self) -> str:
        return (
            f"crash [{self.bucket}] x{self.count}: {self.message!r} "
            f"first with inputs {self.inputs} (run #{self.run_index})"
        )


@dataclass
class ExecutionRecord:
    """Bookkeeping for one executed test."""

    index: int
    result: ConcolicResult
    parent: Optional[int] = None
    flipped_index: Optional[int] = None
    diverged: bool = False
    intermediate_runs: int = 0
    #: branch outcomes this run covered for the first time
    new_coverage: int = 0
    note: str = ""


@dataclass
class SearchResult:
    """Everything a search session produced."""

    executions: List[ExecutionRecord] = field(default_factory=list)
    errors: List[ErrorReport] = field(default_factory=list)
    #: contained crashes of the program under test, deduplicated by bucket
    crashes: List[CrashReport] = field(default_factory=list)
    coverage: Optional[BranchCoverage] = None
    divergences: int = 0
    solver_calls: int = 0
    runs: int = 0
    distinct_paths: int = 0
    #: degradation-ladder downgrades per rung ("sound"/"unsound")
    downgrades: Dict[str, int] = field(default_factory=dict)
    #: flips pushed to the end-of-search escalated retry phase
    deferred_flips: int = 0
    #: deferred flips that failed even the escalated retry
    abandoned_flips: int = 0
    #: decisions replayed from a checkpoint instead of re-solved
    replayed_decisions: int = 0
    #: the session ended on a :class:`~repro.errors.SearchInterrupted`
    interrupted: bool = False
    #: wall-clock seconds spent in program execution vs test generation
    time_total: float = 0.0
    time_executing: float = 0.0
    time_generating: float = 0.0

    @property
    def found_error(self) -> bool:
        return bool(self.errors)

    def summary(self) -> str:
        cov = f"{self.coverage.ratio():.0%}" if self.coverage else "n/a"
        extra = ""
        if self.crashes:
            extra += f" crashes={len(self.crashes)}"
        if self.downgrades:
            extra += f" downgrades={sum(self.downgrades.values())}"
        if self.interrupted:
            extra += " interrupted"
        return (
            f"runs={self.runs} paths={self.distinct_paths} "
            f"errors={len(self.errors)} divergences={self.divergences} "
            f"coverage={cov}" + extra
        )

    def tree_report(self, max_rows: int = 50) -> str:
        """Human-readable genealogy of the executed tests.

        One row per execution: index, parent run and flipped condition,
        inputs, and what the run achieved (new coverage, error, probe,
        divergence).
        """
        lines = ["idx  parent  flip  inputs"]
        for record in self.executions[:max_rows]:
            parent = "-" if record.parent is None else str(record.parent)
            flip = "-" if record.flipped_index is None else str(record.flipped_index)
            badges = []
            if record.result.error:
                badges.append(f"ERROR({record.result.error_message})")
            if record.diverged:
                badges.append("DIVERGED")
            if record.new_coverage:
                badges.append(f"+{record.new_coverage}cov")
            if record.note:
                badges.append(record.note)
            badge = ("  " + " ".join(badges)) if badges else ""
            lines.append(
                f"{record.index:<4} {parent:>6}  {flip:>4}  "
                f"{record.result.inputs}{badge}"
            )
        if len(self.executions) > max_rows:
            lines.append(f"... ({len(self.executions) - max_rows} more)")
        for crash in self.crashes:
            lines.append(str(crash))
        return "\n".join(lines)


class DirectedSearch:
    """DART-style directed search over a MiniC program.

    Usage::

        tm = TermManager()
        engine = ConcolicEngine(prog, natives, ConcretizationMode.HIGHER_ORDER, tm)
        store = SampleStore()
        backend = HigherOrderBackend(tm, store)
        search = DirectedSearch(engine, "foo", backend, store)
        result = search.run({"x": 33, "y": 42})

    The convenience constructor :meth:`for_mode` wires the standard
    backend for each concretization mode.

    This class is the session *harness*: it installs the observability
    slots, owns the checkpoint writer and replay cursor, and resolves the
    effective scheduler.  The expansion loop itself is the staged
    :class:`~repro.search.kernel.SearchKernel` built fresh per session.
    """

    def __init__(
        self,
        engine: ConcolicEngine,
        entry: str,
        backend: TestGenBackend,
        store: Optional[SampleStore] = None,
        config: Optional[SearchConfig] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.engine = engine
        self.entry = entry
        self.backend = backend
        self.store = store if store is not None else SampleStore()
        self.config = config if config is not None else SearchConfig()
        #: tracer/metrics/journal bundle; the default is effectively free
        #: (real tracer for the time_* fields, no-op metrics and journal)
        self.obs = obs if obs is not None else Observability()
        self._kernel = None
        # late-bind the probe runner for multi-step backends
        if getattr(backend, "probe_runner", "absent") is None:
            backend.probe_runner = self._probe_runner  # type: ignore[attr-defined]

    # -- construction helpers -----------------------------------------------------

    @classmethod
    def for_mode(
        cls,
        program: Program,
        entry: str,
        natives: NativeRegistry,
        mode: ConcretizationMode,
        config: Optional[SearchConfig] = None,
        manager: Optional[TermManager] = None,
        store: Optional[SampleStore] = None,
        use_antecedent: bool = True,
        obs: Optional[Observability] = None,
    ) -> "DirectedSearch":
        """Build a search with the standard backend for ``mode``."""
        from ..core.hotg import HigherOrderBackend

        tm = manager if manager is not None else TermManager()
        engine = ConcolicEngine(
            program,
            natives,
            mode,
            tm,
            exec_backend=(config or SearchConfig()).exec_backend,
        )
        store = store if store is not None else SampleStore()
        if mode is ConcretizationMode.HIGHER_ORDER:
            backend: TestGenBackend = HigherOrderBackend(
                tm,
                store,
                probe_runner=None,  # wired by __init__
                use_antecedent=use_antecedent,
                max_steps=(config or SearchConfig()).max_multistep_probes,
            )
        else:
            backend = QuantifierFreeBackend(tm)
        return cls(engine, entry, backend, store, config, obs)

    # -- the session harness ------------------------------------------------------

    def run(self, seed_inputs: Dict[str, int]) -> SearchResult:
        """Run the directed search from a seed input vector.

        Raises :class:`~repro.errors.SearchInterrupted` when the session is
        killed mid-search (injected or external); the partial result is
        attached to the exception as ``partial_result`` and — when
        checkpointing is on — the checkpoint is flushed first so
        ``SearchConfig.resume_from`` can continue the session.
        """
        from .kernel import SearchKernel  # deferred: kernel imports this module

        obs = self.obs
        result = SearchResult(coverage=BranchCoverage(self.engine.program))
        self._result = result
        replay: Optional[ReplayCursor] = None
        ckpt: Optional[CheckpointWriter] = None
        if self.config.resume_from:
            replay = ReplayCursor.load(self.config.resume_from)
        # the checkpoint records which scheduler built its decision log;
        # replaying under any other scheduler would rebuild a different
        # frontier, so resume adopts the recorded one
        scheduler_name = self.config.scheduler
        if replay is not None:
            recorded = str(replay.meta.get("scheduler") or "")
            if recorded and recorded in SCHEDULERS and recorded != scheduler_name:
                if obs.metrics.enabled:
                    obs.metrics.counter("search.resume.scheduler_override").inc()
                obs.emit(
                    "resume_scheduler_override",
                    requested=scheduler_name,
                    recorded=recorded,
                )
                scheduler_name = recorded
        if self.config.checkpoint_dir:
            resume_here = bool(
                self.config.resume_from
                and os.path.abspath(self.config.resume_from)
                == os.path.abspath(self.config.checkpoint_dir)
            )
            ckpt = CheckpointWriter(
                self.config.checkpoint_dir,
                meta={
                    "entry": self.entry,
                    "mode": self.engine.mode.value,
                    "backend": getattr(
                        self.backend, "name", type(self.backend).__name__
                    ),
                    "seed": dict(seed_inputs),
                    "fault_plan": current_fault_plan().spec(),
                    "max_runs": self.config.max_runs,
                    "scheduler": scheduler_name,
                },
                resume=resume_here,
            )
        kernel = SearchKernel(
            engine=self.engine,
            entry=self.entry,
            backend=self.backend,
            store=self.store,
            config=self.config,
            obs=obs,
            result=result,
            scheduler=make_scheduler(scheduler_name, coverage=result.coverage),
            ckpt=ckpt,
            replay=replay,
        )
        self._kernel = kernel
        obs.emit(
            "search_started",
            entry=self.entry,
            seed=dict(seed_inputs),
            mode=self.engine.mode.value,
            backend=getattr(self.backend, "name", type(self.backend).__name__),
            max_runs=self.config.max_runs,
            scheduler=scheduler_name,
            resumed=bool(self.config.resume_from),
        )
        # deep layers (SMT checks, validity verdicts) emit to the current
        # journal and record into the default registry for the duration of
        # the session
        previous_journal = set_current_journal(obs.journal)
        previous_registry = None
        if obs.metrics.enabled:
            previous_registry = set_default_registry(obs.metrics)
        interrupted: Optional[SearchInterrupted] = None
        try:
            with obs.tracer.span("search") as root:
                try:
                    kernel.search(seed_inputs)
                except SearchInterrupted as exc:
                    interrupted = exc
                    result.interrupted = True
        finally:
            # flush the final checkpoint while the session's journal and
            # registry are still installed, then restore the ambient slots
            if ckpt is not None:
                kernel.flush_checkpoint()
                ckpt.close()
            set_current_journal(previous_journal)
            if obs.metrics.enabled:
                set_default_registry(previous_registry)
        result.time_total = root.elapsed
        metrics = obs.metrics
        if metrics.enabled:
            metrics.counter("search.sessions").inc()
            metrics.counter("search.runs").inc(result.runs)
            metrics.counter("search.solver_calls").inc(result.solver_calls)
            metrics.counter("search.divergences").inc(result.divergences)
            metrics.counter("search.errors").inc(len(result.errors))
            metrics.histogram("search.session_seconds").observe(result.time_total)
        obs.emit(
            "search_finished",
            runs=result.runs,
            paths=result.distinct_paths,
            errors=len(result.errors),
            crashes=len(result.crashes),
            divergences=result.divergences,
            solver_calls=result.solver_calls,
            downgrades=dict(result.downgrades),
            deferred=result.deferred_flips,
            abandoned=result.abandoned_flips,
            interrupted=result.interrupted,
            scheduler=scheduler_name,
            coverage=round(result.coverage.ratio(), 4)
            if result.coverage
            else None,
            seconds=round(result.time_total, 6),
        )
        if interrupted is not None:
            interrupted.checkpoint_dir = self.config.checkpoint_dir
            interrupted.partial_result = result  # type: ignore[attr-defined]
            raise interrupted
        return result

    def _probe_runner(self, inputs: Dict[str, int]) -> None:
        """Multi-step probe hook, late-bound into the backend; delegates to
        the live session's kernel (see :meth:`SearchKernel.probe`)."""
        if self._kernel is None:
            raise ReproError("probe runner called outside a search session")
        self._kernel.probe(inputs)
