"""repro — a reproduction of "Higher-Order Test Generation" (PLDI 2011).

Patrice Godefroid's paper introduces test generation from *validity
proofs* of first-order formulas with uninterpreted functions, recording
runtime input-output *samples* of unknown functions to make the derived
test strategies concrete.  This package implements the whole stack from
scratch:

- :mod:`repro.solver` — SMT solving (CDCL SAT, EUF congruence closure,
  simplex + branch-and-bound LIA) and the validity/strategy engine;
- :mod:`repro.lang` — MiniC, a small C-like language with a parser and
  concrete interpreter;
- :mod:`repro.symbolic` — the concolic machine with the paper's four
  imprecision treatments (unsound / sound / delayed-sound concretization
  and higher-order UF mode);
- :mod:`repro.core` — higher-order test generation: IOF sample store,
  ``POST(pc)`` construction, multi-step test generation;
- :mod:`repro.search` — the DART-style directed search with divergence
  detection and branch coverage;
- :mod:`repro.apps` — the paper's example programs and the §7 lexer
  application;
- :mod:`repro.baselines` — blackbox random fuzzing and static test
  generation, the techniques the paper contrasts against.

The supported library surface is the :mod:`repro.api` facade —
:func:`generate_tests`, :func:`run_campaign`, :func:`replay` — documented
in docs/API.md.  Deeper imports keep working but are not part of the
compatibility promise.

Quickstart::

    from repro import generate_tests, NativeRegistry

    src = '''
    int obscure(int x, int y) {
        if (x == hash(y)) { error("reached"); }
        return 0;
    }
    '''
    natives = NativeRegistry()
    natives.register("hash", lambda y: (y * 31 + 7) % 1000)
    result = generate_tests(
        src, strategy="hotg", natives=natives, seed={"x": 33, "y": 42},
        config={"max_runs": 20},
    )
    assert result.found_error
"""

from .errors import (
    InterpError,
    ParseError,
    ReproError,
    ResourceLimitError,
    SolverError,
    StepBudgetExceeded,
    StrategyError,
    SymbolicExecutionError,
)
from .lang import (
    Interpreter,
    NativeRegistry,
    Program,
    RunResult,
    parse_expression,
    parse_program,
)
from .solver import (
    CongruenceClosure,
    FunctionSymbol,
    LiaSolver,
    Model,
    SatSolver,
    Solver,
    Sort,
    Term,
    TermManager,
    evaluate,
)
from .solver.validity import (
    AppValue,
    Sample,
    SampleRequest,
    Strategy,
    ValidityChecker,
    ValidityResult,
    ValidityStatus,
)
from .symbolic import (
    ConcolicEngine,
    ConcolicResult,
    ConcretizationMode,
    PathCondition,
)
from .core import (
    HigherOrderBackend,
    MultiStepDriver,
    PostFormula,
    SampleStore,
    alternate_constraint,
    build_post,
    negatable_indices,
)
from .search import (
    BranchCoverage,
    DirectedSearch,
    ErrorReport,
    ExistentialBackend,
    QuantifierFreeBackend,
    SearchConfig,
    SearchResult,
)
from .baselines import FuzzResult, RandomFuzzer, StaticTestGenerator
from . import api
from .api import (
    CampaignReport,
    CampaignSpec,
    JobResult,
    SearchJob,
    generate_tests,
    replay,
    run_campaign,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "InterpError",
    "ParseError",
    "ReproError",
    "ResourceLimitError",
    "SolverError",
    "StepBudgetExceeded",
    "StrategyError",
    "SymbolicExecutionError",
    # language
    "Interpreter",
    "NativeRegistry",
    "Program",
    "RunResult",
    "parse_expression",
    "parse_program",
    # solver
    "CongruenceClosure",
    "FunctionSymbol",
    "LiaSolver",
    "Model",
    "SatSolver",
    "Solver",
    "Sort",
    "Term",
    "TermManager",
    "evaluate",
    # validity
    "AppValue",
    "Sample",
    "SampleRequest",
    "Strategy",
    "ValidityChecker",
    "ValidityResult",
    "ValidityStatus",
    # concolic
    "ConcolicEngine",
    "ConcolicResult",
    "ConcretizationMode",
    "PathCondition",
    # core
    "HigherOrderBackend",
    "MultiStepDriver",
    "PostFormula",
    "SampleStore",
    "alternate_constraint",
    "build_post",
    "negatable_indices",
    # search
    "BranchCoverage",
    "DirectedSearch",
    "ErrorReport",
    "ExistentialBackend",
    "QuantifierFreeBackend",
    "SearchConfig",
    "SearchResult",
    # baselines
    "FuzzResult",
    "RandomFuzzer",
    "StaticTestGenerator",
    # the stable facade (docs/API.md)
    "api",
    "generate_tests",
    "run_campaign",
    "replay",
    "CampaignReport",
    "CampaignSpec",
    "JobResult",
    "SearchJob",
    "__version__",
]
