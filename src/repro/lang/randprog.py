"""Seeded random MiniC program generation, for differential testing.

Generates terminating programs from a small grammar: arithmetic over
inputs and locals, nested conditionals, bounded counting loops, native
(unknown) function calls, arrays with both concrete and input-dependent
indices, asserts and error statements.  Programs are deterministic in the
seed, so failures shrink to a reproducible ``(seed, inputs)`` pair.

Used by the test suite to check that:

- the concolic machine's *concrete* semantics agree exactly with the
  plain interpreter on every generated program and input vector;
- path constraints produced in the sound modes satisfy Theorems 2/3 under
  oracle evaluation;
- the directed search never crashes on arbitrary program shapes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .natives import NativeRegistry
from .parser import parse_program
from .ast import Program

__all__ = ["RandomProgram", "generate_program"]


@dataclass
class RandomProgram:
    """A generated program bundle: source, parse, natives, inputs."""

    source: str
    program: Program
    entry: str
    params: Tuple[str, ...]
    seed: int

    def natives(self) -> NativeRegistry:
        registry = NativeRegistry()
        registry.register("hash", lambda v: (v * 131 + 17) % 4093, arity=1)
        registry.register(
            "mix", lambda a, b: ((a * 31) ^ (b * 17)) % 2039, arity=2
        )
        return registry

    def random_inputs(self, rng: random.Random, lo: int = -50, hi: int = 50) -> Dict[str, int]:
        return {p: rng.randint(lo, hi) for p in self.params}


class _Gen:
    def __init__(self, rng: random.Random, params: Tuple[str, ...]) -> None:
        self.rng = rng
        self.params = params
        self.locals: List[str] = []
        self.arrays: List[Tuple[str, int]] = []
        self._next_local = 0

    # -- expressions ---------------------------------------------------------

    def expr(self, depth: int) -> str:
        rng = self.rng
        if depth <= 0:
            return self._leaf()
        pick = rng.random()
        if pick < 0.30:
            return self._leaf()
        if pick < 0.70:
            op = rng.choice(["+", "-", "+", "-", "*"])
            left = self.expr(depth - 1)
            right = (
                str(rng.randint(1, 5)) if op == "*" else self.expr(depth - 1)
            )
            return f"({left} {op} {right})"
        if pick < 0.80 and self.arrays:
            name, size = rng.choice(self.arrays)
            index = rng.randint(0, size - 1)
            return f"{name}[{index}]"
        if pick < 0.92:
            return f"hash({self.expr(depth - 1)})"
        return f"mix({self.expr(depth - 1)}, {self.expr(depth - 1)})"

    def _leaf(self) -> str:
        rng = self.rng
        pool: List[str] = list(self.params) + self.locals
        if pool and rng.random() < 0.75:
            return rng.choice(pool)
        return str(rng.randint(-10, 10))

    def condition(self, depth: int) -> str:
        rng = self.rng
        op = rng.choice(["==", "!=", "<", "<=", ">", ">="])
        base = f"{self.expr(depth)} {op} {self.expr(depth)}"
        if depth > 0 and rng.random() < 0.25:
            conn = rng.choice(["&&", "||"])
            other_op = rng.choice(["==", "!=", "<", ">"])
            other = f"{self.expr(depth - 1)} {other_op} {self.expr(depth - 1)}"
            return f"{base} {conn} {other}"
        return base

    # -- statements ----------------------------------------------------------

    def fresh_local(self) -> str:
        name = f"t{self._next_local}"
        self._next_local += 1
        return name

    def block(self, depth: int, indent: str) -> str:
        count = self.rng.randint(1, 3)
        lines = [self.statement(depth, indent) for _ in range(count)]
        return "\n".join(lines)

    def nested_block(self, depth: int, indent: str) -> str:
        """A block whose declarations must not leak to later statements.

        MiniC scoping is execution-based: a variable declared inside a
        branch that did not run does not exist.  Restore the declaration
        environment afterwards so outer statements never reference names
        whose declaring branch might be skipped.
        """
        saved_locals = list(self.locals)
        saved_arrays = list(self.arrays)
        body = self.block(depth, indent)
        self.locals = saved_locals
        self.arrays = saved_arrays
        return body

    def statement(self, depth: int, indent: str) -> str:
        rng = self.rng
        pick = rng.random()
        if pick < 0.30 or depth <= 0:
            # declaration or assignment
            if self.locals and rng.random() < 0.5:
                target = rng.choice(self.locals)
                return f"{indent}{target} = {self.expr(2)};"
            name = self.fresh_local()
            stmt = f"{indent}int {name} = {self.expr(2)};"
            self.locals.append(name)
            return stmt
        if pick < 0.40 and depth > 0:
            # array declaration + a write
            name = f"arr{len(self.arrays)}"
            size = rng.randint(2, 5)
            self.arrays.append((name, size))
            idx = rng.randint(0, size - 1)
            return (
                f"{indent}int {name}[{size}];\n"
                f"{indent}{name}[{idx}] = {self.expr(1)};"
            )
        if pick < 0.75:
            cond = self.condition(1)
            inner = self.nested_block(depth - 1, indent + "    ")
            if rng.random() < 0.5:
                alt = self.nested_block(depth - 1, indent + "    ")
                return (
                    f"{indent}if ({cond}) {{\n{inner}\n{indent}}} else {{\n"
                    f"{alt}\n{indent}}}"
                )
            return f"{indent}if ({cond}) {{\n{inner}\n{indent}}}"
        if pick < 0.90:
            # bounded counting loop (always terminates)
            counter = self.fresh_local()
            bound = rng.randint(1, 4)
            inner = self.nested_block(depth - 1, indent + "    ")
            return (
                f"{indent}int {counter} = 0;\n"
                f"{indent}while ({counter} < {bound}) {{\n"
                f"{inner}\n"
                f"{indent}    {counter} = {counter} + 1;\n"
                f"{indent}}}"
            )
        # an error guarded by a condition (gives searches a target)
        cond = self.condition(1)
        return (
            f"{indent}if ({cond}) {{\n"
            f'{indent}    error("generated bug");\n'
            f"{indent}}}"
        )


def generate_program(
    seed: int, num_params: int = 2, depth: int = 3
) -> RandomProgram:
    """Generate one deterministic random program for the given seed."""
    rng = random.Random(seed)
    params = tuple(f"p{i}" for i in range(num_params))
    gen = _Gen(rng, params)
    body = gen.block(depth, "    ")
    ret = gen.expr(2)
    param_list = ", ".join(f"int {p}" for p in params)
    source = (
        f"int main({param_list}) {{\n"
        f"{body}\n"
        f"    return {ret};\n"
        f"}}\n"
    )
    return RandomProgram(
        source=source,
        program=parse_program(source),
        entry="main",
        params=params,
        seed=seed,
    )
