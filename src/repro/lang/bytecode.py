"""Flat register bytecode: the shared execution core for MiniC.

The tree walkers (:class:`~repro.lang.interp.Interpreter` and the
concolic machine) re-traverse the AST on every run; on search workloads
that interpretation overhead bounds runs/second.  This module lowers a
parsed :class:`Program` *once* into flat register-based bytecode —
numbered instructions, pre-resolved jump targets, interned names and
constants, a per-function frame layout — and executes it with a
dispatch loop.  Two loops share one compiled artifact:

- :func:`run_concrete` — plain-int registers, replacing
  ``Interpreter._exec_block``/``_eval`` for concrete execution;
- :func:`exec_concolic` — :class:`SymValue` registers driving
  ``ConcolicEngine``'s symbolic shadow off the same instruction stream,
  delegating every term-building decision to the engine's operand-level
  helpers so term creation order, pins, injected checks, and path
  conditions are byte-identical to the tree walk.

Correctness contract (digest-gated by tests and CI): for every program
and input vector both backends produce identical ``RunResult``s /
``ConcolicResult``s — return value, error class/message/line, branch
trace, coverage set, and *step counts*.  Step counting is the subtle
part: the tree walkers tick once per statement and once per expression
node (pre-order), plus one extra tick per completed loop body.  The
compiler folds each run of consecutive ticks into the *next* emitted
instruction's ``ticks`` field (safe: no observable effect separates
consecutive ticks), and flushes pending ticks into an ``OP_TICK``
before every jump target so loop re-entries never double-count the
loop statement's own tick.

Compiled programs are cached two ways: an instance memo on the
``Program`` object, and a process-global table keyed by the SHA-256
digest of the program's source text (programs parsed from identical
source share one artifact).  Programs constructed without source text
still get the per-instance memo.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from ..errors import InterpError, StepBudgetExceeded
from .ast import (
    ArrayAssign,
    ArrayDecl,
    ArrayRef,
    Assign,
    AssertStmt,
    Binary,
    Block,
    Call,
    ErrorStmt,
    Expr,
    ExprStmt,
    FunctionDef,
    If,
    IntLit,
    Program,
    Return,
    Stmt,
    Unary,
    VarDecl,
    VarRef,
    While,
)
from .interp import RunResult, _ErrorSignal
from .natives import NativeRegistry

__all__ = [
    "CompiledFunction",
    "CompiledProgram",
    "compile_program",
    "compile_cache_stats",
    "clear_compile_cache",
    "run_concrete",
    "exec_concolic",
]


# -- instruction set ----------------------------------------------------------
#
# An instruction is a plain tuple ``(op, ticks, *operands)``.  ``ticks``
# is the number of tree-walker ticks that precede this instruction's
# effect; the dispatch loops charge it against the step budget before
# executing the operation.

OP_TICK = 0        # ()                                flush folded ticks
OP_LOADK = 1       # (dst, value)                      integer literal
OP_LOADV = 2       # (dst, slot, name, line)           variable read + checks
OP_STORE = 3       # (slot, src)                       unchecked register move
OP_CHECKDECL = 4   # (slot, name, line)                assignment pre-check
OP_ZERO = 5        # (slot,)                           `int x;` default init
OP_NEWARR = 6      # (slot, size)                      array declaration
OP_CHECKARR = 7    # (slot, name, line)                array-ness check
OP_ALOAD = 8       # (dst, slot, idx, name, line)      array read
OP_ABOUND = 9      # (slot, idx, name, line)           concrete bounds check
OP_ASTORE = 10     # (slot, idx, val, name, line)      array write
OP_NEG = 11        # (dst, src)
OP_NOT = 12        # (dst, src)
OP_ADD = 13        # (dst, l, r)
OP_SUB = 14        # (dst, l, r)
OP_MUL = 15        # (dst, l, r)
OP_DIV = 16        # (dst, l, r, line)
OP_MOD = 17        # (dst, l, r, line)
OP_EQ = 18         # (dst, l, r)
OP_NE = 19         # (dst, l, r)
OP_LT = 20         # (dst, l, r)
OP_LE = 21         # (dst, l, r)
OP_GT = 22         # (dst, l, r)
OP_GE = 23         # (dst, l, r)
OP_AND = 24        # (dst, l, r)                       strict logical and
OP_OR = 25         # (dst, l, r)                       strict logical or
OP_JUMP = 26       # (target,)
OP_BR = 27         # (cond, branch_id, line, false_target)
OP_ASSERT = 28     # (cond, branch_id, line)
OP_RET = 29        # (src,)
OP_RETK = 30       # (value,)                          `return;` / fall-off
OP_ERROR = 31      # (message, line)
OP_CALL = 32       # (dst, func_index, argbase, nargs)
OP_NATIVE = 33     # (dst, name, argbase, nargs)
OP_ARITYERR = 34   # (message,)                        static arity mismatch

# Fused superinstructions, produced by the compiler's peephole pass
# (never emitted directly).  Each performs the exact effect sequence of
# its source pair, with the second component's ticks carried as an extra
# operand so the step budget still trips between the two effects.  Pairs
# that consume a dead temporary (operand fusions) skip the temp write;
# this is safe because expression temps (slots >= nlocals) are always
# written before they are read, and the fusion conditions require the
# consumed register to be a temp written by the first instruction.
OP_BRCMP = 35      # (cmp_op, l, r, branch_id, line, false_target)
OP_LOADV2 = 36     # (d1, s1, n1, l1, t2, d2, s2, n2, l2)  two var reads
OP_LOADVK = 37     # (d1, s1, n1, l1, t2, d2, k)           var read + const
OP_BINV = 38       # (bin_op, dst, l, s, n, ln, line)      right = var slot
OP_BINK = 39       # (bin_op, dst, l, k, line)             right = const
OP_BINVK = 40     # (bin_op, dst, s, n, ln, t2, k, line)  var (op) const
OP_GUARDVK = 41   # (cmp_op, s, n, ln, t2, k, branch_id, line, false_target)
OP_BINVV = 42     # (bin_op, dst, s1, n1, l1, t2, s2, n2, l2, line)  var (op) var
OP_GUARDVV = 43   # (cmp_op, s1, n1, l1, t2, s2, n2, l2, branch_id, line,
                  #  false_target)

_BINOP_CODE = {
    "+": OP_ADD,
    "-": OP_SUB,
    "*": OP_MUL,
    "==": OP_EQ,
    "!=": OP_NE,
    "<": OP_LT,
    "<=": OP_LE,
    ">": OP_GT,
    ">=": OP_GE,
    "&&": OP_AND,
    "||": OP_OR,
}

#: opcode -> MiniC operator, for the concolic shadow's operand-level
#: delegation back into ``ConcolicEngine._apply_binary``
_OPSTR = {
    OP_ADD: "+",
    OP_SUB: "-",
    OP_MUL: "*",
    OP_DIV: "/",
    OP_MOD: "%",
    OP_EQ: "==",
    OP_NE: "!=",
    OP_LT: "<",
    OP_LE: "<=",
    OP_GT: ">",
    OP_GE: ">=",
    OP_AND: "&&",
    OP_OR: "||",
}

#: binops eligible for operand fusion (all of them; DIV/MOD carry their
#: error line into the fused instruction's trailing operand)
_FUSABLE_BINOPS = frozenset(range(OP_ADD, OP_OR + 1))
#: comparison opcodes eligible for compare-and-branch fusion
_CMP_OPS = frozenset((OP_EQ, OP_NE, OP_LT, OP_LE, OP_GT, OP_GE))


class _Undef:
    """Sentinel for a frame slot whose declaring statement has not run.

    MiniC scoping is execution-based (a name exists only once its
    declaration executed), so declaredness is a *runtime* property of the
    frame, not a compile-time one.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<undef>"


UNDEF = _Undef()


class CompiledFunction:
    """One function lowered to a flat instruction tuple."""

    __slots__ = ("name", "params", "nlocals", "nregs", "code", "slot_names")

    def __init__(
        self,
        name: str,
        params: Tuple[str, ...],
        nlocals: int,
        nregs: int,
        code: Tuple[tuple, ...],
        slot_names: Tuple[str, ...],
    ) -> None:
        self.name = name
        self.params = params
        self.nlocals = nlocals
        self.nregs = nregs
        self.code = code
        self.slot_names = slot_names

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CompiledFunction({self.name}, params={self.params}, "
            f"{len(self.code)} instrs, {self.nregs} regs)"
        )


class CompiledProgram:
    """A program lowered once, executable by both dispatch loops."""

    __slots__ = ("functions", "funcs", "source_digest")

    def __init__(
        self,
        functions: Dict[str, CompiledFunction],
        funcs: List[CompiledFunction],
        source_digest: str,
    ) -> None:
        self.functions = functions
        self.funcs = funcs
        self.source_digest = source_digest

    def function(self, name: str) -> CompiledFunction:
        if name not in self.functions:
            raise KeyError(f"no function named {name!r}")
        return self.functions[name]


# -- compiler ------------------------------------------------------------------


def _collect_slots(fn: FunctionDef) -> Dict[str, int]:
    """Frame layout: params first, then every other name in preorder.

    Every name *mentioned* in the function gets a slot, declared or not
    — declaredness is checked at runtime against the UNDEF sentinel so
    the bytecode reproduces the tree walker's execution-based scoping
    errors exactly.
    """
    slots: Dict[str, int] = {}
    for p in fn.params:
        slots[p] = len(slots)

    def add(name: str) -> None:
        if name not in slots:
            slots[name] = len(slots)

    def walk_expr(e: Expr) -> None:
        if isinstance(e, VarRef):
            add(e.name)
        elif isinstance(e, ArrayRef):
            add(e.name)
            walk_expr(e.index)
        elif isinstance(e, Unary):
            walk_expr(e.operand)
        elif isinstance(e, Binary):
            walk_expr(e.left)
            walk_expr(e.right)
        elif isinstance(e, Call):
            for a in e.args:
                walk_expr(a)

    def walk_stmt(s: Stmt) -> None:
        if isinstance(s, VarDecl):
            add(s.name)
            if s.init is not None:
                walk_expr(s.init)
        elif isinstance(s, ArrayDecl):
            add(s.name)
        elif isinstance(s, Assign):
            add(s.name)
            walk_expr(s.expr)
        elif isinstance(s, ArrayAssign):
            add(s.name)
            walk_expr(s.index)
            walk_expr(s.expr)
        elif isinstance(s, If):
            walk_expr(s.cond)
            for inner in s.then_body.stmts:
                walk_stmt(inner)
            if s.else_body is not None:
                for inner in s.else_body.stmts:
                    walk_stmt(inner)
        elif isinstance(s, While):
            walk_expr(s.cond)
            for inner in s.body.stmts:
                walk_stmt(inner)
        elif isinstance(s, Return):
            if s.expr is not None:
                walk_expr(s.expr)
        elif isinstance(s, ExprStmt):
            walk_expr(s.expr)
        elif isinstance(s, AssertStmt):
            walk_expr(s.cond)
        elif isinstance(s, Block):
            for inner in s.stmts:
                walk_stmt(inner)

    for stmt in fn.body.stmts:
        walk_stmt(stmt)
    return slots


class _FunctionCompiler:
    """Lowers one function body to instructions with folded tick counts."""

    def __init__(
        self, program: Program, fn: FunctionDef, func_index: Dict[str, int]
    ) -> None:
        self.program = program
        self.fn = fn
        self.func_index = func_index
        self.slots = _collect_slots(fn)
        self.param_set = set(fn.params)
        #: names provably declared at the current emission point: their
        #: declaring statement (or an assignment whose CHECKDECL must
        #: have passed) dominates it.  A frame slot never reverts to
        #: UNDEF, so domination is permanent; conditional bodies push a
        #: copy and discard their additions on exit.
        self.declared = set(fn.params)
        self.nlocals = len(self.slots)
        self.temp = self.nlocals
        self.high = self.nlocals
        self.code: List[tuple] = []
        self.pending = 0
        self._next_label = 0
        self.label_pos: Dict[int, int] = {}

    # -- emission helpers ------------------------------------------------

    def emit(self, op: int, *operands) -> None:
        self.code.append((op, self.pending) + operands)
        self.pending = 0

    def new_label(self) -> int:
        self._next_label += 1
        return self._next_label

    def mark(self, label: int) -> None:
        # pending ticks belong to the straight-line path *before* the
        # label; flushing here keeps them off the jump-landing path
        if self.pending:
            self.code.append((OP_TICK, self.pending))
            self.pending = 0
        self.label_pos[label] = len(self.code)

    def alloc(self) -> int:
        reg = self.temp
        self.temp += 1
        if self.temp > self.high:
            self.high = self.temp
        return reg

    # -- expressions -----------------------------------------------------

    def expr(self, e: Expr, dst: int) -> None:
        self.pending += 1  # the tree walker's pre-order expression tick
        if isinstance(e, IntLit):
            self.emit(OP_LOADK, dst, e.value)
        elif isinstance(e, VarRef):
            self.emit(OP_LOADV, dst, self.slots[e.name], e.name, e.line)
        elif isinstance(e, Binary):
            save = self.temp
            left = self.alloc()
            self.expr(e.left, left)
            right = self.alloc()
            self.expr(e.right, right)
            self.temp = save
            if e.op == "/":
                self.emit(OP_DIV, dst, left, right, e.line)
            elif e.op == "%":
                self.emit(OP_MOD, dst, left, right, e.line)
            else:
                code = _BINOP_CODE.get(e.op)
                if code is None:
                    raise InterpError(f"unknown binary operator {e.op!r}")
                self.emit(code, dst, left, right)
        elif isinstance(e, Unary):
            save = self.temp
            operand = self.alloc()
            self.expr(e.operand, operand)
            self.temp = save
            if e.op == "-":
                self.emit(OP_NEG, dst, operand)
            elif e.op == "!":
                self.emit(OP_NOT, dst, operand)
            else:
                raise InterpError(f"unknown unary operator {e.op!r}")
        elif isinstance(e, ArrayRef):
            slot = self.slots[e.name]
            # the array-ness check precedes index evaluation in the tree
            # walker, so it is a separate instruction carrying the ticks
            self.emit(OP_CHECKARR, slot, e.name, e.line)
            save = self.temp
            idx = self.alloc()
            self.expr(e.index, idx)
            self.temp = save
            self.emit(OP_ALOAD, dst, slot, idx, e.name, e.line)
        elif isinstance(e, Call):
            save = self.temp
            base = self.temp
            for a in e.args:
                self.expr(a, self.alloc())
            self.temp = save
            if e.name in self.program.functions:
                callee = self.program.functions[e.name]
                if len(e.args) != len(callee.params):
                    # statically known mismatch, but it must only fire if
                    # the call executes — and after its args evaluated
                    self.emit(
                        OP_ARITYERR,
                        f"{e.name} expects {len(callee.params)} args, got "
                        f"{len(e.args)} (line {e.line})",
                    )
                else:
                    self.emit(
                        OP_CALL, dst, self.func_index[e.name], base, len(e.args)
                    )
            else:
                self.emit(OP_NATIVE, dst, e.name, base, len(e.args))
        else:
            raise InterpError(f"unknown expression {e!r}")

    # -- statements ------------------------------------------------------

    def block(self, b: Block) -> None:
        for s in b.stmts:
            self.stmt(s)

    def stmt(self, s: Stmt) -> None:
        self.pending += 1  # the tree walker's per-statement tick
        if isinstance(s, VarDecl):
            slot = self.slots[s.name]
            if s.init is not None:
                self.expr(s.init, slot)
            else:
                self.emit(OP_ZERO, slot)
            self.declared.add(s.name)
        elif isinstance(s, ArrayDecl):
            self.emit(OP_NEWARR, self.slots[s.name], s.size)
            self.declared.add(s.name)
        elif isinstance(s, Assign):
            slot = self.slots[s.name]
            if s.name not in self.declared:
                # the declaredness check precedes RHS evaluation; it is
                # elided when a dominating declaration (or a previously
                # passed check) proves it can never fire
                self.emit(OP_CHECKDECL, slot, s.name, s.line)
                # control proceeding past the check proves declaredness
                # for everything this statement dominates
                self.declared.add(s.name)
            self.expr(s.expr, slot)
        elif isinstance(s, ArrayAssign):
            slot = self.slots[s.name]
            self.emit(OP_CHECKARR, slot, s.name, s.line)
            save = self.temp
            idx = self.alloc()
            self.expr(s.index, idx)
            # concrete semantics bounds-check before evaluating the RHS;
            # the concolic walker resolves the index after (OP_ABOUND is
            # a no-op in the shadow loop, OP_ASTORE resolves there)
            self.emit(OP_ABOUND, slot, idx, s.name, s.line)
            val = self.alloc()
            self.expr(s.expr, val)
            self.temp = save
            self.emit(OP_ASTORE, slot, idx, val, s.name, s.line)
        elif isinstance(s, If):
            save = self.temp
            cond = self.alloc()
            self.expr(s.cond, cond)
            self.temp = save
            l_else = self.new_label()
            self.emit(OP_BR, cond, s.branch_id, s.line, l_else)
            # declarations inside a conditional body don't dominate the
            # code after it; compile each arm with a discarded copy
            outer = self.declared
            self.declared = set(outer)
            self.block(s.then_body)
            self.declared = outer
            if s.else_body is not None:
                l_end = self.new_label()
                self.emit(OP_JUMP, l_end)
                self.mark(l_else)
                self.declared = set(outer)
                self.block(s.else_body)
                self.declared = outer
                self.mark(l_end)
            else:
                self.mark(l_else)
        elif isinstance(s, While):
            l_head = self.new_label()
            l_exit = self.new_label()
            # mark() flushes the while-statement tick before the head so
            # loop re-entries (which jump to the head) don't recount it
            self.mark(l_head)
            save = self.temp
            cond = self.alloc()
            self.expr(s.cond, cond)
            self.temp = save
            self.emit(OP_BR, cond, s.branch_id, s.line, l_exit)
            outer = self.declared
            self.declared = set(outer)
            self.block(s.body)
            self.declared = outer
            self.pending += 1  # the tree walker's post-body iteration tick
            self.emit(OP_JUMP, l_head)
            self.mark(l_exit)
        elif isinstance(s, Return):
            if s.expr is not None:
                save = self.temp
                value = self.alloc()
                self.expr(s.expr, value)
                self.temp = save
                self.emit(OP_RET, value)
            else:
                self.emit(OP_RETK, 0)
        elif isinstance(s, ErrorStmt):
            self.emit(OP_ERROR, s.message, s.line)
        elif isinstance(s, AssertStmt):
            save = self.temp
            cond = self.alloc()
            self.expr(s.cond, cond)
            self.temp = save
            self.emit(OP_ASSERT, cond, s.branch_id, s.line)
        elif isinstance(s, ExprStmt):
            save = self.temp
            self.expr(s.expr, self.alloc())
            self.temp = save
        elif isinstance(s, Block):
            # bare nested block (for-loop desugaring): its statement tick
            # rides self.pending into the first inner instruction
            self.block(s)
        else:
            raise InterpError(f"unknown statement {s!r}")

    # -- driver ----------------------------------------------------------

    def compile(self) -> CompiledFunction:
        self.block(self.fn.body)
        self.emit(OP_RETK, 0)  # falling off the end returns 0
        self._peephole()
        code = self._resolve_labels()
        slot_names = tuple(
            name for name, _ in sorted(self.slots.items(), key=lambda kv: kv[1])
        )
        return CompiledFunction(
            name=self.fn.name,
            params=tuple(self.fn.params),
            nlocals=self.nlocals,
            nregs=self.high,
            code=code,
            slot_names=slot_names,
        )

    def _peephole(self) -> None:
        """Fuse adjacent instruction pairs into superinstructions.

        Runs to a fixpoint so second-round patterns form (a fused
        ``LOADVK`` feeding a binop becomes ``BINVK``; feeding a fused
        compare-and-branch becomes ``GUARDVK``, the canonical
        ``while (i < N)`` loop guard).  A pair never fuses across a jump
        target — landing mid-superinstruction would skip effects — and
        operand fusions additionally require the consumed register to be
        an expression temp (slot >= nlocals) so a variable's visible
        store is never elided.  Label positions refer to instruction
        indices, so each pass remaps them; jump operands still hold
        label ids and need no patching here.
        """
        changed = True
        while changed:
            changed = False
            targets = set(self.label_pos.values())
            code = self.code
            n = len(code)
            out: List[tuple] = []
            remap: Dict[int, int] = {}
            i = 0
            while i < n:
                remap[i] = len(out)
                if i + 1 < n and (i + 1) not in targets:
                    fused = self._try_fuse(code[i], code[i + 1])
                    if fused is not None:
                        out.append(fused)
                        i += 2
                        changed = True
                        continue
                out.append(code[i])
                i += 1
            remap[n] = len(out)
            self.code = out
            self.label_pos = {
                lbl: remap[idx] for lbl, idx in self.label_pos.items()
            }

    def _try_fuse(self, ins1: tuple, ins2: tuple) -> Optional[tuple]:
        op1 = ins1[0]
        op2 = ins2[0]
        nlocals = self.nlocals
        if op1 == OP_LOADV:
            if op2 == OP_LOADV:
                # effect-identical for any destinations, var or temp
                return (OP_LOADV2,) + ins1[1:] + ins2[1:]
            if op2 == OP_LOADK:
                return (OP_LOADVK,) + ins1[1:] + ins2[1:]
            if (
                op2 in _FUSABLE_BINOPS
                and ins2[1] == 0
                and ins2[4] == ins1[2]
                and ins1[2] >= nlocals
            ):
                # the temp just loaded is the binop's right operand
                bline = ins2[5] if (op2 == OP_DIV or op2 == OP_MOD) else 0
                return (
                    OP_BINV, ins1[1], op2, ins2[2], ins2[3],
                    ins1[3], ins1[4], ins1[5], bline,
                )
            return None
        if op1 == OP_LOADK:
            if (
                op2 in _FUSABLE_BINOPS
                and ins2[1] == 0
                and ins2[4] == ins1[2]
                and ins1[2] >= nlocals
            ):
                bline = ins2[5] if (op2 == OP_DIV or op2 == OP_MOD) else 0
                return (
                    OP_BINK, ins1[1], op2, ins2[2], ins2[3], ins1[3], bline,
                )
            return None
        if op1 == OP_LOADV2:
            # ins1 = (op, t1, d1, s1, n1, l1, t2, d2, s2, n2, l2)
            if (
                op2 in _FUSABLE_BINOPS
                and ins2[1] == 0
                and ins2[3] == ins1[2]
                and ins2[4] == ins1[7]
                and ins1[2] >= nlocals
                and ins1[7] >= nlocals
            ):
                bline = ins2[5] if (op2 == OP_DIV or op2 == OP_MOD) else 0
                return (
                    OP_BINVV, ins1[1], op2, ins2[2],
                    ins1[3], ins1[4], ins1[5], ins1[6],
                    ins1[8], ins1[9], ins1[10], bline,
                )
            if (
                op2 == OP_BRCMP
                and ins2[1] == 0
                and ins2[3] == ins1[2]
                and ins2[4] == ins1[7]
                and ins1[2] >= nlocals
                and ins1[7] >= nlocals
            ):
                # ins2 = (op, t, cop, l, r, bid, line, label)
                return (
                    OP_GUARDVV, ins1[1], ins2[2],
                    ins1[3], ins1[4], ins1[5], ins1[6],
                    ins1[8], ins1[9], ins1[10],
                    ins2[5], ins2[6], ins2[7],
                )
            return None
        if op1 == OP_LOADVK:
            # ins1 = (op, t1, d1, s1, n1, l1, t2, d2, k)
            if (
                op2 in _FUSABLE_BINOPS
                and ins2[1] == 0
                and ins2[3] == ins1[2]
                and ins2[4] == ins1[7]
                and ins1[2] >= nlocals
                and ins1[7] >= nlocals
            ):
                bline = ins2[5] if (op2 == OP_DIV or op2 == OP_MOD) else 0
                return (
                    OP_BINVK, ins1[1], op2, ins2[2],
                    ins1[3], ins1[4], ins1[5], ins1[6], ins1[8], bline,
                )
            if (
                op2 == OP_BRCMP
                and ins2[1] == 0
                and ins2[3] == ins1[2]
                and ins2[4] == ins1[7]
                and ins1[2] >= nlocals
                and ins1[7] >= nlocals
            ):
                # ins2 = (op, t, cop, l, r, bid, line, label)
                return (
                    OP_GUARDVK, ins1[1], ins2[2],
                    ins1[3], ins1[4], ins1[5], ins1[6], ins1[8],
                    ins2[5], ins2[6], ins2[7],
                )
            return None
        if (
            op1 in _CMP_OPS
            and op2 == OP_BR
            and ins2[1] == 0
            and ins2[2] == ins1[2]
            and ins1[2] >= nlocals
        ):
            # ins2 = (op, t, cond, branch_id, line, label)
            return (
                OP_BRCMP, ins1[1], op1, ins1[3], ins1[4],
                ins2[3], ins2[4], ins2[5],
            )
        return None

    def _resolve_labels(self) -> Tuple[tuple, ...]:
        pos = self.label_pos
        resolved: List[tuple] = []
        for ins in self.code:
            op = ins[0]
            if op == OP_JUMP:
                resolved.append((op, ins[1], pos[ins[2]]))
            elif op == OP_BR:
                resolved.append(ins[:5] + (pos[ins[5]],))
            elif op == OP_BRCMP:
                resolved.append(ins[:7] + (pos[ins[7]],))
            elif op == OP_GUARDVK:
                resolved.append(ins[:10] + (pos[ins[10]],))
            elif op == OP_GUARDVV:
                resolved.append(ins[:12] + (pos[ins[12]],))
            else:
                resolved.append(ins)
        return tuple(resolved)


# -- compile cache -------------------------------------------------------------

_COMPILE_CACHE: Dict[str, CompiledProgram] = {}
_cache_hits = 0
_cache_misses = 0


def compile_program(program: Program) -> CompiledProgram:
    """Lower ``program`` to bytecode, reusing cached artifacts.

    Cached per ``Program`` instance (attribute memo) and per source
    digest (process-global), so repeated executions — and repeated
    ``Interpreter``/``ConcolicEngine`` constructions over the same
    source — compile exactly once.
    """
    global _cache_hits, _cache_misses
    cached = getattr(program, "_bytecode", None)
    if cached is not None:
        _cache_hits += 1
        return cached
    digest = ""
    if program.source:
        digest = hashlib.sha256(program.source.encode("utf-8")).hexdigest()
        cached = _COMPILE_CACHE.get(digest)
        if cached is not None:
            _cache_hits += 1
            program._bytecode = cached  # type: ignore[attr-defined]
            return cached
    _cache_misses += 1
    func_index = {name: i for i, name in enumerate(program.functions)}
    funcs: List[CompiledFunction] = []
    functions: Dict[str, CompiledFunction] = {}
    for name, fn in program.functions.items():
        compiled = _FunctionCompiler(program, fn, func_index).compile()
        funcs.append(compiled)
        functions[name] = compiled
    artifact = CompiledProgram(functions, funcs, digest)
    if digest:
        _COMPILE_CACHE[digest] = artifact
    program._bytecode = artifact  # type: ignore[attr-defined]
    return artifact


def compile_cache_stats() -> Dict[str, int]:
    """Hit/miss counters and resident entries of the compile cache."""
    return {
        "hits": _cache_hits,
        "misses": _cache_misses,
        "entries": len(_COMPILE_CACHE),
    }


def clear_compile_cache() -> None:
    """Drop the global compile cache (cold-compile benchmarking)."""
    global _cache_hits, _cache_misses
    _COMPILE_CACHE.clear()
    _cache_hits = 0
    _cache_misses = 0


# -- concrete dispatch loop ----------------------------------------------------


def run_concrete(
    cp: CompiledProgram,
    entry: str,
    inputs: Dict[str, int],
    natives: NativeRegistry,
    step_budget: int = 1_000_000,
) -> RunResult:
    """Execute ``entry`` on the compiled program; tree-walker-identical."""
    cf = cp.function(entry)
    missing = [p for p in cf.params if p not in inputs]
    if missing:
        raise InterpError(f"missing inputs for parameters {missing}")
    result = RunResult(inputs=dict(inputs), returned=None)
    args = [int(inputs[p]) for p in cf.params]
    try:
        result.returned = _frame_concrete(
            cp, cf, args, natives, result, step_budget
        )
    except _ErrorSignal as err:
        result.error = True
        result.error_message = err.message
        result.error_line = err.line
    return result


def _frame_concrete(
    cp: CompiledProgram,
    cf: CompiledFunction,
    args: List[int],
    natives: NativeRegistry,
    res: RunResult,
    budget: int,
):
    """One activation frame of the concrete VM; recursion mirrors calls."""
    regs: List[object] = [UNDEF] * cf.nregs
    regs[: len(args)] = args
    code = cf.code
    funcs = cp.funcs
    path = res.path
    covered = res.covered
    steps = res.steps
    pc = 0
    while True:
        ins = code[pc]
        op = ins[0]
        t = ins[1]
        if t:
            steps += t
            if steps > budget:
                # the first tick past the budget raises, so the recorded
                # count is budget+1 regardless of how many were folded
                res.steps = budget + 1
                raise StepBudgetExceeded(
                    f"execution exceeded {budget} steps"
                )
        if op == OP_LOADV:
            v = regs[ins[3]]
            if v is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"undeclared variable {ins[4]!r} (line {ins[5]})"
                )
            if v.__class__ is list:
                res.steps = steps
                raise InterpError(
                    f"array {ins[4]!r} used as a scalar (line {ins[5]})"
                )
            regs[ins[2]] = v
        elif op == OP_LOADK:
            regs[ins[2]] = ins[3]
        elif op == OP_BR:
            taken = regs[ins[2]] != 0
            bid = ins[3]
            path.append((bid, taken))
            covered.add((bid, taken))
            if taken:
                pc += 1
            else:
                pc = ins[5]
            continue
        elif op == OP_GUARDVK:
            # (cop, s, n, ln, t2, k, bid, line, target): the fused
            # `while (i < N)` guard — checked var read, const compare,
            # branch record, jump — in one dispatch
            v = regs[ins[3]]
            if v is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"undeclared variable {ins[4]!r} (line {ins[5]})"
                )
            if v.__class__ is list:
                res.steps = steps
                raise InterpError(
                    f"array {ins[4]!r} used as a scalar (line {ins[5]})"
                )
            t = ins[6]
            if t:
                steps += t
                if steps > budget:
                    res.steps = budget + 1
                    raise StepBudgetExceeded(
                        f"execution exceeded {budget} steps"
                    )
            cop = ins[2]
            k = ins[7]
            if cop == OP_LT:
                taken = v < k
            elif cop == OP_LE:
                taken = v <= k
            elif cop == OP_GT:
                taken = v > k
            elif cop == OP_GE:
                taken = v >= k
            elif cop == OP_EQ:
                taken = v == k
            else:
                taken = v != k
            bid = ins[8]
            path.append((bid, taken))
            covered.add((bid, taken))
            if taken:
                pc += 1
            else:
                pc = ins[10]
            continue
        elif op == OP_GUARDVV:
            # (cop, s1, n1, l1, t2, s2, n2, l2, bid, line, target)
            v = regs[ins[3]]
            if v is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"undeclared variable {ins[4]!r} (line {ins[5]})"
                )
            if v.__class__ is list:
                res.steps = steps
                raise InterpError(
                    f"array {ins[4]!r} used as a scalar (line {ins[5]})"
                )
            t = ins[6]
            if t:
                steps += t
                if steps > budget:
                    res.steps = budget + 1
                    raise StepBudgetExceeded(
                        f"execution exceeded {budget} steps"
                    )
            w = regs[ins[7]]
            if w is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"undeclared variable {ins[8]!r} (line {ins[9]})"
                )
            if w.__class__ is list:
                res.steps = steps
                raise InterpError(
                    f"array {ins[8]!r} used as a scalar (line {ins[9]})"
                )
            cop = ins[2]
            if cop == OP_LT:
                taken = v < w
            elif cop == OP_LE:
                taken = v <= w
            elif cop == OP_GT:
                taken = v > w
            elif cop == OP_GE:
                taken = v >= w
            elif cop == OP_EQ:
                taken = v == w
            else:
                taken = v != w
            bid = ins[10]
            path.append((bid, taken))
            covered.add((bid, taken))
            if taken:
                pc += 1
            else:
                pc = ins[12]
            continue
        elif op == OP_BRCMP:
            a = regs[ins[3]]
            b = regs[ins[4]]
            cop = ins[2]
            if cop == OP_LT:
                taken = a < b
            elif cop == OP_LE:
                taken = a <= b
            elif cop == OP_GT:
                taken = a > b
            elif cop == OP_GE:
                taken = a >= b
            elif cop == OP_EQ:
                taken = a == b
            else:
                taken = a != b
            bid = ins[5]
            path.append((bid, taken))
            covered.add((bid, taken))
            if taken:
                pc += 1
            else:
                pc = ins[7]
            continue
        elif op == OP_BINVK:
            # (cop, dst, s, n, ln, t2, k, line): var (op) const
            v = regs[ins[4]]
            if v is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"undeclared variable {ins[5]!r} (line {ins[6]})"
                )
            if v.__class__ is list:
                res.steps = steps
                raise InterpError(
                    f"array {ins[5]!r} used as a scalar (line {ins[6]})"
                )
            t = ins[7]
            if t:
                steps += t
                if steps > budget:
                    res.steps = budget + 1
                    raise StepBudgetExceeded(
                        f"execution exceeded {budget} steps"
                    )
            cop = ins[2]
            b = ins[8]
            if cop == OP_ADD:
                out = v + b
            elif cop == OP_SUB:
                out = v - b
            elif cop == OP_MUL:
                out = v * b
            elif cop == OP_LT:
                out = 1 if v < b else 0
            elif cop == OP_LE:
                out = 1 if v <= b else 0
            elif cop == OP_GT:
                out = 1 if v > b else 0
            elif cop == OP_GE:
                out = 1 if v >= b else 0
            elif cop == OP_EQ:
                out = 1 if v == b else 0
            elif cop == OP_NE:
                out = 1 if v != b else 0
            elif cop == OP_AND:
                out = 1 if (v != 0 and b != 0) else 0
            elif cop == OP_OR:
                out = 1 if (v != 0 or b != 0) else 0
            else:
                if b == 0:
                    res.steps = steps
                    raise _ErrorSignal("division by zero", ins[9])
                q = abs(v) // abs(b)
                if (v >= 0) != (b >= 0):
                    q = -q
                out = q if cop == OP_DIV else v - b * q
            regs[ins[3]] = out
        elif op == OP_BINK:
            # (cop, dst, l, k, line): register (op) const
            a = regs[ins[4]]
            b = ins[5]
            cop = ins[2]
            if cop == OP_ADD:
                out = a + b
            elif cop == OP_SUB:
                out = a - b
            elif cop == OP_MUL:
                out = a * b
            elif cop == OP_LT:
                out = 1 if a < b else 0
            elif cop == OP_LE:
                out = 1 if a <= b else 0
            elif cop == OP_GT:
                out = 1 if a > b else 0
            elif cop == OP_GE:
                out = 1 if a >= b else 0
            elif cop == OP_EQ:
                out = 1 if a == b else 0
            elif cop == OP_NE:
                out = 1 if a != b else 0
            elif cop == OP_AND:
                out = 1 if (a != 0 and b != 0) else 0
            elif cop == OP_OR:
                out = 1 if (a != 0 or b != 0) else 0
            else:
                if b == 0:
                    res.steps = steps
                    raise _ErrorSignal("division by zero", ins[6])
                q = abs(a) // abs(b)
                if (a >= 0) != (b >= 0):
                    q = -q
                out = q if cop == OP_DIV else a - b * q
            regs[ins[3]] = out
        elif op == OP_BINV:
            # (cop, dst, l, s, n, ln, line): register (op) checked var
            v = regs[ins[5]]
            if v is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"undeclared variable {ins[6]!r} (line {ins[7]})"
                )
            if v.__class__ is list:
                res.steps = steps
                raise InterpError(
                    f"array {ins[6]!r} used as a scalar (line {ins[7]})"
                )
            a = regs[ins[4]]
            cop = ins[2]
            if cop == OP_ADD:
                out = a + v
            elif cop == OP_SUB:
                out = a - v
            elif cop == OP_MUL:
                out = a * v
            elif cop == OP_LT:
                out = 1 if a < v else 0
            elif cop == OP_LE:
                out = 1 if a <= v else 0
            elif cop == OP_GT:
                out = 1 if a > v else 0
            elif cop == OP_GE:
                out = 1 if a >= v else 0
            elif cop == OP_EQ:
                out = 1 if a == v else 0
            elif cop == OP_NE:
                out = 1 if a != v else 0
            elif cop == OP_AND:
                out = 1 if (a != 0 and v != 0) else 0
            elif cop == OP_OR:
                out = 1 if (a != 0 or v != 0) else 0
            else:
                if v == 0:
                    res.steps = steps
                    raise _ErrorSignal("division by zero", ins[8])
                q = abs(a) // abs(v)
                if (a >= 0) != (v >= 0):
                    q = -q
                out = q if cop == OP_DIV else a - v * q
            regs[ins[3]] = out
        elif op == OP_BINVV:
            # (cop, dst, s1, n1, l1, t2, s2, n2, l2, line): var (op) var
            v = regs[ins[4]]
            if v is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"undeclared variable {ins[5]!r} (line {ins[6]})"
                )
            if v.__class__ is list:
                res.steps = steps
                raise InterpError(
                    f"array {ins[5]!r} used as a scalar (line {ins[6]})"
                )
            t = ins[7]
            if t:
                steps += t
                if steps > budget:
                    res.steps = budget + 1
                    raise StepBudgetExceeded(
                        f"execution exceeded {budget} steps"
                    )
            w = regs[ins[8]]
            if w is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"undeclared variable {ins[9]!r} (line {ins[10]})"
                )
            if w.__class__ is list:
                res.steps = steps
                raise InterpError(
                    f"array {ins[9]!r} used as a scalar (line {ins[10]})"
                )
            cop = ins[2]
            if cop == OP_ADD:
                out = v + w
            elif cop == OP_SUB:
                out = v - w
            elif cop == OP_MUL:
                out = v * w
            elif cop == OP_LT:
                out = 1 if v < w else 0
            elif cop == OP_LE:
                out = 1 if v <= w else 0
            elif cop == OP_GT:
                out = 1 if v > w else 0
            elif cop == OP_GE:
                out = 1 if v >= w else 0
            elif cop == OP_EQ:
                out = 1 if v == w else 0
            elif cop == OP_NE:
                out = 1 if v != w else 0
            elif cop == OP_AND:
                out = 1 if (v != 0 and w != 0) else 0
            elif cop == OP_OR:
                out = 1 if (v != 0 or w != 0) else 0
            else:
                if w == 0:
                    res.steps = steps
                    raise _ErrorSignal("division by zero", ins[11])
                q = abs(v) // abs(w)
                if (v >= 0) != (w >= 0):
                    q = -q
                out = q if cop == OP_DIV else v - w * q
            regs[ins[3]] = out
        elif op == OP_LOADV2:
            # (d1, s1, n1, l1, t2, d2, s2, n2, l2): two checked reads
            v = regs[ins[3]]
            if v is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"undeclared variable {ins[4]!r} (line {ins[5]})"
                )
            if v.__class__ is list:
                res.steps = steps
                raise InterpError(
                    f"array {ins[4]!r} used as a scalar (line {ins[5]})"
                )
            regs[ins[2]] = v
            t = ins[6]
            if t:
                steps += t
                if steps > budget:
                    res.steps = budget + 1
                    raise StepBudgetExceeded(
                        f"execution exceeded {budget} steps"
                    )
            v = regs[ins[8]]
            if v is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"undeclared variable {ins[9]!r} (line {ins[10]})"
                )
            if v.__class__ is list:
                res.steps = steps
                raise InterpError(
                    f"array {ins[9]!r} used as a scalar (line {ins[10]})"
                )
            regs[ins[7]] = v
        elif op == OP_LOADVK:
            # (d1, s1, n1, l1, t2, d2, k): checked read + constant
            v = regs[ins[3]]
            if v is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"undeclared variable {ins[4]!r} (line {ins[5]})"
                )
            if v.__class__ is list:
                res.steps = steps
                raise InterpError(
                    f"array {ins[4]!r} used as a scalar (line {ins[5]})"
                )
            regs[ins[2]] = v
            t = ins[6]
            if t:
                steps += t
                if steps > budget:
                    res.steps = budget + 1
                    raise StepBudgetExceeded(
                        f"execution exceeded {budget} steps"
                    )
            regs[ins[7]] = ins[8]
        elif op == OP_CHECKDECL:
            if regs[ins[2]] is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"assignment to undeclared variable {ins[3]!r} "
                    f"(line {ins[4]})"
                )
        elif op == OP_ADD:
            regs[ins[2]] = regs[ins[3]] + regs[ins[4]]
        elif op == OP_SUB:
            regs[ins[2]] = regs[ins[3]] - regs[ins[4]]
        elif op == OP_MUL:
            regs[ins[2]] = regs[ins[3]] * regs[ins[4]]
        elif op == OP_JUMP:
            pc = ins[2]
            continue
        elif op == OP_EQ:
            regs[ins[2]] = 1 if regs[ins[3]] == regs[ins[4]] else 0
        elif op == OP_NE:
            regs[ins[2]] = 1 if regs[ins[3]] != regs[ins[4]] else 0
        elif op == OP_LT:
            regs[ins[2]] = 1 if regs[ins[3]] < regs[ins[4]] else 0
        elif op == OP_LE:
            regs[ins[2]] = 1 if regs[ins[3]] <= regs[ins[4]] else 0
        elif op == OP_GT:
            regs[ins[2]] = 1 if regs[ins[3]] > regs[ins[4]] else 0
        elif op == OP_GE:
            regs[ins[2]] = 1 if regs[ins[3]] >= regs[ins[4]] else 0
        elif op == OP_STORE:
            regs[ins[2]] = regs[ins[3]]
        elif op == OP_AND:
            regs[ins[2]] = 1 if (regs[ins[3]] != 0 and regs[ins[4]] != 0) else 0
        elif op == OP_OR:
            regs[ins[2]] = 1 if (regs[ins[3]] != 0 or regs[ins[4]] != 0) else 0
        elif op == OP_DIV or op == OP_MOD:
            a = regs[ins[3]]
            b = regs[ins[4]]
            if b == 0:
                res.steps = steps
                raise _ErrorSignal("division by zero", ins[5])
            q = abs(a) // abs(b)
            if (a >= 0) != (b >= 0):
                q = -q
            regs[ins[2]] = q if op == OP_DIV else a - b * q
        elif op == OP_NEG:
            regs[ins[2]] = -regs[ins[3]]
        elif op == OP_NOT:
            regs[ins[2]] = 0 if regs[ins[3]] != 0 else 1
        elif op == OP_ZERO:
            regs[ins[2]] = 0
        elif op == OP_TICK:
            pass
        elif op == OP_CHECKARR:
            if not isinstance(regs[ins[2]], list):
                res.steps = steps
                raise InterpError(
                    f"{ins[3]!r} is not an array (line {ins[4]})"
                )
        elif op == OP_ALOAD:
            arr = regs[ins[3]]
            idx = regs[ins[4]]
            if not 0 <= idx < len(arr):
                res.steps = steps
                raise _ErrorSignal(
                    f"array index {idx} out of bounds for "
                    f"{ins[5]}[{len(arr)}]",
                    ins[6],
                )
            regs[ins[2]] = arr[idx]
        elif op == OP_ABOUND:
            arr = regs[ins[2]]
            idx = regs[ins[3]]
            if not 0 <= idx < len(arr):
                res.steps = steps
                raise _ErrorSignal(
                    f"array index {idx} out of bounds for "
                    f"{ins[4]}[{len(arr)}]",
                    ins[5],
                )
        elif op == OP_ASTORE:
            regs[ins[2]][regs[ins[3]]] = regs[ins[4]]
        elif op == OP_NEWARR:
            regs[ins[2]] = [0] * ins[3]
        elif op == OP_ASSERT:
            ok = regs[ins[2]] != 0
            bid = ins[3]
            path.append((bid, ok))
            covered.add((bid, ok))
            if not ok:
                res.steps = steps
                raise _ErrorSignal("assertion failed", ins[4])
        elif op == OP_CALL:
            res.steps = steps
            regs[ins[2]] = _frame_concrete(
                cp,
                funcs[ins[3]],
                regs[ins[4] : ins[4] + ins[5]],
                natives,
                res,
                budget,
            )
            steps = res.steps
        elif op == OP_NATIVE:
            regs[ins[2]] = natives.call(
                ins[3], tuple(regs[ins[4] : ins[4] + ins[5]])
            )
        elif op == OP_RET:
            res.steps = steps
            return regs[ins[2]]
        elif op == OP_RETK:
            res.steps = steps
            return ins[2]
        elif op == OP_ERROR:
            res.steps = steps
            raise _ErrorSignal(ins[2], ins[3])
        elif op == OP_ARITYERR:
            res.steps = steps
            raise InterpError(ins[2])
        else:  # pragma: no cover - compiler emits no other opcodes
            raise InterpError(f"unknown opcode {op}")
        pc += 1


# -- concolic shadow loop ------------------------------------------------------

#: lazily bound to :mod:`repro.symbolic.concolic` (importing it at module
#: load would cycle back into :mod:`repro.lang`)
_SYM = None
_SYM_CONSTS: Dict[int, object] = {}


def _sym_module():
    global _SYM
    if _SYM is None:
        from ..symbolic import concolic as sym

        _SYM = sym
    return _SYM


def _sym_const(value: int):
    sv = _SYM_CONSTS.get(value)
    if sv is None:
        sv = _SYM.SymValue(value)
        _SYM_CONSTS[value] = sv
    return sv


def exec_concolic(engine, cp: CompiledProgram, entry: str, args, result):
    """Run the concolic shadow over the compiled instruction stream.

    ``engine`` is a :class:`~repro.symbolic.concolic.ConcolicEngine`;
    all symbolic decisions (term construction, pins, injected checks,
    IOF samples) delegate to its operand-level helpers, so the shadow
    produces byte-identical path conditions to the tree walk.  Returns
    the function's result as a ``SymValue``; raises the concolic
    module's error signal on program errors.
    """
    _sym_module()
    return _frame_concolic(engine, cp, cp.function(entry), list(args), result)


def _frame_concolic(engine, cp: CompiledProgram, cf: CompiledFunction, args, res):
    sym = _SYM
    error_signal = sym._ErrorSignal
    apply_binary = engine._apply_binary
    apply_unary = engine._apply_unary
    budget = engine.step_budget
    regs: List[object] = [UNDEF] * cf.nregs
    regs[: len(args)] = args
    code = cf.code
    funcs = cp.funcs
    path = res.path
    covered = res.covered
    steps = res.steps
    pc = 0
    while True:
        ins = code[pc]
        op = ins[0]
        t = ins[1]
        if t:
            steps += t
            if steps > budget:
                res.steps = budget + 1
                raise StepBudgetExceeded(
                    f"concolic execution exceeded {budget} steps"
                )
        if op == OP_LOADV:
            v = regs[ins[3]]
            if v is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"undeclared variable {ins[4]!r} (line {ins[5]})"
                )
            if v.__class__ is list:
                res.steps = steps
                raise InterpError(
                    f"array {ins[4]!r} used as a scalar (line {ins[5]})"
                )
            regs[ins[2]] = v
        elif op == OP_LOADK:
            regs[ins[2]] = _sym_const(ins[3])
        elif op == OP_BR:
            cond = regs[ins[2]]
            taken = cond.concrete != 0
            bid = ins[3]
            path.append((bid, taken))
            covered.add((bid, taken))
            res.steps = steps
            engine._record_condition(cond, taken, bid, ins[4], res)
            if taken:
                pc += 1
            else:
                pc = ins[5]
            continue
        elif op == OP_GUARDVK:
            # (cop, s, n, ln, t2, k, bid, line, target)
            v = regs[ins[3]]
            if v is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"undeclared variable {ins[4]!r} (line {ins[5]})"
                )
            if v.__class__ is list:
                res.steps = steps
                raise InterpError(
                    f"array {ins[4]!r} used as a scalar (line {ins[5]})"
                )
            t = ins[6]
            if t:
                steps += t
                if steps > budget:
                    res.steps = budget + 1
                    raise StepBudgetExceeded(
                        f"concolic execution exceeded {budget} steps"
                    )
            res.steps = steps
            cond = apply_binary(_OPSTR[ins[2]], v, _sym_const(ins[7]), 0, res)
            taken = cond.concrete != 0
            bid = ins[8]
            path.append((bid, taken))
            covered.add((bid, taken))
            engine._record_condition(cond, taken, bid, ins[9], res)
            if taken:
                pc += 1
            else:
                pc = ins[10]
            continue
        elif op == OP_GUARDVV:
            # (cop, s1, n1, l1, t2, s2, n2, l2, bid, line, target)
            v = regs[ins[3]]
            if v is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"undeclared variable {ins[4]!r} (line {ins[5]})"
                )
            if v.__class__ is list:
                res.steps = steps
                raise InterpError(
                    f"array {ins[4]!r} used as a scalar (line {ins[5]})"
                )
            t = ins[6]
            if t:
                steps += t
                if steps > budget:
                    res.steps = budget + 1
                    raise StepBudgetExceeded(
                        f"concolic execution exceeded {budget} steps"
                    )
            w = regs[ins[7]]
            if w is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"undeclared variable {ins[8]!r} (line {ins[9]})"
                )
            if w.__class__ is list:
                res.steps = steps
                raise InterpError(
                    f"array {ins[8]!r} used as a scalar (line {ins[9]})"
                )
            res.steps = steps
            cond = apply_binary(_OPSTR[ins[2]], v, w, 0, res)
            taken = cond.concrete != 0
            bid = ins[10]
            path.append((bid, taken))
            covered.add((bid, taken))
            engine._record_condition(cond, taken, bid, ins[11], res)
            if taken:
                pc += 1
            else:
                pc = ins[12]
            continue
        elif op == OP_BINVV:
            # (cop, dst, s1, n1, l1, t2, s2, n2, l2, line)
            v = regs[ins[4]]
            if v is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"undeclared variable {ins[5]!r} (line {ins[6]})"
                )
            if v.__class__ is list:
                res.steps = steps
                raise InterpError(
                    f"array {ins[5]!r} used as a scalar (line {ins[6]})"
                )
            t = ins[7]
            if t:
                steps += t
                if steps > budget:
                    res.steps = budget + 1
                    raise StepBudgetExceeded(
                        f"concolic execution exceeded {budget} steps"
                    )
            w = regs[ins[8]]
            if w is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"undeclared variable {ins[9]!r} (line {ins[10]})"
                )
            if w.__class__ is list:
                res.steps = steps
                raise InterpError(
                    f"array {ins[9]!r} used as a scalar (line {ins[10]})"
                )
            res.steps = steps
            regs[ins[3]] = apply_binary(_OPSTR[ins[2]], v, w, ins[11], res)
        elif op == OP_BRCMP:
            # (cop, l, r, bid, line, target)
            res.steps = steps
            cond = apply_binary(
                _OPSTR[ins[2]], regs[ins[3]], regs[ins[4]], 0, res
            )
            taken = cond.concrete != 0
            bid = ins[5]
            path.append((bid, taken))
            covered.add((bid, taken))
            engine._record_condition(cond, taken, bid, ins[6], res)
            if taken:
                pc += 1
            else:
                pc = ins[7]
            continue
        elif op == OP_BINVK:
            # (cop, dst, s, n, ln, t2, k, line)
            v = regs[ins[4]]
            if v is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"undeclared variable {ins[5]!r} (line {ins[6]})"
                )
            if v.__class__ is list:
                res.steps = steps
                raise InterpError(
                    f"array {ins[5]!r} used as a scalar (line {ins[6]})"
                )
            t = ins[7]
            if t:
                steps += t
                if steps > budget:
                    res.steps = budget + 1
                    raise StepBudgetExceeded(
                        f"concolic execution exceeded {budget} steps"
                    )
            res.steps = steps
            regs[ins[3]] = apply_binary(
                _OPSTR[ins[2]], v, _sym_const(ins[8]), ins[9], res
            )
        elif op == OP_BINK:
            # (cop, dst, l, k, line)
            res.steps = steps
            regs[ins[3]] = apply_binary(
                _OPSTR[ins[2]], regs[ins[4]], _sym_const(ins[5]), ins[6], res
            )
        elif op == OP_BINV:
            # (cop, dst, l, s, n, ln, line)
            v = regs[ins[5]]
            if v is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"undeclared variable {ins[6]!r} (line {ins[7]})"
                )
            if v.__class__ is list:
                res.steps = steps
                raise InterpError(
                    f"array {ins[6]!r} used as a scalar (line {ins[7]})"
                )
            res.steps = steps
            regs[ins[3]] = apply_binary(
                _OPSTR[ins[2]], regs[ins[4]], v, ins[8], res
            )
        elif op == OP_LOADV2:
            # (d1, s1, n1, l1, t2, d2, s2, n2, l2)
            v = regs[ins[3]]
            if v is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"undeclared variable {ins[4]!r} (line {ins[5]})"
                )
            if v.__class__ is list:
                res.steps = steps
                raise InterpError(
                    f"array {ins[4]!r} used as a scalar (line {ins[5]})"
                )
            regs[ins[2]] = v
            t = ins[6]
            if t:
                steps += t
                if steps > budget:
                    res.steps = budget + 1
                    raise StepBudgetExceeded(
                        f"concolic execution exceeded {budget} steps"
                    )
            v = regs[ins[8]]
            if v is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"undeclared variable {ins[9]!r} (line {ins[10]})"
                )
            if v.__class__ is list:
                res.steps = steps
                raise InterpError(
                    f"array {ins[9]!r} used as a scalar (line {ins[10]})"
                )
            regs[ins[7]] = v
        elif op == OP_LOADVK:
            # (d1, s1, n1, l1, t2, d2, k)
            v = regs[ins[3]]
            if v is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"undeclared variable {ins[4]!r} (line {ins[5]})"
                )
            if v.__class__ is list:
                res.steps = steps
                raise InterpError(
                    f"array {ins[4]!r} used as a scalar (line {ins[5]})"
                )
            regs[ins[2]] = v
            t = ins[6]
            if t:
                steps += t
                if steps > budget:
                    res.steps = budget + 1
                    raise StepBudgetExceeded(
                        f"concolic execution exceeded {budget} steps"
                    )
            regs[ins[7]] = _sym_const(ins[8])
        elif OP_ADD <= op <= OP_OR:
            res.steps = steps
            line = ins[5] if (op == OP_DIV or op == OP_MOD) else 0
            regs[ins[2]] = apply_binary(
                _OPSTR[op], regs[ins[3]], regs[ins[4]], line, res
            )
        elif op == OP_STORE:
            regs[ins[2]] = regs[ins[3]]
        elif op == OP_JUMP:
            pc = ins[2]
            continue
        elif op == OP_NEG:
            regs[ins[2]] = apply_unary("-", regs[ins[3]])
        elif op == OP_NOT:
            regs[ins[2]] = apply_unary("!", regs[ins[3]])
        elif op == OP_CHECKDECL:
            if regs[ins[2]] is UNDEF:
                res.steps = steps
                raise InterpError(
                    f"assignment to undeclared variable {ins[3]!r} "
                    f"(line {ins[4]})"
                )
        elif op == OP_ZERO:
            regs[ins[2]] = _sym_const(0)
        elif op == OP_TICK:
            pass
        elif op == OP_CHECKARR:
            if not isinstance(regs[ins[2]], list):
                res.steps = steps
                raise InterpError(
                    f"{ins[3]!r} is not an array (line {ins[4]})"
                )
        elif op == OP_ALOAD:
            res.steps = steps
            regs[ins[2]] = engine._read_cell(
                regs[ins[3]], regs[ins[4]], ins[5], ins[6], res
            )
        elif op == OP_ABOUND:
            pass  # concrete-only: the shadow resolves at OP_ASTORE
        elif op == OP_ASTORE:
            arr = regs[ins[2]]
            res.steps = steps
            concrete_idx = engine._resolve_index(
                regs[ins[3]], arr, ins[5], ins[6], res
            )
            arr[concrete_idx] = regs[ins[4]]
        elif op == OP_NEWARR:
            regs[ins[2]] = [_sym_const(0)] * ins[3]
        elif op == OP_ASSERT:
            cond = regs[ins[2]]
            ok = cond.concrete != 0
            bid = ins[3]
            path.append((bid, ok))
            covered.add((bid, ok))
            res.steps = steps
            engine._record_condition(cond, ok, bid, ins[4], res)
            if not ok:
                raise error_signal("assertion failed", ins[4])
        elif op == OP_CALL:
            res.steps = steps
            regs[ins[2]] = _frame_concolic(
                engine, cp, funcs[ins[3]], regs[ins[4] : ins[4] + ins[5]], res
            )
            steps = res.steps
        elif op == OP_NATIVE:
            res.steps = steps
            regs[ins[2]] = engine._apply_native(
                ins[3], regs[ins[4] : ins[4] + ins[5]], res
            )
        elif op == OP_RET:
            res.steps = steps
            return regs[ins[2]]
        elif op == OP_RETK:
            res.steps = steps
            return _sym_const(ins[2])
        elif op == OP_ERROR:
            res.steps = steps
            raise error_signal(ins[2], ins[3])
        elif op == OP_ARITYERR:
            res.steps = steps
            raise InterpError(ins[2])
        else:  # pragma: no cover - compiler emits no other opcodes
            raise InterpError(f"unknown opcode {op}")
        pc += 1
