"""Pretty-printer (unparser) for MiniC ASTs.

Renders a parsed :class:`~repro.lang.ast.Program` back into source text
that parses to a structurally identical AST (round-trip property, tested).
Useful for debugging generated programs, normalizing corpora, and emitting
counterexample programs in bug reports.
"""

from __future__ import annotations

from typing import List

from ..errors import ReproError
from .ast import (
    ArrayAssign,
    ArrayDecl,
    ArrayRef,
    Assign,
    AssertStmt,
    Binary,
    Block,
    Call,
    ErrorStmt,
    Expr,
    ExprStmt,
    FunctionDef,
    If,
    IntLit,
    Program,
    Return,
    Stmt,
    Unary,
    VarDecl,
    VarRef,
    While,
)

__all__ = ["pretty_expr", "pretty_stmt", "pretty_program"]

#: operator precedence, loosest to tightest (mirrors the parser)
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
    "+": 4, "-": 4,
    "*": 5, "/": 5, "%": 5,
}


def pretty_expr(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression, parenthesizing only where precedence demands."""
    if isinstance(expr, IntLit):
        if expr.value < 0:
            # the grammar has no negative literals; render via unary minus
            text = f"-{-expr.value}"
            return f"({text})" if parent_prec > 0 else text
        return str(expr.value)
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, ArrayRef):
        return f"{expr.name}[{pretty_expr(expr.index)}]"
    if isinstance(expr, Call):
        inner = ", ".join(pretty_expr(a) for a in expr.args)
        return f"{expr.name}({inner})"
    if isinstance(expr, Unary):
        operand = pretty_expr(expr.operand, parent_prec=6)
        text = f"{expr.op}{operand}"
        return f"({text})" if parent_prec > 6 else text
    if isinstance(expr, Binary):
        prec = _PRECEDENCE[expr.op]
        left = pretty_expr(expr.left, parent_prec=prec)
        # right side binds one tighter: operators are left-associative
        right = pretty_expr(expr.right, parent_prec=prec + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if parent_prec > prec else text
    raise ReproError(f"cannot pretty-print expression {expr!r}")


def pretty_stmt(stmt: Stmt, indent: str = "") -> str:
    """Render one statement (with trailing newline-free lines)."""
    nxt = indent + "    "
    if isinstance(stmt, VarDecl):
        if stmt.init is not None:
            return f"{indent}int {stmt.name} = {pretty_expr(stmt.init)};"
        return f"{indent}int {stmt.name};"
    if isinstance(stmt, ArrayDecl):
        return f"{indent}int {stmt.name}[{stmt.size}];"
    if isinstance(stmt, Assign):
        return f"{indent}{stmt.name} = {pretty_expr(stmt.expr)};"
    if isinstance(stmt, ArrayAssign):
        return (
            f"{indent}{stmt.name}[{pretty_expr(stmt.index)}] = "
            f"{pretty_expr(stmt.expr)};"
        )
    if isinstance(stmt, If):
        lines = [f"{indent}if ({pretty_expr(stmt.cond)}) {{"]
        lines.extend(pretty_stmt(s, nxt) for s in stmt.then_body.stmts)
        if stmt.else_body is not None:
            lines.append(f"{indent}}} else {{")
            lines.extend(pretty_stmt(s, nxt) for s in stmt.else_body.stmts)
        lines.append(f"{indent}}}")
        return "\n".join(lines)
    if isinstance(stmt, While):
        lines = [f"{indent}while ({pretty_expr(stmt.cond)}) {{"]
        lines.extend(pretty_stmt(s, nxt) for s in stmt.body.stmts)
        lines.append(f"{indent}}}")
        return "\n".join(lines)
    if isinstance(stmt, Return):
        if stmt.expr is not None:
            return f"{indent}return {pretty_expr(stmt.expr)};"
        return f"{indent}return;"
    if isinstance(stmt, ErrorStmt):
        return f'{indent}error("{stmt.message}");'
    if isinstance(stmt, AssertStmt):
        return f"{indent}assert({pretty_expr(stmt.cond)});"
    if isinstance(stmt, ExprStmt):
        return f"{indent}{pretty_expr(stmt.expr)};"
    if isinstance(stmt, Block):
        return "\n".join(pretty_stmt(s, indent) for s in stmt.stmts)
    raise ReproError(f"cannot pretty-print statement {stmt!r}")


def pretty_program(program: Program) -> str:
    """Render a whole program as compilable MiniC source."""
    chunks: List[str] = []
    for fn in program.functions.values():
        params = ", ".join(f"int {p}" for p in fn.params)
        lines = [f"int {fn.name}({params}) {{"]
        lines.extend(pretty_stmt(s, "    ") for s in fn.body.stmts)
        lines.append("}")
        chunks.append("\n".join(lines))
    return "\n\n".join(chunks) + "\n"
