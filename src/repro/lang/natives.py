"""Registry of native (opaque) functions callable from MiniC programs.

Native functions model the paper's "unknown functions": hash functions,
crypto, OS and library calls whose code is *not available* to symbolic
execution.  The concrete interpreter calls straight into the registered
Python callable; the concolic machine treats the call as a source of
imprecision handled according to its concretization mode (Section 3) or as
an uninterpreted function (Section 4).

Each native is deterministic with a fixed integer arity — exactly the
contract Theorem 3's proof requires.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from ..errors import InterpError

__all__ = ["NativeFunction", "NativeRegistry"]


@dataclass(frozen=True)
class NativeFunction:
    """A named opaque function with fixed arity."""

    name: str
    arity: int
    fn: Callable[..., int]

    def __call__(self, *args: int) -> int:
        if len(args) != self.arity:
            raise InterpError(
                f"native {self.name} expects {self.arity} args, got {len(args)}"
            )
        result = self.fn(*args)
        if not isinstance(result, int) or isinstance(result, bool):
            raise InterpError(
                f"native {self.name} returned non-int {result!r}"
            )
        return result


class NativeRegistry:
    """A collection of native functions visible to a program.

    Usage::

        natives = NativeRegistry()
        natives.register("hash", lambda y: (y * 2654435761) % 1024)
        # or as a decorator:
        @natives.register_fn
        def crc8(x):
            ...
    """

    def __init__(self) -> None:
        self._fns: Dict[str, NativeFunction] = {}
        #: call log: (name, args, result) triples of the most recent run;
        #: the concolic machine reads these to build IOF samples.
        self.call_log: list = []

    def register(
        self, name: str, fn: Callable[..., int], arity: Optional[int] = None
    ) -> NativeFunction:
        """Register ``fn`` under ``name``; arity is inferred when omitted."""
        if arity is None:
            arity = len(inspect.signature(fn).parameters)
        if name in self._fns:
            raise InterpError(f"native {name!r} already registered")
        native = NativeFunction(name, arity, fn)
        self._fns[name] = native
        return native

    def register_fn(self, fn: Callable[..., int]) -> Callable[..., int]:
        """Decorator form of :meth:`register` using the function's name."""
        self.register(fn.__name__, fn)
        return fn

    def __contains__(self, name: str) -> bool:
        return name in self._fns

    def __iter__(self) -> Iterator[NativeFunction]:
        return iter(self._fns.values())

    def get(self, name: str) -> Optional[NativeFunction]:
        return self._fns.get(name)

    def lookup(self, name: str) -> NativeFunction:
        native = self._fns.get(name)
        if native is None:
            raise InterpError(f"unknown native function {name!r}")
        return native

    def call(self, name: str, args: Tuple[int, ...]) -> int:
        """Invoke a native, recording the input-output pair in the log."""
        native = self.lookup(name)
        result = native(*args)
        self.call_log.append((name, tuple(args), result))
        return result

    def clear_log(self) -> None:
        self.call_log.clear()
