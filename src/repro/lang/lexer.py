"""Tokenizer for MiniC source text."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..errors import ParseError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {"int", "if", "else", "while", "for", "return", "error", "assert"}
)

_TWO_CHAR = ("==", "!=", "<=", ">=", "&&", "||")
_ONE_CHAR = "+-*/%<>!=(){}[],;"


@dataclass(frozen=True)
class Token:
    """A lexical token with its source position."""

    kind: str  # 'int_lit' | 'ident' | 'keyword' | 'op' | 'string' | 'eof'
    text: str
    line: int
    column: int

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


def tokenize(source: str) -> List[Token]:
    """Convert MiniC source into a token list ending with an ``eof`` token."""
    tokens: List[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def error(msg: str) -> ParseError:
        return ParseError(msg, line, col)

    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        # comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        # string literal (only used by error("..."))
        if ch == '"':
            end = i + 1
            while end < n and source[end] != '"':
                if source[end] == "\n":
                    raise error("unterminated string literal")
                end += 1
            if end >= n:
                raise error("unterminated string literal")
            text = source[i + 1:end]
            tokens.append(Token("string", text, line, col))
            col += end - i + 1
            i = end + 1
            continue
        # numbers
        if ch.isdigit():
            end = i
            while end < n and source[end].isdigit():
                end += 1
            tokens.append(Token("int_lit", source[i:end], line, col))
            col += end - i
            i = end
            continue
        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            end = i
            while end < n and (source[end].isalnum() or source[end] == "_"):
                end += 1
            text = source[i:end]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            col += end - i
            i = end
            continue
        # operators
        two = source[i:i + 2]
        if two in _TWO_CHAR:
            tokens.append(Token("op", two, line, col))
            i += 2
            col += 2
            continue
        if ch in _ONE_CHAR:
            tokens.append(Token("op", ch, line, col))
            i += 1
            col += 1
            continue
        raise error(f"unexpected character {ch!r}")

    tokens.append(Token("eof", "", line, col))
    return tokens
