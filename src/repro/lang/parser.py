"""Recursive-descent parser for MiniC.

Grammar (all values are ``int``)::

    program    := function*
    function   := 'int' IDENT '(' params? ')' block
    params     := 'int' IDENT (',' 'int' IDENT)*
    block      := '{' stmt* '}'
    stmt       := 'int' IDENT ('=' expr)? ';'
                | 'int' IDENT '[' INT ']' ';'
                | IDENT '=' expr ';'
                | IDENT '[' expr ']' '=' expr ';'
                | 'if' '(' expr ')' block ('else' (block | if-stmt))?
                | 'while' '(' expr ')' block
                | 'return' expr? ';'
                | 'error' '(' STRING? ')' ';'
                | 'assert' '(' expr ')' ';'
                | expr ';'
    expr       := or_expr
    or_expr    := and_expr ('||' and_expr)*
    and_expr   := cmp_expr ('&&' cmp_expr)*
    cmp_expr   := add_expr (('=='|'!='|'<'|'<='|'>'|'>=') add_expr)?
    add_expr   := mul_expr (('+'|'-') mul_expr)*
    mul_expr   := unary (('*'|'/'|'%') unary)*
    unary      := ('-'|'!') unary | primary
    primary    := INT | IDENT | IDENT '(' args ')' | IDENT '[' expr ']'
                | '(' expr ')'
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import ParseError
from .ast import (
    ArrayAssign,
    ArrayDecl,
    ArrayRef,
    Assign,
    AssertStmt,
    Binary,
    Block,
    Call,
    ErrorStmt,
    Expr,
    ExprStmt,
    FunctionDef,
    If,
    IntLit,
    Program,
    Return,
    Stmt,
    Unary,
    VarDecl,
    VarRef,
    While,
)
from .lexer import Token, tokenize

__all__ = ["parse_program", "parse_expression"]


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._next_branch_id = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self._peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def _match(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self._peek()
        if not self._check(kind, text):
            wanted = text if text is not None else kind
            raise ParseError(
                f"expected {wanted!r}, found {tok.text or tok.kind!r}",
                tok.line,
                tok.column,
            )
        return self._advance()

    # -- grammar ----------------------------------------------------------

    def parse_program(self, source: str) -> Program:
        functions = {}
        while not self._check("eof"):
            fn = self._function()
            if fn.name in functions:
                raise ParseError(f"duplicate function {fn.name!r}", fn.line)
            functions[fn.name] = fn
        return Program(
            functions=functions,
            num_branches=self._next_branch_id,
            source=source,
        )

    def _function(self) -> FunctionDef:
        start = self._expect("keyword", "int")
        name = self._expect("ident").text
        self._expect("op", "(")
        params: List[str] = []
        if not self._check("op", ")"):
            while True:
                self._expect("keyword", "int")
                params.append(self._expect("ident").text)
                if not self._match("op", ","):
                    break
        self._expect("op", ")")
        body = self._block()
        return FunctionDef(
            line=start.line, name=name, params=tuple(params), body=body
        )

    def _block(self) -> Block:
        open_tok = self._expect("op", "{")
        stmts: List[Stmt] = []
        while not self._check("op", "}"):
            if self._check("eof"):
                raise ParseError("unterminated block", open_tok.line)
            stmts.append(self._statement())
        self._expect("op", "}")
        return Block(line=open_tok.line, stmts=tuple(stmts))

    def _statement(self) -> Stmt:
        tok = self._peek()
        if self._check("keyword", "int"):
            return self._declaration()
        if self._check("keyword", "if"):
            return self._if_statement()
        if self._check("keyword", "while"):
            return self._while_statement()
        if self._check("keyword", "for"):
            return self._for_statement()
        if self._check("keyword", "return"):
            self._advance()
            expr = None if self._check("op", ";") else self._expression()
            self._expect("op", ";")
            return Return(line=tok.line, expr=expr)
        if self._check("keyword", "error"):
            self._advance()
            self._expect("op", "(")
            msg = "error"
            s = self._match("string")
            if s is not None:
                msg = s.text
            self._expect("op", ")")
            self._expect("op", ";")
            return ErrorStmt(line=tok.line, message=msg)
        if self._check("keyword", "assert"):
            self._advance()
            branch_id = self._next_branch_id
            self._next_branch_id += 1
            self._expect("op", "(")
            cond = self._expression()
            self._expect("op", ")")
            self._expect("op", ";")
            return AssertStmt(line=tok.line, cond=cond, branch_id=branch_id)
        # assignment or expression statement
        if tok.kind == "ident":
            nxt = self._tokens[self._pos + 1]
            if nxt.kind == "op" and nxt.text == "=":
                name = self._advance().text
                self._advance()  # '='
                expr = self._expression()
                self._expect("op", ";")
                return Assign(line=tok.line, name=name, expr=expr)
            if nxt.kind == "op" and nxt.text == "[":
                # could be array assignment or array read in an expression;
                # look ahead for '=' after the matching ']'
                save = self._pos
                name = self._advance().text
                self._advance()  # '['
                index = self._expression()
                self._expect("op", "]")
                if self._match("op", "="):
                    expr = self._expression()
                    self._expect("op", ";")
                    return ArrayAssign(
                        line=tok.line, name=name, index=index, expr=expr
                    )
                self._pos = save  # plain expression statement
        expr = self._expression()
        self._expect("op", ";")
        return ExprStmt(line=tok.line, expr=expr)

    def _declaration(self) -> Stmt:
        tok = self._expect("keyword", "int")
        name = self._expect("ident").text
        if self._match("op", "["):
            size_tok = self._expect("int_lit")
            self._expect("op", "]")
            self._expect("op", ";")
            return ArrayDecl(line=tok.line, name=name, size=int(size_tok.text))
        init = None
        if self._match("op", "="):
            init = self._expression()
        self._expect("op", ";")
        return VarDecl(line=tok.line, name=name, init=init)

    def _if_statement(self) -> If:
        tok = self._expect("keyword", "if")
        branch_id = self._next_branch_id
        self._next_branch_id += 1
        self._expect("op", "(")
        cond = self._expression()
        self._expect("op", ")")
        then_body = self._block()
        else_body: Optional[Block] = None
        if self._match("keyword", "else"):
            if self._check("keyword", "if"):
                nested = self._if_statement()
                else_body = Block(line=nested.line, stmts=(nested,))
            else:
                else_body = self._block()
        return If(
            line=tok.line,
            cond=cond,
            then_body=then_body,
            else_body=else_body,
            branch_id=branch_id,
        )

    def _while_statement(self) -> While:
        tok = self._expect("keyword", "while")
        branch_id = self._next_branch_id
        self._next_branch_id += 1
        self._expect("op", "(")
        cond = self._expression()
        self._expect("op", ")")
        body = self._block()
        return While(line=tok.line, cond=cond, body=body, branch_id=branch_id)

    def _for_statement(self) -> Stmt:
        """``for (init; cond; update) { body }`` desugared to a while loop.

        Produces ``{ init; while (cond) { body; update; } }``; the loop
        variable follows MiniC's execution-based scoping (it stays visible
        after the loop, like a C89 ``int i;`` hoisted declaration).
        """
        tok = self._expect("keyword", "for")
        self._expect("op", "(")
        init: Optional[Stmt] = None
        if not self._check("op", ";"):
            if self._check("keyword", "int"):
                init = self._declaration()  # consumes the ';'
            else:
                name = self._expect("ident").text
                self._expect("op", "=")
                expr = self._expression()
                self._expect("op", ";")
                init = Assign(line=tok.line, name=name, expr=expr)
        else:
            self._expect("op", ";")
        cond: Expr = IntLit(line=tok.line, value=1)
        if not self._check("op", ";"):
            cond = self._expression()
        self._expect("op", ";")
        update: Optional[Stmt] = None
        if not self._check("op", ")"):
            name = self._expect("ident").text
            if self._match("op", "["):
                index = self._expression()
                self._expect("op", "]")
                self._expect("op", "=")
                expr = self._expression()
                update = ArrayAssign(
                    line=tok.line, name=name, index=index, expr=expr
                )
            else:
                self._expect("op", "=")
                expr = self._expression()
                update = Assign(line=tok.line, name=name, expr=expr)
        self._expect("op", ")")
        branch_id = self._next_branch_id
        self._next_branch_id += 1
        body = self._block()
        loop_stmts = list(body.stmts)
        if update is not None:
            loop_stmts.append(update)
        loop = While(
            line=tok.line,
            cond=cond,
            body=Block(line=body.line, stmts=tuple(loop_stmts)),
            branch_id=branch_id,
        )
        outer = ([init] if init is not None else []) + [loop]
        return Block(line=tok.line, stmts=tuple(outer))

    # -- expressions -------------------------------------------------------

    def _expression(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self._check("op", "||"):
            tok = self._advance()
            right = self._and_expr()
            left = Binary(line=tok.line, op="||", left=left, right=right)
        return left

    def _and_expr(self) -> Expr:
        left = self._cmp_expr()
        while self._check("op", "&&"):
            tok = self._advance()
            right = self._cmp_expr()
            left = Binary(line=tok.line, op="&&", left=left, right=right)
        return left

    def _cmp_expr(self) -> Expr:
        left = self._add_expr()
        for op in ("==", "!=", "<=", ">=", "<", ">"):
            if self._check("op", op):
                tok = self._advance()
                right = self._add_expr()
                return Binary(line=tok.line, op=op, left=left, right=right)
        return left

    def _add_expr(self) -> Expr:
        left = self._mul_expr()
        while self._check("op", "+") or self._check("op", "-"):
            tok = self._advance()
            right = self._mul_expr()
            left = Binary(line=tok.line, op=tok.text, left=left, right=right)
        return left

    def _mul_expr(self) -> Expr:
        left = self._unary()
        while (
            self._check("op", "*")
            or self._check("op", "/")
            or self._check("op", "%")
        ):
            tok = self._advance()
            right = self._unary()
            left = Binary(line=tok.line, op=tok.text, left=left, right=right)
        return left

    def _unary(self) -> Expr:
        if self._check("op", "-") or self._check("op", "!"):
            tok = self._advance()
            operand = self._unary()
            return Unary(line=tok.line, op=tok.text, operand=operand)
        return self._primary()

    def _primary(self) -> Expr:
        tok = self._peek()
        if tok.kind == "int_lit":
            self._advance()
            return IntLit(line=tok.line, value=int(tok.text))
        if tok.kind == "ident":
            self._advance()
            if self._match("op", "("):
                args: List[Expr] = []
                if not self._check("op", ")"):
                    while True:
                        args.append(self._expression())
                        if not self._match("op", ","):
                            break
                self._expect("op", ")")
                return Call(line=tok.line, name=tok.text, args=tuple(args))
            if self._match("op", "["):
                index = self._expression()
                self._expect("op", "]")
                return ArrayRef(line=tok.line, name=tok.text, index=index)
            return VarRef(line=tok.line, name=tok.text)
        if self._match("op", "("):
            expr = self._expression()
            self._expect("op", ")")
            return expr
        raise ParseError(
            f"unexpected token {tok.text or tok.kind!r}", tok.line, tok.column
        )


def parse_program(source: str) -> Program:
    """Parse MiniC source text into a :class:`Program`."""
    return _Parser(tokenize(source)).parse_program(source)


def parse_expression(source: str) -> Expr:
    """Parse a single MiniC expression (useful in tests)."""
    parser = _Parser(tokenize(source))
    expr = parser._expression()
    parser._expect("eof")
    return expr
