"""MiniC: the small imperative language the paper's programs are written in.

Exports the parser, the concrete interpreter, and the native-function
registry used to model the paper's "unknown functions".
"""

from .ast import (
    ArrayAssign,
    ArrayDecl,
    ArrayRef,
    Assign,
    AssertStmt,
    Binary,
    Block,
    Call,
    ErrorStmt,
    Expr,
    ExprStmt,
    FunctionDef,
    If,
    IntLit,
    Program,
    Return,
    Stmt,
    Unary,
    VarDecl,
    VarRef,
    While,
)
from .lexer import Token, tokenize
from .parser import parse_expression, parse_program
from .natives import NativeFunction, NativeRegistry
from .interp import Interpreter, RunResult, c_div, c_mod, truthy
from .bytecode import (
    CompiledFunction,
    CompiledProgram,
    clear_compile_cache,
    compile_cache_stats,
    compile_program,
    run_concrete,
)
from .pretty import pretty_expr, pretty_program, pretty_stmt
from .randprog import RandomProgram, generate_program

__all__ = [
    "ArrayAssign",
    "ArrayDecl",
    "ArrayRef",
    "Assign",
    "AssertStmt",
    "Binary",
    "Block",
    "Call",
    "ErrorStmt",
    "Expr",
    "ExprStmt",
    "FunctionDef",
    "If",
    "IntLit",
    "Program",
    "Return",
    "Stmt",
    "Unary",
    "VarDecl",
    "VarRef",
    "While",
    "Token",
    "tokenize",
    "parse_expression",
    "parse_program",
    "NativeFunction",
    "NativeRegistry",
    "Interpreter",
    "RunResult",
    "CompiledFunction",
    "CompiledProgram",
    "clear_compile_cache",
    "compile_cache_stats",
    "compile_program",
    "run_concrete",
    "c_div",
    "c_mod",
    "truthy",
    "pretty_expr",
    "pretty_program",
    "pretty_stmt",
    "RandomProgram",
    "generate_program",
]
