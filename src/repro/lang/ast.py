"""Abstract syntax tree for MiniC, the library's small imperative language.

MiniC is the concrete incarnation of the paper's abstract command language
(Section 2): programs are built from assignments, conditionals, loops and
calls.  All values are integers; strings are modelled as fixed-width tuples
of character codes by the applications layer.

Every conditional / loop node carries a unique ``branch_id`` assigned at
parse time, used by the search engines for branch-coverage bookkeeping and
divergence detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Expr",
    "IntLit",
    "VarRef",
    "Unary",
    "Binary",
    "Call",
    "ArrayRef",
    "Stmt",
    "VarDecl",
    "ArrayDecl",
    "Assign",
    "ArrayAssign",
    "If",
    "While",
    "Return",
    "ExprStmt",
    "ErrorStmt",
    "AssertStmt",
    "Block",
    "FunctionDef",
    "Program",
    "COMPARISON_OPS",
    "ARITH_OPS",
    "LOGICAL_OPS",
]

COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")
ARITH_OPS = ("+", "-", "*", "/", "%")
LOGICAL_OPS = ("&&", "||")


@dataclass(frozen=True)
class Node:
    """Base class carrying source position for error messages."""

    line: int = field(default=0, compare=False)


# ---------------------------------------------------------------- expressions


@dataclass(frozen=True)
class Expr(Node):
    pass


@dataclass(frozen=True)
class IntLit(Expr):
    """An integer literal."""

    value: int = 0

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VarRef(Expr):
    """A reference to a scalar variable."""

    name: str = ""

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Unary(Expr):
    """Unary operation: ``-e`` or ``!e``."""

    op: str = "-"
    operand: Expr = None  # type: ignore[assignment]

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class Binary(Expr):
    """Binary operation over arithmetic, comparison or logical operators."""

    op: str = "+"
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Call(Expr):
    """A call to a user-defined or native (possibly unknown) function."""

    name: str = ""
    args: Tuple[Expr, ...] = ()

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class ArrayRef(Expr):
    """An array read ``a[index]``."""

    name: str = ""
    index: Expr = None  # type: ignore[assignment]

    def __str__(self) -> str:
        return f"{self.name}[{self.index}]"


# ---------------------------------------------------------------- statements


@dataclass(frozen=True)
class Stmt(Node):
    pass


@dataclass(frozen=True)
class VarDecl(Stmt):
    """``int x;`` or ``int x = e;``"""

    name: str = ""
    init: Optional[Expr] = None


@dataclass(frozen=True)
class ArrayDecl(Stmt):
    """``int a[N];`` — a fixed-size integer array initialized to zeros."""

    name: str = ""
    size: int = 0


@dataclass(frozen=True)
class Assign(Stmt):
    """``x = e;``"""

    name: str = ""
    expr: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class ArrayAssign(Stmt):
    """``a[i] = e;``"""

    name: str = ""
    index: Expr = None  # type: ignore[assignment]
    expr: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class If(Stmt):
    """Conditional with a parse-time-unique ``branch_id``."""

    cond: Expr = None  # type: ignore[assignment]
    then_body: "Block" = None  # type: ignore[assignment]
    else_body: Optional["Block"] = None
    branch_id: int = -1


@dataclass(frozen=True)
class While(Stmt):
    """Loop; each evaluation of the guard is a branch occurrence."""

    cond: Expr = None  # type: ignore[assignment]
    body: "Block" = None  # type: ignore[assignment]
    branch_id: int = -1


@dataclass(frozen=True)
class Return(Stmt):
    expr: Optional[Expr] = None


@dataclass(frozen=True)
class ExprStmt(Stmt):
    """An expression evaluated for its side effects (a call)."""

    expr: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class ErrorStmt(Stmt):
    """``error("message");`` — the paper's reachable-bug marker."""

    message: str = "error"


@dataclass(frozen=True)
class AssertStmt(Stmt):
    """``assert(e);`` — errors when ``e`` evaluates to 0.

    Asserts are branch sites too: the search can target the failing side.
    """

    cond: Expr = None  # type: ignore[assignment]
    branch_id: int = -1


@dataclass(frozen=True)
class Block(Stmt):
    stmts: Tuple[Stmt, ...] = ()


# ---------------------------------------------------------------- top level


@dataclass(frozen=True)
class FunctionDef(Node):
    """``int name(int p1, int p2) { ... }``"""

    name: str = ""
    params: Tuple[str, ...] = ()
    body: Block = None  # type: ignore[assignment]


@dataclass
class Program:
    """A parsed MiniC program: user functions plus branch metadata."""

    functions: Dict[str, FunctionDef]
    #: total number of branch sites (If/While nodes) in the program
    num_branches: int = 0
    #: source text, kept for diagnostics
    source: str = ""

    def function(self, name: str) -> FunctionDef:
        if name not in self.functions:
            raise KeyError(f"no function named {name!r}")
        return self.functions[name]

    def branch_sites(self) -> List[Tuple[int, int]]:
        """All (branch_id, line) pairs, for coverage reports."""
        sites: List[Tuple[int, int]] = []

        def walk(stmt: Stmt) -> None:
            if isinstance(stmt, Block):
                for s in stmt.stmts:
                    walk(s)
            elif isinstance(stmt, If):
                sites.append((stmt.branch_id, stmt.line))
                walk(stmt.then_body)
                if stmt.else_body is not None:
                    walk(stmt.else_body)
            elif isinstance(stmt, While):
                sites.append((stmt.branch_id, stmt.line))
                walk(stmt.body)
            elif isinstance(stmt, AssertStmt):
                sites.append((stmt.branch_id, stmt.line))

        for fn in self.functions.values():
            walk(fn.body)
        sites.sort()
        return sites
