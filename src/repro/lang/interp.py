"""Concrete big-step interpreter for MiniC.

Executes a program on a concrete input vector, recording the branch trace
(the control path ``w`` of the paper's Section 2) and detecting errors.
Used directly by the blackbox-fuzzing baseline and for cheap re-validation
of generated tests; the concolic machine in :mod:`repro.symbolic` performs
the same evaluation side-by-side with a symbolic store.

Division follows C semantics (truncation toward zero); a step budget
enforces the paper's all-executions-terminate assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import InterpError, StepBudgetExceeded
from .ast import (
    ArrayAssign,
    ArrayDecl,
    ArrayRef,
    Assign,
    AssertStmt,
    Binary,
    Block,
    Call,
    ErrorStmt,
    Expr,
    ExprStmt,
    FunctionDef,
    If,
    IntLit,
    Program,
    Return,
    Stmt,
    Unary,
    VarDecl,
    VarRef,
    While,
)
from .natives import NativeRegistry

__all__ = [
    "Interpreter",
    "RunResult",
    "DivisionByZero",
    "c_div",
    "c_mod",
    "truthy",
]


class DivisionByZero(Exception):
    """Raised by :func:`c_div`/:func:`c_mod`; the interpreters convert it
    into a *program error* (like a failed assert), so searches can find
    and confirm division-by-zero bugs (paper §3.2's injected checks)."""


def c_div(a: int, b: int) -> int:
    """C-style integer division: truncation toward zero."""
    if b == 0:
        raise DivisionByZero()
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def c_mod(a: int, b: int) -> int:
    """C-style remainder: ``a == b * c_div(a, b) + c_mod(a, b)``."""
    return a - b * c_div(a, b)


def truthy(value: int) -> bool:
    """MiniC truth: any non-zero integer."""
    return value != 0


@dataclass
class RunResult:
    """Outcome of one concrete execution."""

    #: inputs the program ran with
    inputs: Dict[str, int]
    #: return value of the entry function (None if an error fired)
    returned: Optional[int]
    #: True when an error()/failed assert was reached
    error: bool = False
    error_message: str = ""
    error_line: int = 0
    #: branch trace: (branch_id, taken) per evaluated conditional
    path: List[Tuple[int, bool]] = field(default_factory=list)
    #: branches covered: set of (branch_id, polarity)
    covered: set = field(default_factory=set)
    steps: int = 0

    @property
    def path_key(self) -> Tuple[Tuple[int, bool], ...]:
        """Hashable identity of the executed control path."""
        return tuple(self.path)


class _ReturnSignal(Exception):
    def __init__(self, value: int) -> None:
        self.value = value


class _ErrorSignal(Exception):
    def __init__(self, message: str, line: int) -> None:
        self.message = message
        self.line = line


class Interpreter:
    """Concrete MiniC interpreter.

    Usage::

        prog = parse_program(src)
        interp = Interpreter(prog, natives)
        result = interp.run("obscure", {"x": 33, "y": 42})
    """

    def __init__(
        self,
        program: Program,
        natives: Optional[NativeRegistry] = None,
        step_budget: int = 1_000_000,
        backend: str = "bytecode",
    ) -> None:
        self.program = program
        self.natives = natives if natives is not None else NativeRegistry()
        self.step_budget = step_budget
        #: "bytecode" compiles the program once (cached per source digest)
        #: and dispatches over flat instructions; "tree" is the recursive
        #: AST walk kept as the differential reference.  Results are
        #: byte-identical (digest-gated).
        if backend not in ("tree", "bytecode"):
            raise InterpError(f"unknown exec backend {backend!r}")
        self.backend = backend

    def run(self, entry: str, inputs: Dict[str, int]) -> RunResult:
        """Execute ``entry`` with the given inputs and trace the path."""
        if self.backend == "bytecode":
            from .bytecode import compile_program, run_concrete

            return run_concrete(
                compile_program(self.program),
                entry,
                inputs,
                self.natives,
                self.step_budget,
            )
        fn = self.program.function(entry)
        missing = [p for p in fn.params if p not in inputs]
        if missing:
            raise InterpError(f"missing inputs for parameters {missing}")
        result = RunResult(inputs=dict(inputs), returned=None)
        env: Dict[str, object] = {p: int(inputs[p]) for p in fn.params}
        try:
            self._exec_block(fn.body, env, result)
            result.returned = 0  # falling off the end returns 0
        except _ReturnSignal as ret:
            result.returned = ret.value
        except _ErrorSignal as err:
            result.error = True
            result.error_message = err.message
            result.error_line = err.line
        return result

    # -- statements ---------------------------------------------------------

    def _tick(self, result: RunResult) -> None:
        result.steps += 1
        if result.steps > self.step_budget:
            raise StepBudgetExceeded(
                f"execution exceeded {self.step_budget} steps"
            )

    def _exec_block(
        self, block: Block, env: Dict[str, object], result: RunResult
    ) -> None:
        for stmt in block.stmts:
            self._exec_stmt(stmt, env, result)

    def _exec_stmt(
        self, stmt: Stmt, env: Dict[str, object], result: RunResult
    ) -> None:
        self._tick(result)
        if isinstance(stmt, VarDecl):
            env[stmt.name] = (
                self._eval(stmt.init, env, result) if stmt.init is not None else 0
            )
        elif isinstance(stmt, ArrayDecl):
            env[stmt.name] = [0] * stmt.size
        elif isinstance(stmt, Assign):
            if stmt.name not in env:
                raise InterpError(
                    f"assignment to undeclared variable {stmt.name!r} "
                    f"(line {stmt.line})"
                )
            env[stmt.name] = self._eval(stmt.expr, env, result)
        elif isinstance(stmt, ArrayAssign):
            arr = self._array(stmt.name, env, stmt.line)
            idx = self._eval(stmt.index, env, result)
            self._bounds_check(arr, idx, stmt.name, stmt.line)
            arr[idx] = self._eval(stmt.expr, env, result)
        elif isinstance(stmt, If):
            value = self._eval(stmt.cond, env, result)
            taken = truthy(value)
            result.path.append((stmt.branch_id, taken))
            result.covered.add((stmt.branch_id, taken))
            if taken:
                self._exec_block(stmt.then_body, env, result)
            elif stmt.else_body is not None:
                self._exec_block(stmt.else_body, env, result)
        elif isinstance(stmt, While):
            while True:
                value = self._eval(stmt.cond, env, result)
                taken = truthy(value)
                result.path.append((stmt.branch_id, taken))
                result.covered.add((stmt.branch_id, taken))
                if not taken:
                    break
                self._exec_block(stmt.body, env, result)
                self._tick(result)
        elif isinstance(stmt, Return):
            value = (
                self._eval(stmt.expr, env, result) if stmt.expr is not None else 0
            )
            raise _ReturnSignal(value)
        elif isinstance(stmt, ErrorStmt):
            raise _ErrorSignal(stmt.message, stmt.line)
        elif isinstance(stmt, AssertStmt):
            ok = truthy(self._eval(stmt.cond, env, result))
            result.path.append((stmt.branch_id, ok))
            result.covered.add((stmt.branch_id, ok))
            if not ok:
                raise _ErrorSignal("assertion failed", stmt.line)
        elif isinstance(stmt, ExprStmt):
            self._eval(stmt.expr, env, result)
        elif isinstance(stmt, Block):
            self._exec_block(stmt, env, result)
        else:  # pragma: no cover - parser produces no other nodes
            raise InterpError(f"unknown statement {stmt!r}")

    # -- expressions -----------------------------------------------------------

    def _array(self, name: str, env: Dict[str, object], line: int) -> list:
        arr = env.get(name)
        if not isinstance(arr, list):
            raise InterpError(f"{name!r} is not an array (line {line})")
        return arr

    def _bounds_check(self, arr: list, idx: int, name: str, line: int) -> None:
        """Out-of-bounds access is a *program error* (confirmable bug)."""
        if not 0 <= idx < len(arr):
            raise _ErrorSignal(
                f"array index {idx} out of bounds for {name}[{len(arr)}]",
                line,
            )

    def _eval(self, expr: Expr, env: Dict[str, object], result: RunResult) -> int:
        self._tick(result)
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, VarRef):
            if expr.name not in env:
                raise InterpError(
                    f"undeclared variable {expr.name!r} (line {expr.line})"
                )
            value = env[expr.name]
            if isinstance(value, list):
                raise InterpError(
                    f"array {expr.name!r} used as a scalar (line {expr.line})"
                )
            return value  # type: ignore[return-value]
        if isinstance(expr, ArrayRef):
            arr = self._array(expr.name, env, expr.line)
            idx = self._eval(expr.index, env, result)
            self._bounds_check(arr, idx, expr.name, expr.line)
            return arr[idx]
        if isinstance(expr, Unary):
            value = self._eval(expr.operand, env, result)
            if expr.op == "-":
                return -value
            if expr.op == "!":
                return 0 if truthy(value) else 1
            raise InterpError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, Binary):
            return self._eval_binary(expr, env, result)
        if isinstance(expr, Call):
            return self._eval_call(expr, env, result)
        raise InterpError(f"unknown expression {expr!r}")

    def _eval_binary(
        self, expr: Binary, env: Dict[str, object], result: RunResult
    ) -> int:
        op = expr.op
        # logical operators are STRICT (both operands evaluated), matching
        # the paper's treatment of compound conditions: Example 3 derives
        # the two-conjunct constraint x=567 ∧ y=123 from one `if (A AND B)`
        if op == "&&":
            left = self._eval(expr.left, env, result)
            right = self._eval(expr.right, env, result)
            return 1 if truthy(left) and truthy(right) else 0
        if op == "||":
            left = self._eval(expr.left, env, result)
            right = self._eval(expr.right, env, result)
            return 1 if truthy(left) or truthy(right) else 0
        left = self._eval(expr.left, env, result)
        right = self._eval(expr.right, env, result)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            try:
                return c_div(left, right)
            except DivisionByZero:
                raise _ErrorSignal("division by zero", expr.line)
        if op == "%":
            try:
                return c_mod(left, right)
            except DivisionByZero:
                raise _ErrorSignal("division by zero", expr.line)
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        raise InterpError(f"unknown binary operator {op!r}")

    def _eval_call(
        self, expr: Call, env: Dict[str, object], result: RunResult
    ) -> int:
        args = [self._eval(a, env, result) for a in expr.args]
        if expr.name in self.program.functions:
            fn = self.program.function(expr.name)
            if len(args) != len(fn.params):
                raise InterpError(
                    f"{expr.name} expects {len(fn.params)} args, got {len(args)} "
                    f"(line {expr.line})"
                )
            call_env: Dict[str, object] = dict(zip(fn.params, args))
            try:
                self._exec_block(fn.body, call_env, result)
                return 0
            except _ReturnSignal as ret:
                return ret.value
        return self.natives.call(expr.name, tuple(args))
