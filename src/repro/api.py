"""The stable library surface of :mod:`repro`.

Everything a library user needs lives behind a small set of names —

- :func:`generate_tests` — one directed search over one program;
- :class:`Client` / :class:`CampaignHandle` — submit campaigns and
  watch them run: locally (a background campaign in this process) or
  against a ``repro serve`` state dir (the campaign service);
- :func:`replay` — re-execute a saved corpus and report outcome drift —

plus the types they accept and return, re-exported here.  The CLI
subcommands (``repro run``, ``repro campaign``, ``repro serve`` /
``submit``, ``repro replay``) are thin wrappers over these same
classes, so library and shell users hit identical code paths.

The campaign model is *submit → handle*::

    from repro.api import Client

    client = Client(workers=4, cache_dir=".repro-cache")
    handle = client.submit("paper")
    for event in handle.stream_events():   # optional: watch it run
        ...
    report = handle.wait()
    print(report.summary(), report.campaign_digest)

The same two calls against a service state dir submit to a running
``repro serve`` fleet instead (and return even if the server finishes
the campaign days later — results are durable)::

    client = Client(state_dir="/var/run/repro")
    handle = client.submit("paper", priority=2, tenant="ci")
    report = handle.wait(timeout=600)

:func:`run_campaign` — the pre-service one-shot entry point — still
works and still returns the same byte-identical
``campaign_digest``, but it is now a thin blocking wrapper over the
local :class:`Client` and warns :class:`DeprecationWarning` once per
process.  See docs/API.md for the migration table.

Deep imports (``from repro.search.directed import DirectedSearch``, …)
keep working, but only the names in :data:`__all__` here are covered by
the compatibility promise documented in docs/API.md.
"""

from __future__ import annotations

import threading
import time
import warnings
from typing import Callable, Dict, Iterator, List, Optional, Union

from .engine.merger import CampaignReport, ResultMerger
from .engine.planner import (
    BatchPlanner,
    CampaignSpec,
    SearchJob,
    resolve_spec,
    resolve_strategy,
)
from .engine.runner import CampaignCheckpoint, JobResult, ProcessPoolRunner
from .engine.supervisor import SupervisorConfig
from .errors import ReproError, SearchInterrupted
from .interrupt import clear_interrupt, interrupt_requested, request_interrupt
from .lang.ast import Program
from .lang.natives import NativeRegistry
from .lang.parser import parse_program
from .obs import Observability
from .search.corpus import ReplayReport, TestCorpus
from .search.directed import DirectedSearch, SearchConfig, SearchResult
from .search.report import suite_digest
from .service.client import ServiceClient
from .service.state import submission_ticket

__all__ = [
    # functions
    "generate_tests",
    "run_campaign",
    "replay",
    # the campaign client surface
    "Client",
    "CampaignHandle",
    "ServiceClient",
    # campaign types
    "BatchPlanner",
    "CampaignReport",
    "CampaignSpec",
    "JobResult",
    "ProcessPoolRunner",
    "ResultMerger",
    "SearchJob",
    # search types
    "SearchConfig",
    "SearchResult",
    # corpus types
    "ReplayReport",
    "TestCorpus",
    # helpers
    "suite_digest",
]


def _as_program(source: Union[str, Program]) -> Program:
    return source if isinstance(source, Program) else parse_program(source)


def _default_entry(program: Program, requested: Optional[str]) -> str:
    if requested:
        if requested not in program.functions:
            raise ReproError(f"program has no function {requested!r}")
        return requested
    if "main" in program.functions:
        return "main"
    return next(iter(program.functions))


def _default_natives() -> NativeRegistry:
    from .apps.hashes import standard_registry

    return standard_registry(width=4)


def generate_tests(
    source: Union[str, Program],
    *,
    entry: Optional[str] = None,
    strategy: str = "hotg",
    config: Optional[Union[SearchConfig, Dict[str, object]]] = None,
    natives: Optional[NativeRegistry] = None,
    seed: Optional[Dict[str, int]] = None,
    obs: Optional[Observability] = None,
    _search_hook: Optional[Callable[[DirectedSearch], None]] = None,
) -> SearchResult:
    """Run one directed search over ``source`` and return its result.

    ``source`` is MiniC text (or an already-parsed :class:`Program`);
    ``strategy`` is ``"hotg"`` (higher-order, the paper's contribution),
    ``"dart"``/``"unsound"``, ``"sound"``, or ``"delayed"``; ``config``
    is a :class:`SearchConfig` or a dict of its options (validated by
    :meth:`SearchConfig.from_options`); ``natives`` defaults to the hash
    zoo the CLI exposes; ``seed`` entries default to 0 per entry-point
    parameter.
    """
    from .symbolic.concolic import ConcretizationMode

    program = _as_program(source)
    entry_fn = _default_entry(program, entry)
    mode = ConcretizationMode(resolve_strategy(strategy))
    if config is None:
        search_config = SearchConfig()
    elif isinstance(config, SearchConfig):
        search_config = config.validate()
    else:
        search_config = SearchConfig.from_options(**config)
    registry = natives if natives is not None else _default_natives()
    given = dict(seed or {})
    inputs = {
        param: int(given.get(param, 0))
        for param in program.function(entry_fn).params
    }
    search = DirectedSearch.for_mode(
        program, entry_fn, registry, mode, search_config, obs=obs
    )
    if _search_hook is not None:
        # private: lets the CLI reach the live search (sample store for
        # reports) without widening the stable surface
        _search_hook(search)
    return search.run(inputs)


# ---------------------------------------------------------------------------
# The campaign client surface
# ---------------------------------------------------------------------------

#: handle states with nothing left to wait for
_TERMINAL = ("done", "cancelled", "failed")


class CampaignHandle:
    """One submitted campaign: observe, wait, cancel, fetch.

    The contract both backends honour (local background execution and
    the ``repro serve`` service):

    - :meth:`status` — ``queued`` | ``running`` | ``done`` |
      ``cancelled`` | ``failed``; :meth:`done` — terminal yet?
    - :meth:`wait` — block for the :class:`CampaignReport`; raises
      :class:`SearchInterrupted` on cancellation/shutdown and
      :class:`ReproError` on failure or timeout.
    - :meth:`result` — the report, if already finished (never blocks).
    - :meth:`cancel` — request cooperative cancellation: jobs already
      running finish (their results are kept), nothing new starts.
    - :meth:`stream_events` — iterate telemetry events as they land.

    ``ticket`` is the submission's content-addressed identity (SHA-256
    of spec + options + tenant): equal campaigns get equal tickets.
    """

    ticket: str

    def status(self) -> str:
        raise NotImplementedError

    def done(self) -> bool:
        return self.status() in _TERMINAL

    def wait(self, timeout: Optional[float] = None) -> CampaignReport:
        raise NotImplementedError

    def result(self) -> CampaignReport:
        raise NotImplementedError

    def cancel(self) -> bool:
        raise NotImplementedError

    def stream_events(
        self, poll: float = 0.2, timeout: Optional[float] = None
    ) -> Iterator[Dict[str, object]]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.ticket[:12]}, {self.status()})"


class _LocalHandle(CampaignHandle):
    """A campaign running on a background thread of *this* process.

    ``submit`` validates and plans synchronously (bad specs fail fast,
    in the caller's stack), then hands the planned jobs to a daemon
    thread driving the same runner/supervisor/merger path the engine
    has always used — so digests, checkpoints, telemetry, and the
    interrupt contract are unchanged.  ``wait`` re-raises whatever the
    campaign raised (notably :class:`SearchInterrupted` on shutdown,
    preserving the CLI's exit-3 + resume-hint behaviour).
    """

    def __init__(self, ticket: str, telemetry: Optional[str]) -> None:
        self.ticket = ticket
        self._telemetry = telemetry
        self._report: Optional[CampaignReport] = None
        self._error: Optional[BaseException] = None
        self._cancelled = False
        #: results as they land, for telemetry-less stream_events
        self._landed: List[JobResult] = []
        self._streamed = 0
        self._thread: Optional[threading.Thread] = None

    def _alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _start(self, execute: Callable[[], CampaignReport]) -> None:
        def _run() -> None:
            try:
                self._report = execute()
            except BaseException as exc:  # noqa: BLE001 - re-raised in wait()
                self._error = exc
            finally:
                # a cancel() sets the process-wide interrupt flag; once
                # this campaign has honoured it, clear it so the *next*
                # campaign in this process starts clean
                if self._cancelled and interrupt_requested() == "cancel":
                    clear_interrupt()

        self._thread = threading.Thread(
            target=_run, name=f"repro-campaign-{self.ticket[:12]}", daemon=True
        )
        self._thread.start()

    def _note(self, result: JobResult) -> None:
        self._landed.append(result)

    def status(self) -> str:
        if self._alive():
            return "running"
        if self._error is not None:
            if isinstance(self._error, SearchInterrupted):
                return "cancelled"
            return "failed"
        return "done"

    def wait(self, timeout: Optional[float] = None) -> CampaignReport:
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._alive():
            # short joins keep the *caller's* thread responsive to
            # signals: Ctrl-C lands here, flags the interrupt, and the
            # campaign thread shuts down gracefully
            self._thread.join(0.2)
            if (
                deadline is not None
                and time.monotonic() >= deadline
                and self._alive()
            ):
                raise ReproError(
                    f"timed out after {timeout:g}s waiting for campaign "
                    f"{self.ticket[:12]} (still running)"
                )
        if self._error is not None:
            raise self._error
        assert self._report is not None
        return self._report

    def result(self) -> CampaignReport:
        if self._alive():
            raise ReproError(
                f"no result yet for {self.ticket[:12]} (status: running)"
            )
        if self._error is not None:
            raise self._error
        assert self._report is not None
        return self._report

    def cancel(self) -> bool:
        if not self._alive():
            return False
        self._cancelled = True
        request_interrupt("cancel")
        return True

    def stream_events(
        self, poll: float = 0.2, timeout: Optional[float] = None
    ) -> Iterator[Dict[str, object]]:
        """Yield events as the campaign runs.

        With a telemetry directory configured this tails the journal
        shards (the full per-run event stream); without one it degrades
        to synthetic ``job_finished`` events, one per landed job.
        """
        reader = None
        if self._telemetry:
            from .obs.shipper import ShardReader

            reader = ShardReader(self._telemetry)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            got = False
            if reader is not None:
                for job, event in reader.poll():
                    got = True
                    yield dict(event, job=job)
            else:
                while self._streamed < len(self._landed):
                    result = self._landed[self._streamed]
                    self._streamed += 1
                    got = True
                    yield {
                        "kind": "job_finished",
                        "job": result.key,
                        "ok": result.ok,
                        "tests": len(result.corpus),
                    }
            if not self._alive() and not got:
                return
            if deadline is not None and time.monotonic() >= deadline:
                return
            if not got:
                time.sleep(poll)


class _RemoteHandle(CampaignHandle):
    """A campaign owned by a ``repro serve`` fleet (delegates to
    :class:`repro.service.client.ServiceHandle`)."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.ticket = inner.ticket

    def status(self) -> str:
        return self._inner.status()

    def wait(self, timeout: Optional[float] = None) -> CampaignReport:
        return self._inner.wait(timeout=timeout)

    def result(self) -> CampaignReport:
        return self._inner.result()

    def cancel(self) -> bool:
        return self._inner.cancel()

    def stream_events(
        self, poll: float = 0.2, timeout: Optional[float] = None
    ) -> Iterator[Dict[str, object]]:
        return self._inner.stream_events(poll=poll, timeout=timeout)


class Client:
    """Submit campaigns; get :class:`CampaignHandle`\\ s back.

    Two backends behind one surface:

    - **local** (default): each :meth:`submit` runs the campaign on a
      background thread of this process, with the worker pool, solver
      cache, telemetry, and supervision policy configured here.
    - **service** (``state_dir=...``): each :meth:`submit` drops a
      durable submission into a ``repro serve`` state dir and returns
      immediately; the server's fleet runs it (priority, tenant
      fair-share, and quotas apply), and the handle observes by
      reading the state dir — even across server restarts.

    Execution-environment knobs (``workers``, ``cache_dir``,
    ``telemetry``, supervision) live on the client; per-campaign
    choices (the spec, ``scheduler``/``jobs``/``exec_backend``
    overrides, ``priority``, ``tenant``) live on :meth:`submit`.
    """

    def __init__(
        self,
        state_dir: Optional[str] = None,
        *,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        telemetry: Optional[str] = None,
        fault_plan: str = "",
        job_deadline: Optional[float] = None,
        max_attempts: Optional[int] = None,
        stall_timeout: Optional[float] = None,
        store_dir: Optional[str] = None,
        store_max_bytes: Optional[int] = None,
        seed_from_store: bool = False,
    ) -> None:
        self.workers = workers
        self.cache_dir = cache_dir
        self.telemetry = telemetry
        self.fault_plan = fault_plan
        self.job_deadline = job_deadline
        self.max_attempts = max_attempts
        self.stall_timeout = stall_timeout
        #: shared content-addressed store: corpora and crash buckets are
        #: persisted there, and it doubles as the solver disk cache when
        #: ``cache_dir`` is unset
        self.store_dir = store_dir
        #: when set, the store is gc'd to this budget after each local
        #: campaign finishes
        self.store_max_bytes = store_max_bytes
        #: seed searches from the store's prior corpora (deterministic
        #: given the store state; OFF preserves classic digests exactly)
        self.seed_from_store = seed_from_store
        self._service = (
            ServiceClient(state_dir) if state_dir is not None else None
        )

    # -- submission --------------------------------------------------------

    def submit(
        self,
        spec: Union[str, CampaignSpec, Dict[str, object]],
        *,
        priority: int = 0,
        tenant: str = "default",
        checkpoint: Optional[str] = None,
        scheduler: Optional[str] = None,
        jobs: Optional[int] = None,
        exec_backend: Optional[str] = None,
        progress: Optional[Callable[[JobResult], None]] = None,
    ) -> CampaignHandle:
        """Submit one campaign; returns its handle.

        ``spec`` is a :class:`CampaignSpec`, a dict in the same shape, a
        path to a ``.toml``/``.json`` spec file, or ``"paper"`` for the
        built-in paper-example suite.  ``scheduler`` overrides the
        spec's scheduler list with one frontier scheduler for every job;
        ``jobs`` sets per-search speculative planning threads;
        ``exec_backend`` forces the execution core.  The report's
        ``campaign_digest`` is byte-identical at every ``workers`` (and
        ``jobs``) value, across both execution backends, under retries,
        and — because job results are pure functions of the job and the
        solver cache — whether the campaign ran alone or interleaved
        with others on a service fleet.

        Local mode validates and plans synchronously: a bad spec raises
        here, not from the handle.  ``checkpoint`` and ``progress`` are
        local-only (the service checkpoints every campaign in its own
        state-dir slot and streams progress via the handle);
        ``priority`` and ``tenant`` only schedule anything in service
        mode, but always participate in the content-addressed ticket.
        """
        if self._service is not None:
            if checkpoint is not None:
                raise ReproError(
                    "checkpoint= is local-only: the service checkpoints "
                    "every campaign under its state dir automatically"
                )
            if progress is not None:
                raise ReproError(
                    "progress= is local-only: stream a service campaign "
                    "with handle.stream_events()"
                )
            inner = self._service.submit(
                spec,
                priority=priority,
                tenant=tenant,
                scheduler=scheduler,
                jobs=jobs,
                exec_backend=exec_backend,
                job_deadline=self.job_deadline,
            )
            return _RemoteHandle(inner)
        return self._submit_local(
            spec,
            tenant=tenant,
            checkpoint=checkpoint,
            scheduler=scheduler,
            jobs=jobs,
            exec_backend=exec_backend,
            progress=progress,
        )

    def handle(self, ticket: str) -> CampaignHandle:
        """Re-attach to an existing service submission by ticket
        (prefixes allowed).  Service mode only: local campaigns live
        and die with the handle returned by :meth:`submit`."""
        if self._service is None:
            raise ReproError(
                "handle() needs a service client — construct "
                "Client(state_dir=...) to re-attach to submissions"
            )
        return _RemoteHandle(self._service.handle(ticket))

    # -- the local backend -------------------------------------------------

    def _submit_local(
        self,
        spec: Union[str, CampaignSpec, Dict[str, object]],
        *,
        tenant: str,
        checkpoint: Optional[str],
        scheduler: Optional[str],
        jobs: Optional[int],
        exec_backend: Optional[str],
        progress: Optional[Callable[[JobResult], None]],
    ) -> CampaignHandle:
        campaign = resolve_spec(spec)
        if scheduler is not None:
            campaign = campaign.with_overrides(scheduler=scheduler)
        campaign = campaign.with_overrides(
            jobs=jobs,
            exec_backend=exec_backend,
            job_deadline=self.job_deadline,
        )
        planned_jobs = BatchPlanner().expand(campaign)
        # supervision policy: the spec's job_deadline (possibly
        # overridden above) also drives the parent's defensive timeouts
        policy_kwargs: Dict[str, object] = {}
        effective_deadline = float(
            campaign.config.get("job_deadline", 0.0) or 0.0  # type: ignore[arg-type]
        )
        if effective_deadline:
            policy_kwargs["job_deadline"] = effective_deadline
        if self.max_attempts is not None:
            policy_kwargs["max_attempts"] = int(self.max_attempts)
        if self.stall_timeout is not None:
            if float(self.stall_timeout) > 0 and not self.telemetry:
                # without shards to tail the watchdog would silently
                # never arm — reject rather than let a wedged worker
                # hang a campaign whose operator asked for stall
                # detection
                raise ReproError(
                    "stall_timeout needs a telemetry directory: the "
                    "heartbeat watchdog tails telemetry shards (pass "
                    "--telemetry DIR, or --follow-telemetry with "
                    "--checkpoint)"
                )
            policy_kwargs["stall_timeout"] = float(self.stall_timeout)
        options: Dict[str, object] = {}
        if scheduler is not None:
            options["scheduler"] = scheduler
        if jobs is not None:
            options["jobs"] = jobs
        if exec_backend is not None:
            options["exec_backend"] = exec_backend
        if self.job_deadline is not None:
            options["job_deadline"] = self.job_deadline
        ticket = submission_ticket(campaign.as_payload(), options, tenant)
        spec_label = spec if isinstance(spec, str) else "<spec>"
        handle = _LocalHandle(ticket, self.telemetry)

        def _execute() -> CampaignReport:
            return self._run_local(
                campaign,
                planned_jobs,
                checkpoint=checkpoint,
                spec_label=spec_label,
                policy_kwargs=policy_kwargs,
                progress=progress,
                note=handle._note,
            )

        handle._start(_execute)
        return handle

    def _run_local(
        self,
        campaign: CampaignSpec,
        planned_jobs: List[SearchJob],
        *,
        checkpoint: Optional[str],
        spec_label: str,
        policy_kwargs: Dict[str, object],
        progress: Optional[Callable[[JobResult], None]],
        note: Callable[[JobResult], None],
    ) -> CampaignReport:
        ckpt = CampaignCheckpoint(checkpoint) if checkpoint else None
        pending = []
        saved = []
        for job in planned_jobs:
            done = ckpt.completed(job.key) if ckpt is not None else None
            if done is not None:
                saved.append(done)
            else:
                pending.append(job)
        runner = ProcessPoolRunner(
            workers=self.workers,
            cache_dir=self.cache_dir,
            fault_spec=self.fault_plan,
            telemetry_dir=self.telemetry,
            supervisor=(
                SupervisorConfig(**policy_kwargs)  # type: ignore[arg-type]
                if policy_kwargs
                else None
            ),
            store_dir=self.store_dir,
            seed_from_store=self.seed_from_store,
        )
        start = time.perf_counter()

        def _finished(result: JobResult) -> None:
            if ckpt is not None:
                ckpt.record(result)
            note(result)
            if progress is not None:
                progress(result)

        try:
            fresh = runner.run(pending, progress=_finished, checkpoint=ckpt)
        except SearchInterrupted as exc:
            # graceful shutdown: finished jobs are already checkpointed;
            # flush what telemetry there is and surface how to resume
            if exc.resume_hint is None and checkpoint:
                exc.resume_hint = (
                    f"repro campaign {spec_label} --checkpoint {checkpoint}"
                )
            if self.telemetry:
                from .obs.shipper import merge_shards

                try:
                    merge_shards(self.telemetry)
                except OSError:
                    pass
            raise
        elapsed = time.perf_counter() - start
        supervisor = runner.last_supervisor
        report = ResultMerger().merge(
            saved + fresh,
            seconds=elapsed,
            killed_workers=runner.killed_workers,
            resumed_jobs=len(saved),
            retried_jobs=supervisor.retries if supervisor is not None else 0,
            quarantined_jobs=(
                supervisor.quarantined_jobs if supervisor is not None else ()
            ),
            stalled_jobs=supervisor.stalled_jobs if supervisor is not None else 0,
            pool_rebuilds=(
                supervisor.pool_rebuilds if supervisor is not None else 0
            ),
        )
        if self.telemetry:
            from .obs.shipper import merge_shards

            try:
                _, report.journal_events = merge_shards(self.telemetry)
                report.telemetry_dir = self.telemetry
            except OSError:
                # shipping is best-effort; the campaign already succeeded
                report.telemetry_dir = self.telemetry
        if self.store_dir and self.store_max_bytes is not None:
            from .store import ContentStore

            # answer-neutral by the store's contract: anything evicted
            # is recomputed to byte-identical content on the next run
            ContentStore(self.store_dir).gc(self.store_max_bytes)
        return report


#: functions that have already warned this process (one-shot warnings)
_DEPRECATED_ONCE: set = set()


def _warn_deprecated(name: str, instead: str) -> None:
    if name in _DEPRECATED_ONCE:
        return
    _DEPRECATED_ONCE.add(name)
    warnings.warn(
        f"{name}() is deprecated; use {instead}",
        DeprecationWarning,
        stacklevel=3,
    )


def run_campaign(
    spec: Union[str, CampaignSpec, Dict[str, object]],
    *,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    checkpoint: Optional[str] = None,
    fault_plan: str = "",
    scheduler: Optional[str] = None,
    jobs: Optional[int] = None,
    exec_backend: Optional[str] = None,
    telemetry: Optional[str] = None,
    job_deadline: Optional[float] = None,
    max_attempts: Optional[int] = None,
    stall_timeout: Optional[float] = None,
    progress: Optional[Callable[[JobResult], None]] = None,
) -> CampaignReport:
    """Plan, execute, and merge a batch campaign (deprecated spelling).

    .. deprecated::
        Use ``Client(...).submit(spec, ...).wait()`` — same semantics,
        same byte-identical ``campaign_digest``, plus a handle you can
        stream, cancel, or point at a ``repro serve`` fleet.  This
        wrapper warns :class:`DeprecationWarning` once per process and
        will keep working for the foreseeable future.

    All parameters mean exactly what they always did; see
    :meth:`Client.submit` and docs/API.md for the new spellings.
    """
    _warn_deprecated("run_campaign", "Client(...).submit(...).wait()")
    client = Client(
        workers=workers,
        cache_dir=cache_dir,
        telemetry=telemetry,
        fault_plan=fault_plan,
        job_deadline=job_deadline,
        max_attempts=max_attempts,
        stall_timeout=stall_timeout,
    )
    handle = client.submit(
        spec,
        checkpoint=checkpoint,
        scheduler=scheduler,
        jobs=jobs,
        exec_backend=exec_backend,
        progress=progress,
    )
    return handle.wait()


def replay(
    corpus: Union[str, TestCorpus],
    source: Union[str, Program],
    *,
    entry: Optional[str] = None,
    natives: Optional[NativeRegistry] = None,
) -> ReplayReport:
    """Re-execute a saved corpus against ``source``; report outcome drift.

    ``corpus`` is a :class:`TestCorpus` or a path to one saved as JSON.
    A mismatch means the program's behaviour changed since the corpus was
    recorded — a regression (or a fix) worth inspecting.
    """
    tests = corpus if isinstance(corpus, TestCorpus) else TestCorpus.load(corpus)
    program = _as_program(source)
    entry_fn = _default_entry(program, entry)
    registry = natives if natives is not None else _default_natives()
    return tests.replay(program, entry_fn, registry)
