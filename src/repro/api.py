"""The stable library surface of :mod:`repro`.

Everything a library user needs lives behind three functions —

- :func:`generate_tests` — one directed search over one program;
- :func:`run_campaign` — a batch of searches across worker processes,
  with an optional persistent solver cache (:mod:`repro.engine`);
- :func:`replay` — re-execute a saved corpus and report outcome drift —

plus the types they accept and return, re-exported here.  The CLI
subcommands (``repro run``, ``repro campaign``, ``repro replay``) are
thin wrappers over these same functions, so library and shell users hit
identical code paths.

Deep imports (``from repro.search.directed import DirectedSearch``, …)
keep working, but only the names in :data:`__all__` here are covered by
the compatibility promise documented in docs/API.md.

Quickstart::

    from repro import api

    result = api.generate_tests('''
        int obscure(int x, int y) {
            if (x == hash(y)) { error("reached"); }
            return 0;
        }
    ''', strategy="hotg", seed={"x": 33, "y": 42})
    assert result.found_error

    report = api.run_campaign("paper", workers=4, cache_dir=".repro-cache")
    print(report.summary(), report.campaign_digest)
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Union

from .engine.merger import CampaignReport, ResultMerger
from .engine.planner import (
    BatchPlanner,
    CampaignSpec,
    SearchJob,
    resolve_strategy,
)
from .engine.runner import CampaignCheckpoint, JobResult, ProcessPoolRunner
from .engine.supervisor import SupervisorConfig
from .errors import ReproError, SearchInterrupted
from .lang.ast import Program
from .lang.natives import NativeRegistry
from .lang.parser import parse_program
from .obs import Observability
from .search.corpus import ReplayReport, TestCorpus
from .search.directed import DirectedSearch, SearchConfig, SearchResult
from .search.report import suite_digest
from .symbolic.concolic import ConcretizationMode

__all__ = [
    # functions
    "generate_tests",
    "run_campaign",
    "replay",
    # campaign types
    "BatchPlanner",
    "CampaignReport",
    "CampaignSpec",
    "JobResult",
    "ProcessPoolRunner",
    "ResultMerger",
    "SearchJob",
    # search types
    "SearchConfig",
    "SearchResult",
    # corpus types
    "ReplayReport",
    "TestCorpus",
    # helpers
    "suite_digest",
]


def _as_program(source: Union[str, Program]) -> Program:
    return source if isinstance(source, Program) else parse_program(source)


def _default_entry(program: Program, requested: Optional[str]) -> str:
    if requested:
        if requested not in program.functions:
            raise ReproError(f"program has no function {requested!r}")
        return requested
    if "main" in program.functions:
        return "main"
    return next(iter(program.functions))


def _default_natives() -> NativeRegistry:
    from .apps.hashes import standard_registry

    return standard_registry(width=4)


def generate_tests(
    source: Union[str, Program],
    *,
    entry: Optional[str] = None,
    strategy: str = "hotg",
    config: Optional[Union[SearchConfig, Dict[str, object]]] = None,
    natives: Optional[NativeRegistry] = None,
    seed: Optional[Dict[str, int]] = None,
    obs: Optional[Observability] = None,
    _search_hook: Optional[Callable[[DirectedSearch], None]] = None,
) -> SearchResult:
    """Run one directed search over ``source`` and return its result.

    ``source`` is MiniC text (or an already-parsed :class:`Program`);
    ``strategy`` is ``"hotg"`` (higher-order, the paper's contribution),
    ``"dart"``/``"unsound"``, ``"sound"``, or ``"delayed"``; ``config``
    is a :class:`SearchConfig` or a dict of its options (validated by
    :meth:`SearchConfig.from_options`); ``natives`` defaults to the hash
    zoo the CLI exposes; ``seed`` entries default to 0 per entry-point
    parameter.
    """
    program = _as_program(source)
    entry_fn = _default_entry(program, entry)
    mode = ConcretizationMode(resolve_strategy(strategy))
    if config is None:
        search_config = SearchConfig()
    elif isinstance(config, SearchConfig):
        search_config = config.validate()
    else:
        search_config = SearchConfig.from_options(**config)
    registry = natives if natives is not None else _default_natives()
    given = dict(seed or {})
    inputs = {
        param: int(given.get(param, 0))
        for param in program.function(entry_fn).params
    }
    search = DirectedSearch.for_mode(
        program, entry_fn, registry, mode, search_config, obs=obs
    )
    if _search_hook is not None:
        # private: lets the CLI reach the live search (sample store for
        # reports) without widening the stable surface
        _search_hook(search)
    return search.run(inputs)


def run_campaign(
    spec: Union[str, CampaignSpec, Dict[str, object]],
    *,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    checkpoint: Optional[str] = None,
    fault_plan: str = "",
    scheduler: Optional[str] = None,
    jobs: Optional[int] = None,
    exec_backend: Optional[str] = None,
    telemetry: Optional[str] = None,
    job_deadline: Optional[float] = None,
    max_attempts: Optional[int] = None,
    stall_timeout: Optional[float] = None,
    progress: Optional[Callable[[JobResult], None]] = None,
) -> CampaignReport:
    """Plan, execute, and merge a batch campaign of search jobs.

    ``spec`` is a :class:`CampaignSpec`, a dict in the same shape, a path
    to a ``.toml``/``.json`` spec file, or the string ``"paper"`` for the
    built-in paper-example suite.  ``workers`` sizes the spawn-safe
    process pool (1 = in-process); ``cache_dir`` attaches the persistent
    solver cache shared by all workers and future runs; ``checkpoint``
    names a directory where finished jobs are journaled so an interrupted
    campaign resumes by skipping them.  ``scheduler`` overrides the
    spec's scheduler list with one frontier scheduler for every job (see
    :mod:`repro.search.scheduler`); ``jobs`` sets the per-search
    speculative planning threads; ``exec_backend`` forces the execution
    core (``"bytecode"`` or ``"tree"``) for every job.  The report's
    ``campaign_digest`` is byte-identical at every ``workers`` (and
    ``jobs``) value, and across both execution backends.

    ``telemetry`` names a directory where every job ships its journal
    shard; after the run the shards are merged into a deterministic
    ``campaign.jsonl`` (``repro stats --follow <dir>`` tails it live).
    Telemetry is answer-preserving: the campaign digest is byte-identical
    with it on or off.

    Supervision (:mod:`repro.engine.supervisor`): ``job_deadline`` caps
    each job's wall clock (enforced cooperatively inside the search and
    defensively by the parent); ``max_attempts`` bounds the
    deterministic retries a deadline-blown/killed/stalled job gets
    before quarantine; ``stall_timeout`` arms the heartbeat watchdog
    (requires ``telemetry`` — a positive value without it is rejected
    with :class:`~repro.errors.ReproError`).  Retries are answer-preserving, so the
    campaign digest stays byte-identical under supervision.  A
    SIGINT/SIGTERM shutdown (flagged via :mod:`repro.interrupt`) drains
    in-flight jobs and raises :class:`~repro.errors.SearchInterrupted`
    carrying the checkpoint directory and a resume hint.
    """
    if isinstance(spec, CampaignSpec):
        campaign = spec
    elif isinstance(spec, dict):
        campaign = CampaignSpec(
            programs=list(spec.get("programs", [])),
            strategies=[str(s) for s in spec.get("strategies", ["higher_order"])],
            schedulers=[str(s) for s in spec.get("schedulers", ["dfs"])],
            max_runs=int(spec.get("max_runs", 60)),  # type: ignore[arg-type]
            config=dict(spec.get("config", {})),
        )
    elif spec == "paper":
        campaign = CampaignSpec.paper_suite()
    else:
        campaign = CampaignSpec.load(str(spec))
    if (
        scheduler is not None
        or jobs is not None
        or exec_backend is not None
        or job_deadline is not None
    ):
        # overrides never mutate the caller's spec object
        overrides: Dict[str, object] = {}
        if jobs:
            overrides["jobs"] = jobs
        if exec_backend is not None:
            overrides["exec_backend"] = exec_backend
        if job_deadline is not None:
            # flows into every job's SearchConfig: the kernel enforces
            # it cooperatively at run boundaries
            overrides["job_deadline"] = float(job_deadline)
        campaign = CampaignSpec(
            programs=list(campaign.programs),
            strategies=list(campaign.strategies),
            schedulers=[scheduler] if scheduler is not None else list(
                campaign.schedulers
            ),
            max_runs=campaign.max_runs,
            config=dict(campaign.config, **overrides),
        )
    planned_jobs = BatchPlanner().expand(campaign)
    ckpt = CampaignCheckpoint(checkpoint) if checkpoint else None
    pending = []
    saved = []
    for job in planned_jobs:
        done = ckpt.completed(job.key) if ckpt is not None else None
        if done is not None:
            saved.append(done)
        else:
            pending.append(job)
    # supervision policy: the spec's job_deadline (possibly overridden
    # above) also drives the parent's defensive timeouts
    policy_kwargs: Dict[str, object] = {}
    effective_deadline = float(campaign.config.get("job_deadline", 0.0) or 0.0)
    if effective_deadline:
        policy_kwargs["job_deadline"] = effective_deadline
    if max_attempts is not None:
        policy_kwargs["max_attempts"] = int(max_attempts)
    if stall_timeout is not None:
        if float(stall_timeout) > 0 and not telemetry:
            # without shards to tail the watchdog would silently never
            # arm — reject rather than let a wedged worker hang a
            # campaign whose operator asked for stall detection
            raise ReproError(
                "stall_timeout needs a telemetry directory: the "
                "heartbeat watchdog tails telemetry shards (pass "
                "--telemetry DIR, or --follow-telemetry with "
                "--checkpoint)"
            )
        policy_kwargs["stall_timeout"] = float(stall_timeout)
    runner = ProcessPoolRunner(
        workers=workers,
        cache_dir=cache_dir,
        fault_spec=fault_plan,
        telemetry_dir=telemetry,
        supervisor=SupervisorConfig(**policy_kwargs) if policy_kwargs else None,
    )
    start = time.perf_counter()

    def _finished(result: JobResult) -> None:
        if ckpt is not None:
            ckpt.record(result)
        if progress is not None:
            progress(result)

    try:
        fresh = runner.run(pending, progress=_finished, checkpoint=ckpt)
    except SearchInterrupted as exc:
        # graceful shutdown: finished jobs are already checkpointed;
        # flush what telemetry there is and surface how to resume
        if exc.resume_hint is None and checkpoint:
            base = spec if isinstance(spec, str) else "<spec>"
            exc.resume_hint = f"repro campaign {base} --checkpoint {checkpoint}"
        if telemetry:
            from .obs.shipper import merge_shards

            try:
                merge_shards(telemetry)
            except OSError:
                pass
        raise
    elapsed = time.perf_counter() - start
    supervisor = runner.last_supervisor
    report = ResultMerger().merge(
        saved + fresh,
        seconds=elapsed,
        killed_workers=runner.killed_workers,
        resumed_jobs=len(saved),
        retried_jobs=supervisor.retries if supervisor is not None else 0,
        quarantined_jobs=(
            supervisor.quarantined_jobs if supervisor is not None else ()
        ),
        stalled_jobs=supervisor.stalled_jobs if supervisor is not None else 0,
        pool_rebuilds=supervisor.pool_rebuilds if supervisor is not None else 0,
    )
    if telemetry:
        from .obs.shipper import merge_shards

        try:
            _, report.journal_events = merge_shards(telemetry)
            report.telemetry_dir = telemetry
        except OSError:
            # shipping is best-effort; the campaign itself already succeeded
            report.telemetry_dir = telemetry
    return report


def replay(
    corpus: Union[str, TestCorpus],
    source: Union[str, Program],
    *,
    entry: Optional[str] = None,
    natives: Optional[NativeRegistry] = None,
) -> ReplayReport:
    """Re-execute a saved corpus against ``source``; report outcome drift.

    ``corpus`` is a :class:`TestCorpus` or a path to one saved as JSON.
    A mismatch means the program's behaviour changed since the corpus was
    recorded — a regression (or a fix) worth inspecting.
    """
    tests = corpus if isinstance(corpus, TestCorpus) else TestCorpus.load(corpus)
    program = _as_program(source)
    entry_fn = _default_entry(program, entry)
    registry = natives if natives is not None else _default_natives()
    return tests.replay(program, entry_fn, registry)
