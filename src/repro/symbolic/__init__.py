"""Concolic (concrete + symbolic) execution of MiniC programs."""

from .concolic import (
    ConcolicEngine,
    ConcolicResult,
    ConcretizationMode,
    PathCondition,
    SymValue,
)

__all__ = [
    "ConcolicEngine",
    "ConcolicResult",
    "ConcretizationMode",
    "PathCondition",
    "SymValue",
]
