"""Side-by-side concrete + symbolic (concolic) execution of MiniC.

This is the paper's ``executeSymbolic`` (Figures 1–3): the program runs on
concrete inputs while a symbolic store tracks how values depend on the
inputs, and a *path constraint* collects input conditions at every
conditional.  The four :class:`ConcretizationMode` values implement the
paper's treatments of imprecision:

``UNSOUND``
    DART's default (Figure 1 without line 14): an expression outside the
    solver's theory is silently replaced by its runtime value.  Path
    constraints may be unsound → divergences (Section 3.2).

``SOUND``
    Figure 1 *with* line 14: every concretization eagerly injects pinning
    constraints ``x_i = I_i`` for all input variables feeding the
    concretized expression (Theorem 2).

``SOUND_DELAYED``
    The variant sketched at the end of Section 3.3: pins are attached to
    the concretized value and only injected into the path constraint when
    (and if) the value actually reaches a recorded condition.

``HIGHER_ORDER``
    Figure 3: native calls and unknown instructions become uninterpreted
    function applications, and every concrete call is recorded as an
    input-output *sample* in the IOF table.

Sources of imprecision handled:

- native (opaque) function calls — the paper's "unknown functions";
- non-linear arithmetic (``x*y``, ``x/y``, ``x%y`` with symbolic operands)
  — the paper's "unknown instructions", modelled in HIGHER_ORDER mode by
  the pure binary UFs ``__mul__``, ``__div__``, ``__mod__``;
- array accesses at symbolic indices — store-dependent, hence *not*
  representable as a pure UF; these use (delayed) sound concretization in
  every mode, as the paper's Section 6 prescribes for stateful operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import InterpError, StepBudgetExceeded, SymbolicExecutionError
from ..faults import current_fault_plan
from ..lang.ast import (
    ArrayAssign,
    ArrayDecl,
    ArrayRef,
    Assign,
    AssertStmt,
    Binary,
    Block,
    Call,
    ErrorStmt,
    Expr,
    ExprStmt,
    If,
    IntLit,
    Program,
    Return,
    Stmt,
    Unary,
    VarDecl,
    VarRef,
    While,
)
from ..lang.interp import DivisionByZero, c_div, c_mod, truthy
from ..lang.natives import NativeRegistry
from ..obs.metrics import default_registry
from ..solver.terms import FunctionSymbol, Kind, Sort, Term, TermManager
from ..solver.validity import Sample

__all__ = [
    "ConcretizationMode",
    "PathCondition",
    "ConcolicResult",
    "ConcolicEngine",
    "SymValue",
]


class ConcretizationMode(Enum):
    """How symbolic execution deals with expressions outside its theory."""

    UNSOUND = "unsound"
    SOUND = "sound"
    SOUND_DELAYED = "sound_delayed"
    HIGHER_ORDER = "higher_order"


@dataclass(frozen=True)
class SymValue:
    """A value in the side-by-side machine: concrete int + optional term.

    ``term`` is the symbolic expression over input variables (INT sort);
    ``bool_term`` caches a BOOL-sorted form for values produced by
    comparisons/logical operators; ``pins`` carries deferred concretization
    pins (input variable names) in ``SOUND_DELAYED`` mode.
    """

    concrete: int
    term: Optional[Term] = None
    bool_term: Optional[Term] = None
    pins: FrozenSet[str] = frozenset()

    @property
    def is_symbolic(self) -> bool:
        return self.term is not None or self.bool_term is not None

    def as_int_term(self, tm: TermManager) -> Optional[Term]:
        """INT-sorted term, encoding a boolean as ``ite(b, 1, 0)``."""
        if self.term is not None:
            return self.term
        if self.bool_term is not None:
            return tm.mk_ite(self.bool_term, tm.mk_int(1), tm.mk_int(0))
        return None

    def as_bool_term(self, tm: TermManager) -> Optional[Term]:
        """BOOL-sorted term, encoding an int as ``t != 0``."""
        if self.bool_term is not None:
            return self.bool_term
        if self.term is not None:
            return tm.mk_ne(self.term, tm.mk_int(0))
        return None


@dataclass(frozen=True)
class PathCondition:
    """One conjunct of the path constraint.

    ``is_concretization`` marks pinning constraints ``x_i = I_i``, which the
    directed search must never negate (Section 3.3: "concretization
    constraints should not be negated ... their only purpose is to
    guarantee soundness").
    """

    term: Term
    branch_id: int = -1
    taken: bool = True
    is_concretization: bool = False
    line: int = 0
    #: index into the run's branch trace (``ConcolicResult.path``) of the
    #: branch occurrence this condition came from; -1 for pins
    path_pos: int = -1

    def __str__(self) -> str:
        marker = " [pin]" if self.is_concretization else ""
        return f"{self.term}{marker}"


@dataclass
class ConcolicResult:
    """Everything one concolic run produces."""

    inputs: Dict[str, int]
    returned: Optional[int] = None
    #: symbolic expression of the return value over the input variables
    #: (None when the return value is a plain concrete constant)
    returned_term: Optional[Term] = None
    error: bool = False
    error_message: str = ""
    error_line: int = 0
    #: branch trace (branch_id, taken), the control path w
    path: List[Tuple[int, bool]] = field(default_factory=list)
    covered: Set[Tuple[int, bool]] = field(default_factory=set)
    #: the path constraint, in execution order
    path_conditions: List[PathCondition] = field(default_factory=list)
    #: IOF samples observed during this run (HIGHER_ORDER records all calls)
    samples: List[Sample] = field(default_factory=list)
    #: symbolic input variables, name -> Term
    input_vars: Dict[str, Term] = field(default_factory=dict)
    steps: int = 0
    #: count of concretization events (imprecision encountered)
    concretizations: int = 0
    #: count of UF applications created (HIGHER_ORDER)
    uf_applications: int = 0

    @property
    def path_key(self) -> Tuple[Tuple[int, bool], ...]:
        return tuple(self.path)

    def constraint_terms(self) -> List[Term]:
        return [pc.term for pc in self.path_conditions]


class _ReturnSignal(Exception):
    def __init__(self, value: SymValue) -> None:
        self.value = value


class _ErrorSignal(Exception):
    def __init__(self, message: str, line: int) -> None:
        self.message = message
        self.line = line


class ConcolicEngine:
    """The concolic executor.

    Parameters
    ----------
    program, natives:
        The MiniC program and its native (opaque) function registry.
    mode:
        The concretization mode (see module docstring).
    manager:
        Optional shared :class:`TermManager`; pass the same manager across
        runs of one testing session so input variables and UF symbols stay
        identified (required by the directed search and the HOTG driver).
    record_samples:
        Record IOF samples for *all* native calls even outside
        HIGHER_ORDER mode (useful for the cross-run learning experiments).
    """

    #: names of the unknown-instruction UFs (paper §4.1)
    MUL_UF = "__mul__"
    DIV_UF = "__div__"
    MOD_UF = "__mod__"

    #: synthetic branch ids for injected safety checks (paper §3.2:
    #: "additional constraints are automatically injected in path
    #: constraints for checking additional program properties")
    CHECK_DIV = -10
    CHECK_BOUNDS_LOW = -11
    CHECK_BOUNDS_HIGH = -12

    def __init__(
        self,
        program: Program,
        natives: Optional[NativeRegistry] = None,
        mode: ConcretizationMode = ConcretizationMode.HIGHER_ORDER,
        manager: Optional[TermManager] = None,
        step_budget: int = 1_000_000,
        record_samples: bool = True,
        inject_checks: bool = True,
        exec_backend: str = "bytecode",
    ) -> None:
        self.program = program
        self.natives = natives if natives is not None else NativeRegistry()
        self.mode = mode
        self.tm = manager if manager is not None else TermManager()
        self.step_budget = step_budget
        self.record_samples = record_samples
        #: inject divisor != 0 and index-in-bounds conditions so the
        #: directed search can target division-by-zero and out-of-bounds
        #: bugs; generated violations are confirmed by execution
        self.inject_checks = inject_checks
        #: "bytecode" runs the shadow off the compiled instruction stream
        #: (:mod:`repro.lang.bytecode`); "tree" keeps the recursive AST
        #: walk as the differential reference.  Both produce byte-identical
        #: results (digest-gated).
        if exec_backend not in ("tree", "bytecode"):
            raise InterpError(f"unknown exec backend {exec_backend!r}")
        self.exec_backend = exec_backend
        self._fn_symbols: Dict[str, FunctionSymbol] = {}

    # -- public API ----------------------------------------------------------

    def run(self, entry: str, inputs: Dict[str, int]) -> ConcolicResult:
        """Execute ``entry`` concolically on the given concrete inputs."""
        # fault-injection site "interp": a forced step-budget blowup, for
        # exercising the search's crash containment deterministically
        current_fault_plan().fire("interp")
        fn = self.program.function(entry)
        missing = [p for p in fn.params if p not in inputs]
        if missing:
            raise InterpError(f"missing inputs for parameters {missing}")
        result = ConcolicResult(inputs=dict(inputs))
        env: Dict[str, object] = {}
        for p in fn.params:
            var = self.tm.mk_var(p)
            result.input_vars[p] = var
            env[p] = SymValue(concrete=int(inputs[p]), term=var)
        self._input_names = set(fn.params)
        try:
            if self.exec_backend == "bytecode":
                from ..lang.bytecode import compile_program, exec_concolic

                value = exec_concolic(
                    self,
                    compile_program(self.program),
                    entry,
                    [env[p] for p in fn.params],
                    result,
                )
                result.returned = value.concrete
                result.returned_term = value.as_int_term(self.tm)
            else:
                self._exec_block(fn.body, env, result)
                result.returned = 0
        except _ReturnSignal as ret:
            result.returned = ret.value.concrete
            result.returned_term = ret.value.as_int_term(self.tm)
        except _ErrorSignal as err:
            result.error = True
            result.error_message = err.message
            result.error_line = err.line
        registry = default_registry()
        if registry.enabled:
            # per-run imprecision accounting, recorded once at the run
            # boundary so the per-step hot path stays untouched
            registry.counter("concolic.runs").inc()
            registry.counter("concolic.steps").inc(result.steps)
            registry.counter(
                f"concolic.concretizations.{self.mode.value}"
            ).inc(result.concretizations)
            registry.counter("concolic.uf_applications").inc(
                result.uf_applications
            )
            registry.counter("concolic.samples_recorded").inc(
                len(result.samples)
            )
            if result.error:
                registry.counter("concolic.errors").inc()
        return result

    def function_symbol(self, name: str, arity: int) -> FunctionSymbol:
        """The UF symbol representing a native function (stable per engine)."""
        sym = self._fn_symbols.get(name)
        if sym is None:
            sym = self.tm.mk_function(name, arity)
            self._fn_symbols[name] = sym
        return sym

    # -- concretization machinery ------------------------------------------------

    def _pin_vars(
        self,
        names: Sequence[str],
        result: ConcolicResult,
        already: Optional[Set[str]] = None,
    ) -> None:
        """Inject concretization constraints ``x_i = I_i`` (Fig. 1 line 14)."""
        pinned = {
            pc.term for pc in result.path_conditions if pc.is_concretization
        }
        for name in sorted(set(names)):
            var = result.input_vars.get(name)
            if var is None:
                continue
            pin = self.tm.mk_eq(var, self.tm.mk_int(result.inputs[name]))
            if pin in pinned:
                continue
            result.path_conditions.append(
                PathCondition(term=pin, is_concretization=True)
            )

    def _input_deps(self, value: SymValue, result: ConcolicResult) -> Set[str]:
        """Input variable names the value's symbolic term depends on."""
        term = value.term if value.term is not None else value.bool_term
        if term is None:
            return set()
        names = set()
        for v in term.free_vars():
            if v.name in result.input_vars:
                names.add(v.name)
        return names

    def _concretize(
        self, values: Sequence[SymValue], result: ConcolicResult
    ) -> FrozenSet[str]:
        """Drop symbolic info per the current mode; return deferred pins."""
        result.concretizations += 1
        deps: Set[str] = set()
        for v in values:
            deps |= self._input_deps(v, result)
            deps |= set(v.pins)
        if not deps:
            return frozenset()
        if self.mode is ConcretizationMode.SOUND:
            self._pin_vars(sorted(deps), result)
            return frozenset()
        if self.mode is ConcretizationMode.SOUND_DELAYED:
            return frozenset(deps)
        return frozenset()  # UNSOUND (and HO fallbacks handled by callers)

    def _flush_pins(self, value: SymValue, result: ConcolicResult) -> None:
        """SOUND_DELAYED: materialize deferred pins when a value is tested."""
        if value.pins:
            self._pin_vars(sorted(value.pins), result)

    # -- statements ------------------------------------------------------------------

    def _tick(self, result: ConcolicResult) -> None:
        result.steps += 1
        if result.steps > self.step_budget:
            raise StepBudgetExceeded(
                f"concolic execution exceeded {self.step_budget} steps"
            )

    def _exec_block(
        self, block: Block, env: Dict[str, object], result: ConcolicResult
    ) -> None:
        for stmt in block.stmts:
            self._exec_stmt(stmt, env, result)

    def _exec_stmt(
        self, stmt: Stmt, env: Dict[str, object], result: ConcolicResult
    ) -> None:
        self._tick(result)
        if isinstance(stmt, VarDecl):
            env[stmt.name] = (
                self._eval(stmt.init, env, result)
                if stmt.init is not None
                else SymValue(0)
            )
        elif isinstance(stmt, ArrayDecl):
            env[stmt.name] = [SymValue(0) for _ in range(stmt.size)]
        elif isinstance(stmt, Assign):
            if stmt.name not in env:
                raise InterpError(
                    f"assignment to undeclared variable {stmt.name!r} "
                    f"(line {stmt.line})"
                )
            env[stmt.name] = self._eval(stmt.expr, env, result)
        elif isinstance(stmt, ArrayAssign):
            arr = self._array(stmt.name, env, stmt.line)
            idx = self._eval(stmt.index, env, result)
            value = self._eval(stmt.expr, env, result)
            concrete_idx = self._resolve_index(idx, arr, stmt.name, stmt.line, result)
            arr[concrete_idx] = value
        elif isinstance(stmt, If):
            cond = self._eval(stmt.cond, env, result)
            taken = truthy(cond.concrete)
            result.path.append((stmt.branch_id, taken))
            result.covered.add((stmt.branch_id, taken))
            self._record_condition(cond, taken, stmt.branch_id, stmt.line, result)
            if taken:
                self._exec_block(stmt.then_body, env, result)
            elif stmt.else_body is not None:
                self._exec_block(stmt.else_body, env, result)
        elif isinstance(stmt, While):
            while True:
                cond = self._eval(stmt.cond, env, result)
                taken = truthy(cond.concrete)
                result.path.append((stmt.branch_id, taken))
                result.covered.add((stmt.branch_id, taken))
                self._record_condition(
                    cond, taken, stmt.branch_id, stmt.line, result
                )
                if not taken:
                    break
                self._exec_block(stmt.body, env, result)
                self._tick(result)
        elif isinstance(stmt, Return):
            value = (
                self._eval(stmt.expr, env, result)
                if stmt.expr is not None
                else SymValue(0)
            )
            raise _ReturnSignal(value)
        elif isinstance(stmt, ErrorStmt):
            raise _ErrorSignal(stmt.message, stmt.line)
        elif isinstance(stmt, AssertStmt):
            cond = self._eval(stmt.cond, env, result)
            ok = truthy(cond.concrete)
            # asserts are branch sites too: the search can target them
            result.path.append((stmt.branch_id, ok))
            result.covered.add((stmt.branch_id, ok))
            self._record_condition(cond, ok, stmt.branch_id, stmt.line, result)
            if not ok:
                raise _ErrorSignal("assertion failed", stmt.line)
        elif isinstance(stmt, ExprStmt):
            self._eval(stmt.expr, env, result)
        elif isinstance(stmt, Block):
            self._exec_block(stmt, env, result)
        else:  # pragma: no cover
            raise SymbolicExecutionError(f"unknown statement {stmt!r}")

    def _record_condition(
        self,
        cond: SymValue,
        taken: bool,
        branch_id: int,
        line: int,
        result: ConcolicResult,
    ) -> None:
        if self.mode is ConcretizationMode.SOUND_DELAYED:
            # a concretized value reaching a condition influences control
            # flow even when the condition's truth is concrete: its pins
            # must materialize here to keep the path constraint sound
            self._flush_pins(cond, result)
        bool_term = cond.as_bool_term(self.tm)
        if bool_term is None:
            return  # condition does not depend on inputs
        term = bool_term if taken else self.tm.mk_not(bool_term)
        if term is self.tm.true_:
            return
        result.path_conditions.append(
            PathCondition(
                term=term,
                branch_id=branch_id,
                taken=taken,
                line=line,
                path_pos=len(result.path) - 1,
            )
        )

    # -- expressions ------------------------------------------------------------------

    def _array(self, name: str, env: Dict[str, object], line: int) -> list:
        arr = env.get(name)
        if not isinstance(arr, list):
            raise InterpError(f"{name!r} is not an array (line {line})")
        return arr

    def _resolve_index(
        self,
        idx: SymValue,
        arr: list,
        name: str,
        line: int,
        result: ConcolicResult,
    ) -> int:
        """Concretize a (possibly symbolic) array index, soundly per mode.

        Symbolic indices are store-dependent lookups that cannot be
        represented by a pure uninterpreted function, so even HIGHER_ORDER
        mode falls back to sound concretization here (paper §6).
        """
        concrete = idx.concrete
        self._inject_bounds_check(idx, len(arr), line, result)
        if not 0 <= concrete < len(arr):
            raise _ErrorSignal(
                f"array index {concrete} out of bounds for {name}[{len(arr)}]",
                line,
            )
        if idx.is_symbolic or idx.pins:
            if self.mode in (
                ConcretizationMode.SOUND,
                ConcretizationMode.HIGHER_ORDER,
            ):
                deps = self._input_deps(idx, result) | set(idx.pins)
                result.concretizations += 1
                self._pin_vars(sorted(deps), result)
            else:
                self._concretize([idx], result)
        return concrete

    def _eval(
        self, expr: Expr, env: Dict[str, object], result: ConcolicResult
    ) -> SymValue:
        self._tick(result)
        if isinstance(expr, IntLit):
            return SymValue(expr.value)
        if isinstance(expr, VarRef):
            if expr.name not in env:
                raise InterpError(
                    f"undeclared variable {expr.name!r} (line {expr.line})"
                )
            value = env[expr.name]
            if isinstance(value, list):
                raise InterpError(
                    f"array {expr.name!r} used as a scalar (line {expr.line})"
                )
            return value  # type: ignore[return-value]
        if isinstance(expr, ArrayRef):
            arr = self._array(expr.name, env, expr.line)
            idx = self._eval(expr.index, env, result)
            return self._read_cell(arr, idx, expr.name, expr.line, result)
        if isinstance(expr, Unary):
            operand = self._eval(expr.operand, env, result)
            return self._apply_unary(expr.op, operand)
        if isinstance(expr, Binary):
            return self._eval_binary(expr, env, result)
        if isinstance(expr, Call):
            return self._eval_call(expr, env, result)
        raise SymbolicExecutionError(f"unknown expression {expr!r}")

    # -- binary operators -------------------------------------------------------------

    def _read_cell(
        self,
        arr: list,
        idx: SymValue,
        name: str,
        line: int,
        result: ConcolicResult,
    ) -> SymValue:
        """Array read past the index evaluation (shared with the VM)."""
        symbolic_idx = idx.is_symbolic
        concrete_idx = self._resolve_index(idx, arr, name, line, result)
        cell = arr[concrete_idx]
        if symbolic_idx and self.mode is ConcretizationMode.SOUND_DELAYED:
            # the read value inherits the deferred pins of the index
            return SymValue(
                cell.concrete,
                cell.term,
                cell.bool_term,
                cell.pins | idx.pins | frozenset(self._input_deps(idx, result)),
            )
        return cell

    def _apply_unary(self, op: str, operand: SymValue) -> SymValue:
        """Unary operator on an evaluated operand (shared with the VM)."""
        if op == "-":
            term = operand.as_int_term(self.tm)
            return SymValue(
                -operand.concrete,
                self.tm.mk_neg(term) if term is not None else None,
                pins=operand.pins,
            )
        if op == "!":
            concrete = 0 if truthy(operand.concrete) else 1
            bool_term = operand.as_bool_term(self.tm)
            return SymValue(
                concrete,
                bool_term=(
                    self.tm.mk_not(bool_term) if bool_term is not None else None
                ),
                pins=operand.pins,
            )
        raise InterpError(f"unknown unary operator {op!r}")

    def _eval_binary(
        self, expr: Binary, env: Dict[str, object], result: ConcolicResult
    ) -> SymValue:
        # both logical operators are STRICT, so every operator evaluates
        # left then right before combining (see _apply_binary's note)
        left = self._eval(expr.left, env, result)
        right = self._eval(expr.right, env, result)
        return self._apply_binary(expr.op, left, right, expr.line, result)

    def _apply_binary(
        self,
        op: str,
        left: SymValue,
        right: SymValue,
        line: int,
        result: ConcolicResult,
    ) -> SymValue:
        """Binary operator on evaluated operands (shared with the VM).

        Term construction order is part of the determinism contract: the
        bytecode shadow loop calls this with the same operand values in
        the same sequence as the tree walk, so hash-consed term ids — and
        therefore digests — match across backends.
        """
        tm = self.tm
        # strict logical operators (see the interpreter's note: the paper's
        # Example 3 derives both conjuncts of `if (A AND B)` into the pc)
        if op in ("&&", "||"):
            lt, rt = truthy(left.concrete), truthy(right.concrete)
            concrete = (
                1 if (lt and rt if op == "&&" else lt or rt) else 0
            )
            lb, rb = left.as_bool_term(tm), right.as_bool_term(tm)
            bool_term = None
            if lb is not None or rb is not None:
                lb = lb if lb is not None else tm.mk_bool(lt)
                rb = rb if rb is not None else tm.mk_bool(rt)
                bool_term = tm.mk_and(lb, rb) if op == "&&" else tm.mk_or(lb, rb)
            return SymValue(
                concrete, bool_term=bool_term, pins=left.pins | right.pins
            )

        lc, rc = left.concrete, right.concrete
        pins = left.pins | right.pins
        lt = left.as_int_term(tm)
        rt = right.as_int_term(tm)
        symbolic = lt is not None or rt is not None
        lt_full = lt if lt is not None else tm.mk_int(lc)
        rt_full = rt if rt is not None else tm.mk_int(rc)

        if op == "+":
            return SymValue(
                lc + rc, tm.mk_add(lt_full, rt_full) if symbolic else None, pins=pins
            )
        if op == "-":
            return SymValue(
                lc - rc, tm.mk_sub(lt_full, rt_full) if symbolic else None, pins=pins
            )
        if op == "*":
            concrete = lc * rc
            if not symbolic:
                return SymValue(concrete, pins=pins)
            if lt is None or rt is None:
                # linear: one side is a constant
                return SymValue(concrete, tm.mk_mul(lt_full, rt_full), pins=pins)
            return self._unknown_instruction(
                self.MUL_UF, (left, right), concrete, result, pins
            )
        if op in ("/", "%"):
            self._inject_div_check(right, line, result)
            try:
                concrete = c_div(lc, rc) if op == "/" else c_mod(lc, rc)
            except DivisionByZero:
                raise _ErrorSignal("division by zero", line)
            if not symbolic:
                return SymValue(concrete, pins=pins)
            uf_name = self.DIV_UF if op == "/" else self.MOD_UF
            return self._unknown_instruction(
                uf_name, (left, right), concrete, result, pins
            )

        # comparisons
        comparisons = {
            "==": (lambda a, b: a == b, tm.mk_eq),
            "!=": (lambda a, b: a != b, tm.mk_ne),
            "<": (lambda a, b: a < b, tm.mk_lt),
            "<=": (lambda a, b: a <= b, tm.mk_le),
            ">": (lambda a, b: a > b, tm.mk_gt),
            ">=": (lambda a, b: a >= b, tm.mk_ge),
        }
        if op not in comparisons:
            raise InterpError(f"unknown binary operator {op!r}")
        concrete_fn, term_fn = comparisons[op]
        concrete = 1 if concrete_fn(lc, rc) else 0
        bool_term = term_fn(lt_full, rt_full) if symbolic else None
        return SymValue(concrete, bool_term=bool_term, pins=pins)

    def _inject_div_check(
        self, divisor: SymValue, line: int, result: ConcolicResult
    ) -> None:
        """Record the injected safety condition ``divisor != 0`` (§3.2).

        Only input-dependent divisors get a condition (a concrete divisor
        cannot be steered to zero by new inputs).  The condition's truth
        at record time is "nonzero" — we are about to divide successfully
        or raise; the directed search may later negate it, and the
        resulting test confirms the division-by-zero by executing.
        """
        if not self.inject_checks:
            return
        term = divisor.as_int_term(self.tm)
        if term is None:
            return
        if divisor.concrete == 0:
            return  # about to error; no condition to record
        if self.mode is ConcretizationMode.SOUND_DELAYED:
            self._flush_pins(divisor, result)
        result.path_conditions.append(
            PathCondition(
                term=self.tm.mk_ne(term, self.tm.mk_int(0)),
                branch_id=self.CHECK_DIV,
                taken=True,
                line=line,
            )
        )

    def _inject_bounds_check(
        self,
        idx: SymValue,
        size: int,
        line: int,
        result: ConcolicResult,
    ) -> None:
        """Record injected conditions ``0 <= idx`` and ``idx < size``."""
        if not self.inject_checks:
            return
        term = idx.as_int_term(self.tm)
        if term is None:
            return
        if not 0 <= idx.concrete < size:
            return  # about to error; nothing to record
        if self.mode is ConcretizationMode.SOUND_DELAYED:
            self._flush_pins(idx, result)
        result.path_conditions.append(
            PathCondition(
                term=self.tm.mk_ge(term, self.tm.mk_int(0)),
                branch_id=self.CHECK_BOUNDS_LOW,
                taken=True,
                line=line,
            )
        )
        result.path_conditions.append(
            PathCondition(
                term=self.tm.mk_lt(term, self.tm.mk_int(size)),
                branch_id=self.CHECK_BOUNDS_HIGH,
                taken=True,
                line=line,
            )
        )

    def _unknown_instruction(
        self,
        uf_name: str,
        operands: Tuple[SymValue, SymValue],
        concrete: int,
        result: ConcolicResult,
        pins: FrozenSet[str],
    ) -> SymValue:
        """Handle ``x*y``, ``x/y``, ``x%y`` with symbolic operands."""
        tm = self.tm
        if self.mode is ConcretizationMode.HIGHER_ORDER:
            sym = self.function_symbol(uf_name, 2)
            args = [
                op.as_int_term(tm)
                if op.as_int_term(tm) is not None
                else tm.mk_int(op.concrete)
                for op in operands
            ]
            term = tm.mk_app(sym, args)
            result.uf_applications += 1
            if self.record_samples:
                result.samples.append(
                    Sample(
                        sym,
                        (operands[0].concrete, operands[1].concrete),
                        concrete,
                    )
                )
            return SymValue(concrete, term, pins=pins)
        deferred = self._concretize(list(operands), result)
        return SymValue(concrete, pins=deferred)

    # -- calls -----------------------------------------------------------------------

    def _eval_call(
        self, expr: Call, env: Dict[str, object], result: ConcolicResult
    ) -> SymValue:
        args = [self._eval(a, env, result) for a in expr.args]
        if expr.name in self.program.functions:
            fn = self.program.function(expr.name)
            if len(args) != len(fn.params):
                raise InterpError(
                    f"{expr.name} expects {len(fn.params)} args, got "
                    f"{len(args)} (line {expr.line})"
                )
            call_env: Dict[str, object] = dict(zip(fn.params, args))
            try:
                self._exec_block(fn.body, call_env, result)
                return SymValue(0)
            except _ReturnSignal as ret:
                return ret.value
        return self._apply_native(expr.name, args, result)

    def _apply_native(
        self, name: str, args: List[SymValue], result: ConcolicResult
    ) -> SymValue:
        """Native call on evaluated arguments (shared with the VM)."""
        tm = self.tm
        concrete_args = tuple(a.concrete for a in args)
        concrete = self.natives.call(name, concrete_args)
        symbolic = any(a.is_symbolic for a in args)
        pins = frozenset().union(*(a.pins for a in args)) if args else frozenset()

        if self.record_samples and args:
            sym = self.function_symbol(name, len(args))
            result.samples.append(Sample(sym, concrete_args, concrete))

        if not symbolic:
            # no input dependence: the call's result is a plain constant
            return SymValue(concrete, pins=pins)

        if self.mode is ConcretizationMode.HIGHER_ORDER:
            sym = self.function_symbol(name, len(args))
            terms = [
                a.as_int_term(tm)
                if a.as_int_term(tm) is not None
                else tm.mk_int(a.concrete)
                for a in args
            ]
            result.uf_applications += 1
            return SymValue(concrete, tm.mk_app(sym, terms), pins=pins)

        deferred = self._concretize(args, result)
        return SymValue(concrete, pins=deferred)
