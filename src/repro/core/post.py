"""Post-processing of path constraints into validity queries (paper §4.2).

Given a path constraint ``pc = c₁ ∧ … ∧ cₙ`` produced by symbolic execution
with uninterpreted functions, the paper defines:

- ``ALT(pc)`` — the alternate path constraint ``c₁ ∧ … ∧ c_{i-1} ∧ ¬c_i``
  targeting the other side of the i-th branch;
- ``POST(pc) = ∃X : A ⇒ pc`` — the first-order validity query, where ``A``
  conjoins the recorded IOF samples and the UF symbols are implicitly
  universally quantified.

Concretization constraints (pins) are never negated: "negating these
constraints will not define alternate path constraints corresponding to new
program paths" (Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..solver.terms import Term, TermManager
from ..solver.validity import Sample
from ..symbolic.concolic import PathCondition

__all__ = [
    "negatable_indices",
    "alternate_constraint",
    "PostFormula",
    "build_post",
]


def negatable_indices(conditions: Sequence[PathCondition]) -> List[int]:
    """Indices of conditions the directed search may negate.

    Excludes concretization constraints, per Section 3.3.
    """
    return [
        i for i, pc in enumerate(conditions) if not pc.is_concretization
    ]


def alternate_constraint(
    tm: TermManager, conditions: Sequence[PathCondition], index: int
) -> Term:
    """``ALT(pc)`` for the ``index``-th condition: prefix ∧ ¬c_index.

    The prefix keeps *all* earlier conditions, including pins — they are
    part of the path's soundness story even though they are never the
    negation target.
    """
    if conditions[index].is_concretization:
        raise ValueError("cannot negate a concretization constraint")
    prefix = [pc.term for pc in conditions[:index]]
    negated = tm.mk_not(conditions[index].term)
    return tm.mk_and(*(prefix + [negated]))


@dataclass
class PostFormula:
    """The paper's ``POST(pc) = ∃X : A ⇒ pc``, kept structured.

    The validity engine consumes the pieces separately; this object also
    renders the formula for humans, matching the paper's notation.
    """

    exists_vars: List[Term]
    antecedent_samples: List[Sample]
    matrix: Term

    def render(self) -> str:
        xs = ", ".join(v.name or "?" for v in self.exists_vars)
        if self.antecedent_samples:
            ant = " ∧ ".join(str(s) for s in self.antecedent_samples)
            return f"∃{xs} : ({ant}) ⇒ {self.matrix}"
        return f"∃{xs} : {self.matrix}"

    def __str__(self) -> str:
        return self.render()


def build_post(
    tm: TermManager,
    conditions: Sequence[PathCondition],
    index: int,
    input_vars: Sequence[Term],
    samples: Sequence[Sample],
) -> PostFormula:
    """Build ``POST(ALT(pc))`` for negating the ``index``-th condition."""
    matrix = alternate_constraint(tm, conditions, index)
    return PostFormula(
        exists_vars=list(input_vars),
        antecedent_samples=list(samples),
        matrix=matrix,
    )
