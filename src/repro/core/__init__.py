"""Higher-order test generation: samples, POST formulas, multi-step driver."""

from .samples import SampleStore
from .post import (
    PostFormula,
    alternate_constraint,
    build_post,
    negatable_indices,
)
from .hotg import HigherOrderBackend, MultiStepDriver, ProbeOutcome
from .summaries import (
    CompositionalReachability,
    FunctionSummary,
    SummaryCase,
    SummaryExtractor,
)

__all__ = [
    "CompositionalReachability",
    "FunctionSummary",
    "SummaryCase",
    "SummaryExtractor",
    "SampleStore",
    "PostFormula",
    "alternate_constraint",
    "build_post",
    "negatable_indices",
    "HigherOrderBackend",
    "MultiStepDriver",
    "ProbeOutcome",
]
